"""Property-based tests: RankQueue double-ended heap invariants."""

from hypothesis import given, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.scheduler import RankQueue

ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 1000)),
        st.tuples(st.just("pop_min"), st.just(0)),
        st.tuples(st.just("pop_max"), st.just(0)),
    ),
    max_size=200,
)


@given(ops)
def test_matches_reference_model(operations):
    queue = RankQueue()
    shadow = []
    for op, rank in operations:
        if op == "push":
            queue.push(rank, rank)
            shadow.append(rank)
        elif op == "pop_min" and shadow:
            got, _ = queue.pop_min()
            assert got == min(shadow)
            shadow.remove(got)
        elif op == "pop_max" and shadow:
            got, _ = queue.pop_max()
            assert got == max(shadow)
            shadow.remove(got)
        assert len(queue) == len(shadow)
    assert sorted(rank for rank, _ in queue.items()) == sorted(shadow)


@given(st.lists(st.integers(0, 100), min_size=1, max_size=100))
def test_drain_min_is_sorted(ranks):
    queue = RankQueue()
    for rank in ranks:
        queue.push(rank, rank)
    drained = [queue.pop_min()[0] for _ in range(len(ranks))]
    assert drained == sorted(ranks)


@given(st.lists(st.integers(0, 100), min_size=1, max_size=100))
def test_drain_max_is_reverse_sorted(ranks):
    queue = RankQueue()
    for rank in ranks:
        queue.push(rank, rank)
    drained = [queue.pop_max()[0] for _ in range(len(ranks))]
    assert drained == sorted(ranks, reverse=True)


class RankQueueMachine(RuleBasedStateMachine):
    """Stateful interleavings against a list model."""

    def __init__(self):
        super().__init__()
        self.queue = RankQueue()
        self.model = []
        self.counter = 0

    @rule(rank=st.integers(0, 50))
    def push(self, rank):
        self.counter += 1
        self.queue.push(rank, (rank, self.counter))
        self.model.append(rank)

    @precondition(lambda self: self.model)
    @rule()
    def pop_min(self):
        rank, _ = self.queue.pop_min()
        assert rank == min(self.model)
        self.model.remove(rank)

    @precondition(lambda self: self.model)
    @rule()
    def pop_max(self):
        rank, _ = self.queue.pop_max()
        assert rank == max(self.model)
        self.model.remove(rank)

    @invariant()
    def sizes_agree(self):
        assert len(self.queue) == len(self.model)
        assert bool(self.queue) == bool(self.model)


TestRankQueueMachine = RankQueueMachine.TestCase
