"""Property-based tests: RFS rotation boosting invariants."""

from hypothesis import given, strategies as st

from repro.core.flowinfo import (
    RFS_MASK,
    boost_rfs,
    rotl32,
    rotr32,
    unboost_rfs,
)

rfs_values = st.integers(min_value=0, max_value=RFS_MASK)
retcnts = st.integers(min_value=0, max_value=15)
factors = st.sampled_from([1, 2, 4, 8, 16])


@given(rfs_values, retcnts, factors)
def test_boost_roundtrip(original, retcnt, factor):
    wire = boost_rfs(original, retcnt, factor)
    assert unboost_rfs(wire, retcnt, factor) == original


@given(rfs_values, st.integers(min_value=0, max_value=200))
def test_rotations_invert(value, count):
    assert rotl32(rotr32(value, count), count) == value
    assert rotr32(rotl32(value, count), count) == value


@given(rfs_values, st.integers(min_value=0, max_value=200))
def test_rotation_stays_32_bit(value, count):
    assert 0 <= rotr32(value, count) <= RFS_MASK
    assert 0 <= rotl32(value, count) <= RFS_MASK


@given(rfs_values, retcnts)
def test_boost_halves_even_headroom_values(original, retcnt):
    """For values whose low ``retcnt`` bits are clear, boosting by 2^1
    per retransmission is exact integer division — the paper's intent."""
    cleared = original & ~((1 << retcnt) - 1)
    assert boost_rfs(cleared, retcnt, 2) == cleared >> retcnt


@given(rfs_values, retcnts, factors)
def test_boost_composition_matches_total_rotation(original, retcnt, factor):
    import math
    k = int(math.log2(factor))
    assert boost_rfs(original, retcnt, factor) \
        == rotr32(original, retcnt * k)
