"""Property tests: RNG streams survive checkpoint state capture.

The checkpoint subsystem snapshots every named ``random.Random`` stream
by value (``RngRegistry.SNAPSHOT_ATTRS`` includes ``_streams``); resumed
runs must see *exactly* the draw sequence the uninterrupted run would
have seen.  These tests assert the underlying guarantee for every
declared ``RNG_STREAMS`` family in the codebase: capturing a stream's
state mid-run (``getstate`` or pickling, the checkpoint path) and
restoring it reproduces an identical draw sequence, across seeds.
"""

import importlib
import pickle
import pkgutil
import random

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.sim.rng import RngRegistry


def _declared_families():
    """Every name in every module-level RNG_STREAMS declaration."""
    families = set()
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # CLI entry points run argparse at import
        try:
            module = importlib.import_module(info.name)
        except BaseException:  # optional deps, guarded entry points
            continue
        for name in getattr(module, "RNG_STREAMS", ()):
            families.add(name)
    return sorted(families)


FAMILIES = _declared_families()


def _stream_name(family):
    """A concrete stream name: prefix families get a sample suffix."""
    return family + "leaf0-spine1" if family.endswith(":") else family


def test_families_discovered():
    # The four known declaration sites must all be visible; if this
    # shrinks, the walk above broke and the property tests below are
    # vacuous.
    assert {"runtime.backoff", "workload.matrix"} <= set(FAMILIES)
    assert any(f.startswith("linkloss") for f in FAMILIES)
    assert any(f.startswith("faultloss") for f in FAMILIES)


@pytest.mark.parametrize("family", FAMILIES)
@given(seed=st.integers(0, 2 ** 31), warmup=st.integers(0, 200),
       draws=st.integers(1, 200))
@settings(max_examples=20, deadline=None)
def test_getstate_setstate_reproduces_draws(family, seed, warmup, draws):
    registry = RngRegistry(seed)
    stream = registry.stream(_stream_name(family))
    for _ in range(warmup):
        stream.random()
    state = stream.getstate()
    expected = [stream.random() for _ in range(draws)]
    stream.setstate(state)
    assert [stream.random() for _ in range(draws)] == expected


@pytest.mark.parametrize("family", FAMILIES)
@given(seed=st.integers(0, 2 ** 31), warmup=st.integers(0, 100),
       draws=st.integers(1, 100))
@settings(max_examples=10, deadline=None)
def test_pickle_roundtrip_reproduces_draws(family, seed, warmup, draws):
    """The actual checkpoint path: streams pickle inside the registry."""
    registry = RngRegistry(seed)
    stream = registry.stream(_stream_name(family))
    for _ in range(warmup):
        stream.random()
    restored = pickle.loads(pickle.dumps(registry))
    expected = [stream.random() for _ in range(draws)]
    copy = restored.stream(_stream_name(family))
    assert [copy.random() for _ in range(draws)] == expected
    # Restored registries keep handing out the *same object* for the
    # name, so component-held references stay aliased.
    assert restored.stream(_stream_name(family)) is copy


@given(seed=st.integers(0, 2 ** 31))
@settings(max_examples=10, deadline=None)
def test_snapshot_covers_every_live_stream(seed):
    """snapshot_state() must capture all streams created so far."""
    registry = RngRegistry(seed)
    for family in FAMILIES:
        registry.stream(_stream_name(family))
    state = registry.snapshot_state()
    assert set(state["_streams"]) == {_stream_name(f) for f in FAMILIES}
    # Mixed draws, then restore: every stream rewinds together.
    probe = {name: rng.getstate()
             for name, rng in state["_streams"].items()}
    blob = pickle.dumps(registry)
    for rng in registry._streams.values():
        rng.random()
    restored = pickle.loads(blob)
    for name, rng in restored._streams.items():
        assert rng.getstate() == probe[name]
