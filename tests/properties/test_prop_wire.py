"""Property-based tests: wire encodings round-trip exactly."""

from hypothesis import given, strategies as st

from repro.core.flowinfo import RFS_MASK, FlowInfo
from repro.core.wire import (
    decode_ipv4_option,
    decode_l3,
    encode_ipv4_option,
    encode_l3,
)

infos = st.builds(
    FlowInfo,
    rfs=st.integers(0, RFS_MASK),
    retcnt=st.integers(0, 15),
    flow_id3=st.integers(0, 7),
    first=st.booleans(),
)


@given(infos, st.integers(0, 0xFFFF))
def test_l3_roundtrip(info, ethertype):
    decoded, decoded_ethertype = decode_l3(encode_l3(info, ethertype))
    assert decoded == info
    assert decoded_ethertype == ethertype


@given(infos)
def test_ipv4_option_roundtrip(info):
    assert decode_ipv4_option(encode_ipv4_option(info)) == info


@given(infos)
def test_encodings_are_fixed_length(info):
    assert len(encode_l3(info)) == 7
    assert len(encode_ipv4_option(info)) == 8
