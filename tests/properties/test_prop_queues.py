"""Property-based tests: queue byte accounting and shared-buffer safety."""

from hypothesis import given, strategies as st

from repro.net.queues import DropTailQueue, RankedQueue, SharedBufferPool
from repro.core.flowinfo import FlowInfo
from tests.helpers import mk_data

payloads = st.lists(st.integers(1, 1460), min_size=1, max_size=60)


def _packet(payload, rank=None):
    packet = mk_data(payload=payload)
    if rank is not None:
        packet.flowinfo = FlowInfo(rfs=rank)
    return packet


@given(payloads)
def test_droptail_bytes_always_match_contents(sizes):
    queue = DropTailQueue(30_000)
    for payload in sizes:
        packet = _packet(payload)
        if queue.fits(packet):
            queue.push(packet)
        elif queue:
            queue.pop()
    assert queue.bytes == sum(p.wire_bytes for p in queue.packets())
    assert 0 <= queue.bytes <= queue.capacity_bytes


@given(st.lists(st.tuples(st.integers(1, 1460), st.integers(0, 10 ** 6),
                          st.sampled_from(["push", "pop", "pop_tail"])),
                max_size=80))
def test_ranked_bytes_match_under_mixed_ops(operations):
    queue = RankedQueue(30_000)
    for payload, rank, op in operations:
        if op == "push":
            packet = _packet(payload, rank)
            if queue.fits(packet):
                queue.push(packet)
        elif op == "pop" and queue:
            queue.pop()
        elif op == "pop_tail" and queue:
            queue.pop_tail()
        assert queue.bytes == sum(p.wire_bytes for p in queue.packets())
    ranks = [p.rank() for p in queue.packets()]
    assert ranks == sorted(ranks)


@given(st.integers(2_000, 50_000), st.floats(0.1, 8.0), payloads)
def test_shared_pool_never_overcommits(total, alpha, sizes):
    pool = SharedBufferPool(total, alpha=alpha)
    queues = [DropTailQueue(total, pool=pool) for _ in range(3)]
    for index, payload in enumerate(sizes):
        queue = queues[index % 3]
        packet = _packet(payload)
        if queue.fits(packet):
            queue.push(packet)
    assert 0 <= pool.used_bytes <= pool.total_bytes
    assert pool.used_bytes == sum(q.bytes for q in queues)


@given(st.floats(0.1, 4.0), payloads)
def test_shared_pool_pop_restores_budget(alpha, sizes):
    pool = SharedBufferPool(40_000, alpha=alpha)
    queue = DropTailQueue(40_000, pool=pool)
    pushed = []
    for payload in sizes:
        packet = _packet(payload)
        if queue.fits(packet):
            queue.push(packet)
            pushed.append(packet)
    for _ in pushed:
        queue.pop()
    assert pool.used_bytes == 0
    assert queue.bytes == 0
