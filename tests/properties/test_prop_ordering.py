"""Property-based tests: the ordering shim never loses, duplicates (beyond
the network's own duplication), or mis-orders bytes."""

from hypothesis import given, settings, strategies as st

from repro.core.flowinfo import FlowInfo
from repro.core.ordering import OrderingComponent
from repro.sim.engine import Engine
from tests.helpers import mk_data

PAYLOAD = 1000


def _flow_packets(n_packets):
    size = n_packets * PAYLOAD
    packets = []
    for index in range(n_packets):
        seq = index * PAYLOAD
        packet = mk_data(flow_id=1, seq=seq, payload=PAYLOAD)
        packet.flowinfo = FlowInfo(rfs=size - seq, first=(seq == 0))
        packets.append(packet)
    return packets


@given(st.permutations(range(8)))
@settings(max_examples=60)
def test_any_permutation_without_loss_is_fully_restored(order):
    """With no drops, whatever the arrival order, delivery is in-order."""
    engine = Engine()
    delivered = []
    component = OrderingComponent(engine, delivered.append,
                                  timeout_ns=1_000_000)
    packets = _flow_packets(8)
    for index in order:
        component.on_packet(packets[index])
    engine.run()
    assert delivered == packets
    assert component.active_flows() == 0


@given(st.permutations(range(8)),
       st.sets(st.integers(0, 7), max_size=3))
@settings(max_examples=60)
def test_losses_never_block_forever_and_nothing_is_lost(order, lost):
    """Dropped packets stall delivery at most one timeout; every packet
    that arrived is eventually handed to the transport exactly once."""
    engine = Engine()
    delivered = []
    component = OrderingComponent(engine, delivered.append,
                                  timeout_ns=100_000)
    packets = _flow_packets(8)
    arrived = [packets[i] for i in order if i not in lost]
    for packet in arrived:
        component.on_packet(packet)
    engine.run()
    assert sorted(p.seq for p in delivered) \
        == sorted(p.seq for p in arrived)
    assert len(delivered) == len(arrived)
    assert engine.pending() == 0  # no timer leaks


@given(st.permutations(range(6)))
@settings(max_examples=40)
def test_released_sequence_is_monotone_between_timeouts(order):
    """Within each in-order run, seq numbers increase (SRPT tags fall)."""
    engine = Engine()
    delivered = []
    component = OrderingComponent(engine, delivered.append,
                                  timeout_ns=10_000_000)
    packets = _flow_packets(6)
    for index in order:
        component.on_packet(packets[index])
    engine.run()
    # No drops: strictly increasing seq overall.
    seqs = [p.seq for p in delivered]
    assert seqs == sorted(seqs)
