"""Property-based tests: cuckoo filter, stats, topology routing, CDFs."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.cuckoo import CuckooFilter
from repro.metrics.stats import percentile
from repro.net.topology import FatTree, LeafSpine
from repro.workload.distributions import (
    cache_follower,
    data_mining,
    web_search,
)


@given(st.sets(st.integers(0, 10 ** 12), max_size=200))
def test_cuckoo_no_false_negatives(items):
    filt = CuckooFilter(capacity=2048)
    inserted = [item for item in items if filt.insert(item)]
    for item in inserted:
        assert filt.contains(item)


@given(st.sets(st.integers(0, 10 ** 12), min_size=1, max_size=100))
def test_cuckoo_delete_then_absent_usually(items):
    filt = CuckooFilter(capacity=1024)
    for item in items:
        filt.insert(item)
    for item in items:
        assert filt.delete(item)
    assert len(filt) == 0


@given(st.lists(st.floats(0, 1e6), min_size=1, max_size=200),
       st.floats(0, 100))
def test_percentile_within_range(values, pct):
    result = percentile(values, pct)
    assert min(values) <= result <= max(values)


@given(st.lists(st.floats(0, 1e6, allow_subnormal=False), min_size=2,
                max_size=100))
def test_percentile_monotone_in_pct(values):
    points = [percentile(values, p) for p in (0, 25, 50, 75, 99, 100)]
    assert all(b >= a for a, b in zip(points, points[1:]))


@given(st.integers(1, 4), st.integers(2, 6), st.integers(1, 4))
@settings(max_examples=20, deadline=None)
def test_leaf_spine_routes_always_reach_tor(spines, leaves, hosts):
    topo = LeafSpine(spines, leaves, hosts)
    table = topo.next_hop_table()
    tors = {topo.host_tor(h) for h in range(topo.n_hosts)}
    for tor in tors:
        for switch in topo.switch_names:
            if switch == tor:
                continue
            # Walk greedily along first candidates: must terminate at tor.
            current, steps = switch, 0
            while current != tor:
                current = table[current][tor][0]
                steps += 1
                assert steps <= len(topo.switch_names)


@given(st.sampled_from([4, 6, 8]))
@settings(max_examples=6, deadline=None)
def test_fat_tree_path_lengths(k):
    topo = FatTree(k)
    # Edge-to-edge distances: 0 (same), 2 (same pod), 4 (cross pod).
    distances = topo.bfs_distances(topo.host_tor(0))
    same_pod_edge = f"edge0_1"
    cross_pod_edge = f"edge1_0"
    assert distances[same_pod_edge] == 2
    assert distances[cross_pod_edge] == 4


@given(st.sampled_from(["ws", "dm", "cf"]),
       st.floats(0.001, 0.999), st.floats(0.001, 0.999))
def test_cdf_quantile_monotonicity(which, u1, u2):
    dist = {"ws": web_search, "dm": data_mining,
            "cf": cache_follower}[which]()
    lo, hi = sorted((u1, u2))
    assert dist.quantile(lo) <= dist.quantile(hi)


@given(st.integers(0, 2 ** 32))
def test_cdf_samples_within_support(seed):
    dist = web_search()
    value = dist.sample(random.Random(seed))
    assert 1_000 <= value <= 30_000_000
