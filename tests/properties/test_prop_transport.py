"""Property-based tests: reliable delivery under arbitrary loss patterns.

The sender/receiver pair must deliver every byte exactly once, in order,
for any drop pattern that eventually relents — the core reliability
invariant all three congestion controls inherit from the base machinery.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Engine
from repro.transport.base import TransportConfig
from repro.transport.dctcp import DctcpSender
from repro.transport.reno import RenoSender
from repro.transport.swift import SwiftSender
from tests.unit.test_transport_base import loopback

FAST_RTO = TransportConfig(min_rto_ns=500_000, init_rto_ns=500_000)


@given(st.sets(st.integers(0, 20), max_size=8),
       st.sampled_from([RenoSender, DctcpSender, SwiftSender]))
@settings(max_examples=40, deadline=None)
def test_any_single_loss_pattern_still_delivers(loss_indices, sender_cls):
    engine = Engine()
    seen = {"count": 0}

    def drop(packet):
        index = seen["count"]
        seen["count"] += 1
        return index in loss_indices and packet.tx_count == 1

    size = 21 * 1000
    config = FAST_RTO.with_overrides(mss=1000)
    sender, receiver, metrics, _, _ = loopback(
        engine, size=size, drop=drop, config=config,
        sender_cls=sender_cls)
    sender.start()
    engine.run(until=5_000_000_000)
    assert receiver.completed
    assert receiver.rcv_nxt == size
    assert sender.completed


@given(st.floats(0.0, 0.3), st.integers(0, 2 ** 16))
@settings(max_examples=25, deadline=None)
def test_random_loss_rate_eventually_completes(rate, seed):
    import random

    engine = Engine()
    rng = random.Random(seed)

    def drop(packet):
        return rng.random() < rate

    config = FAST_RTO.with_overrides(mss=1000)
    sender, receiver, _, _, _ = loopback(engine, size=10_000, drop=drop,
                                         config=config)
    sender.start()
    engine.run(until=60_000_000_000)
    assert receiver.completed


@given(st.permutations(range(8)))
@settings(max_examples=30, deadline=None)
def test_reordered_delivery_never_corrupts_stream(order):
    """Deliver the first window in an arbitrary order: the receiver must
    still account every byte exactly once."""
    engine = Engine()
    held = []

    def drop(packet):
        held.append(packet)
        return True  # capture everything; we re-deliver manually

    config = TransportConfig(mss=1000, init_cwnd=8.0)
    sender, receiver, _, _, _ = loopback(engine, size=8_000, drop=drop,
                                         config=config)
    sender.start()
    assert len(held) == 8
    for index in order:
        receiver.on_data(held[index])
    assert receiver.completed
    assert receiver.rcv_nxt == 8_000
