"""The paper's full-scale configuration is constructible and runs.

The 320-server leaf-spine and fat-tree k=8 are far too slow to sweep in
pure Python (DESIGN.md), but they must build correctly and move packets;
these tests run a few simulated milliseconds only.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.net.topology import paper_fat_tree
from repro.sim.units import MILLISECOND


def test_paper_leaf_spine_builds_and_runs():
    config = ExperimentConfig.paper_profile(
        system="vertigo", transport="dctcp", bg_load=0.05,
        incast_qps=2000.0, incast_scale=100, incast_flow_bytes=40_000)
    config.sim_time_ns = 2 * MILLISECOND
    result = run_experiment(config)
    assert result.config.topology.n_hosts == 320
    assert result.metrics.counters.delivered > 0
    assert result.queries_issued >= 1
    # Full-scale geometry: 320 host ports + 2x32 fabric port-ends.
    n_ports = sum(len(s.ports) for s in result.network.switches.values())
    assert n_ports == 320 + 2 * 32


def test_paper_fat_tree_builds_and_runs():
    config = ExperimentConfig.paper_profile(
        system="dibs", transport="dctcp", bg_load=0.05,
        incast_qps=1000.0, incast_scale=50, incast_flow_bytes=40_000)
    config.topology = paper_fat_tree()
    config.sim_time_ns = 2 * MILLISECOND
    result = run_experiment(config)
    assert len(result.network.switches) == 80
    assert result.metrics.counters.delivered > 0


def test_paper_scale_parameters_match_section_4_1():
    config = ExperimentConfig.paper_profile()
    from repro.experiments.runner import (
        derive_ecn_threshold,
        derive_ordering_timeout,
    )
    # DCTCP marking threshold of 65 packets and tau = 360 us.
    assert derive_ecn_threshold(config.network, 1460) == 65 * 1460
    assert derive_ordering_timeout(config.network) == 360_000
