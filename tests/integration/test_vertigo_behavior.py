"""Paper-mechanism integration tests: the *reasons* Vertigo wins.

Each test isolates one §3 mechanism at network scale and checks the
causal claim behind it, not just the headline number.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.forwarding.vertigo import VertigoSwitchParams
from repro.sim.units import MILLISECOND


def _burst_config(system="vertigo", **kwargs):
    defaults = dict(bg_load=0.15, incast_qps=250, incast_scale=12,
                    sim_time_ns=80 * MILLISECOND)
    defaults.update(kwargs)
    if "incast_load" in kwargs:
        defaults.pop("incast_qps", None)
    return ExperimentConfig.bench_profile(system=system,
                                          transport="dctcp", **defaults)


def test_srpt_favors_mice_over_elephants():
    """Mice (small background flows) should finish comparatively faster
    under Vertigo than under FIFO ECMP at the same load."""
    ecmp = run_experiment(_burst_config("ecmp", bg_load=0.5, incast_qps=0))
    vertigo = run_experiment(_burst_config("vertigo", bg_load=0.5,
                                           incast_qps=0))
    mice_ecmp = ecmp.metrics.mean_fct_s(max_size=24_000)
    mice_vertigo = vertigo.metrics.mean_fct_s(max_size=24_000)
    assert mice_vertigo <= mice_ecmp


def test_deflections_happen_at_burst_not_in_idle_network():
    idle = run_experiment(_burst_config(bg_load=0.05, incast_qps=5,
                                        incast_scale=2,
                                        incast_flow_bytes=2000))
    bursty = run_experiment(_burst_config())
    assert idle.metrics.counters.deflections \
        < bursty.metrics.counters.deflections


def test_ordering_shim_reduces_transport_visible_reordering():
    with_shim = run_experiment(_burst_config())
    without = run_experiment(_burst_config(ordering=False))
    assert with_shim.metrics.counters.reordered_arrivals \
        < without.metrics.counters.reordered_arrivals


def test_boosting_rescues_query_completions_under_load():
    """Paper Fig. 11b: without boosting, re-transmitted packets keep
    getting deflected/dropped (large RFS) and queries never finish."""
    boosted = run_experiment(_burst_config(bg_load=0.5, incast_load=0.35))
    unboosted = run_experiment(_burst_config(bg_load=0.5,
                                             incast_load=0.35,
                                             boosting=False))
    assert boosted.metrics.query_completion_pct() \
        > unboosted.metrics.query_completion_pct() + 10


def test_vertigo_drop_reasons_are_congestion_selective():
    result = run_experiment(_burst_config(bg_load=0.6, incast_load=0.35))
    drops = result.metrics.counters.drops
    # Vertigo never tail-drops blindly ("overflow" is the ECMP/DRILL
    # reason); its drops are the selective congestion variants.
    assert "overflow" not in drops
    allowed = {"congestion_drop", "congestion_displaced", "hop_limit",
               "deflection_limit", "selective_drop",
               "no_deflection_target", "host_nic_overflow"}
    assert set(drops) <= allowed


def test_survivors_of_forced_insert_are_small_rfs():
    """After a heavily congested run, ranked queues hold ascending-RFS
    packets and the min is always transmitted first (SRPT invariant)."""
    result = run_experiment(_burst_config(bg_load=0.6, incast_load=0.35))
    from repro.net.queues import RankedQueue
    for name, index, queue in result.network.all_switch_queues():
        assert isinstance(queue, RankedQueue)
        ranks = [p.rank() for p in queue.packets()]
        assert ranks == sorted(ranks), (name, index)


def test_marking_components_saw_every_data_packet():
    result = run_experiment(_burst_config())
    marked = sum(host.marking.packets_marked
                 for host in result.network.hosts)
    assert marked > 0
    retx_detected = sum(host.marking.retransmissions_detected
                        for host in result.network.hosts)
    assert retx_detected <= marked
