"""Traces are a pure function of the seeded config.

The observability acceptance bar: the same seeds produce byte-identical
JSONL (and identical trace digests) whether the runs executed serially
or through the parallel sweep executor, and enabling tracing never
perturbs the simulation itself.
"""

import pytest

from repro import Experiment, run_digest
from repro.experiments import run_many
from repro.trace import TraceConfig, jsonl_lines, write_jsonl


def traced_experiment(level="packet"):
    return (Experiment.bench()
            .system("vertigo")
            .transport("dctcp")
            .workload(bg_load=0.3, incast_load=0.1, incast_scale=4)
            .sim_ms(10)
            .trace(level=level, sample_us=1000))


def jsonl_text(results):
    lines = []
    for result in results:
        lines.extend(jsonl_lines(result.trace))
    return "\n".join(lines) + "\n"


@pytest.mark.parametrize("level", ["flow", "packet"])
def test_serial_vs_parallel_traces_byte_identical(level):
    configs = [traced_experiment(level).seed(seed).build()
               for seed in (1, 2)]
    serial = run_many(configs, jobs=1)
    parallel = run_many([traced_experiment(level).seed(seed).build()
                         for seed in (1, 2)], jobs=2)
    assert jsonl_text(serial) == jsonl_text(parallel)
    assert [run_digest(r) for r in serial] == \
        [run_digest(r) for r in parallel]
    assert [r.trace.digest() for r in serial] == \
        [r.trace.digest() for r in parallel]


def test_tracing_does_not_perturb_the_simulation():
    def base():
        return (Experiment.bench()
                .system("vertigo")
                .transport("dctcp")
                .workload(bg_load=0.3, incast_load=0.1, incast_scale=4)
                .sim_ms(10)
                .seed(5))

    untraced = base().run()
    # Pure event tracing adds zero engine events and changes nothing.
    traced = base().trace(level="packet").run()
    assert traced.row() == untraced.row()
    assert traced.engine.events_executed == untraced.engine.events_executed
    # The sampler schedules its own (read-only) ticks — results still
    # identical, events_executed grows by exactly the tick count.
    sampled = base().trace(level="packet", sample_us=1000).run()
    assert sampled.row() == untraced.row()
    ticks = len({record[1] for record in sampled.trace.samples
                 if record[0] == "sample.port"})
    assert ticks > 0
    assert sampled.engine.events_executed == \
        untraced.engine.events_executed + ticks


def test_untraced_digest_unchanged_by_trace_feature():
    """An untraced run's digest must not mention tracing at all."""
    result = (Experiment.bench().system("vertigo").transport("dctcp")
              .workload(bg_load=0.2).sim_ms(5).run())
    assert result.trace is None
    digest_1 = run_digest(result)
    digest_2 = run_digest(result)
    assert digest_1 == digest_2


def test_facade_round_trip_digest_identity():
    """Experiment-built and config-built runs are the same run."""
    from repro import ExperimentConfig, run_experiment

    facade = (Experiment.bench().system("dibs").transport("reno")
              .workload(bg_load=0.25, incast_load=0.05, incast_scale=4)
              .sim_ms(10).seed(4).run())
    direct = run_experiment(ExperimentConfig.bench_profile(
        system="dibs", transport="reno", bg_load=0.25, incast_load=0.05,
        incast_scale=4, sim_time_ns=10_000_000, seed=4))
    assert run_digest(facade) == run_digest(direct)


def test_multi_seed_jsonl_file_concatenates_in_run_order(tmp_path):
    results = (traced_experiment("flow")
               .run_seeds([3, 1, 2]))
    path = str(tmp_path / "multi.jsonl")
    write_jsonl([r.trace for r in results], path)
    import json
    seeds = [json.loads(line)["seed"] for line in open(path)
             if '"trace.meta"' in line]
    assert seeds == [3, 1, 2]


def test_trace_config_rides_config_through_workers():
    config = traced_experiment("flow").seed(7).build()
    assert config.trace == TraceConfig(level="flow",
                                       sample_period_ns=1_000_000)
    [result] = run_many([config], jobs=2)
    assert result.trace is not None
    assert result.trace.meta["seed"] == 7
