"""Lossless-fabric semantics end to end: PFC, lanes, DCQCN, deadlock.

Covers the PR's behavioural contracts:

- default (auto) headroom really is lossless — XOFF/XON hysteresis plus
  pause-loop headroom absorbs every in-flight byte, zero drops;
- ``headroom_bytes=0`` is honoured literally: post-XOFF arrivals drop
  with reason ``pfc_headroom`` and the drops are reported consistently
  in every surface (legacy counters, per-class counters, PFC summary);
- PFC-enabled runs stay digest-deterministic, serial vs parallel;
- the default config (one lane, PFC off) hashes identically to a config
  that never mentions PFC — the seed-digest regression gate;
- a cyclic buffer dependency (vertigo deflection's up-down-up paths
  under tiny XOFF) is detected and *reported* by telemetry while the
  run itself completes normally.
"""

from repro.experiments import run_digest, run_experiment, run_many
from repro.experiments.config import ExperimentConfig
from repro.net.pfc import PfcConfig
from repro.sim.units import MILLISECOND


def _config(seed=7, system="ecmp", transport="dcqcn", **pfc_kwargs):
    config = ExperimentConfig.bench_profile(
        system=system, transport=transport, bg_load=0.2,
        incast_load=0.1, incast_scale=8, sim_time_ns=10 * MILLISECOND,
        seed=seed)
    if pfc_kwargs:
        config.pfc = PfcConfig(**pfc_kwargs)
    return config


def test_default_headroom_is_lossless_with_real_pauses():
    result = run_experiment(_config(enabled=True, num_classes=2,
                                    priority_map=(0, 1)))
    counters = result.metrics.counters
    assert counters.total_drops == 0          # lossless, edge to edge
    pfc = result.pfc
    assert pfc["pause_events"] > 0            # ... not trivially idle
    assert pfc["pause_ns"] > 0
    assert pfc["headroom_drops"] == 0
    assert pfc["pauses"] == sorted(pfc["pauses"])


def test_zero_headroom_drops_and_reports_consistently():
    config = _config(enabled=True, xoff_bytes=3_000, xon_bytes=1_500,
                     headroom_bytes=0)
    result = run_experiment(config)
    counters = result.metrics.counters
    assert counters.drops["pfc_headroom"] > 0
    assert result.pfc["headroom_drops"] == counters.drops["pfc_headroom"]
    # Satellite contract: class-keyed drops sum back to legacy totals,
    # reason by reason.
    by_reason = {}
    for (pclass, reason), count in counters.class_drops.items():
        by_reason[reason] = by_reason.get(reason, 0) + count
    assert by_reason == dict(counters.drops)


def test_pfc_sweep_digests_match_serial_vs_parallel():
    def configs():
        return [_config(seed=seed, enabled=True, num_classes=2,
                        priority_map=(0, 1)) for seed in (1, 2)]

    serial = [run_digest(r) for r in run_many(configs(), jobs=1)]
    parallel = [run_digest(r) for r in run_many(configs(), jobs=2)]
    assert serial == parallel
    assert len(set(serial)) == 2


def test_single_lane_pfc_off_reproduces_seed_digest():
    # An explicit-but-unconfigured PfcConfig must not perturb the run
    # or its digest relative to a config that never mentions PFC: the
    # builder constructs the identical single-queue datapath and the
    # digest's "pfc" section stays absent in both.
    baseline = run_experiment(_config(system="vertigo",
                                      transport="dctcp"))
    explicit = run_experiment(_config(system="vertigo",
                                      transport="dctcp",
                                      num_classes=1, priority_map=(0,)))
    assert not explicit.config.pfc.configured
    assert run_digest(explicit) == run_digest(baseline)
    assert explicit.pfc is None and baseline.pfc is None


def test_pfc_run_digest_is_repeatable():
    config_a = _config(enabled=True, num_classes=2, priority_map=(0, 1))
    config_b = _config(enabled=True, num_classes=2, priority_map=(0, 1))
    assert run_digest(run_experiment(config_a)) \
        == run_digest(run_experiment(config_b))


def test_cyclic_buffer_dependency_is_detected_not_hung():
    # Vertigo deflection forwards up-down-up, so under a tiny XOFF the
    # pause graph closes into a leaf/spine cycle that cannot drain;
    # the run must still complete (sim-time horizon) and telemetry must
    # name the cycle.
    config = ExperimentConfig.bench_profile(
        system="vertigo", transport="dcqcn", bg_load=0.9,
        incast_load=0.3, incast_scale=16, sim_time_ns=10 * MILLISECOND,
        seed=3)
    config.pfc = PfcConfig(enabled=True, xoff_bytes=2_000, xon_bytes=500)
    config.telemetry_interval_ns = 100_000
    result = run_experiment(config)
    deadlocks = result.telemetry.section()["pfc_deadlocks"]
    assert deadlocks, "expected a detected PFC deadlock cycle"
    time_ns, cycle = deadlocks[0]
    assert time_ns <= config.sim_time_ns
    assert len(cycle) >= 2                    # a real multi-switch cycle
    assert any(name.startswith("leaf") for name in cycle)
    assert any(name.startswith("spine") for name in cycle)
