"""Telemetry monitor attached through the experiment runner."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.sim.units import MILLISECOND


def _cfg(system, **kwargs):
    defaults = dict(bg_load=0.2, incast_qps=200, incast_scale=10,
                    incast_flow_bytes=10_000,
                    sim_time_ns=30 * MILLISECOND)
    defaults.update(kwargs)
    config = ExperimentConfig.bench_profile(system=system,
                                            transport="dctcp", **defaults)
    config.telemetry_interval_ns = 2 * MILLISECOND
    return config


def test_monitor_disabled_by_default():
    config = ExperimentConfig.bench_profile(
        system="ecmp", bg_load=0.05, incast_qps=10, incast_scale=2,
        incast_flow_bytes=2000, sim_time_ns=5 * MILLISECOND)
    result = run_experiment(config)
    assert result.telemetry is None


def test_monitor_samples_whole_run():
    result = run_experiment(_cfg("vertigo"))
    monitor = result.telemetry
    times = sorted({s.time_ns for s in monitor.samples})
    assert len(times) == 15  # ticks at 2, 4, ..., 30 ms inclusive
    n_ports = sum(len(s.ports) for s in result.network.switches.values())
    assert len(monitor.samples) == len(times) * n_ports


def test_vertigo_bursts_classified_as_microbursts_not_drops():
    result = run_experiment(_cfg("vertigo"))
    monitor = result.telemetry
    assert monitor.microburst_count() >= 1
    # Vertigo at this load absorbs nearly everything; drop-classified
    # intervals are the minority.
    assert monitor.microburst_count() >= monitor.persistent_count()


def test_ecmp_bursts_classified_as_persistent():
    result = run_experiment(_cfg("ecmp", incast_qps=300))
    monitor = result.telemetry
    # No deflection exists in ECMP, so the only classified intervals are
    # drop-driven.
    assert monitor.microburst_count() == 0
    assert monitor.persistent_count() >= 1


def test_utilization_tracks_offered_load_direction():
    light = run_experiment(_cfg("ecmp", bg_load=0.05, incast_qps=20))
    heavy = run_experiment(_cfg("ecmp", bg_load=0.6, incast_qps=200))
    assert heavy.telemetry.mean_utilization() \
        > light.telemetry.mean_utilization()
