"""Digest compatibility and determinism of the workload spec subsystem.

Two contracts guard the API redesign:

1. **Legacy compatibility** — a config built from the historical flat
   kwargs (``bg_load=``, ``incast_qps=``, ...) must be digest-identical
   to the same mix written as explicit specs, and the uniform skew must
   reproduce the pre-spec seed digest byte for byte (the inline draws
   were moved into :class:`~repro.workload.matrix.NodeMatrix` without
   changing a single RNG call).
2. **Determinism of the new generators** — coflow, duty-cycle, and
   every skew must digest identically across repeat runs and across the
   serial/parallel executor boundary.
"""

import warnings

import pytest

from repro.experiments import run_digest, run_many, run_experiment
from repro.experiments.config import ExperimentConfig, WorkloadConfig
from repro.sim.units import MILLISECOND
from repro.workload.spec import (
    BackgroundSpec,
    CoflowSpec,
    DutyCycleSpec,
    IncastSpec,
    SkewSpec,
)

#: The bench-profile digest of the seed implementation (captured before
#: the workload subsystem landed).  If this changes, legacy runs are no
#: longer reproducible — that is a breaking change, not a test to update.
SEED_BENCH_DIGEST = \
    "9216ee97c1a4196611214222495d5753865f967fa962d3dec5b4df7eec1a7e9d"


def bench(workload=None, seed=1, sim_ms=5, **profile_kwargs):
    config = ExperimentConfig.bench_profile(
        system="vertigo", transport="dctcp",
        sim_time_ns=sim_ms * MILLISECOND, seed=seed, **profile_kwargs)
    if workload is not None:
        config.workload = workload
    return config


def test_uniform_skew_reproduces_seed_digest():
    config = bench(sim_ms=15, bg_load=0.2, incast_qps=60, incast_scale=6)
    assert run_digest(run_experiment(config)) == SEED_BENCH_DIGEST


def test_legacy_kwargs_and_explicit_specs_digest_identically():
    legacy = bench(bg_load=0.25, incast_qps=80, incast_scale=6)
    specs = bench(workload=WorkloadConfig((
        # The bench profile's defaults, written out as explicit specs.
        BackgroundSpec(load=0.25, size_cap=200_000),
        IncastSpec(qps=80, scale=6, flow_bytes=10_000),
    )))
    assert run_digest(run_experiment(legacy)) \
        == run_digest(run_experiment(specs))


def test_legacy_workload_kwargs_warn_but_build_same_config():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        flat = WorkloadConfig(bg_load=0.3, incast_qps=50, incast_scale=4)
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)
    specs = WorkloadConfig((BackgroundSpec(load=0.3),
                            IncastSpec(qps=50, scale=4)))
    assert flat == specs
    # The classmethod shim used by the profiles is warning-free.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        WorkloadConfig.from_legacy(bg_load=0.3)
    assert not caught


def test_explicit_uniform_skew_is_digest_invisible():
    plain = bench(workload=WorkloadConfig((BackgroundSpec(load=0.3),)))
    explicit = bench(workload=WorkloadConfig((
        BackgroundSpec(load=0.3, skew=SkewSpec(kind="uniform")),)))
    assert run_digest(run_experiment(plain)) \
        == run_digest(run_experiment(explicit))


NEW_WORKLOADS = {
    "coflow_shuffle": WorkloadConfig((
        CoflowSpec(width=4, stages=2, cps=2000, flow_bytes=5_000),)),
    "coflow_pa": WorkloadConfig((
        CoflowSpec(width=6, stages=2, cps=2000, flow_bytes=5_000,
                   pattern="partition_aggregate"),)),
    "duty_cycle": WorkloadConfig(
        (DutyCycleSpec(load=0.3, duty=0.2, period_ns=MILLISECOND // 2),),
        warmup_ns=MILLISECOND, cooldown_ns=MILLISECOND),
    "zipf_mix": WorkloadConfig((
        BackgroundSpec(load=0.2, skew=SkewSpec(kind="zipf", zipf_s=1.4)),
        IncastSpec(qps=60, scale=5,
                   skew=SkewSpec(kind="hotrack", hot_fraction=0.7)),)),
    "permutation": WorkloadConfig((
        BackgroundSpec(load=0.25, skew=SkewSpec(kind="permutation")),)),
    "duplicate_kinds": WorkloadConfig((
        BackgroundSpec(load=0.1),
        BackgroundSpec(load=0.1, distribution="web_search",
                       size_cap=100_000),
        CoflowSpec(width=3, cps=1000),)),
}


@pytest.mark.parametrize("name", sorted(NEW_WORKLOADS))
def test_new_generators_repeat_run_digest_stable(name):
    workload = NEW_WORKLOADS[name]
    first = run_experiment(bench(workload=workload))
    second = run_experiment(bench(workload=workload))
    assert run_digest(first) == run_digest(second)
    # The workload really generated traffic (the digest is not vacuous).
    assert first.metrics.flows


def test_new_generators_serial_vs_parallel_digests():
    configs = [bench(workload=NEW_WORKLOADS[name], seed=seed)
               for seed, name in enumerate(sorted(NEW_WORKLOADS), start=1)]
    serial = [run_digest(r) for r in run_many(configs, jobs=1)]
    parallel = [run_digest(r) for r in run_many(configs, jobs=2)]
    assert serial == parallel


def test_coflow_run_reports_cct_columns():
    result = run_experiment(bench(
        workload=NEW_WORKLOADS["coflow_shuffle"], sim_ms=10))
    assert result.coflows_launched > 0
    report = result.report()
    row = report.row()
    assert "mean_cct_s" in row and "p99_cct_s" in row
    assert row["mean_cct_s"] > 0
    assert report.run["coflows_recorded"] == len(result.metrics.coflows)
    # Coflow-free runs keep the historical row shape.
    plain = run_experiment(bench(bg_load=0.1))
    assert "mean_cct_s" not in plain.report().row()


def test_warmup_cooldown_trim_measurement_window():
    workload = WorkloadConfig((BackgroundSpec(load=0.3),),
                              warmup_ns=2 * MILLISECOND,
                              cooldown_ns=2 * MILLISECOND)
    result = run_experiment(bench(workload=workload, sim_ms=6))
    metrics = result.metrics
    assert metrics.window_start == 2 * MILLISECOND
    assert metrics.window_end == 4 * MILLISECOND
    starts = [f.start_ns for f in metrics.flows.values()]
    assert min(starts) < 2 * MILLISECOND          # traffic ran in warmup...
    assert len(metrics.fct_samples_s()) \
        < sum(1 for f in metrics.flows.values() if f.completed)


def test_window_swallowing_the_run_is_rejected():
    workload = WorkloadConfig((BackgroundSpec(load=0.3),),
                              warmup_ns=5 * MILLISECOND,
                              cooldown_ns=1 * MILLISECOND)
    with pytest.raises(ValueError):
        run_experiment(bench(workload=workload, sim_ms=5))
