"""Network-scale behavior of the extension baselines (LetFlow, PABO)."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.sim.units import MILLISECOND


def _run(system, **kwargs):
    defaults = dict(bg_load=0.2, incast_qps=120, incast_scale=8,
                    incast_flow_bytes=10_000,
                    sim_time_ns=60 * MILLISECOND)
    defaults.update(kwargs)
    return run_experiment(ExperimentConfig.bench_profile(
        system=system, transport="dctcp", **defaults))


def test_letflow_completes_flows_and_queries():
    result = _run("letflow")
    assert result.metrics.flow_completion_pct() > 50
    assert result.metrics.query_completion_pct() > 20


def test_letflow_switches_flowlets_under_load():
    result = _run("letflow", bg_load=0.5)
    switches = sum(s.policy.flowlet_switches
                   for s in result.network.switches.values())
    assert switches > 0


def test_letflow_never_deflects():
    result = _run("letflow", bg_load=0.5)
    assert result.metrics.counters.deflections == 0


def test_pabo_bounces_under_incast():
    result = _run("pabo", incast_qps=250, incast_scale=12)
    assert result.metrics.counters.deflections > 0
    # Bounced packets revisit switches: longer average paths than ECMP.
    ecmp = _run("ecmp", incast_qps=250, incast_scale=12)
    assert result.metrics.counters.mean_hops() \
        > ecmp.metrics.counters.mean_hops()


def test_pabo_reduces_drops_vs_ecmp_at_moderate_burst():
    pabo = _run("pabo")
    ecmp = _run("ecmp")
    assert pabo.metrics.counters.drop_rate() \
        <= ecmp.metrics.counters.drop_rate()


def test_vertigo_beats_extension_baselines_under_heavy_incast():
    heavy = dict(bg_load=0.4, incast_qps=None, incast_load=0.4,
                 sim_time_ns=80 * MILLISECOND)
    results = {system: _run(system, **heavy)
               for system in ("letflow", "pabo", "vertigo")}
    vertigo = results["vertigo"].metrics.query_completion_pct()
    for system in ("letflow", "pabo"):
        assert vertigo >= results[system].metrics.query_completion_pct()


@pytest.mark.parametrize("system", ["letflow", "pabo"])
def test_extension_baselines_deterministic(system):
    a = _run(system, sim_time_ns=25 * MILLISECOND)
    b = _run(system, sim_time_ns=25 * MILLISECOND)
    assert a.row() == b.row()
