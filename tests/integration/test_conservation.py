"""Conservation and accounting invariants over whole runs."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.sim.units import MILLISECOND


def _run(system, **kwargs):
    defaults = dict(bg_load=0.2, incast_qps=80, incast_scale=6,
                    sim_time_ns=40 * MILLISECOND)
    defaults.update(kwargs)
    return run_experiment(ExperimentConfig.bench_profile(
        system=system, transport="dctcp", **defaults))


@pytest.mark.parametrize("system", ["ecmp", "drill", "dibs", "vertigo"])
def test_completed_flows_delivered_every_byte(system):
    result = _run(system)
    for flow in result.metrics.flows.values():
        if flow.completed:
            assert flow.bytes_delivered == flow.size
        else:
            assert 0 <= flow.bytes_delivered <= flow.size


@pytest.mark.parametrize("system", ["ecmp", "vertigo"])
def test_fct_never_negative_or_absurd(system):
    result = _run(system)
    for flow in result.metrics.flows.values():
        if flow.completed:
            assert 0 < flow.fct_ns <= result.duration_ns


def test_query_bookkeeping_consistent():
    result = _run("vertigo")
    for query in result.metrics.queries.values():
        assert 0 <= query.flows_done <= query.n_flows
        if query.completed:
            assert query.flows_done == query.n_flows
            assert query.qct_ns > 0
    flows_by_query = {}
    for flow in result.metrics.flows.values():
        if flow.query_id is not None:
            flows_by_query.setdefault(flow.query_id, []).append(flow)
    for query_id, flows in flows_by_query.items():
        assert len(flows) == result.metrics.queries[query_id].n_flows


@pytest.mark.parametrize("system", ["dibs", "vertigo"])
def test_deflection_and_drop_counters_consistent(system):
    result = _run(system, incast_qps=150, incast_scale=10)
    counters = result.metrics.counters
    assert counters.deflections >= 0
    assert all(count >= 0 for count in counters.drops.values())
    # Deliveries can't exceed forwarding operations.
    assert counters.delivered <= counters.forwarded


def test_queue_byte_accounting_ends_consistent():
    result = _run("vertigo")
    for name, index, queue in result.network.all_switch_queues():
        assert 0 <= queue.bytes <= queue.capacity_bytes, (name, index)
        snapshot = sum(p.wire_bytes for p in queue.packets())
        assert snapshot == queue.bytes, (name, index)


def test_hosts_never_hold_negative_state():
    result = _run("vertigo")
    for host in result.network.hosts:
        for sender in host.senders.values():
            assert 0 <= sender.snd_una <= sender.snd_nxt <= sender.size
        for receiver in host.receivers.values():
            assert 0 <= receiver.rcv_nxt <= receiver.size


def test_determinism_same_seed_same_results():
    a = _run("vertigo", sim_time_ns=25 * MILLISECOND)
    b = _run("vertigo", sim_time_ns=25 * MILLISECOND)
    assert a.row() == b.row()
    assert a.engine.events_executed == b.engine.events_executed


def test_different_seeds_differ():
    a = run_experiment(ExperimentConfig.bench_profile(
        system="vertigo", transport="dctcp", bg_load=0.2, incast_qps=80,
        incast_scale=6, sim_time_ns=25 * MILLISECOND, seed=1))
    b = run_experiment(ExperimentConfig.bench_profile(
        system="vertigo", transport="dctcp", bg_load=0.2, incast_qps=80,
        incast_scale=6, sim_time_ns=25 * MILLISECOND, seed=2))
    assert a.engine.events_executed != b.engine.events_executed


def test_ecn_marks_only_under_dctcp():
    dctcp = _run("ecmp")
    marks = sum(q.stats.ecn_marked
                for _, _, q in dctcp.network.all_switch_queues())
    assert marks > 0  # bursty run with DCTCP must mark
    reno = run_experiment(ExperimentConfig.bench_profile(
        system="ecmp", transport="reno", bg_load=0.2, incast_qps=80,
        incast_scale=6, sim_time_ns=25 * MILLISECOND))
    reno_marks = sum(q.stats.ecn_marked
                     for _, _, q in reno.network.all_switch_queues())
    assert reno_marks == 0
