"""Serial-vs-parallel equivalence of the sweep executor.

Parallel execution must be invisible in the results: the determinism
digest of every point matches a serial run byte for byte, results come
back in submission order, and the runtime sanitizer follows the sweep
into the worker processes.
"""

from repro.analysis import sanitize
from repro.experiments import run_digest, run_many
from repro.experiments.config import ExperimentConfig
from repro.sim.units import MILLISECOND


def _configs(n=3, **overrides):
    configs = []
    for seed in range(1, n + 1):
        config = ExperimentConfig.bench_profile(
            system="vertigo", transport="dctcp", bg_load=0.2,
            incast_qps=60, incast_scale=6, sim_time_ns=5 * MILLISECOND,
            seed=seed)
        for key, value in overrides.items():
            setattr(config, key, value)
        configs.append(config)
    return configs


def test_parallel_digests_match_serial():
    serial = [run_digest(r) for r in run_many(_configs(), jobs=1)]
    parallel = [run_digest(r) for r in run_many(_configs(), jobs=2)]
    assert serial == parallel
    assert len(set(serial)) == len(serial)  # distinct seeds really ran


def test_parallel_results_keep_submission_order():
    results = run_many(_configs(3), jobs=2)
    assert [r.config.seed for r in results] == [1, 2, 3]


def test_portable_results_are_row_complete():
    serial = run_many(_configs(1, sim_time_ns=2 * MILLISECOND) * 2, jobs=1)
    transferred = run_many(_configs(1, sim_time_ns=2 * MILLISECOND) * 2,
                           jobs=2)
    for live, portable in zip(serial, transferred):
        assert portable.network is None  # really crossed the boundary
        assert portable.row() == live.row()
        assert portable.engine.events_executed \
            == live.engine.events_executed


def test_sanitizer_follows_sweep_into_workers():
    with sanitize.scoped(True):
        checked = [run_digest(r) for r in run_many(_configs(2), jobs=2)]
    plain = [run_digest(r) for r in run_many(_configs(2), jobs=1)]
    assert checked == plain
