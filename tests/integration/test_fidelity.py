"""Digest discipline and accuracy validation for hybrid fidelity.

The fidelity engine changes *how fast* a run executes, never *whether
it is deterministic*: a fixed config yields a fixed digest, serial and
parallel sweeps agree byte for byte, the ``fidelity`` config block is a
digest input, and fault-forced demotions replay identically.

The accuracy contract (documented in DESIGN.md, "Hybrid fidelity"):
on the reference instance, hybrid QCT/FCT p50 stays within 25% and p99
within 40% of the packet-mode run, compared over the flows/queries
completed by *both* runs (the analytic path completes more of the
tail, so comparing each run's own completed population would conflate
censoring with model error).
"""

import dataclasses

from repro.experiments.config import ExperimentConfig
from repro.experiments import run_digest, run_many
from repro.experiments.runner import run_experiment
from repro.faults.spec import FaultSpec
from repro.metrics.stats import percentile
from repro.net.fidelity import FidelityConfig
from repro.sim.units import MILLISECOND

#: Validation tolerances (fractional) for the matched-population
#: comparison; see DESIGN.md "Hybrid fidelity".
P50_TOLERANCE = 0.25
P99_TOLERANCE = 0.40


def _config(mode, sim_ms=5, seed=1, faults=(), **fidelity_kwargs):
    config = ExperimentConfig.bench_profile(
        system="vertigo", transport="dctcp", bg_load=0.2,
        incast_qps=60, incast_scale=6, sim_time_ns=sim_ms * MILLISECOND,
        seed=seed, faults=faults)
    return dataclasses.replace(
        config, fidelity=FidelityConfig(mode=mode, **fidelity_kwargs))


def _reference_config(mode):
    """The perf harness's reference instance (50% bg + 25% incast)."""
    config = ExperimentConfig.bench_profile(
        system="vertigo", transport="dctcp", bg_load=0.5,
        incast_load=0.25, incast_scale=12, sim_time_ns=40 * MILLISECOND,
        seed=1)
    return dataclasses.replace(config, fidelity=FidelityConfig(mode=mode))


# -- digest discipline --------------------------------------------------------

def test_hybrid_same_config_twice_is_byte_identical():
    first = run_experiment(_config("hybrid"))
    second = run_experiment(_config("hybrid"))
    assert first.fidelity["analytic_rounds"] > 0  # fast path really ran
    assert run_digest(first) == run_digest(second)


def test_fidelity_block_is_a_digest_input():
    digests = {
        mode: run_digest(run_experiment(_config(mode)))
        for mode in ("packet", "flow", "hybrid")
    }
    assert len(set(digests.values())) == 3
    # Threshold changes inside the block move the digest too (they are
    # policy inputs even when the transition counts end up equal).
    tweaked = run_digest(run_experiment(_config("hybrid",
                                                demote_shares=63)))
    assert tweaked != digests["hybrid"]


def test_packet_mode_carries_no_fidelity_section():
    result = run_experiment(_config("packet"))
    assert result.fidelity is None
    assert result.report().to_dict()["fidelity"] is None


def test_hybrid_sweep_serial_equals_parallel():
    def configs():
        return [_config("hybrid", seed=seed) for seed in (1, 2, 3)]

    serial = [run_digest(r) for r in run_many(configs(), jobs=1)]
    parallel = [run_digest(r) for r in run_many(configs(), jobs=2)]
    assert serial == parallel
    assert len(set(serial)) == 3  # distinct seeds really ran


def test_fault_mid_flow_forces_demotion_and_stays_deterministic():
    faults = (FaultSpec(kind="down", link=("spine0", "leaf0"),
                        at_ns=2 * MILLISECOND),)

    def run():
        return run_experiment(_config("hybrid", faults=faults))

    first, second = run(), run()
    fidelity = first.fidelity
    # The downed cable demoted (and pinned) links in both directions.
    assert fidelity["demotions"] >= 1
    assert fidelity["pinned_links"] >= 1
    assert fidelity["analytic_links_at_end"] < fidelity["links"]
    # ... and the whole run, conversions included, replays identically.
    assert run_digest(first) == run_digest(second)


def test_fault_pins_in_flow_mode_too():
    faults = (FaultSpec(kind="down", link=("spine1", "leaf1"),
                        at_ns=2 * MILLISECOND),)
    result = run_experiment(_config("flow", faults=faults))
    assert result.fidelity["pinned_links"] >= 1


# -- accuracy validation (fidelity sweep) -------------------------------------

def _matched_quantiles(packet_records, hybrid_records, attr):
    packet_ns = {key: getattr(record, attr)
                 for key, record in packet_records.items()
                 if getattr(record, attr) is not None}
    hybrid_ns = {key: getattr(record, attr)
                 for key, record in hybrid_records.items()
                 if getattr(record, attr) is not None}
    matched = sorted(set(packet_ns) & set(hybrid_ns))
    assert len(matched) >= 30, "matched population too small to compare"
    packet_sorted = sorted(packet_ns[key] for key in matched)
    hybrid_sorted = sorted(hybrid_ns[key] for key in matched)
    return {
        point: (percentile(packet_sorted, point),
                percentile(hybrid_sorted, point))
        for point in (50, 99)
    }


def test_fidelity_sweep_hybrid_matches_packet_within_tolerance():
    packet = run_experiment(_reference_config("packet"))
    hybrid = run_experiment(_reference_config("hybrid"))
    assert hybrid.fidelity["analytic_residency_permille"] >= 900

    tolerances = {50: P50_TOLERANCE, 99: P99_TOLERANCE}
    for attr, records in (
            ("fct_ns", (packet.metrics.flows, hybrid.metrics.flows)),
            ("qct_ns", (packet.metrics.queries, hybrid.metrics.queries))):
        quantiles = _matched_quantiles(records[0], records[1], attr)
        for point, (packet_q, hybrid_q) in quantiles.items():
            error = abs(hybrid_q - packet_q) / packet_q
            assert error <= tolerances[point], (
                f"{attr} p{point}: packet {packet_q} vs hybrid "
                f"{hybrid_q} ({100 * error:.1f}% > "
                f"{100 * tolerances[point]:.0f}% tolerance)")
