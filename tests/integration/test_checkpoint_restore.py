"""Checkpoint/restore end-to-end: kill, resume, and digest identity.

The acceptance bar: a run SIGKILLed mid-flight and resumed from its
checkpoint must produce a digest byte-identical to the same run left
uninterrupted — under packet and hybrid fidelity, serially and through
the pooled supervisor.  Checkpointing itself must be invisible: digests
with checkpointing on equal digests with it off.

Serial kill tests fork a child (fork start method: the child inherits
the built config without pickling) and SIGKILL it once the progress
sidecar shows the simulated clock past the halfway mark.  Pool tests
use a self-killing runner coordinated through ``REPRO_TEST_FLAG_DIR``
flag files, like the supervisor suite.
"""

import dataclasses
import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.checkpoint import CheckpointConfig, read_progress
from repro.experiments import run_experiment, run_many
from repro.experiments.config import ExperimentConfig
from repro.experiments.digest import config_digest, run_digest
from repro.experiments.parallel import _run_portable
from repro.runtime import SupervisorPolicy, run_supervised
from repro.sim.units import MILLISECOND

FAST_BACKOFF = {"backoff_base_s": 0.02, "backoff_cap_s": 0.1}


def _config(fidelity="packet", seed=7, sim_ms=40):
    config = ExperimentConfig.bench_profile(
        system="vertigo", transport="dctcp", bg_load=0.2,
        incast_qps=60, incast_scale=6, sim_time_ns=sim_ms * MILLISECOND,
        seed=seed)
    config.fidelity = dataclasses.replace(config.fidelity, mode=fidelity)
    return config


def _checkpointed(config, directory, every_ms=10):
    config.checkpoint = CheckpointConfig.every_ms(every_ms,
                                                  directory=str(directory))
    return config


def _managed_path(config):
    return config.checkpoint.resolve_path(config_digest(config))


def _reference_digest(fidelity):
    return run_digest(run_experiment(_config(fidelity)))


# -- checkpointing is invisible ------------------------------------------------


@pytest.mark.parametrize("fidelity", ["packet", "hybrid"])
def test_checkpoint_on_digest_equals_checkpoint_off(tmp_path, fidelity):
    plain = run_experiment(_config(fidelity))
    ticked = run_experiment(_checkpointed(_config(fidelity), tmp_path))
    assert run_digest(ticked) == run_digest(plain)
    assert ticked.checkpoint["checkpoints_written"] >= 3
    assert ticked.checkpoint["restored_from_ns"] is None
    # The managed checkpoint is consumed on successful completion.
    assert not os.path.exists(_managed_path(_checkpointed(_config(fidelity),
                                                          tmp_path)))


# -- SIGKILL then restore, serial ----------------------------------------------


def _kill_child_at_half(config, path):
    """Fork a child running ``config``; SIGKILL it past ~50% sim time."""
    half = config.sim_time_ns // 2
    child = multiprocessing.get_context("fork").Process(
        target=run_experiment, args=(config,))
    child.start()
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            progress = read_progress(path)
            if progress and progress["sim_now_ns"] >= half:
                break
            if not child.is_alive():
                raise AssertionError("child finished before the kill — "
                                     "sim too small or checkpoints too slow")
            time.sleep(0.005)
        else:
            raise AssertionError("child never reached the halfway mark")
    finally:
        if child.is_alive():
            os.kill(child.pid, signal.SIGKILL)
        child.join()
    assert child.exitcode == -signal.SIGKILL


@pytest.mark.parametrize("fidelity", ["packet", "hybrid"])
def test_sigkill_then_restore_matches_uninterrupted(tmp_path, fidelity):
    config = _checkpointed(_config(fidelity), tmp_path)
    path = _managed_path(config)
    _kill_child_at_half(config, path)
    assert os.path.exists(path)

    resumed = run_experiment(_checkpointed(_config(fidelity), tmp_path))
    assert resumed.checkpoint["restored_from_ns"] is not None
    assert resumed.checkpoint["restored_from_ns"] > 0
    assert run_digest(resumed) == _reference_digest(fidelity)
    # Consumed after the successful resume: a fresh run starts clean.
    assert not os.path.exists(path)


def test_explicit_restore_flag_equivalent(tmp_path):
    config = _checkpointed(_config("packet"), tmp_path)
    path = _managed_path(config)
    _kill_child_at_half(config, path)
    resumed = run_experiment(_checkpointed(_config("packet"), tmp_path),
                             restore=path)
    assert run_digest(resumed) == _reference_digest("packet")


def test_restore_rejects_foreign_config(tmp_path):
    config = _checkpointed(_config("packet"), tmp_path)
    path = _managed_path(config)
    _kill_child_at_half(config, path)
    from repro.checkpoint import CheckpointError
    other = _checkpointed(_config("packet", seed=8), tmp_path)
    with pytest.raises(CheckpointError, match="belongs to config"):
        run_experiment(other, restore=path)


# -- SIGKILL then restore, pooled supervisor -----------------------------------


def _sweep_configs(fidelity, directory, n=2, sim_ms=40):
    configs = [_checkpointed(_config(fidelity, seed=seed, sim_ms=sim_ms),
                             directory) for seed in (7, 8)[:n]]
    return configs


def _suicide_after_checkpoint(config):
    """SIGKILL own worker once a checkpoint exists — first attempt only."""
    flag = os.path.join(os.environ["REPRO_TEST_FLAG_DIR"],
                        f"seed{config.seed}")
    if not os.path.exists(flag):
        open(flag, "w").close()
        path = config.checkpoint.resolve_path(config_digest(config))

        def _watch():
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if os.path.exists(path):
                    os.kill(os.getpid(), signal.SIGKILL)
                time.sleep(0.002)

        threading.Thread(target=_watch, daemon=True).start()
    return _run_portable(config)


@pytest.fixture
def flag_dir(tmp_path_factory, monkeypatch):
    path = tmp_path_factory.mktemp("flags")
    monkeypatch.setenv("REPRO_TEST_FLAG_DIR", str(path))
    return path


@pytest.mark.parametrize("fidelity", ["packet", "hybrid"])
def test_pool_sigkill_resumes_to_reference_digest(flag_dir, tmp_path,
                                                 fidelity):
    configs = _sweep_configs(fidelity, tmp_path)
    reference = [run_digest(r) for r in run_many(
        [_config(fidelity, seed=seed) for seed in (7, 8)], jobs=1)]
    policy = SupervisorPolicy(max_retries=2, **FAST_BACKOFF)
    report = run_supervised(configs, jobs=2, policy=policy,
                            runner=_suicide_after_checkpoint)
    assert report.ok, report.manifest()["failures"]
    assert [run_digest(r) for r in report.results] == reference
    # At least one run died and came back.
    assert max(o.attempts for o in report.outcomes) >= 2


# -- graceful preemption via --run-timeout -------------------------------------


def test_run_timeout_preempts_and_resumes_across_attempts(tmp_path):
    config = _checkpointed(_config("packet", sim_ms=80), tmp_path,
                           every_ms=20)
    policy = SupervisorPolicy(run_timeout_s=0.45, preempt_grace_s=10.0,
                              max_retries=8, **FAST_BACKOFF)
    report = run_supervised([config], jobs=1, policy=policy)
    assert report.ok, report.manifest()["failures"]
    outcome = report.outcomes[0]
    assert outcome.attempts >= 2          # at least one preempt-resume cycle
    assert report.results[0].checkpoint["restored_from_ns"] is not None
    reference = run_digest(run_experiment(_config("packet", sim_ms=80)))
    assert run_digest(report.results[0]) == reference


# -- stall watchdog ------------------------------------------------------------


def _stuck_clock(config):
    time.sleep(600)
    return _run_portable(config)


def test_stalled_simulated_clock_is_flagged(tmp_path):
    config = _checkpointed(_config("packet"), tmp_path)
    policy = SupervisorPolicy(run_timeout_s=1.0, stall_timeout_s=0.2,
                              preempt_grace_s=0.2, max_retries=0,
                              **FAST_BACKOFF)
    report = run_supervised([config], jobs=1, policy=policy,
                            runner=_stuck_clock)
    assert not report.ok
    manifest = report.manifest()
    assert manifest["stalls"] == [0]
    assert report.outcomes[0].stalled
    assert report.outcomes[0].status == "timeout"
