"""End-to-end flows over every topology x system x transport combination."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.net.topology import FatTree, LeafSpine
from repro.sim.units import MILLISECOND

SYSTEMS = ["ecmp", "drill", "dibs", "vertigo"]
TRANSPORTS = ["reno", "dctcp", "swift"]


def _quick(system, transport, topology=None, **kwargs):
    # A gentle mix: the incast burst (4 x 10 KB) roughly matches one port
    # buffer, so loss is recoverable within the short window and the test
    # checks plumbing rather than burst tolerance (benches cover that).
    return ExperimentConfig.bench_profile(
        system=system, transport=transport, bg_load=0.1, incast_qps=300,
        incast_scale=4, incast_flow_bytes=10_000,
        sim_time_ns=60 * MILLISECOND, topology=topology, **kwargs)


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("transport", TRANSPORTS)
def test_leaf_spine_light_load_completes_flows(system, transport):
    result = run_experiment(_quick(system, transport))
    metrics = result.metrics
    assert result.bg_flows_generated > 0
    assert result.queries_issued > 0
    assert metrics.flow_completion_pct() > 50
    assert metrics.query_completion_pct() > 30
    assert metrics.counters.delivered > 0


@pytest.mark.parametrize("system", ["ecmp", "dibs", "vertigo"])
def test_fat_tree_light_load_completes_flows(system):
    result = run_experiment(_quick(system, "dctcp", topology=FatTree(4)))
    assert result.metrics.flow_completion_pct() > 50
    assert result.metrics.query_completion_pct() > 30


def test_vertigo_completes_more_queries_than_ecmp_under_bursts():
    burst = dict(bg_load=0.1, incast_qps=300, incast_scale=8,
                 sim_time_ns=60 * MILLISECOND)
    ecmp = run_experiment(ExperimentConfig.bench_profile(
        system="ecmp", transport="dctcp", **burst))
    vertigo = run_experiment(ExperimentConfig.bench_profile(
        system="vertigo", transport="dctcp", **burst))
    assert vertigo.metrics.query_completion_pct() \
        > ecmp.metrics.query_completion_pct()


def test_single_background_flow_fct_near_ideal():
    config = ExperimentConfig.bench_profile(
        system="ecmp", transport="dctcp", bg_load=0.0, incast_qps=None,
        sim_time_ns=50 * MILLISECOND)
    # Inject exactly one 100 KB flow by running the incast app with
    # scale 1 at a tiny rate.
    config.workload = type(config.workload)(
        bg_load=0.0, incast_qps=20.0, incast_scale=1,
        incast_flow_bytes=100_000)
    result = run_experiment(config)
    flows = [f for f in result.metrics.flows.values() if f.completed]
    assert flows
    # 100 KB at 200 Mbps is 4 ms of serialization; with headers and the
    # multi-hop store-and-forward path it must land well under 3x that.
    ideal_s = 100_000 * 8 / 200e6
    for flow in flows:
        assert flow.fct_ns / 1e9 < 3 * ideal_s


def test_vertigo_deflects_while_ecmp_drops_under_burst():
    burst = dict(bg_load=0.0, incast_qps=120, incast_scale=12,
                 sim_time_ns=40 * MILLISECOND)
    ecmp = run_experiment(ExperimentConfig.bench_profile(
        system="ecmp", transport="dctcp", **burst))
    vertigo = run_experiment(ExperimentConfig.bench_profile(
        system="vertigo", transport="dctcp", **burst))
    assert ecmp.metrics.counters.total_drops > 0
    assert vertigo.metrics.counters.deflections > 0
    assert vertigo.metrics.counters.drop_rate() \
        < ecmp.metrics.counters.drop_rate()


def test_dibs_deflects_under_burst():
    result = run_experiment(ExperimentConfig.bench_profile(
        system="dibs", transport="dctcp", bg_load=0.0, incast_qps=120,
        incast_scale=12, sim_time_ns=40 * MILLISECOND))
    assert result.metrics.counters.deflections > 0


def test_mean_hops_reasonable_leaf_spine():
    result = run_experiment(_quick("ecmp", "dctcp"))
    hops = result.metrics.counters.mean_hops()
    # Intra-leaf = 1 switch hop, inter-leaf = 3; mixture in (1, 3].
    assert 1.0 <= hops <= 3.0


def test_deflection_increases_path_length():
    plain = run_experiment(_quick("ecmp", "dctcp"))
    deflecting = run_experiment(_quick("dibs", "dctcp"))
    assert deflecting.metrics.counters.mean_hops() \
        >= plain.metrics.counters.mean_hops()


def test_run_result_row_has_all_columns():
    result = run_experiment(_quick("vertigo", "dctcp"))
    row = result.row()
    for key in ("mean_fct_s", "p99_fct_s", "mean_qct_s", "p99_qct_s",
                "flow_completion_pct", "query_completion_pct",
                "goodput_gbps", "drop_pct", "deflections", "mean_hops",
                "reordered", "retransmissions"):
        assert key in row
