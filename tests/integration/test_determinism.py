"""End-to-end determinism: identical seeds produce byte-identical runs.

The digest (:func:`repro.experiments.digest.run_digest`) covers
everything a figure could be built from — the summary row, per-flow and
per-query records, drop reasons, and the number of events executed.  The
runs execute in the same process, so any state leaking across runs
(module globals, shared counters, RNG reuse) breaks the test.
Cross-process agreement is covered by
``tests/integration/test_parallel_sweep.py``.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.digest import run_digest as _digest
from repro.experiments.runner import run_experiment
from repro.sim.units import MILLISECOND


def _config(seed: int, **overrides) -> ExperimentConfig:
    config = ExperimentConfig.bench_profile(
        system="vertigo", transport="dctcp", bg_load=0.2, incast_qps=60,
        incast_scale=6, sim_time_ns=15 * MILLISECOND, seed=seed)
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def test_same_seed_is_byte_identical():
    first = _digest(run_experiment(_config(seed=7)))
    second = _digest(run_experiment(_config(seed=7)))
    assert first == second


def test_different_seeds_differ():
    base = _digest(run_experiment(_config(seed=7)))
    other = _digest(run_experiment(_config(seed=8)))
    assert base != other


def test_sanitizer_does_not_perturb_results():
    plain = _digest(run_experiment(_config(seed=7)))
    checked = _digest(run_experiment(_config(seed=7, sanitize=True)))
    assert plain == checked
