"""End-to-end determinism: identical seeds produce byte-identical runs.

The digest covers everything a figure could be built from — the summary
row, per-flow and per-query records, drop reasons, and the number of
events executed — serialized to canonical JSON and hashed.  The runs
execute in the same process, so any state leaking across runs (module
globals, shared counters, RNG reuse) breaks the test.
"""

import hashlib
import json

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.sim.units import MILLISECOND


def _config(seed: int, **overrides) -> ExperimentConfig:
    config = ExperimentConfig.bench_profile(
        system="vertigo", transport="dctcp", bg_load=0.2, incast_qps=60,
        incast_scale=6, sim_time_ns=15 * MILLISECOND, seed=seed)
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def _digest(result) -> str:
    """SHA-256 over a canonical JSON view of everything reportable."""
    flows = [
        (f.flow_id, f.src, f.dst, f.size, f.start_ns, f.end_ns,
         f.bytes_delivered, f.is_incast, f.query_id, f.retransmissions)
        for f in sorted(result.metrics.flows.values(),
                        key=lambda f: f.flow_id)
    ]
    queries = [
        (q.query_id, q.client, q.start_ns, q.n_flows, q.flows_done, q.end_ns)
        for q in sorted(result.metrics.queries.values(),
                        key=lambda q: q.query_id)
    ]
    view = {
        "row": result.row(),
        "drops": sorted(result.metrics.counters.drops.items()),
        "events_executed": result.engine.events_executed,
        "bg_flows": result.bg_flows_generated,
        "queries_issued": result.queries_issued,
        "flows": flows,
        "queries": queries,
    }
    payload = json.dumps(view, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def test_same_seed_is_byte_identical():
    first = _digest(run_experiment(_config(seed=7)))
    second = _digest(run_experiment(_config(seed=7)))
    assert first == second


def test_different_seeds_differ():
    base = _digest(run_experiment(_config(seed=7)))
    other = _digest(run_experiment(_config(seed=8)))
    assert base != other


def test_sanitizer_does_not_perturb_results():
    plain = _digest(run_experiment(_config(seed=7)))
    checked = _digest(run_experiment(_config(seed=7, sanitize=True)))
    assert plain == checked
