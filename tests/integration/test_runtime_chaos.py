"""Chaos: SIGKILLed workers and interrupted sweeps lose nothing.

The hard guarantees of the supervised runtime, enforced end to end:

- SIGKILLing a worker mid-sweep loses zero points — the supervisor
  rebuilds the pool, retries the victims, and the final results are
  digest-identical to an undisturbed sweep.
- Aborting a journaled sweep and resuming it (serially or pooled)
  produces a final sweep digest byte-identical to the uninterrupted
  reference.
"""

import os
import signal
import threading

from repro.experiments import run_many
from repro.experiments.config import ExperimentConfig
from repro.experiments.digest import sweep_digest
from repro.runtime import SupervisorPolicy, SweepSupervisor, run_supervised
from repro.sim.units import MILLISECOND

POLICY = SupervisorPolicy(max_retries=3, backoff_base_s=0.05,
                          backoff_cap_s=0.2)


def _configs(n=8, sim_ms=20):
    return [ExperimentConfig.bench_profile(
        system="vertigo", transport="dctcp", bg_load=0.2,
        incast_qps=60, incast_scale=6, sim_time_ns=sim_ms * MILLISECOND,
        seed=seed) for seed in range(1, n + 1)]


def _reference_digest(configs):
    return sweep_digest(run_many(configs, jobs=1))


def test_sigkilled_worker_loses_no_points(tmp_path):
    """Kill a live worker mid-sweep; every point still completes."""
    configs = _configs()
    supervisor = SweepSupervisor(configs, jobs=2, policy=POLICY,
                                 journal=str(tmp_path / "chaos.jsonl"))
    kills = []

    def killer():
        deadline = threading.Event()
        for _ in range(100):  # wait for the pool to come up, then strike
            pids = supervisor.worker_pids()
            if pids:
                deadline.wait(0.3)  # let runs get in flight
                victims = supervisor.worker_pids()
                if victims:
                    try:
                        os.kill(victims[0], signal.SIGKILL)
                        kills.append(victims[0])
                    except ProcessLookupError:
                        pass
                return
            deadline.wait(0.05)

    thread = threading.Thread(target=killer, daemon=True)
    thread.start()
    report = supervisor.run()
    thread.join(timeout=10)
    assert kills, "chaos thread never found a worker to kill"
    assert report.ok, report.manifest()
    assert report.sweep_digest() == _reference_digest(configs)
    # At least the killed run(s) needed more than one attempt.
    assert max(outcome.attempts for outcome in report.outcomes) >= 1


def test_abort_and_resume_is_digest_identical(tmp_path):
    """Stop a journaled sweep early; resume completes it bit-exactly."""
    configs = _configs()
    reference = _reference_digest(configs)
    journal = str(tmp_path / "aborted.jsonl")

    completions = []
    supervisor_box = {}

    def stop_after_three(outcome):
        completions.append(outcome)
        if len(completions) >= 3:
            supervisor_box["sup"].request_stop()

    supervisor = SweepSupervisor(configs, jobs=2, policy=POLICY,
                                 journal=journal,
                                 on_outcome=stop_after_three)
    supervisor_box["sup"] = supervisor
    partial = supervisor.run()
    assert partial.interrupted
    manifest = partial.manifest()
    assert 0 < manifest["ok"] < len(configs)
    assert manifest["counts"].get("aborted", 0) > 0
    assert partial.sweep_digest() != reference  # degraded digests differ

    # Resume with a pool AND serially: both complete to the reference.
    pooled = run_supervised(configs, jobs=2, policy=POLICY, resume=journal)
    assert pooled.ok
    assert pooled.sweep_digest() == reference
    assert sum(1 for outcome in pooled.outcomes if outcome.resumed) \
        >= manifest["ok"]

    serial = run_supervised(configs, jobs=1, policy=POLICY, resume=journal)
    assert serial.ok
    assert serial.sweep_digest() == reference
    # Second resume reuses everything the first one completed.
    assert all(outcome.resumed for outcome in serial.outcomes)


def test_sigterm_flushes_journal_for_resume(tmp_path):
    """A SIGTERM mid-sweep leaves a resumable journal behind."""
    configs = _configs(4)
    journal = str(tmp_path / "sigterm.jsonl")

    fired = []

    def sigterm_after_one(outcome):
        if not fired:
            fired.append(outcome)
            os.kill(os.getpid(), signal.SIGTERM)

    partial = run_supervised(configs, jobs=1, policy=POLICY,
                             journal=journal,
                             on_outcome=sigterm_after_one)
    assert partial.interrupted
    assert partial.manifest()["ok"] >= 1

    resumed = run_supervised(configs, jobs=1, policy=POLICY,
                             resume=journal)
    assert resumed.ok
    assert resumed.sweep_digest() == _reference_digest(configs)
