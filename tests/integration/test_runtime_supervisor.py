"""Supervised sweep semantics: parity, retry, fail-fast, deadlines.

The supervisor must be invisible when nothing goes wrong — identical
digests and ordering to the plain executor, serial or pooled — and must
classify and bound every way a run can go wrong: transient exceptions
retry with backoff, deterministic failures fail fast, worker deaths
rebuild the pool, and stuck runs hit the watchdog deadline.

The failure-injecting runners are module-level (picklable into pool
workers); flaky ones coordinate through flag files under a directory
named by the ``REPRO_TEST_FLAG_DIR`` environment variable, which pool
workers inherit.
"""

import os
import time

import pytest

from repro.experiments import run_many
from repro.experiments.config import ExperimentConfig
from repro.experiments.digest import run_digest, sweep_digest
from repro.experiments.parallel import _run_portable
from repro.experiments.sweeps import format_table
from repro.runtime import SupervisorPolicy, run_supervised
from repro.sim.units import MILLISECOND

FAST_BACKOFF = {"backoff_base_s": 0.02, "backoff_cap_s": 0.1}


def _configs(n=3, sim_ms=5):
    return [ExperimentConfig.bench_profile(
        system="vertigo", transport="dctcp", bg_load=0.2,
        incast_qps=60, incast_scale=6, sim_time_ns=sim_ms * MILLISECOND,
        seed=seed) for seed in range(1, n + 1)]


def _flag_path(config):
    return os.path.join(os.environ["REPRO_TEST_FLAG_DIR"],
                        f"seed{config.seed}")


def _flaky_once(config):
    """Raise a transient error on the first attempt per seed, then run."""
    flag = _flag_path(config)
    if not os.path.exists(flag):
        open(flag, "w").close()
        raise RuntimeError(f"transient glitch (seed {config.seed})")
    return _run_portable(config)


def _crash_once(config):
    """Die like an OOM-killed worker on the first attempt per seed."""
    flag = _flag_path(config)
    if not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(1)
    return _run_portable(config)


def _always_valueerror(config):
    raise ValueError(f"deterministically broken (seed {config.seed})")


def _sleep_forever(config):
    time.sleep(600)
    return _run_portable(config)


@pytest.fixture
def flag_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TEST_FLAG_DIR", str(tmp_path))
    return tmp_path


# -- healthy-path parity -------------------------------------------------------


@pytest.mark.parametrize("jobs", [1, 2])
def test_supervised_matches_run_many(jobs):
    reference = [run_digest(r) for r in run_many(_configs(), jobs=1)]
    report = run_supervised(_configs(), jobs=jobs)
    assert report.ok
    assert not report.interrupted
    assert [run_digest(r) for r in report.results] == reference
    assert report.sweep_digest() == sweep_digest(run_many(_configs(),
                                                          jobs=1))
    assert [o.config.seed for o in report.outcomes] == [1, 2, 3]
    assert all(o.attempts == 1 for o in report.outcomes)


def test_healthy_rows_have_no_status_column():
    report = run_supervised(_configs(2), jobs=1)
    assert all("status" not in row for row in report.rows())


def test_supervised_results_are_portable():
    report = run_supervised(_configs(1), jobs=1)
    assert report.results[0].network is None


# -- transient failures retry --------------------------------------------------


@pytest.mark.parametrize("jobs", [1, 2])
def test_transient_exception_retries_to_ok(flag_dir, jobs):
    policy = SupervisorPolicy(max_retries=2, **FAST_BACKOFF)
    report = run_supervised(_configs(2), jobs=jobs, policy=policy,
                            runner=_flaky_once)
    assert report.ok
    assert [o.attempts for o in report.outcomes] == [2, 2]
    reference = [run_digest(r) for r in run_many(_configs(2), jobs=1)]
    assert [run_digest(r) for r in report.results] == reference


def test_worker_death_rebuilds_pool_and_retries(flag_dir):
    policy = SupervisorPolicy(max_retries=2, **FAST_BACKOFF)
    report = run_supervised(_configs(2), jobs=2, policy=policy,
                            runner=_crash_once)
    assert report.ok
    assert all(o.attempts >= 2 for o in report.outcomes)
    reference = [run_digest(r) for r in run_many(_configs(2), jobs=1)]
    assert [run_digest(r) for r in report.results] == reference


# -- deterministic failures fail fast ------------------------------------------


@pytest.mark.parametrize("jobs", [1, 2])
def test_identical_failure_twice_stops_retrying(jobs):
    policy = SupervisorPolicy(max_retries=5, **FAST_BACKOFF)
    report = run_supervised(_configs(1), jobs=jobs, policy=policy,
                            runner=_always_valueerror)
    (outcome,) = report.outcomes
    assert outcome.status == "failed"
    assert outcome.attempts == 2  # not 6: same signature twice = give up
    assert "deterministically broken" in outcome.error
    assert "not retrying" in outcome.error
    assert not report.ok


# -- deadlines -----------------------------------------------------------------


def test_stuck_run_classified_timeout():
    policy = SupervisorPolicy(max_retries=1, run_timeout_s=0.5,
                              **FAST_BACKOFF)
    report = run_supervised(_configs(1), jobs=1, policy=policy,
                            runner=_sleep_forever)
    (outcome,) = report.outcomes
    assert outcome.status == "timeout"
    assert outcome.attempts == 2
    assert "exceeded" in outcome.error
    assert report.profile.get("runtime.timeout", 0) > 0


# -- degraded report surface ---------------------------------------------------


def test_degraded_report_rows_manifest_and_table(flag_dir):
    policy = SupervisorPolicy(max_retries=0, **FAST_BACKOFF)
    configs = _configs(2)
    report = run_supervised(configs, jobs=1, policy=policy,
                            runner=_flaky_once)
    assert not report.ok
    manifest = report.manifest()
    assert manifest["points"] == 2
    assert manifest["counts"] == {"failed": 2}
    assert len(manifest["failures"]) == 2
    assert manifest["failures"][0]["seed"] == 1
    rows = report.rows()
    assert all(row["status"] == "failed" for row in rows)
    table = format_table(rows)
    assert "failed" in table and "-" in table  # placeholders render
    # A degraded sweep can never digest-collide with a complete one.
    complete = run_supervised(configs, jobs=1)
    assert report.sweep_digest() != complete.sweep_digest()
