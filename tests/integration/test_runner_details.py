"""Runner wiring details: derived parameters reach the components."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    derive_ecn_threshold,
    derive_ordering_timeout,
    run_experiment,
)
from repro.sim.units import MILLISECOND


def _tiny(system="vertigo", transport="dctcp", **kwargs):
    return ExperimentConfig.bench_profile(
        system=system, transport=transport, bg_load=0.05, incast_qps=20,
        incast_scale=3, incast_flow_bytes=3000,
        sim_time_ns=5 * MILLISECOND, **kwargs)


def test_dctcp_run_sets_ecn_threshold_on_queues():
    result = run_experiment(_tiny(system="ecmp"))
    expected = derive_ecn_threshold(result.config.network, 1460)
    for _, _, queue in result.network.all_switch_queues():
        assert queue.ecn_threshold_bytes == expected


def test_reno_run_leaves_ecn_off():
    result = run_experiment(_tiny(system="ecmp", transport="reno"))
    for _, _, queue in result.network.all_switch_queues():
        assert queue.ecn_threshold_bytes is None


def test_vertigo_hosts_get_derived_ordering_timeout():
    result = run_experiment(_tiny())
    expected = derive_ordering_timeout(result.config.network)
    for host in result.network.hosts:
        assert host.ordering is not None
        assert host.ordering.timeout_ns == expected


def test_explicit_ordering_timeout_wins():
    result = run_experiment(_tiny(ordering_timeout_ns=777_000))
    assert result.network.hosts[0].ordering.timeout_ns == 777_000


def test_non_vertigo_hosts_have_no_shims():
    result = run_experiment(_tiny(system="dibs"))
    for host in result.network.hosts:
        assert host.marking is None and host.ordering is None


def test_vertigo_no_ordering_ablation_removes_rx_shim_only():
    result = run_experiment(_tiny(ordering=False))
    host = result.network.hosts[0]
    assert host.marking is not None
    assert host.ordering is None


def test_dibs_senders_have_fast_retransmit_disabled():
    result = run_experiment(_tiny(system="dibs"))
    host = next(h for h in result.network.hosts if h.senders or True)
    assert not host.stack.transport.fast_retransmit


def test_swift_senders_get_positive_target():
    result = run_experiment(_tiny(system="ecmp", transport="swift"))
    assert result.network.hosts[0].stack.transport.swift_target_delay_ns > 0


def test_incast_load_to_qps_conversion_used():
    config = ExperimentConfig.bench_profile(
        system="ecmp", bg_load=0.0, incast_load=0.2,
        sim_time_ns=20 * MILLISECOND)
    result = run_experiment(config)
    # 0.2 * 32 hosts * 200 Mb/s / (8 * 12 * 10 KB) = ~1333 qps -> ~27
    # queries in 20 ms (Poisson).
    assert 5 <= result.queries_issued <= 80


def test_flows_registered_before_first_packet_arrives():
    result = run_experiment(_tiny())
    # Every metric flow has matching endpoints created.
    for flow in result.metrics.flows.values():
        receiver = result.network.hosts[flow.dst].receivers.get(
            flow.flow_id)
        assert receiver is not None
        assert receiver.size == flow.size
