"""Runtime-rewiring invariants under fault injection.

Property tests over every single-cable failure in both topology
families: any host pair that stays physically connected keeps a valid
multipath route, FIB entries only empty out when the fabric is truly
partitioned, and every forwarding policy completes a failure scenario
without raising — with zero sanitizer violations and a determinism
digest that is byte-identical across serial and parallel execution.
"""

import pytest

from repro.analysis import sanitize as _sanitize
from repro.experiments.config import ALL_SYSTEMS, ExperimentConfig
from repro.experiments.digest import run_digest
from repro.experiments.parallel import run_many
from repro.experiments.runner import run_experiment
from repro.faults import parse_fault
from repro.forwarding.ecmp import EcmpPolicy
from repro.host.host import HostStackConfig
from repro.metrics.collector import MetricsCollector
from repro.net.builder import NetworkParams, build_network, cable_key
from repro.net.topology import FatTree, LeafSpine
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import MILLISECOND, SECOND
from repro.transport.reno import RenoSender
from tests.helpers import mk_data


def _build(topology):
    engine = Engine()
    metrics = MetricsCollector()
    network = build_network(
        engine, topology, NetworkParams(), metrics,
        HostStackConfig(transport_cls=RenoSender),
        lambda s, r: EcmpPolicy(s, r), RngRegistry(1))
    return engine, network, metrics


def _assert_routes_valid_after_failure(topology, dead_a, dead_b):
    """After cutting one cable, FIBs match reachability over survivors."""
    _, network, _ = _build(topology)
    network.set_cable_state(dead_a, dead_b, up=False)
    dead = {cable_key(dead_a, dead_b)}
    tors = {host: topology.host_tor(host)
            for host in range(topology.n_hosts)}
    for host, tor in tors.items():
        reachable = topology.bfs_distances(tor, exclude=dead)
        for switch in network.switches.values():
            if switch.name == tor:
                continue
            candidates = switch.fib[host]
            if switch.name in reachable:
                # Still connected: a non-empty route set survives, and
                # every candidate steps one hop closer to the ToR.
                assert candidates, (
                    f"{switch.name} lost its route to host {host} "
                    f"although {dead_a}-{dead_b} leaves them connected")
                for port in candidates:
                    peer = switch.ports[port].peer
                    assert reachable[peer.name] \
                        == reachable[switch.name] - 1
            else:
                assert candidates == (), (
                    f"{switch.name} kept a route to host {host} across "
                    f"a partition")


@pytest.mark.parametrize("edge_index", range(6))
def test_leaf_spine_single_failure_preserves_routes(edge_index):
    topology = LeafSpine(n_spines=2, n_leaves=3, hosts_per_leaf=2)
    edge = topology.switch_adjacency[edge_index]
    _assert_routes_valid_after_failure(topology, *edge)


def test_fat_tree_every_single_failure_preserves_routes():
    topology = FatTree(4)
    for edge in topology.switch_adjacency:
        _assert_routes_valid_after_failure(topology, *edge)


def test_down_up_cycle_restores_original_tables():
    topology = FatTree(4)
    _, network, _ = _build(topology)
    original = {name: dict(switch.fib)
                for name, switch in network.switches.items()}
    for edge in topology.switch_adjacency[:4]:
        network.set_cable_state(*edge, up=False)
        network.set_cable_state(*edge, up=True)
    for name, switch in network.switches.items():
        assert switch.fib == original[name]


# -- every policy survives a mid-run spine failure -----------------------------

#: Scheduled mid-incast spine failure with recovery before the run ends.
FAILURE_SCENARIO = "link:leaf0-spine1:down@8ms,up@20ms"


def _failure_config(system: str) -> ExperimentConfig:
    return ExperimentConfig.bench_profile(
        system=system, transport="dctcp", bg_load=0.1, incast_qps=100,
        incast_scale=4, incast_flow_bytes=5_000,
        topology=LeafSpine(n_spines=2, n_leaves=2, hosts_per_leaf=4),
        sim_time_ns=30 * MILLISECOND,
        faults=parse_fault(FAILURE_SCENARIO))


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_policy_completes_spine_failure_scenario_sanitized(system):
    config = _failure_config(system)
    config.sanitize = True
    result = run_experiment(config)
    # Traffic moved despite the failure window, and nothing raised.
    assert result.metrics.flow_completion_pct() > 30
    assert result.metrics.counters.forwarded > 0


def test_failure_digest_identical_serial_vs_parallel():
    configs = [_failure_config("vertigo"), _failure_config("ecmp")]
    serial = [run_digest(r) for r in run_many(configs, jobs=1)]
    parallel = [run_digest(r) for r in run_many(configs, jobs=2)]
    assert serial == parallel


def test_failure_changes_results_but_stays_deterministic():
    healthy = _failure_config("vertigo")
    healthy.faults = ()
    failed_a = run_digest(run_experiment(_failure_config("vertigo")))
    failed_b = run_digest(run_experiment(_failure_config("vertigo")))
    assert failed_a == failed_b
    assert failed_a != run_digest(run_experiment(healthy))


# -- conservation across a down/up cycle with a packet in flight ---------------


def test_conservation_across_down_up_cycle_with_packet_in_flight():
    """The cut catches a packet mid-serialization: it must be accounted
    as a ``link_down`` wire drop, held packets must survive the outage,
    and the sanitizer must observe zero violations throughout."""
    with _sanitize.scoped(True):
        topology = LeafSpine(n_spines=1, n_leaves=2, hosts_per_leaf=1)
        engine, network, metrics = _build(topology)
        metrics.flow_started(1, 0, 1, 60_000, 0)
        network.hosts[1].open_receiver(1, peer=0, size=60_000)
        sender = network.hosts[0].open_sender(1, dst=1, size=60_000)
        sender.start()
        # Let the first packets reach the leaf0->spine0 wire...
        engine.run(until=6_000)
        port = network.tx_ports[("leaf0", "spine0")]
        assert port.busy, "expected a packet mid-serialization"
        network.set_cable_state("leaf0", "spine0", up=False)
        engine.run(until=2 * MILLISECOND)
        # The in-flight packet hit the dead wire and was accounted.
        assert metrics.counters.drops["link_down"] >= 1
        assert not port.busy
        network.set_cable_state("leaf0", "spine0", up=True)
        # Generous horizon: the sender's RTO backed off during the
        # outage, so recovery starts ~1 s in.
        engine.run(until=5 * SECOND)
        # The transport recovered every byte end to end.
        assert metrics.flows[1].bytes_delivered == 60_000


def test_held_queue_drains_after_link_up():
    """Packets queued behind a dead wire are parked, not dropped, and
    drain to their destination once the cable heals."""
    topology = LeafSpine(n_spines=1, n_leaves=2, hosts_per_leaf=1)
    engine, network, metrics = _build(topology)
    port = network.tx_ports[("leaf0", "spine0")]
    network.set_cable_state("leaf0", "spine0", up=False)
    for seq in range(3):
        port.enqueue(mk_data(seq=seq, dst=1))
    engine.run(until=MILLISECOND)
    assert len(port.queue) == 3   # held across the whole outage
    assert not port.busy
    network.set_cable_state("leaf0", "spine0", up=True)
    engine.run(until=2 * MILLISECOND)
    assert len(port.queue) == 0
    assert metrics.counters.delivered == 3
    assert metrics.counters.drops["link_down"] == 0


def test_telemetry_records_fault_timeline():
    config = _failure_config("vertigo")
    config.telemetry_interval_ns = MILLISECOND
    result = run_experiment(config)
    monitor = result.telemetry
    kinds = [(event.kind, event.link) for event in monitor.faults]
    assert kinds == [("link_down", ("leaf0", "spine1")),
                     ("link_up", ("leaf0", "spine1"))]
    assert [e.time_ns for e in monitor.faults] \
        == [8 * MILLISECOND, 20 * MILLISECOND]
    # Faults interleave with congestion events on the merged timeline.
    timeline = monitor.timeline()
    assert all(timeline[i].time_ns <= timeline[i + 1].time_ns
               for i in range(len(timeline) - 1))
    # The portable summary carries the fault records across processes.
    summary = monitor.summary()
    assert summary.faults == monitor.faults
    assert summary.fault_count() == 2
