"""Failure injection: random link loss (flaky cables / bit errors)."""

import random

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.net.link import Link
from repro.sim.engine import Engine
from repro.sim.units import MILLISECOND
from tests.helpers import SinkDevice, mk_data
from dataclasses import replace


def test_link_loss_rate_validation():
    engine = Engine()
    sink = SinkDevice()
    with pytest.raises(ValueError):
        Link(engine, 10 ** 9, 0, sink, 0, loss_rate=1.5,
             loss_rng=random.Random(0))
    with pytest.raises(ValueError):
        Link(engine, 10 ** 9, 0, sink, 0, loss_rate=0.5)  # no rng


def test_lossy_link_drops_expected_fraction():
    engine = Engine()
    sink = SinkDevice()
    lost = []
    link = Link(engine, 10 ** 9, 0, sink, 0, loss_rate=0.3,
                loss_rng=random.Random(7), on_loss=lost.append)
    for _ in range(2000):
        link.deliver(mk_data())
    engine.run()
    assert link.losses == len(lost)
    assert 0.25 < link.losses / 2000 < 0.35
    assert len(sink.received) == 2000 - link.losses


def test_perfect_link_never_drops():
    engine = Engine()
    sink = SinkDevice()
    link = Link(engine, 10 ** 9, 0, sink, 0)
    for _ in range(100):
        link.deliver(mk_data())
    engine.run()
    assert len(sink.received) == 100 and link.losses == 0


@pytest.mark.parametrize("system", ["ecmp", "vertigo"])
def test_transports_survive_one_percent_link_loss(system):
    config = ExperimentConfig.bench_profile(
        system=system, transport="dctcp", bg_load=0.1, incast_qps=60,
        incast_scale=4, incast_flow_bytes=5_000,
        sim_time_ns=80 * MILLISECOND)
    config.network = replace(config.network, link_loss_rate=0.01)
    result = run_experiment(config)
    counters = result.metrics.counters
    assert counters.drops["link_loss"] > 0
    # Reliability recovers: a solid majority of flows still complete.
    assert result.metrics.flow_completion_pct() > 60
    assert counters.retransmissions > 0


def test_loss_counted_deterministically():
    def run():
        config = ExperimentConfig.bench_profile(
            system="ecmp", transport="dctcp", bg_load=0.1, incast_qps=40,
            incast_scale=3, incast_flow_bytes=4_000,
            sim_time_ns=30 * MILLISECOND)
        config.network = replace(config.network, link_loss_rate=0.02)
        return run_experiment(config).metrics.counters.drops["link_loss"]

    assert run() == run() > 0
