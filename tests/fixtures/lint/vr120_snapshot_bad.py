"""VR120 bad (checkpoint coverage): a Snapshot class assigns a mutable
attribute its SNAPSHOT_ATTRS never declares — after a checkpoint
restore the attribute is silently gone.
"""


class Snapshot:
    SNAPSHOT_ATTRS = ()


class AckCounter(Snapshot):
    SNAPSHOT_ATTRS = Snapshot.SNAPSHOT_ATTRS + ("engine", "acks")

    def __init__(self, engine):
        self.engine = engine
        self.acks = 0
        self.window_marked = 0  # not in SNAPSHOT_ATTRS: lost on restore

    def on_ack(self, marked):
        self.acks += 1
        if marked:
            self.window_marked += 1
