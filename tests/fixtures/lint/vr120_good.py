"""VR120 good: per-run state lives on the instance, built per run."""


class ForwardingPolicy:
    pass


class StickyPolicy(ForwardingPolicy):
    def __init__(self):
        self.seen_flows = {}
        self.generation = 0

    def forward(self, packet, ports):
        self.seen_flows[packet.flow_id] = True
        self.generation += 1
        return ports[0]
