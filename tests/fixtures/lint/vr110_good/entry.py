"""VR110 good: the policy draws from a declared named stream."""

from helper import pick_port


class ForwardingPolicy:
    pass


class SprayPolicy(ForwardingPolicy):
    def __init__(self, rng):
        self.rng = rng

    def forward(self, packet, ports):
        return pick_port(self.rng, ports)
