"""VR110 good, helper half: entropy comes from the injected stream,
and the one literal stream name is declared in RNG_STREAMS.
"""

RNG_STREAMS = ("spray",)


def pick_port(rng, ports):
    return ports[rng.randrange(len(ports))]


def build(registry):
    return registry.stream("spray")
