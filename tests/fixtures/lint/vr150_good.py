"""VR150 good: the same computation kept integral end to end — scale
to bit-nanoseconds first, then floor-divide by the fair share, so
every intermediate on the analytic path is an exact integer.
"""


def _share_rate_bps(rate_bps, shares):
    return rate_bps // shares


def analytic_round_time(size_bytes, rate_bps, shares, base_rtt_ns):
    share_bps = _share_rate_bps(rate_bps, shares)
    serial_ns = (size_bytes * 8 * 1_000_000_000) // share_bps
    return base_rtt_ns + serial_ns
