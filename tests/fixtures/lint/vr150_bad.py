"""VR150 bad: float arithmetic inside an analytic completion-time
computation.  Neither assignment targets a ``*_ns`` name, so VR100
stays silent — but both intermediates feed the round-completion
timestamp, where float rounding breaks digest determinism.
"""


def _share_rate(rate_bps, shares):
    return rate_bps / shares


def analytic_round_time(size_bytes, rate_bps, shares, base_rtt_ns):
    share = _share_rate(rate_bps, shares)
    serial = size_bytes * 8 * 1e9 / share
    return base_rtt_ns + int(serial)
