"""VR120 good (checkpoint coverage): every assigned attribute is
declared in SNAPSHOT_ATTRS, own or inherited."""


class Snapshot:
    SNAPSHOT_ATTRS = ()


class BaseCounter(Snapshot):
    SNAPSHOT_ATTRS = ("engine",)

    def __init__(self, engine):
        self.engine = engine


class AckCounter(BaseCounter):
    SNAPSHOT_ATTRS = BaseCounter.SNAPSHOT_ATTRS + ("acks",
                                                   "window_marked")

    def __init__(self, engine):
        super().__init__(engine)
        self.acks = 0
        self.window_marked = 0

    def on_ack(self, marked):
        self.acks += 1
        if marked:
            self.window_marked += 1
