"""VR110 bad, entry half: a forwarding-policy method reaches a global
``random`` draw — but only through the helper module, so the finding
requires the cross-file call graph.
"""

from helper import pick_port


class ForwardingPolicy:
    pass


class SprayPolicy(ForwardingPolicy):
    def forward(self, packet, ports):
        return pick_port(ports)
