"""VR110 bad, helper half: the actual global-entropy sink."""

import random


def pick_port(ports):
    return random.choice(ports)
