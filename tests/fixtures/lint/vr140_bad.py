"""VR140 bad: the trace hook is used without the identity guard, so
every traced-off run pays the call anyway.
"""

from repro.trace import hooks as _trace_hooks

_TRACE = _trace_hooks.register(__name__)


def on_enqueue(queue, packet):
    _TRACE.emit("enqueue", queue=queue.name, size=packet.size_bytes)
