"""VR130 bad: unpicklable callables handed to the worker pool — a
lambda and a bound method of a class holding a lock.
"""

import threading


class Sweep:
    def __init__(self):
        self._lock = threading.Lock()

    def run_one(self, config):
        return config

    def launch(self, pool, configs):
        futures = [pool.submit(self.run_one, config) for config in configs]
        pool.submit(lambda: 42)
        return futures
