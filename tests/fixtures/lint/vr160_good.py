"""VR160 good: the same PFC arithmetic kept integral end to end —
scale to bit-nanoseconds first, then floor-divide by the link rate,
and size thresholds with integer division only.
"""


def pause_duration_ns(quanta, rate_bps):
    # 802.1Qbb: one quantum is 512 bit-times on the paused link.
    return (quanta * 512 * 1_000_000_000) // rate_bps


class ThresholdPlanner:
    def xoff_for(self, buffer_bytes, classes):
        xoff_bytes = buffer_bytes // (2 * classes)
        return xoff_bytes
