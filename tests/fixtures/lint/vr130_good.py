"""VR130 good: a module-level function is submitted — spawn workers
re-import it by qualified name without pickling any live state.
"""

import threading


def run_one(config):
    return config


class Sweep:
    def __init__(self):
        self._lock = threading.Lock()

    def launch(self, pool, configs):
        return [pool.submit(run_one, config) for config in configs]
