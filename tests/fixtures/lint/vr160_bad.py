"""VR160 bad: float arithmetic inside PFC pause/threshold code.  The
assignments never touch a ``*_ns`` name directly, so VR100 stays
silent — but the pause duration lands on the integer-ns calendar and
the XOFF threshold gates integer byte counters, where float rounding
makes pause timing platform-dependent.
"""


def pause_duration(quanta, rate_bps):
    # 802.1Qbb: one quantum is 512 bit-times on the paused link.
    return quanta * 512 * 1e9 / rate_bps


class ThresholdPlanner:
    def xoff_for(self, buffer_bytes, classes):
        fraction = buffer_bytes / (2 * classes)
        return fraction
