"""VR100 good: the conversion happens at the boundary, inside the
helper, so only integer nanoseconds ever reach the ``*_ns`` slot.
"""


def propagation_delay_ns(meters):
    return int(meters / 2e8 * 1e9)


def wire_up(link):
    link.delay_ns = propagation_delay_ns(100)
