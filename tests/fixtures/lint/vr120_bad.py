"""VR120 bad: handler-reachable code writes module- and class-lifetime
state that no digest input covers — it leaks across runs in-process.
"""

SEEN_FLOWS = {}


class ForwardingPolicy:
    pass


class StickyPolicy(ForwardingPolicy):
    generation = 0

    def forward(self, packet, ports):
        SEEN_FLOWS[packet.flow_id] = True
        StickyPolicy.generation = StickyPolicy.generation + 1
        return ports[0]
