"""VR100 bad: a seconds-float return value crosses a call boundary
into an integer-nanosecond slot.  VR003 cannot see this (the call is
opaque to the per-function pass); only the interprocedural summary
knows ``propagation_delay_s`` returns seconds.
"""


def propagation_delay_s(meters):
    return meters / 2e8


def wire_up(link):
    link.delay_ns = propagation_delay_s(100)
