"""VR140 good: every hook use sits behind the zero-cost guard."""

from repro.trace import hooks as _trace_hooks

_TRACE = _trace_hooks.register(__name__)


def on_enqueue(queue, packet):
    if _TRACE is not None:
        _TRACE.emit("enqueue", queue=queue.name, size=packet.size_bytes)


def on_dequeue(queue, packet):
    _TRACE is not None and _TRACE.emit("dequeue", queue=queue.name)
