"""Shared test utilities: stub devices and standalone-switch harnesses."""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.metrics.collector import MetricsCollector
from repro.net.link import Link
from repro.net.packet import Packet, PacketKind, data_packet
from repro.net.queues import DropTailQueue, RankedQueue
from repro.net.switch import Switch
from repro.sim.engine import Engine
from repro.sim.units import usecs


class SinkDevice:
    """Endpoint that records every packet delivered to it."""

    def __init__(self, name: str = "sink") -> None:
        self.name = name
        self.received: List[Packet] = []

    def receive(self, packet: Packet, in_port: int) -> None:
        self.received.append(packet)


def make_switch(engine: Engine, *, n_fabric_ports: int = 4,
                n_host_ports: int = 1, ranked: bool = False,
                capacity_bytes: int = 30_000,
                rate_bps: int = 1_000_000_000,
                metrics: Optional[MetricsCollector] = None):
    """A standalone switch whose every port feeds a :class:`SinkDevice`.

    Host-facing ports come first (port ``i`` reaches host ``i``), then the
    fabric (switch-facing) ports.  The FIB maps host ``i`` to its port.
    Returns ``(switch, sinks_by_port, metrics)``.
    """
    metrics = metrics or MetricsCollector()
    switch = Switch(engine, "sw0", metrics.counters)
    sinks: Dict[int, SinkDevice] = {}
    queue_cls = RankedQueue if ranked else DropTailQueue
    for host in range(n_host_ports):
        port = switch.add_port(queue_cls(capacity_bytes), faces_switch=False)
        sink = SinkDevice(f"host{host}")
        sinks[port] = sink
        switch.ports[port].attach(Link(engine, rate_bps, usecs(1), sink, 0))
        switch.fib[host] = (port,)
    for fabric in range(n_fabric_ports):
        port = switch.add_port(queue_cls(capacity_bytes), faces_switch=True)
        sink = SinkDevice(f"peer{fabric}")
        sinks[port] = sink
        switch.ports[port].attach(Link(engine, rate_bps, usecs(1), sink, 0))
    return switch, sinks, metrics


def mk_data(flow_id: int = 1, seq: int = 0, payload: int = 1000,
            src: int = 10, dst: int = 0, **kwargs) -> Packet:
    return data_packet(src, dst, flow_id, seq, payload, **kwargs)


def fill_queue(switch: Switch, port: int, *, payload: int = 1460,
               flow_id: int = 99, rank: Optional[int] = None) -> int:
    """Stuff a port queue to capacity with filler packets; returns count."""
    from repro.core.flowinfo import FlowInfo

    count = 0
    seq = 0
    while True:
        packet = mk_data(flow_id=flow_id, seq=seq, payload=payload)
        if rank is not None:
            packet.flowinfo = FlowInfo(rfs=rank)
        if not switch.ports[port].fits(packet):
            return count
        switch.ports[port].queue.push(packet, switch.engine.now)
        seq += payload
        count += 1


def drain_engine(engine: Engine, limit_ns: int = 10_000_000_000) -> None:
    engine.run(until=limit_ns)


def seeded_rng(seed: int = 42) -> random.Random:
    return random.Random(seed)
