"""Shared forwarding-policy helpers (power-of-n choices, sampling)."""

from collections import Counter

import pytest

from repro.forwarding.ecmp import EcmpPolicy
from repro.sim.engine import Engine
from tests.helpers import fill_queue, make_switch, seeded_rng


def _policy(n_fabric_ports=4):
    engine = Engine()
    switch, _, _ = make_switch(engine, n_host_ports=0,
                               n_fabric_ports=n_fabric_ports)
    policy = EcmpPolicy(switch, seeded_rng())
    return policy, switch


def test_least_loaded_prefers_emptier_queue():
    policy, switch = _policy()
    fill_queue(switch, 0, payload=1000)
    assert policy.least_loaded([0, 1]) == 1


def test_least_loaded_ties_break_by_port_order():
    policy, _ = _policy()
    assert policy.least_loaded([3, 1, 2]) == 1


def test_sample_two_small_candidate_sets():
    policy, _ = _policy()
    assert policy.sample_two([5]) == [5]
    assert sorted(policy.sample_two([5, 7])) == [5, 7]


def test_sample_two_returns_distinct_pair():
    policy, _ = _policy()
    for _ in range(50):
        pair = policy.sample_two([0, 1, 2, 3])
        assert len(pair) == 2
        assert pair[0] != pair[1]
        assert set(pair) <= {0, 1, 2, 3}


def test_power_of_one_is_uniform_random():
    policy, _ = _policy()
    counts = Counter(policy.power_of_n_choice([0, 1, 2, 3], 1)
                     for _ in range(400))
    assert set(counts) == {0, 1, 2, 3}
    assert max(counts.values()) < 2.5 * min(counts.values())


def test_power_of_two_picks_lighter_of_sampled():
    policy, switch = _policy()
    # Load every port except 2: po2 must never pick a loaded port when
    # port 2 is in its sample, and over many trials must favour port 2.
    for port in (0, 1, 3):
        fill_queue(switch, port, payload=1000)
    counts = Counter(policy.power_of_n_choice([0, 1, 2, 3], 2)
                     for _ in range(200))
    assert counts[2] > 60  # sampled in ~half the trials, wins them all


def test_power_of_n_with_n_geq_candidates_is_global_min():
    policy, switch = _policy()
    for port in (0, 1, 2):
        fill_queue(switch, port, payload=1000)
    assert policy.power_of_n_choice([0, 1, 2, 3], 4) == 3
    assert policy.power_of_n_choice([0, 1, 2, 3], 99) == 3


def test_power_of_n_single_candidate():
    policy, _ = _policy()
    assert policy.power_of_n_choice([7], 2) == 7


def test_power_of_n_empty_candidates_rejected():
    policy, _ = _policy()
    with pytest.raises(ValueError):
        policy.power_of_n_choice([], 2)
