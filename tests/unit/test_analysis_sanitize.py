"""The runtime invariant sanitizer (repro.analysis.sanitize).

Every check is exercised both ways: a healthy structure passes, a
deliberately corrupted one raises :class:`SanitizerError`.  All tests
toggle the sanitizer explicitly through ``scoped()`` so the suite is
state-independent — it passes identically under ``REPRO_SANITIZE=1``.
"""

import pytest

from repro.analysis import sanitize
from repro.analysis.sanitize import SanitizerError
from repro.core.ordering import OrderingComponent
from repro.core.scheduler import RankQueue
from repro.net.queues import DropTailQueue, RankedQueue
from repro.sim.engine import Engine
from tests.helpers import make_switch, mk_data


@pytest.fixture
def sanitized():
    with sanitize.scoped(True):
        yield


# -- toggling ------------------------------------------------------------------


def test_scoped_flips_state_and_restores():
    with sanitize.scoped(False):
        assert not sanitize.enabled()
        with sanitize.scoped(True):
            assert sanitize.enabled()
        assert not sanitize.enabled()


def test_toggle_rewrites_registered_module_flags():
    import repro.core.scheduler as scheduler_mod
    import repro.net.queues as queues_mod
    import repro.net.switch as switch_mod
    import repro.sim.engine as engine_mod

    with sanitize.scoped(True):
        assert engine_mod._SANITIZE
        assert queues_mod._SANITIZE
        assert scheduler_mod._SANITIZE
        assert switch_mod._SANITIZE
    with sanitize.scoped(False):
        assert not engine_mod._SANITIZE
        assert not queues_mod._SANITIZE


def test_checks_run_increments_only_while_enabled():
    engine = Engine()
    with sanitize.scoped(True):
        before = sanitize.checks_run
        engine.schedule(1, lambda: None)
        assert sanitize.checks_run > before
    with sanitize.scoped(False):
        before = sanitize.checks_run
        engine.schedule(1, lambda: None)
        assert sanitize.checks_run == before


def test_check_formats_message():
    with pytest.raises(SanitizerError, match="q7 off by 3"):
        sanitize.check(False, "%s off by %d", "q7", 3)


# -- engine: event-time discipline ---------------------------------------------


def test_engine_rejects_float_delay(sanitized):
    engine = Engine()
    with pytest.raises(SanitizerError, match="int"):
        engine.schedule(1.5, lambda: None)


def test_engine_rejects_non_callable(sanitized):
    engine = Engine()
    with pytest.raises(SanitizerError, match="callable"):
        engine.schedule(1, 42)


def test_engine_clean_run_passes(sanitized):
    engine = Engine()
    fired = []
    engine.schedule(5, fired.append, 1)
    engine.schedule(3, fired.append, 2)
    engine.run()
    assert fired == [2, 1]


# -- queues: byte accounting ---------------------------------------------------


def test_droptail_accounting_clean(sanitized):
    queue = DropTailQueue(10_000)
    queue.push(mk_data(payload=1000))
    queue.pop()


def test_droptail_detects_tampered_bytes(sanitized):
    queue = DropTailQueue(10_000)
    queue.push(mk_data(payload=1000))
    queue.bytes += 40  # corrupt the tracked total
    with pytest.raises(SanitizerError, match="tracked"):
        queue.push(mk_data(payload=500))


def test_ranked_queue_detects_tampered_bytes(sanitized):
    queue = RankedQueue(10_000)
    queue.push(mk_data(payload=1000))
    queue.bytes -= 1
    with pytest.raises(SanitizerError, match="tracked"):
        queue.pop()


# -- rank queue: heap invariants -----------------------------------------------


def test_rankqueue_clean_operations(sanitized):
    rq = RankQueue()
    rq.push(5, "a")
    rq.push(1, "b")
    rq.push(9, "c")
    assert rq.pop_min() == (1, "b")
    assert rq.pop_max() == (9, "c")


def test_rankqueue_detects_tampered_len(sanitized):
    rq = RankQueue()
    rq.push(5, "a")
    rq._len += 1  # corrupt the live count
    with pytest.raises(SanitizerError):
        rq.push(7, "b")


# -- switch: conservation ------------------------------------------------------


class _LeakyPolicy:
    """Routing policy that silently discards every packet."""

    def route(self, packet, in_port):
        pass


class _DuplicatingPolicy:
    """Routing policy that enqueues the same packet on two ports."""

    def __init__(self, switch):
        self.switch = switch

    def route(self, packet, in_port):
        self.switch.enqueue(0, packet)
        self.switch.enqueue(1, packet)


def test_switch_detects_vanishing_packet(sanitized):
    engine = Engine()
    switch, _, _ = make_switch(engine, n_host_ports=1)
    switch.policy = _LeakyPolicy()
    with pytest.raises(SanitizerError, match="lost or duplicated"):
        switch.receive(mk_data(dst=0), in_port=1)


def test_switch_detects_duplicated_packet(sanitized):
    engine = Engine()
    switch, _, _ = make_switch(engine, n_host_ports=2)
    switch.policy = _DuplicatingPolicy(switch)
    with pytest.raises(SanitizerError, match="lost or duplicated"):
        switch.receive(mk_data(dst=0), in_port=2)


def test_switch_conservation_passes_for_real_policy(sanitized):
    from repro.forwarding.ecmp import EcmpPolicy
    from tests.helpers import seeded_rng

    engine = Engine()
    switch, sinks, _ = make_switch(engine, n_host_ports=1)
    switch.policy = EcmpPolicy(switch, seeded_rng())
    packet = mk_data(dst=0)
    switch.receive(packet, in_port=1)
    engine.run()
    assert sinks[0].received == [packet]


def test_switch_drop_satisfies_conservation(sanitized):
    engine = Engine()
    switch, _, metrics = make_switch(engine)
    from repro.forwarding.ecmp import EcmpPolicy
    from tests.helpers import seeded_rng

    switch.policy = EcmpPolicy(switch, seeded_rng())
    packet = mk_data(dst=0)
    packet.hops = switch.max_hops
    switch.receive(packet, in_port=1)  # hop-limit drop, still conserved
    assert metrics.counters.drops["hop_limit"] == 1


# -- ordering: release exactly once --------------------------------------------


def test_ordering_double_release_detected():
    engine = Engine()
    delivered = []
    with sanitize.scoped(True):
        # The shim binds its instrumentation at construction time.
        ordering = OrderingComponent(engine, delivered.append)
        packet = mk_data()
        ordering.deliver(packet)
        with pytest.raises(SanitizerError, match="twice"):
            ordering.deliver(packet)
    assert delivered == [packet]


def test_ordering_distinct_packets_pass():
    engine = Engine()
    delivered = []
    with sanitize.scoped(True):
        ordering = OrderingComponent(engine, delivered.append)
        first, second = mk_data(seq=0), mk_data(seq=1)
        ordering.deliver(first)
        ordering.deliver(second)
    assert delivered == [first, second]


def test_ordering_unsanitized_has_no_wrapper():
    engine = Engine()
    delivered = []
    with sanitize.scoped(False):
        ordering = OrderingComponent(engine, delivered.append)
    assert ordering.deliver == delivered.append
