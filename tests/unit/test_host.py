"""End-host stack composition."""

from repro.host.host import Host, HostStackConfig
from repro.metrics.collector import MetricsCollector
from repro.net.link import Link
from repro.net.packet import PacketKind, ack_packet
from repro.sim.engine import Engine
from repro.transport.dctcp import DctcpSender
from repro.transport.reno import RenoSender
from tests.helpers import SinkDevice, mk_data


def _host(engine, *, vertigo=False, host_id=1, **stack_kwargs):
    stack = HostStackConfig(transport_cls=RenoSender,
                            vertigo_marking=vertigo,
                            vertigo_ordering=vertigo, **stack_kwargs)
    metrics = MetricsCollector()
    host = Host(engine, host_id, stack, metrics)
    sink = SinkDevice("tor")
    host.attach(Link(engine, 10 ** 9, 1_000, sink, 0))
    return host, sink, metrics


def test_plain_host_has_no_vertigo_components():
    engine = Engine()
    host, _, _ = _host(engine, vertigo=False)
    assert host.marking is None and host.ordering is None


def test_vertigo_host_has_both_components():
    engine = Engine()
    host, _, _ = _host(engine, vertigo=True)
    assert host.marking is not None and host.ordering is not None


def test_send_packet_marks_and_transmits():
    engine = Engine()
    host, sink, _ = _host(engine, vertigo=True)
    host.open_sender(1, dst=2, size=10_000)
    packet = mk_data(flow_id=1, seq=0, payload=1000, src=1, dst=2)
    host.send_packet(packet)
    engine.run()
    assert sink.received == [packet]
    assert packet.flowinfo is not None
    assert packet.flowinfo.rfs == 10_000


def test_nic_overflow_counted():
    engine = Engine()
    host, _, metrics = _host(engine, nic_buffer_bytes=2000)
    for _ in range(5):
        host.send_packet(mk_data(payload=1460, src=1, dst=2))
    assert metrics.counters.drops["host_nic_overflow"] >= 3


def test_receive_data_counts_delivery_and_hops():
    engine = Engine()
    host, _, metrics = _host(engine)
    host.open_receiver(1, peer=2, size=10_000)
    packet = mk_data(flow_id=1, seq=0, payload=1000, src=2, dst=1)
    packet.hops = 3
    host.receive(packet, 0)
    assert metrics.counters.delivered == 1
    assert metrics.counters.hops_delivered == 3


def test_receive_ack_routed_to_sender():
    engine = Engine()
    host, _, _ = _host(engine)
    sender = host.open_sender(1, dst=2, size=10_000)
    sender.start()
    engine.run(until=1_000_000)  # drain the initial window to the wire
    before = sender.snd_una
    host.receive(ack_packet(2, 1, 1, ack_no=1460), 0)
    assert sender.snd_una == 1460 > before


def test_ack_for_unknown_flow_ignored():
    engine = Engine()
    host, _, _ = _host(engine)
    host.receive(ack_packet(2, 1, 99, ack_no=100), 0)  # no crash


def test_sender_done_cleans_marking_state():
    engine = Engine()
    host, _, _ = _host(engine, vertigo=True)
    host.open_sender(1, dst=2, size=10_000)
    assert 1 in host.senders
    host.sender_done(1)
    assert 1 not in host.senders


def test_open_receiver_idempotent():
    engine = Engine()
    host, _, _ = _host(engine)
    first = host.open_receiver(1, peer=2, size=1000)
    second = host.open_receiver(1, peer=2, size=1000)
    assert first is second


def test_completed_flow_bypasses_ordering():
    engine = Engine()
    host, sink, _ = _host(engine, vertigo=True)
    receiver = host.open_receiver(1, peer=2, size=1000)
    from repro.core.flowinfo import FlowInfo
    packet = mk_data(flow_id=1, seq=0, payload=1000, src=2, dst=1)
    packet.flowinfo = FlowInfo(rfs=1000, first=True)
    host.receive(packet, 0)
    assert receiver.completed
    # A straggling duplicate must not re-create ordering state.
    dup = mk_data(flow_id=1, seq=0, payload=1000, src=2, dst=1)
    dup.flowinfo = FlowInfo(rfs=1000, first=True)
    host.receive(dup, 0)
    assert host.ordering.active_flows() == 0


def test_dctcp_stack_is_ecn_capable_on_wire():
    engine = Engine()
    stack = HostStackConfig(transport_cls=DctcpSender)
    metrics = MetricsCollector()
    host = Host(engine, 1, stack, metrics)
    sink = SinkDevice("tor")
    host.attach(Link(engine, 10 ** 9, 1_000, sink, 0))
    sender = host.open_sender(1, dst=2, size=5000)
    sender.start()
    engine.run()
    data = [p for p in sink.received if p.kind is PacketKind.DATA]
    assert data and all(p.ecn_capable for p in data)
