"""Golden-findings suite for the interprocedural VR1xx rules.

Each rule has a known-bad fixture that must fire and a known-good
counterpart that must stay silent; the VR110 bad case spans two files,
pinning the cross-file (interprocedural) behaviour of the call graph.
"""

from pathlib import Path

import pytest

from repro.analysis.driver import run_analysis
from repro.analysis.lint import LintConfig

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "lint"

CASES = [
    ("VR100", ["vr100_bad.py"], ["vr100_good.py"]),
    ("VR110", ["vr110_bad/entry.py", "vr110_bad/helper.py"],
     ["vr110_good/entry.py", "vr110_good/helper.py"]),
    ("VR120", ["vr120_bad.py"], ["vr120_good.py"]),
    ("VR120", ["vr120_snapshot_bad.py"], ["vr120_snapshot_good.py"]),
    ("VR130", ["vr130_bad.py"], ["vr130_good.py"]),
    ("VR140", ["vr140_bad.py"], ["vr140_good.py"]),
    ("VR150", ["vr150_bad.py"], ["vr150_good.py"]),
    ("VR160", ["vr160_bad.py"], ["vr160_good.py"]),
]


def findings(code, names):
    files = [FIXTURES / name for name in names]
    for path in files:
        assert path.is_file(), f"missing fixture {path}"
    config = LintConfig(select=(code,))
    report = run_analysis(files, config)
    return [v for v in report.findings if v.code == code]


@pytest.mark.parametrize("code,bad,good", CASES,
                         ids=[case[0] for case in CASES])
def test_bad_fixture_fires_good_fixture_passes(code, bad, good):
    assert findings(code, bad), f"{code} missed its bad fixture"
    assert findings(code, good) == [], f"{code} false positive on good"


def test_vr100_finding_names_the_seconds_source():
    [violation] = findings("VR100", ["vr100_bad.py"])
    assert "delay_ns" in violation.message
    assert "propagation_delay_s" in violation.message


def test_vr110_is_interprocedural_across_files():
    hits = findings("VR110", ["vr110_bad/entry.py", "vr110_bad/helper.py"])
    sink = [v for v in hits if "random.choice" in v.message]
    assert sink, "expected the global-draw sink finding"
    # The sink lives in helper.py but is only reachable through the
    # policy method in entry.py — the witness chain must say so.
    assert sink[0].path.endswith("helper.py")
    assert "forward" in sink[0].message
    # Neither file alone produces the reachability finding.
    alone = findings("VR110", ["vr110_bad/helper.py"])
    assert [v for v in alone if "random.choice" in v.message] == []


def test_vr120_names_both_kinds_of_state():
    hits = findings("VR120", ["vr120_bad.py"])
    messages = "\n".join(v.message for v in hits)
    assert "SEEN_FLOWS" in messages
    assert "generation" in messages


def test_vr120_snapshot_coverage_names_the_missing_attribute():
    hits = findings("VR120", ["vr120_snapshot_bad.py"])
    messages = "\n".join(v.message for v in hits)
    assert "window_marked" in messages
    assert "SNAPSHOT_ATTRS" in messages
    # Declared attributes — own and inherited — never fire.
    assert "'self.acks'" not in messages
    assert "'self.engine'" not in messages


def test_vr130_flags_lambda_and_bound_method():
    hits = findings("VR130", ["vr130_bad.py"])
    messages = "\n".join(v.message for v in hits)
    assert "lambda" in messages
    assert "bound method" in messages


def test_vr150_catches_floats_vr100_cannot_see():
    hits = findings("VR150", ["vr150_bad.py"])
    # Both intermediates fire even though neither target is *_ns-named
    # (the helper's float division via its summary, and the inline one).
    assert len(hits) == 2
    messages = "\n".join(v.message for v in hits)
    assert "'share'" in messages
    assert "'serial'" in messages
    assert "analytic" in messages
    # ... and VR100 indeed cannot see either of them.
    assert findings("VR100", ["vr150_bad.py"]) == []


def test_vr160_covers_pfc_functions_and_threshold_classes():
    hits = findings("VR160", ["vr160_bad.py"])
    messages = "\n".join(v.message for v in hits)
    # The pause-duration return (function-name marker) ...
    assert "pause_duration" in messages
    # ... and the threshold math (class-name marker) both fire.
    assert "'fraction'" in messages
    # VR100 sees neither: no *_ns name is involved.
    assert findings("VR100", ["vr160_bad.py"]) == []


def test_vr140_reports_unguarded_use_only():
    bad = findings("VR140", ["vr140_bad.py"])
    assert any("guard" in v.message for v in bad)


def test_full_tree_is_clean_under_all_passes():
    root = Path(__file__).resolve().parents[2]
    from repro.analysis.lint import load_config
    config = load_config(root / "pyproject.toml")
    files = sorted((root / "src").rglob("*.py"))
    report = run_analysis(files, config,
                          baseline_path=root / "lint-baseline.json")
    rendered = "\n".join(v.render() for v in report.all_reported())
    assert not report.failed, rendered
