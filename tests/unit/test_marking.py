"""Vertigo TX marking component (paper §3.1)."""

from repro.core.flowinfo import MarkingDiscipline, RETCNT_MAX
from repro.core.marking import MarkingComponent
from repro.net.packet import ack_packet
from tests.helpers import mk_data


def _srpt(boost_factor=2, **kwargs):
    component = MarkingComponent(discipline=MarkingDiscipline.SRPT,
                                 boost_factor=boost_factor, **kwargs)
    return component


def test_srpt_marks_remaining_flow_size():
    marking = _srpt()
    marking.register_flow(1, size=40_000)
    first = mk_data(flow_id=1, seq=0, payload=1460)
    marking.mark(first)
    assert first.flowinfo.rfs == 40_000
    assert first.flowinfo.first

    second = mk_data(flow_id=1, seq=1460, payload=1460)
    marking.mark(second)
    assert second.flowinfo.rfs == 40_000 - 1460
    assert not second.flowinfo.first


def test_last_packet_rfs_equals_payload():
    marking = _srpt()
    marking.register_flow(1, size=3000)
    marking.mark(mk_data(flow_id=1, seq=0, payload=1460))
    marking.mark(mk_data(flow_id=1, seq=1460, payload=1460))
    last = mk_data(flow_id=1, seq=2920, payload=80)
    marking.mark(last)
    assert last.flowinfo.rfs == 80  # paper: last packet RFS = payload


def test_retransmission_detected_and_boosted():
    marking = _srpt()
    marking.register_flow(1, size=40_000)
    marking.mark(mk_data(flow_id=1, seq=0, payload=1460))
    retx = mk_data(flow_id=1, seq=0, payload=1460)
    marking.mark(retx)
    assert retx.flowinfo.retcnt == 1
    assert retx.flowinfo.rfs == 20_000  # 40_000 rotated right once
    assert retx.flowinfo.original_rfs() == 40_000
    assert marking.retransmissions_detected == 1


def test_multiple_retransmissions_increment_retcnt():
    marking = _srpt()
    marking.register_flow(1, size=32_000)
    for expected_retcnt in range(4):
        packet = mk_data(flow_id=1, seq=0, payload=1460)
        marking.mark(packet)
        assert packet.flowinfo.retcnt == expected_retcnt
    assert packet.flowinfo.rfs == 32_000 >> 3


def test_retcnt_saturates_at_15():
    marking = _srpt()
    marking.register_flow(1, size=1 << 20)
    packet = None
    for _ in range(20):
        packet = mk_data(flow_id=1, seq=0, payload=1460)
        marking.mark(packet)
    assert packet.flowinfo.retcnt == RETCNT_MAX


def test_boost_factor_4_rotates_twice():
    marking = _srpt(boost_factor=4)
    marking.register_flow(1, size=40_000)
    marking.mark(mk_data(flow_id=1, seq=0, payload=1460))
    retx = mk_data(flow_id=1, seq=0, payload=1460)
    marking.mark(retx)
    assert retx.flowinfo.rfs == 10_000


def test_boosting_disabled_keeps_original_rfs():
    marking = MarkingComponent(boosting=False)
    marking.register_flow(1, size=40_000)
    marking.mark(mk_data(flow_id=1, seq=0, payload=1460))
    retx = mk_data(flow_id=1, seq=0, payload=1460)
    marking.mark(retx)
    assert retx.flowinfo.rfs == 40_000
    assert retx.flowinfo.retcnt == 0


def test_las_marks_attained_service():
    marking = MarkingComponent(discipline=MarkingDiscipline.LAS)
    marking.register_flow(1, size=None)  # LAS needs no size
    first = mk_data(flow_id=1, seq=0, payload=1460)
    marking.mark(first)
    assert first.flowinfo.rfs == 0
    assert first.flowinfo.first
    later = mk_data(flow_id=1, seq=14_600, payload=1460)
    marking.mark(later)
    assert later.flowinfo.rfs == 14_600


def test_srpt_requires_flow_size():
    marking = _srpt()
    try:
        marking.register_flow(1, size=None)
    except ValueError:
        pass
    else:  # pragma: no cover
        raise AssertionError("SRPT without size should be rejected")


def test_acks_are_marked_with_wire_size():
    from repro.core.flowinfo import FLOWINFO_WIRE_BYTES
    marking = _srpt()
    ack = ack_packet(2, 1, 7, ack_no=100)
    before = ack.wire_bytes
    marking.mark(ack)
    assert ack.flowinfo is not None
    assert ack.flowinfo.rfs == before  # ranked like a tiny final packet
    assert ack.wire_bytes == before + FLOWINFO_WIRE_BYTES


def test_unregistered_flow_marked_defensively():
    from repro.core.flowinfo import FLOWINFO_WIRE_BYTES
    marking = _srpt()
    packet = mk_data(flow_id=999, seq=0, payload=100)
    before = packet.wire_bytes
    marking.mark(packet)
    assert packet.flowinfo.rfs == before
    assert packet.wire_bytes == before + FLOWINFO_WIRE_BYTES


def test_marked_data_carries_flowinfo_wire_overhead():
    # Paper Fig. 3: the layer-3 flowinfo header costs 7 extra wire bytes.
    from repro.core.flowinfo import FLOWINFO_WIRE_BYTES
    marking = _srpt()
    marking.register_flow(1, size=10_000)
    packet = mk_data(flow_id=1, seq=0, payload=1000)
    before = packet.wire_bytes
    marking.mark(packet)
    assert packet.wire_bytes == before + FLOWINFO_WIRE_BYTES == before + 7


def test_flow_done_clears_state():
    marking = _srpt()
    marking.register_flow(1, size=4000)
    marking.mark(mk_data(flow_id=1, seq=0, payload=1460))
    marking.flow_done(1)
    # New flow with the same id starts fresh (no retransmission hit).
    marking.register_flow(1, size=4000)
    packet = mk_data(flow_id=1, seq=0, payload=1460)
    marking.mark(packet)
    assert packet.flowinfo.retcnt == 0


def test_flow_id3_is_three_bits():
    marking = _srpt()
    marking.register_flow(13, size=4000)
    packet = mk_data(flow_id=13, seq=0, payload=1460)
    marking.mark(packet)
    assert packet.flowinfo.flow_id3 == 13 & 0b111


def test_packets_marked_counter():
    marking = _srpt()
    marking.register_flow(1, size=4000)
    marking.mark(mk_data(flow_id=1, seq=0, payload=1000))
    marking.mark(mk_data(flow_id=1, seq=1000, payload=1000))
    assert marking.packets_marked == 2
