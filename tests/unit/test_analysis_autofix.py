"""The --fix engine: int coercion, pragma insertion/removal."""

from pathlib import Path

from repro.analysis.autofix import apply_fixes
from repro.analysis.driver import main, run_analysis
from repro.analysis.lint import LintConfig, Violation


def test_int_coercion_on_ns_assignment():
    source = "timeout_ns = delay * 1.5\n"
    finding = Violation("mod.py", 1, 14, "VR003", "float value")
    updated, fixes = apply_fixes({"mod.py": source}, [finding])
    assert updated["mod.py"] == "timeout_ns = int(delay * 1.5)\n"
    assert fixes[0].kind == "int-coercion"


def test_int_coercion_multiline_value():
    source = "timeout_ns = (delay\n              * 1.5)\n"
    finding = Violation("mod.py", 1, 14, "VR003", "float value")
    updated, _ = apply_fixes({"mod.py": source}, [finding])
    # The wrap covers the exact value span (inside the redundant parens).
    assert updated["mod.py"] == "timeout_ns = (int(delay\n" \
                                "              * 1.5))\n"
    compile(updated["mod.py"], "mod.py", "exec")  # still valid python


def test_already_coerced_value_gets_pragma_not_double_wrap():
    source = "timeout_ns = int(delay * 1.5)\n"
    finding = Violation("mod.py", 1, 14, "VR003", "float value")
    updated, fixes = apply_fixes({"mod.py": source}, [finding])
    assert "int(int(" not in updated["mod.py"]
    assert fixes[0].kind == "pragma"


def test_pragma_inserted_for_unfixable_rule():
    source = "SEEN = {}\n\ndef f(x):\n    SEEN[x] = True\n"
    finding = Violation("mod.py", 4, 5, "VR120", "module global")
    updated, fixes = apply_fixes({"mod.py": source}, [finding])
    assert "SEEN[x] = True  # repro: lint-disable VR120" \
        in updated["mod.py"]
    assert fixes[0].kind == "pragma"


def test_pragma_merges_into_existing():
    source = "x = f()  # repro: lint-disable VR110\n"
    finding = Violation("mod.py", 1, 1, "VR120", "module global")
    updated, _ = apply_fixes({"mod.py": source}, [finding])
    assert "lint-disable VR110, VR120" in updated["mod.py"]


def test_stale_pragma_removed_keeping_others():
    source = "x = f()  # repro: lint-disable VR110, VR120\n"
    stale = Violation("mod.py", 1, 1, "VR090",
                      "unused suppression: no VR120 finding on this line")
    updated, fixes = apply_fixes({"mod.py": source}, [stale])
    assert "VR120" not in updated["mod.py"]
    assert "lint-disable VR110" in updated["mod.py"]
    assert fixes[0].kind == "pragma-removed"


def test_fully_stale_pragma_removed_entirely():
    source = "x = f()  # repro: lint-disable VR110\n"
    stale = Violation("mod.py", 1, 1, "VR090",
                      "unused suppression: no VR110 finding on this line")
    updated, _ = apply_fixes({"mod.py": source}, [stale])
    assert "lint-disable" not in updated["mod.py"]
    assert updated["mod.py"].startswith("x = f()")


def test_bottom_up_multiple_fixes_one_file():
    source = "a_ns = 1.5\nb_ns = 2.5\n"
    findings = [Violation("mod.py", 1, 8, "VR003", "float"),
                Violation("mod.py", 2, 8, "VR003", "float")]
    updated, fixes = apply_fixes({"mod.py": source}, findings)
    assert updated["mod.py"] == "a_ns = int(1.5)\nb_ns = int(2.5)\n"
    assert len(fixes) == 2


def test_cli_fix_applies_and_relints(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("timeout_ns = 1.5\n")
    assert main([str(bad), "--fix"]) == 0
    assert bad.read_text() == "timeout_ns = int(1.5)\n"
    err = capsys.readouterr().err
    assert "fixed (int-coercion)" in err
    assert "clean" in err


def test_driver_fix_removes_stale_pragma(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("x = 1  # repro: lint-disable VR120\n")
    config = LintConfig(select=("VR120",))
    report = run_analysis([target], config, fix=True)
    assert not report.failed
    assert "lint-disable" not in target.read_text()
