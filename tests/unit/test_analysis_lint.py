"""The determinism / unit-discipline linter (repro.analysis.lint).

Each rule is exercised with a known-bad snippet that must fire and a
known-good idiom that must stay silent, plus the suppression and
exemption machinery and a clean-tree check over the real sources.
"""

import textwrap

import pytest
from pathlib import Path

from repro.analysis.lint import (
    LintConfig,
    RULES,
    Violation,
    lint_paths,
    lint_source,
    load_config,
    main,
)


def codes(source, path="src/repro/example.py", config=None):
    snippet = textwrap.dedent(source)
    return [v.code for v in lint_source(snippet, path, config)]


# -- VR001: stochastic draws ---------------------------------------------------


def test_vr001_random_module_call():
    assert "VR001" in codes("""
        import random
        x = random.randint(1, 6)
    """)


def test_vr001_random_constructor():
    assert "VR001" in codes("""
        import random
        rng = random.Random(7)
    """)


def test_vr001_from_random_import():
    assert "VR001" in codes("from random import randint\n")


def test_vr001_annotation_is_fine():
    # Annotations such as ``rng: random.Random`` draw no entropy.
    assert codes("""
        import random

        def f(rng: random.Random) -> int:
            return rng.randrange(10)
    """) == []


def test_vr001_stream_draws_are_fine():
    assert codes("""
        def f(self):
            return self.rng.expovariate(2)
    """) == []


def test_vr001_exempt_in_rng_module():
    source = "import random\nrng = random.Random(1)\n"
    assert codes(source, path="src/repro/sim/rng.py") == []


# -- VR002: wall clocks --------------------------------------------------------


def test_vr002_time_calls():
    assert "VR002" in codes("""
        import time
        t = time.perf_counter()
    """)
    assert "VR002" in codes("""
        import time
        t = time.time()
    """)


def test_vr002_datetime_now():
    assert "VR002" in codes("""
        from datetime import datetime
        t = datetime.now()
    """)


def test_vr002_from_time_import():
    assert "VR002" in codes("from time import perf_counter\n")


def test_vr002_engine_now_is_fine():
    assert codes("""
        def f(engine):
            return engine.now
    """) == []


def test_vr002_benchmarks_exempt():
    source = "import time\nt = time.perf_counter()\n"
    assert codes(source, path="benchmarks/test_kernel.py") == []


def test_vr002_non_clock_time_attr_is_fine():
    assert codes("""
        import time
        s = time.strftime
    """) == []


# -- VR003: unit discipline ----------------------------------------------------


def test_vr003_float_literal_into_unit_name():
    assert "VR003" in codes("timeout_ns = 1.5\n")


def test_vr003_true_division_into_unit_name():
    assert "VR003" in codes("""
        def f(total, n):
            gap_ns = total / n
    """)


def test_vr003_division_of_unit_name():
    assert "VR003" in codes("""
        def f(fct_ns):
            return fct_ns / 1000
    """)


def test_vr003_float_annotation():
    assert "VR003" in codes("""
        def f(delay_ns: float):
            pass
    """)
    assert "VR003" in codes("duration_ns: float = 5\n")


def test_vr003_float_default():
    assert "VR003" in codes("""
        def f(gap_ns=1.5):
            pass
    """)


def test_vr003_float_keyword_argument():
    assert "VR003" in codes("""
        def f(g):
            g(interval_ns=2.5)
    """)


def test_vr003_aug_div():
    assert "VR003" in codes("""
        def f(budget_ns):
            budget_ns /= 2
    """)


def test_vr003_rounded_division_is_fine():
    assert codes("""
        def f(total_bytes, rate):
            delay_ns = round(total_bytes / rate)
            other_ns = int(total_bytes / rate)
    """) == []


def test_vr003_floor_division_is_fine():
    assert codes("""
        def f(size_bytes, rate_bps):
            delay_ns = size_bytes * 8 * 1_000_000_000 // rate_bps
    """) == []


def test_vr003_int_annotation_is_fine():
    assert codes("sim_time_ns: int = 5\n") == []


def test_vr003_units_module_exempt():
    assert codes("x_ns = 1.5\n", path="src/repro/sim/units.py") == []


# -- VR004: module-lifetime mutable state --------------------------------------


def test_vr004_module_level_dict():
    assert "VR004" in codes("cache = {}\n")


def test_vr004_module_level_itertools_count():
    assert "VR004" in codes("""
        import itertools
        _ids = itertools.count()
    """)


def test_vr004_class_level_list():
    assert "VR004" in codes("""
        class A:
            seen = []
    """)


def test_vr004_constant_case_is_fine():
    assert codes("TRANSPORTS = {'a': 1}\n") == []


def test_vr004_dunder_is_fine():
    assert codes("__all__ = ['x']\n") == []


def test_vr004_locals_are_fine():
    assert codes("""
        def f():
            pool = []
            return pool
    """) == []


# -- VR005: literal negative delays --------------------------------------------


def test_vr005_literal_negative_delay():
    assert "VR005" in codes("""
        def f(engine, fn):
            engine.schedule(-1, fn)
    """)


def test_vr005_zero_and_variable_delays_are_fine():
    assert codes("""
        def f(engine, fn, delay):
            engine.schedule(0, fn)
            engine.schedule(delay, fn)
    """) == []


def test_vr005_literal_negative_fault_timestamp():
    assert "VR005" in codes("""
        from repro.faults import FaultSpec
        spec = FaultSpec(kind="down", link=("a", "b"), at_ns=-5)
    """)


def test_vr005_negative_ns_keyword_anywhere():
    assert "VR005" in codes("""
        def f(g):
            g(deadline_ns=-1)
    """)


def test_vr005_nonnegative_fault_timestamp_is_fine():
    assert codes("""
        from repro.faults import FaultSpec
        spec = FaultSpec(kind="down", link=("a", "b"), at_ns=50_000_000)
    """) == []


# -- VR006: swallowed broad exceptions -----------------------------------------


def test_vr006_bare_except_pass():
    assert "VR006" in codes("""
        try:
            f()
        except:
            pass
    """)


def test_vr006_except_exception_pass():
    assert "VR006" in codes("""
        try:
            f()
        except Exception:
            pass
    """)


def test_vr006_except_base_exception_pass():
    assert "VR006" in codes("""
        try:
            f()
        except BaseException:
            pass
    """)


def test_vr006_broad_exception_inside_tuple():
    assert "VR006" in codes("""
        try:
            f()
        except (ValueError, Exception):
            pass
    """)


def test_vr006_handled_broad_except_is_fine():
    # Catching Exception is fine when the handler *does* something.
    assert codes("""
        def f(log):
            try:
                g()
            except Exception as exc:
                log.warning("failed: %s", exc)
                raise
    """) == []


def test_vr006_narrow_except_pass_is_fine():
    # Swallowing a specific, expected exception is a deliberate idiom.
    assert codes("""
        try:
            f()
        except ProcessLookupError:
            pass
    """) == []


def test_vr006_noqa_suppresses():
    assert codes("""
        try:
            f()
        except Exception:  # noqa: VR006
            pass
    """) == []


# -- suppression and configuration ---------------------------------------------


def test_bare_noqa_suppresses_everything():
    assert codes("timeout_ns = 1.5  # noqa\n") == []


def test_targeted_noqa_suppresses_one_code():
    assert codes("timeout_ns = 1.5  # noqa: VR003\n") == []


def test_mismatched_noqa_does_not_suppress():
    assert "VR003" in codes("timeout_ns = 1.5  # noqa: VR001\n")


def test_noqa_only_covers_its_own_line():
    assert "VR003" in codes("""
        a_ns = 1.5  # noqa: VR003
        b_ns = 2.5
    """)


def test_select_subset():
    config = LintConfig(select=("VR001",))
    assert codes("timeout_ns = 1.5\n", config=config) == []
    assert "VR001" in codes("from random import randint\n", config=config)


def test_exempt_patterns_merge_from_pyproject(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(textwrap.dedent("""
        [tool.repro.lint]
        paths = ["src"]

        [tool.repro.lint.exempt]
        VR003 = ["*/special.py"]
    """))
    config = load_config(pyproject)
    assert "*/special.py" in config.exempt["VR003"]
    # Built-in defaults survive the merge.
    assert "*/sim/units.py" in config.exempt["VR003"]
    assert codes("x_ns = 1.5\n", path="pkg/special.py", config=config) == []


def test_violation_render_mentions_location_and_hint():
    text = Violation("a.py", 3, 7, "VR003", "float value").render()
    assert text.startswith("a.py:3:7: VR003")
    assert "hint:" in text


def test_rules_table_complete():
    assert sorted(RULES) == ["VR001", "VR002", "VR003", "VR004", "VR005",
                             "VR006"]


# -- the real tree stays clean -------------------------------------------------


def test_src_tree_is_clean():
    root = Path(__file__).resolve().parents[2]
    config = load_config(root / "pyproject.toml")
    violations = lint_paths([str(root / "src")], config)
    assert violations == [], "\n".join(v.render() for v in violations)


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out


def test_cli_exit_status(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("timeout_ns = 1.5\n")
    assert main([str(bad)]) == 1
    assert "VR003" in capsys.readouterr().out
    good = tmp_path / "good.py"
    good.write_text("timeout_ns = 2\n")
    assert main([str(good)]) == 0


def test_cli_syntax_error_reported_not_crash(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n")
    assert main([str(broken)]) == 1
    assert "VR000" in capsys.readouterr().out


def test_cli_rejects_unknown_rule(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main(["--select", "VR999", str(tmp_path)])
    assert excinfo.value.code == 2


def test_cli_rejects_missing_path(capsys):
    assert main(["/no/such/path.py"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("repro: error:")
    assert len(err.strip().splitlines()) == 1


def test_cli_rejects_directory_without_python(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main([str(empty)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("repro: error:")
    assert "no python files" in err
