"""Sweep executor: job-count resolution and worker initialization."""

import multiprocessing
import os

import pytest

from repro.analysis import sanitize
from repro.experiments import parallel
from repro.experiments.config import ExperimentConfig


def _probe_worker_state():
    """Runs inside a pool worker: report the sanitizer state it sees.

    Module-level so it pickles under the spawn/forkserver start methods
    (the tests package ships to workers via sys.path).
    """
    return (parallel._worker_state.get("sanitize"),
            sanitize.enabled(),
            os.environ.get("REPRO_SANITIZE"))


def test_default_is_serial(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert parallel.resolve_jobs(None) == 1


def test_explicit_argument_wins_over_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert parallel.resolve_jobs(3) == 3


def test_env_fallback(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert parallel.resolve_jobs(None) == 4


def test_zero_means_one_worker_per_cpu(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    expected = os.cpu_count() or 1
    assert parallel.resolve_jobs(0) == expected
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert parallel.resolve_jobs(None) == expected


def test_bad_env_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.raises(ValueError):
        parallel.resolve_jobs(None)


def test_env_whitespace_tolerated(monkeypatch):
    # `REPRO_JOBS=" 4 "` (trailing space from a shell export) must parse.
    monkeypatch.setenv("REPRO_JOBS", " 4 ")
    assert parallel.resolve_jobs(None) == 4
    monkeypatch.setenv("REPRO_JOBS", "   ")
    assert parallel.resolve_jobs(None) == 1  # all-blank == unset


def test_worker_init_installs_sanitizer_state(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "0")  # registers env restore
    was_enabled = sanitize.enabled()
    try:
        parallel._worker_init(True)
        assert sanitize.enabled()
        assert os.environ["REPRO_SANITIZE"] == "1"
        parallel._worker_init(False)
        assert not sanitize.enabled()
        assert os.environ["REPRO_SANITIZE"] == "0"
    finally:
        sanitize.set_enabled(was_enabled)
        parallel._worker_state.clear()


@pytest.mark.parametrize("start_method", ["spawn", "forkserver"])
def test_worker_init_under_start_method(start_method):
    """_worker_init must install the sanitizer whatever the start method.

    spawn/forkserver workers import everything fresh (no inherited
    interpreter state), so this is the path where a broken initializer
    would silently drop the sanitizer.
    """
    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"{start_method} unavailable on this platform")
    from concurrent.futures import ProcessPoolExecutor

    context = multiprocessing.get_context(start_method)
    with ProcessPoolExecutor(max_workers=1, mp_context=context,
                             initializer=parallel._worker_init,
                             initargs=(True,)) as pool:
        state, enabled, env = pool.submit(_probe_worker_state).result(
            timeout=120)
    assert state is True
    assert enabled is True
    assert env == "1"


def _disable_sanitizer_then_probe():
    """Simulate a task that left the worker's sanitizer toggled off."""
    sanitize.set_enabled(False)
    config = ExperimentConfig.bench_profile(
        system="vertigo", transport="dctcp", bg_load=0.1,
        sim_time_ns=1_000_000, seed=1)
    parallel._run_portable(config)
    return sanitize.enabled()


@pytest.mark.parametrize("start_method", ["spawn", "forkserver"])
def test_run_portable_restores_sanitizer(start_method):
    """A task that drops the sanitizer doesn't poison later pool tasks."""
    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"{start_method} unavailable on this platform")
    from concurrent.futures import ProcessPoolExecutor

    context = multiprocessing.get_context(start_method)
    with ProcessPoolExecutor(max_workers=1, mp_context=context,
                             initializer=parallel._worker_init,
                             initargs=(True,)) as pool:
        restored = pool.submit(_disable_sanitizer_then_probe).result(
            timeout=120)
    assert restored is True


class _RecordingPool:
    """Stand-in ProcessPoolExecutor capturing shutdown() arguments."""

    instances = []

    def __init__(self, max_workers=None, initializer=None, initargs=()):
        self.shutdown_calls = []
        _RecordingPool.instances.append(self)

    def map(self, fn, iterable):
        raise KeyboardInterrupt

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdown_calls.append(
            {"wait": wait, "cancel_futures": cancel_futures})


def test_run_many_interrupt_does_not_orphan_workers(monkeypatch):
    """Ctrl-C during a parallel sweep must cancel queued work immediately.

    Regression test for the worker-process leak: run_many used to enter
    the pool via `with`, whose exit calls shutdown(wait=True) and blocks
    on — then leaks — the in-flight workers when the map raises.
    """
    monkeypatch.setattr(parallel, "ProcessPoolExecutor", _RecordingPool)
    _RecordingPool.instances.clear()
    configs = [ExperimentConfig.bench_profile(
        system="vertigo", transport="dctcp", bg_load=0.1,
        sim_time_ns=1_000_000, seed=seed) for seed in (1, 2)]
    with pytest.raises(KeyboardInterrupt):
        parallel.run_many(configs, jobs=2)
    (pool,) = _RecordingPool.instances
    assert pool.shutdown_calls == [{"wait": False, "cancel_futures": True}]
