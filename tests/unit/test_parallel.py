"""Sweep executor: job-count resolution and worker initialization."""

import os

import pytest

from repro.analysis import sanitize
from repro.experiments import parallel


def test_default_is_serial(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert parallel.resolve_jobs(None) == 1


def test_explicit_argument_wins_over_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert parallel.resolve_jobs(3) == 3


def test_env_fallback(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert parallel.resolve_jobs(None) == 4


def test_zero_means_one_worker_per_cpu(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    expected = os.cpu_count() or 1
    assert parallel.resolve_jobs(0) == expected
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert parallel.resolve_jobs(None) == expected


def test_bad_env_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.raises(ValueError):
        parallel.resolve_jobs(None)


def test_worker_init_installs_sanitizer_state(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "0")  # registers env restore
    was_enabled = sanitize.enabled()
    try:
        parallel._worker_init(True)
        assert sanitize.enabled()
        assert os.environ["REPRO_SANITIZE"] == "1"
        parallel._worker_init(False)
        assert not sanitize.enabled()
        assert os.environ["REPRO_SANITIZE"] == "0"
    finally:
        sanitize.set_enabled(was_enabled)
        parallel._worker_state.clear()
