"""The content-hash-keyed incremental findings cache."""

from pathlib import Path

from repro.analysis.cache import (
    ANALYZER_VERSION,
    LintCache,
    file_hash,
    project_hash,
)
from repro.analysis.driver import run_analysis
from repro.analysis.lint import LintConfig, Violation


def test_file_tier_roundtrip(tmp_path):
    cache = LintCache(tmp_path / "cache.json", "sel")
    finding = Violation("mod.py", 3, 1, "VR003", "float")
    digest = file_hash("x = 1\n")
    assert cache.get_file("mod.py", digest) is None
    cache.put_file("mod.py", digest, [finding])
    cache.save()

    warm = LintCache(tmp_path / "cache.json", "sel")
    assert warm.get_file("mod.py", digest) == [finding]
    # Different content -> miss.
    assert warm.get_file("mod.py", file_hash("x = 2\n")) is None


def test_select_change_invalidates(tmp_path):
    cache = LintCache(tmp_path / "cache.json", "sel-a")
    digest = file_hash("x = 1\n")
    cache.put_file("mod.py", digest, [])
    cache.save()
    other = LintCache(tmp_path / "cache.json", "sel-b")
    assert other.get_file("mod.py", digest) is None


def test_project_tier_keys_on_all_hashes():
    hashes = {"a.py": "h1", "b.py": "h2"}
    assert project_hash(hashes) == project_hash(dict(reversed(
        list(hashes.items()))))
    assert project_hash(hashes) != project_hash({"a.py": "h1",
                                                 "b.py": "h3"})


def test_driver_cache_hit_then_invalidation_on_edit(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("def delay_s():\n    return 1.5\n\n"
                      "def arm(flow):\n    flow.timeout_ns = delay_s()\n")
    cache_path = tmp_path / "cache.json"
    config = LintConfig(select=("VR100",))

    cold = run_analysis([target], config, cache_path=cache_path)
    assert [v.code for v in cold.findings] == ["VR100"]
    assert cold.cache_hits == 0

    warm = run_analysis([target], config, cache_path=cache_path)
    assert [v.code for v in warm.findings] == ["VR100"]
    assert warm.cache_hits > 0 and warm.cache_misses == 0

    # Edit the file: the finding must re-appear from a fresh pass, not
    # the stale cache entry.
    target.write_text("def delay_s():\n    return 1.5\n\n"
                      "def arm(flow):\n"
                      "    flow.timeout_ns = int(delay_s())\n")
    fixed = run_analysis([target], config, cache_path=cache_path)
    assert fixed.findings == []
    assert fixed.cache_misses > 0

    target.write_text("def delay_s():\n    return 1.5\n\n"
                      "def arm(flow):\n    flow.timeout_ns = delay_s()\n")
    again = run_analysis([target], config, cache_path=cache_path)
    assert [v.code for v in again.findings] == ["VR100"]


def test_analyzer_version_stamp_invalidates(tmp_path):
    cache = LintCache(tmp_path / "cache.json", "sel")
    cache.put_file("mod.py", "digest", [])
    cache.save()
    raw = (tmp_path / "cache.json").read_text()
    assert ANALYZER_VERSION in raw
    (tmp_path / "cache.json").write_text(
        raw.replace(ANALYZER_VERSION, "vr0xx-0"))
    stale = LintCache(tmp_path / "cache.json", "sel")
    assert stale.get_file("mod.py", "digest") is None


def test_corrupt_cache_file_is_ignored(tmp_path):
    path = tmp_path / "cache.json"
    path.write_text("{not json")
    cache = LintCache(path, "sel")
    assert cache.get_file("mod.py", "digest") is None
    cache.put_file("mod.py", "digest", [])
    cache.save()  # must not raise
    assert LintCache(path, "sel").get_file("mod.py", "digest") == []
