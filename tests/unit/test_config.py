"""Experiment configuration and derived parameters."""

import pytest

from repro.experiments.config import (
    BENCH_SYSTEMS,
    ExperimentConfig,
    SystemConfig,
    WorkloadConfig,
)
from repro.experiments.runner import (
    derive_ecn_threshold,
    derive_ordering_timeout,
    derive_swift_target,
    resolve_transport_config,
)
from repro.net.builder import NetworkParams
from repro.net.topology import FatTree
from repro.sim.units import gbps, kb, usecs


def test_system_name_validated():
    with pytest.raises(ValueError):
        SystemConfig(name="bogus")
    for name in BENCH_SYSTEMS:
        assert SystemConfig(name=name).name == name


def test_workload_rejects_double_incast_spec():
    with pytest.raises(ValueError):
        WorkloadConfig(incast_load=0.2, incast_qps=100)


def test_workload_total_load():
    assert WorkloadConfig(bg_load=0.5, incast_load=0.25).total_load == 0.75
    assert WorkloadConfig(bg_load=0.5).total_load == 0.5


def test_paper_profile_matches_section_4_1():
    config = ExperimentConfig.paper_profile()
    assert config.topology.n_hosts == 320
    assert config.network.host_rate_bps == gbps(10)
    assert config.network.fabric_rate_bps == gbps(40)
    assert config.network.buffer_bytes == kb(300)
    assert config.sim_time_ns == 5_000_000_000


def test_paper_scale_ordering_timeout_is_360us():
    # The derivation must reproduce the paper's tau = 360 us (§3.3.2).
    assert derive_ordering_timeout(
        ExperimentConfig.paper_profile().network) == usecs(360)


def test_bench_profile_shapes():
    config = ExperimentConfig.bench_profile(system="vertigo",
                                            bg_load=0.5, incast_load=0.25)
    assert config.topology.n_hosts == 32
    assert config.workload.total_load == 0.75
    assert config.system.name == "vertigo"


def test_bench_fat_tree_profile():
    config = ExperimentConfig.bench_fat_tree(k=4)
    assert isinstance(config.topology, FatTree)
    assert config.topology.n_hosts == 16


def test_with_system_clones():
    base = ExperimentConfig.bench_profile(system="vertigo")
    clone = base.with_system("dibs")
    assert clone.system.name == "dibs"
    assert base.system.name == "vertigo"
    assert clone.workload == base.workload


def test_ecn_threshold_full_scale_is_65_packets():
    params = NetworkParams(buffer_bytes=kb(300))
    assert derive_ecn_threshold(params, 1460) == 65 * 1460


def test_ecn_threshold_scales_with_shallow_buffers():
    params = NetworkParams(buffer_bytes=kb(30))
    k = derive_ecn_threshold(params, 1460)
    assert 2 * 1460 <= k < kb(30)


def test_swift_target_exceeds_base_rtt():
    params = NetworkParams()
    assert derive_swift_target(params, 1460) > params.base_rtt_ns()


def test_resolve_dibs_disables_fast_retransmit():
    config = ExperimentConfig.bench_profile(system="dibs")
    transport = resolve_transport_config(config)
    assert not transport.fast_retransmit


def test_resolve_other_systems_keep_fast_retransmit():
    for system in ("ecmp", "drill", "vertigo"):
        config = ExperimentConfig.bench_profile(system=system)
        assert resolve_transport_config(config).fast_retransmit


def test_resolve_swift_fills_target_and_fine_rto():
    config = ExperimentConfig.bench_profile(system="ecmp",
                                            transport="swift")
    transport = resolve_transport_config(config)
    assert transport.swift_target_delay_ns > 0
    assert transport.min_rto_ns <= 4 * transport.swift_target_delay_ns


def test_vertigo_system_kwargs_flow_through():
    config = ExperimentConfig.bench_profile(system="vertigo",
                                            boost_factor=8,
                                            ordering=False)
    assert config.system.boost_factor == 8
    assert not config.system.ordering
