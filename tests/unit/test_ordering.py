"""Vertigo RX ordering component state machine (paper §3.3)."""

from repro.core.flowinfo import FlowInfo, MarkingDiscipline, boost_rfs
from repro.core.ordering import OrderingComponent
from repro.sim.engine import Engine
from tests.helpers import mk_data

FLOW_SIZE = 5 * 1000  # five 1000-byte packets


def _packets(flow_id=1, size=FLOW_SIZE, payload=1000):
    """In-order SRPT-marked packets of a flow."""
    packets = []
    seq = 0
    while seq < size:
        chunk = min(payload, size - seq)
        packet = mk_data(flow_id=flow_id, seq=seq, payload=chunk)
        packet.flowinfo = FlowInfo(rfs=size - seq, first=(seq == 0))
        packets.append(packet)
        seq += chunk
    return packets


def _component(engine, timeout_ns=360_000,
               discipline=MarkingDiscipline.SRPT):
    delivered = []
    component = OrderingComponent(engine, delivered.append,
                                  timeout_ns=timeout_ns,
                                  discipline=discipline)
    return component, delivered


def test_in_order_packets_pass_straight_through():
    engine = Engine()
    component, delivered = _component(engine)
    packets = _packets()
    for packet in packets:
        component.on_packet(packet)
    assert delivered == packets
    assert component.active_flows() == 0  # flow completed, state dropped


def test_reordered_packets_are_resequenced():
    engine = Engine()
    component, delivered = _component(engine)
    p = _packets()
    component.on_packet(p[0])
    component.on_packet(p[2])  # early: buffered
    assert delivered == [p[0]]
    component.on_packet(p[1])  # fills the gap: both released in order
    assert delivered == [p[0], p[1], p[2]]
    component.on_packet(p[3])
    component.on_packet(p[4])
    assert delivered == p


def test_fully_reversed_arrival_is_restored():
    engine = Engine()
    component, delivered = _component(engine)
    p = _packets()
    for packet in reversed(p):
        component.on_packet(packet)
    assert delivered == p


def test_timeout_releases_up_to_next_gap():
    engine = Engine()
    component, delivered = _component(engine, timeout_ns=100_000)
    p = _packets()
    component.on_packet(p[0])
    component.on_packet(p[2])
    component.on_packet(p[3])   # contiguous early run: p2, p3
    assert delivered == [p[0]]
    engine.run()                # let the reordering timeout fire
    assert delivered == [p[0], p[2], p[3]]
    assert component.timeouts_fired == 1


def test_timeout_then_late_packet_passes_immediately():
    engine = Engine()
    component, delivered = _component(engine, timeout_ns=100_000)
    p = _packets()
    component.on_packet(p[0])
    component.on_packet(p[2])
    engine.run()                # timeout releases p2; expectation moves on
    component.on_packet(p[1])   # late: handed straight up (event 3)
    assert delivered == [p[0], p[2], p[1]]


def test_two_gaps_released_one_per_timeout():
    engine = Engine()
    component, delivered = _component(engine, timeout_ns=100_000)
    p = _packets()
    component.on_packet(p[0])
    component.on_packet(p[2])                      # gap at p1, waits from t=0
    engine.schedule(80_000, component.on_packet, p[4])  # gap at p3, from t=80k
    engine.run(until=120_000)
    # First timeout (t=100k) releases only the run up to the next gap.
    assert delivered == [p[0], p[2]]
    engine.run()
    # p4's own wait budget expires 100k after *its* arrival (t=180k).
    assert delivered == [p[0], p[2], p[4]]
    assert component.timeouts_fired == 2
    assert engine.now >= 180_000


def test_first_packet_missing_buffers_from_birth():
    engine = Engine()
    component, delivered = _component(engine, timeout_ns=100_000)
    p = _packets()
    component.on_packet(p[1])   # no first flag, no state yet
    assert delivered == []
    component.on_packet(p[0])   # first arrives: both drain in order
    assert delivered == [p[0], p[1]]


def test_first_packet_missing_timeout_flushes():
    engine = Engine()
    component, delivered = _component(engine, timeout_ns=100_000)
    p = _packets()
    component.on_packet(p[1])
    component.on_packet(p[2])
    engine.run()
    assert delivered == [p[1], p[2]]  # transport sees the hole and reacts


def test_boosted_retransmission_is_unrotated():
    engine = Engine()
    component, delivered = _component(engine)
    p = _packets()
    component.on_packet(p[0])
    retx = mk_data(flow_id=1, seq=1000, payload=1000)
    retx.flowinfo = FlowInfo(rfs=boost_rfs(FLOW_SIZE - 1000, 2), retcnt=2)
    component.on_packet(retx)   # wire RFS is rotated; must still slot in
    assert delivered == [p[0], retx]


def test_duplicate_of_buffered_early_packet_ignored():
    engine = Engine()
    component, delivered = _component(engine)
    p = _packets()
    component.on_packet(p[0])
    component.on_packet(p[2])
    dup = _packets()[2]
    component.on_packet(dup)    # same tag already buffered
    component.on_packet(p[1])
    assert delivered == [p[0], p[1], p[2]]  # dup was dropped silently


def test_duplicate_of_delivered_packet_passes_up():
    engine = Engine()
    component, delivered = _component(engine)
    p = _packets()
    component.on_packet(p[0])
    dup = _packets()[0]
    component.on_packet(dup)    # tag above expectation: late duplicate
    assert delivered == [p[0], dup]


def test_unmarked_packets_bypass():
    engine = Engine()
    component, delivered = _component(engine)
    plain = mk_data(flow_id=9, seq=0, payload=500)
    component.on_packet(plain)
    assert delivered == [plain]
    assert component.active_flows() == 0


def test_flow_done_flushes_residue():
    engine = Engine()
    component, delivered = _component(engine)
    p = _packets()
    component.on_packet(p[2])   # early, buffered, no first packet yet
    component.flow_done(1)
    assert p[2] in delivered
    assert component.active_flows() == 0


def test_flows_are_independent():
    engine = Engine()
    component, delivered = _component(engine)
    a = _packets(flow_id=1)
    b = _packets(flow_id=2)
    component.on_packet(a[0])
    component.on_packet(b[0])
    component.on_packet(b[2])   # flow 2 goes out-of-order
    component.on_packet(a[1])   # flow 1 keeps flowing in-order
    assert a[1] in delivered
    assert b[2] not in delivered


def test_timer_disarms_when_gaps_fill():
    engine = Engine()
    component, delivered = _component(engine, timeout_ns=100_000)
    p = _packets()
    component.on_packet(p[0])
    component.on_packet(p[2])
    component.on_packet(p[1])
    engine.run()
    assert component.timeouts_fired == 0
    assert delivered == [p[0], p[1], p[2]]


def test_las_direction_increasing_tags():
    engine = Engine()
    component, delivered = _component(engine,
                                      discipline=MarkingDiscipline.LAS)
    size, payload = 4000, 1000
    packets = []
    for seq in range(0, size, payload):
        packet = mk_data(flow_id=1, seq=seq, payload=payload)
        packet.flowinfo = FlowInfo(rfs=seq, first=(seq == 0))
        packets.append(packet)
    component.on_packet(packets[0])
    component.on_packet(packets[2])  # early under LAS = larger tag
    assert delivered == [packets[0]]
    component.on_packet(packets[1])
    assert delivered == packets[:3]
