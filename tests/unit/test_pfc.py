"""PFC gates, class lanes, and DCQCN: the lossless-fabric unit surface."""

import pytest

from repro.metrics.collector import MetricsCollector
from repro.net.packet import data_packet
from repro.net.pfc import (
    MTU_WIRE_BYTES,
    PfcConfig,
    PfcGate,
    resolve_thresholds,
)
from repro.net.queues import ClassLaneQueue, DropTailQueue, RankedQueue
from repro.sim.engine import Engine
from repro.transport.base import TransportConfig
from repro.transport.dcqcn import ALPHA_UNIT, DcqcnSender
from tests.unit.test_transport_base import StubHost


# -- PfcConfig ----------------------------------------------------------------


def test_default_config_is_unconfigured():
    config = PfcConfig()
    assert not config.configured
    assert PfcConfig(num_classes=2, priority_map=(0, 1)).configured
    assert PfcConfig(enabled=True).configured


def test_config_validation():
    with pytest.raises(ValueError):
        PfcConfig(num_classes=0)
    with pytest.raises(ValueError):
        PfcConfig(priority_map=())
    with pytest.raises(ValueError):
        PfcConfig(num_classes=2, priority_map=(0, 2))
    with pytest.raises(ValueError):
        PfcConfig(xoff_bytes=1000, xon_bytes=2000)
    with pytest.raises(ValueError):
        PfcConfig(headroom_bytes=-1)


def test_resolve_thresholds_auto_math():
    config = PfcConfig(enabled=True, num_classes=2, priority_map=(0, 1))
    xoff, xon, headroom = resolve_thresholds(
        config, buffer_bytes=30_000, rate_bps=10_000_000_000,
        delay_ns=1_000)
    assert xoff == 30_000 // 4
    assert xon == xoff // 2
    # 2 x one-way BDP + 2 MTU, all-integer.
    assert headroom == 2 * (10_000_000_000 * 1_000 // 8_000_000_000) \
        + 2 * MTU_WIRE_BYTES


def test_resolve_thresholds_honours_zero_headroom():
    config = PfcConfig(enabled=True, xoff_bytes=5_000, xon_bytes=2_000,
                       headroom_bytes=0)
    assert resolve_thresholds(config, 30_000, 10**9, 1_000) \
        == (5_000, 2_000, 0)


# -- PfcGate state machine ----------------------------------------------------


class StubPort:
    """Records pfc_hold calls; enough Port surface for a gate."""

    def __init__(self):
        self.holds = []
        self.link = None

    def pfc_hold(self, pclass, hold):
        self.holds.append((pclass, hold))


class StubNetwork:
    fidelity = None


def _gate(engine, xoff=3000, xon=1000, headroom=2000):
    port = StubPort()
    gate = PfcGate(engine, StubNetwork(), "leaf0", 0, 0, port, "spine0",
                   True, delay_ns=100, xoff=xoff, xon=xon,
                   headroom=headroom)
    return gate, port


def _packet(payload=1460):  # wire size 1500 with headers
    packet = data_packet(1, 2, 7, seq=0, payload=payload)
    return packet


def test_gate_pauses_at_xoff_and_resumes_at_xon():
    engine = Engine()
    gate, port = _gate(engine)
    first, second = _packet(), _packet()
    assert gate.admit(first.wire_bytes)
    gate.charge(first)
    assert not gate.paused  # below XOFF
    assert gate.admit(second.wire_bytes)
    gate.charge(second)
    assert gate.paused and gate.pause_events == 1  # crossed XOFF
    engine.run()
    assert port.holds == [(0, True)]  # PAUSE after propagation delay
    gate.release(first)
    # Hysteresis: occupancy is between XON and XOFF, still paused.
    assert gate.paused
    gate.release(second)
    assert not gate.paused
    engine.run()
    assert port.holds == [(0, True), (0, False)]
    assert gate.occupancy == 0
    assert gate.pause_time_ns(engine.now) == gate.pause_ns


def test_gate_admits_into_headroom_then_drops():
    engine = Engine()
    gate, _ = _gate(engine, xoff=3000, xon=1500, headroom=2000)
    packets = [_packet() for _ in range(3)]
    for packet in packets[:2]:
        assert gate.admit(packet.wire_bytes)
        gate.charge(packet)
    assert gate.paused
    # Above XOFF: one more fits in headroom (3000 + 2000 = 5000) ...
    assert gate.admit(packets[2].wire_bytes)
    gate.charge(packets[2])
    # ... the next does not.
    overflow = _packet()
    assert not gate.admit(overflow.wire_bytes)
    assert gate.headroom_drops == 1


def test_zero_headroom_drops_every_post_xoff_arrival():
    engine = Engine()
    gate, _ = _gate(engine, xoff=3000, xon=1500, headroom=0)
    first, second = _packet(), _packet()
    gate.charge(first)
    # The crossing packet is always admitted (it triggers the pause) ...
    assert gate.admit(second.wire_bytes)
    gate.charge(second)
    assert gate.paused
    # ... but with zero headroom nothing after it is.
    assert not gate.admit(_packet().wire_bytes)
    assert gate.headroom_drops == 1


def test_release_clears_packet_charge_fields():
    engine = Engine()
    gate, _ = _gate(engine)
    packet = _packet()
    gate.charge(packet)
    assert packet.pfc_gate is gate
    assert packet.pfc_held == packet.wire_bytes
    gate.release(packet)
    assert packet.pfc_gate is None and packet.pfc_held == 0


# -- ClassLaneQueue -----------------------------------------------------------


def _lane_queue(n=2, capacity=10_000, cls=DropTailQueue):
    return ClassLaneQueue(cls(capacity) for _ in range(n))


def _classed(pclass, payload=100):
    packet = data_packet(1, 2, 7, seq=0, payload=payload)
    packet.pclass = pclass
    return packet


def test_lanes_admit_and_pop_in_strict_priority():
    queue = _lane_queue()
    low, high = _classed(1), _classed(0)
    queue.push(low, 0)
    queue.push(high, 0)
    assert len(queue) == 2
    assert queue.pop(0) is high  # lane 0 drains first
    assert queue.pop(0) is low


def test_lane_aggregates_sum_over_lanes():
    queue = _lane_queue()
    queue.push(_classed(0), 0)
    queue.push(_classed(1), 0)
    assert queue.bytes == sum(lane.bytes for lane in queue.lanes)
    assert queue.capacity_bytes == 20_000
    assert queue.stats.enqueued == 2


def test_pop_unpaused_skips_held_lanes():
    queue = _lane_queue()
    first, second = _classed(0), _classed(1)
    queue.push(first, 0)
    queue.push(second, 0)
    assert queue.pop_unpaused(0b01, 0) is second  # class 0 held
    assert queue.pop_unpaused(0b11, 0) is None    # both held
    assert queue.pop_unpaused(0b00, 0) is first


def test_lane_for_returns_the_class_lane():
    queue = _lane_queue(cls=RankedQueue)
    packet = _classed(1)
    assert queue.lane_for(packet) is queue.lanes[1]


# -- DCQCN --------------------------------------------------------------------


def _dcqcn(**config_kwargs):
    engine = Engine()
    sender = DcqcnSender(engine, StubHost(engine, 1), 7, 2, 1_000_000,
                         TransportConfig(**config_kwargs),
                         MetricsCollector())
    return sender, engine


def test_dcqcn_parks_cwnd_and_forces_ecn():
    sender, _ = _dcqcn()
    assert sender.config.ecn_capable
    assert sender.cwnd == sender.config.max_cwnd


def test_dcqcn_state_is_all_integer():
    sender, _ = _dcqcn(dcqcn_rate_bps=10_000_000_000)
    for value in (sender.rate_bps, sender.target_rate_bps,
                  sender.alpha_fp, sender.pacing_gap_ns()):
        assert isinstance(value, int)


def test_dcqcn_marked_window_cuts_rate_towards_alpha():
    sender, _ = _dcqcn(dcqcn_rate_bps=10_000_000_000)
    sender.alpha_fp = ALPHA_UNIT  # worst case: everything marked
    before = sender.rate_bps
    sender.snd_una = 100_000
    sender._window_end = 0
    sender._window_acked = 10_000
    sender._window_marked = 10_000
    sender._end_observation_window()
    assert sender.target_rate_bps == before  # pre-cut rate is the target
    assert sender.rate_bps < before
    assert sender.rate_bps >= sender.min_rate_bps
    assert sender._stage == 0


def test_dcqcn_unmarked_window_decays_alpha_keeps_rate():
    sender, _ = _dcqcn(dcqcn_rate_bps=10_000_000_000)
    before_rate, before_alpha = sender.rate_bps, sender.alpha_fp
    sender.snd_una = 100_000
    sender._window_end = 0
    sender._window_acked = 10_000
    sender._window_marked = 0
    sender._end_observation_window()
    assert sender.rate_bps == before_rate
    assert sender.alpha_fp < before_alpha


def test_dcqcn_timer_recovers_then_increases():
    sender, _ = _dcqcn(dcqcn_rate_bps=10_000_000_000,
                       dcqcn_fast_recovery_stages=2)
    sender.rate_bps = 1_000_000_000
    sender.target_rate_bps = 2_000_000_000
    sender._on_rate_timer()
    assert sender.rate_bps == 1_500_000_000   # fast recovery: halve gap
    assert sender.target_rate_bps == 2_000_000_000
    sender._on_rate_timer()
    target = sender.target_rate_bps
    sender._on_rate_timer()                   # past fast stages
    assert sender.target_rate_bps == target + sender._rate_ai_bps


def test_dcqcn_rto_halves_rate():
    sender, _ = _dcqcn(dcqcn_rate_bps=10_000_000_000)
    sender.on_rto_cc()
    assert sender.rate_bps == 5_000_000_000
    assert sender.cc_state()[0] == "dcqcn"


def test_dcqcn_pacing_gap_tracks_rate():
    sender, _ = _dcqcn(dcqcn_rate_bps=10_000_000_000)
    slow = sender.pacing_gap_ns()
    sender.rate_bps *= 2
    assert sender.pacing_gap_ns() * 2 == slow
