"""Public API surface: blessed exports, façade, deprecation shims."""

import warnings

import pytest

import repro
from repro import Experiment, ExperimentConfig
from repro.net.topology import FatTree

#: The blessed public surface.  Adding a name here is an API decision —
#: update README/DESIGN when this changes; removing one needs a
#: deprecation shim in ``repro.__init__._DEPRECATED`` first.
PUBLIC_SURFACE = [
    "BackgroundSpec",
    "CoflowSpec",
    "DutyCycleSpec",
    "Experiment",
    "ExperimentConfig",
    "FatTree",
    "FaultSpec",
    "IncastSpec",
    "LeafSpine",
    "RunReport",
    "RunResult",
    "SkewSpec",
    "SupervisorPolicy",
    "SweepReport",
    "TraceConfig",
    "WorkloadSpec",
    "__version__",
    "parse_faults",
    "parse_workloads",
    "run_digest",
    "run_experiment",
    "run_supervised",
    "sweep",
]

DEPRECATED_SURFACE = [
    "FlowInfo",
    "MarkingComponent",
    "MarkingDiscipline",
    "OrderingComponent",
    "SystemConfig",
    "VertigoSwitchParams",
    "WorkloadConfig",
]


def test_public_surface_snapshot():
    assert sorted(repro.__all__) == PUBLIC_SURFACE


def test_dir_lists_blessed_and_deprecated_names():
    listed = dir(repro)
    for name in PUBLIC_SURFACE + DEPRECATED_SURFACE:
        assert name in listed


def test_deprecated_imports_warn_but_work():
    for name in DEPRECATED_SURFACE:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            obj = getattr(repro, name)
        assert obj is not None
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught), name


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.NoSuchThing


def test_builder_matches_hand_built_config():
    built = (Experiment.bench()
             .system("vertigo")
             .transport("dctcp")
             .workload(bg_load=0.3, incast_load=0.1)
             .sim_ms(20)
             .seed(3)
             .build())
    direct = ExperimentConfig.bench_profile(
        system="vertigo", transport="dctcp", bg_load=0.3,
        incast_load=0.1, sim_time_ns=20_000_000, seed=3)
    # Topology instances compare by identity; everything else by value.
    assert repr(built.topology) == repr(direct.topology)
    for name in ("network", "system", "transport_name", "transport",
                 "workload", "sim_time_ns", "seed", "faults",
                 "telemetry_interval_ns", "sanitize", "trace"):
        assert getattr(built, name) == getattr(direct, name), name


def test_builder_applies_system_kwargs_and_overrides():
    config = (Experiment.bench()
              .system("dibs", dibs_max_deflections=5)
              .transport("swift", init_rto_ns=70_000_000)
              .build())
    assert config.system.name == "dibs"
    assert config.system.dibs_max_deflections == 5
    assert config.transport_name == "swift"
    assert config.transport.init_rto_ns == 70_000_000


def test_builder_topology_faults_trace_sanitize():
    config = (Experiment.bench()
              .topology(FatTree(4))
              .faults("link:leaf0-spine0:down@2ms,up@5ms")
              .trace(level="packet", sample_us=100)
              .sanitize()
              .build())
    assert isinstance(config.topology, FatTree)
    assert [spec.kind for spec in config.faults] == ["down", "up"]
    assert config.trace.level == "packet"
    assert config.trace.sample_period_ns == 100_000
    assert config.sanitize


def test_builder_rejects_unknown_profile():
    with pytest.raises(ValueError):
        Experiment("warp")


def test_paper_profile_overrides():
    config = (Experiment.paper()
              .system("ecmp")
              .sim_ms(50)
              .seed(9)
              .build())
    assert config.topology.n_hosts == 320
    assert config.system.name == "ecmp"
    assert config.sim_time_ns == 50_000_000
    assert config.seed == 9


def test_builder_workload_specs_and_strings():
    from repro import CoflowSpec

    config = (Experiment.bench()
              .workload(CoflowSpec(width=4, cps=500),
                        "background:load=0.1,skew=zipf,zipf_s=1.4",
                        warmup="2ms", cooldown=1_000_000)
              .build())
    kinds = [spec.kind for spec in config.workload.specs]
    assert kinds == ["coflow", "background"]
    assert config.workload.specs[1].skew.kind == "zipf"
    assert config.workload.warmup_ns == 2_000_000
    assert config.workload.cooldown_ns == 1_000_000


def test_builder_workload_rejects_specs_plus_legacy_kwargs():
    with pytest.raises(ValueError):
        Experiment.bench().workload("background:load=0.1", bg_load=0.2)
