"""Cuckoo filter."""

import pytest

from repro.core.cuckoo import CuckooFilter


def test_insert_then_contains():
    filt = CuckooFilter(capacity=64)
    assert filt.insert(12345)
    assert filt.contains(12345)
    assert 12345 in filt


def test_absent_items_usually_not_contained():
    filt = CuckooFilter(capacity=1024, seed=1)
    for item in range(100):
        filt.insert(item)
    false_positives = sum(filt.contains(item)
                          for item in range(10_000, 11_000))
    assert false_positives < 20  # 16-bit fingerprints -> ~0.05% expected


def test_delete_removes_membership():
    filt = CuckooFilter(capacity=64)
    filt.insert(42)
    assert filt.delete(42)
    assert not filt.contains(42)
    assert len(filt) == 0


def test_delete_absent_returns_false():
    filt = CuckooFilter(capacity=64)
    assert not filt.delete(7)


def test_no_false_negatives_under_load():
    filt = CuckooFilter(capacity=2048, seed=3)
    inserted = []
    for item in range(1500):  # ~73% load factor
        if filt.insert(item):
            inserted.append(item)
    assert len(inserted) == 1500
    missing = [item for item in inserted if not filt.contains(item)]
    assert missing == []


def test_insert_fails_gracefully_when_full():
    filt = CuckooFilter(capacity=8, bucket_size=2)
    results = [filt.insert(item) for item in range(100)]
    assert not all(results)          # eventually refuses
    assert any(results)              # but accepted plenty first
    # Every reported-inserted item is still findable.
    for item, accepted in enumerate(results):
        if accepted:
            assert filt.contains(item)


def test_duplicate_inserts_take_space():
    filt = CuckooFilter(capacity=64)
    filt.insert(5)
    filt.insert(5)
    assert len(filt) == 2
    filt.delete(5)
    assert filt.contains(5)  # one copy remains
    filt.delete(5)
    assert not filt.contains(5)


def test_load_factor():
    filt = CuckooFilter(capacity=64, bucket_size=4)
    assert filt.load_factor() == 0.0
    filt.insert(1)
    assert 0 < filt.load_factor() <= 1


def test_capacity_validation():
    with pytest.raises(ValueError):
        CuckooFilter(capacity=1, bucket_size=4)


def test_seeds_give_different_layouts():
    a = CuckooFilter(capacity=64, seed=1)
    b = CuckooFilter(capacity=64, seed=2)
    a.insert(99)
    b.insert(99)
    assert a._fingerprint(99) != b._fingerprint(99) \
        or a._index(99) != b._index(99)
