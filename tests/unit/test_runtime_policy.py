"""Supervision policy: env resolution and deterministic backoff."""

import pytest

from repro.runtime import SupervisorPolicy
from repro.runtime.policy import ENV_MAX_RETRIES, ENV_RUN_TIMEOUT


def test_defaults():
    policy = SupervisorPolicy()
    assert policy.max_retries == 2
    assert policy.run_timeout_s is None
    assert policy.backoff_base_s == 0.25
    assert policy.backoff_cap_s == 8.0


def test_from_env_reads_variables(monkeypatch):
    monkeypatch.setenv(ENV_RUN_TIMEOUT, "12.5")
    monkeypatch.setenv(ENV_MAX_RETRIES, "5")
    policy = SupervisorPolicy.from_env()
    assert policy.run_timeout_s == 12.5
    assert policy.max_retries == 5


def test_explicit_arguments_win_over_env(monkeypatch):
    monkeypatch.setenv(ENV_RUN_TIMEOUT, "12.5")
    monkeypatch.setenv(ENV_MAX_RETRIES, "5")
    policy = SupervisorPolicy.from_env(run_timeout_s=3.0, max_retries=1)
    assert policy.run_timeout_s == 3.0
    assert policy.max_retries == 1


def test_env_whitespace_and_empty_tolerated(monkeypatch):
    monkeypatch.setenv(ENV_RUN_TIMEOUT, "  2.0  ")
    assert SupervisorPolicy.from_env().run_timeout_s == 2.0
    monkeypatch.setenv(ENV_RUN_TIMEOUT, "   ")
    assert SupervisorPolicy.from_env().run_timeout_s is None


@pytest.mark.parametrize("name,value", [
    (ENV_RUN_TIMEOUT, "soon"),
    (ENV_RUN_TIMEOUT, "-1"),
    (ENV_RUN_TIMEOUT, "0"),
    (ENV_MAX_RETRIES, "often"),
    (ENV_MAX_RETRIES, "-2"),
])
def test_malformed_env_raises_one_line_valueerror(monkeypatch, name, value):
    monkeypatch.setenv(name, value)
    with pytest.raises(ValueError) as excinfo:
        SupervisorPolicy.from_env()
    assert name in str(excinfo.value)
    assert "\n" not in str(excinfo.value)


def test_constructor_validation():
    with pytest.raises(ValueError):
        SupervisorPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        SupervisorPolicy(run_timeout_s=0)
    with pytest.raises(ValueError):
        SupervisorPolicy(backoff_base_s=-0.1)


def test_backoff_is_capped_exponential_with_jitter():
    policy = SupervisorPolicy(backoff_base_s=0.25, backoff_cap_s=2.0)
    rng = policy.backoff_stream()
    for attempt, nominal in ((1, 0.25), (2, 0.5), (3, 1.0), (4, 2.0),
                             (5, 2.0)):  # capped from attempt 4 on
        wait = policy.backoff_s(attempt, rng)
        assert 0.5 * nominal <= wait <= nominal


def test_backoff_schedule_is_deterministic():
    policy = SupervisorPolicy(backoff_seed=7)
    first = [policy.backoff_s(attempt, policy.backoff_stream())
             for attempt in (1, 2, 3)]
    second = [policy.backoff_s(attempt, policy.backoff_stream())
              for attempt in (1, 2, 3)]
    assert first == second
    # A different seed gives a different (but equally fixed) schedule.
    other = SupervisorPolicy(backoff_seed=8)
    assert first != [other.backoff_s(attempt, other.backoff_stream())
                     for attempt in (1, 2, 3)]


def test_backoff_attempt_is_one_based():
    policy = SupervisorPolicy()
    with pytest.raises(ValueError):
        policy.backoff_s(0, policy.backoff_stream())
