"""Dynamic-Threshold shared buffer pool."""

import pytest

from repro.net.queues import DropTailQueue, SharedBufferPool
from tests.helpers import mk_data


def test_pool_validation():
    with pytest.raises(ValueError):
        SharedBufferPool(0)
    with pytest.raises(ValueError):
        SharedBufferPool(1000, alpha=0)


def test_threshold_shrinks_as_pool_fills():
    pool = SharedBufferPool(10_000, alpha=1.0)
    assert pool.threshold() == 10_000
    pool.on_push(4_000)
    assert pool.threshold() == 6_000


def test_single_queue_can_exceed_nominal_share():
    """The DT win: one hot queue borrows idle ports' buffer."""
    pool = SharedBufferPool(4 * 3_000, alpha=1.0)
    queues = [DropTailQueue(3_000, pool=pool) for _ in range(4)]
    hot = queues[0]
    pushed = 0
    packet = mk_data(payload=960)  # 1000 wire bytes
    while hot.fits(packet):
        hot.push(packet)
        pushed += 1
        packet = mk_data(payload=960)
    # Static per-port would cap at 3 packets; DT alpha=1 admits ~6.
    assert pushed > 3


def test_dt_equilibrium_respects_alpha():
    # With alpha=1 and one queue: q <= total - q  ->  q <= total/2.
    pool = SharedBufferPool(10_000, alpha=1.0)
    queue = DropTailQueue(10_000, pool=pool)
    packet = mk_data(payload=960)
    while queue.fits(packet):
        queue.push(packet)
        packet = mk_data(payload=960)
    assert queue.bytes <= 5_000 + 1_000


def test_pool_never_overcommits_total():
    pool = SharedBufferPool(5_000, alpha=100.0)  # huge alpha
    queues = [DropTailQueue(5_000, pool=pool) for _ in range(3)]
    packet = mk_data(payload=960)
    total = 0
    progress = True
    while progress:
        progress = False
        for queue in queues:
            if queue.fits(packet):
                queue.push(packet)
                total += packet.wire_bytes
                packet = mk_data(payload=960)
                progress = True
    assert total <= 5_000
    assert pool.used_bytes == total


def test_pop_releases_pool_space():
    pool = SharedBufferPool(3_000, alpha=1.0)
    queue = DropTailQueue(3_000, pool=pool)
    packet = mk_data(payload=960)
    queue.push(packet)
    assert pool.used_bytes == 1_000
    queue.pop()
    assert pool.used_bytes == 0


def test_expand_grows_capacity():
    pool = SharedBufferPool(1_000)
    pool.expand(2_000)
    assert pool.total_bytes == 3_000


def test_free_bytes_reflects_dt_limit():
    pool = SharedBufferPool(8_000, alpha=0.5)
    queue = DropTailQueue(8_000, pool=pool)
    assert queue.free_bytes == 4_000  # alpha * free


def test_shared_buffer_network_runs():
    from dataclasses import replace

    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_experiment

    config = ExperimentConfig.bench_profile(
        system="ecmp", transport="dctcp", bg_load=0.1, incast_qps=60,
        incast_scale=6, incast_flow_bytes=5_000, sim_time_ns=30_000_000)
    config.network = replace(config.network, shared_buffer_alpha=1.0)
    result = run_experiment(config)
    assert result.metrics.counters.delivered > 0
    # Every switch got one pool sized buffer x ports; pools balance.
    for name, index, queue in result.network.all_switch_queues():
        assert queue.pool is not None
        assert queue.pool.total_bytes \
            == 30_000 * len(result.network.switches[name].ports)
        assert 0 <= queue.pool.used_bytes <= queue.pool.total_bytes


def test_shared_buffer_absorbs_bursts_better_than_static():
    """The classic DT result: a shared buffer takes a bigger incast
    burst at one port, so fewer drops than static partitioning."""
    from dataclasses import replace

    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_experiment

    base = dict(system="ecmp", transport="dctcp", bg_load=0.0,
                incast_qps=120, incast_scale=12, incast_flow_bytes=10_000,
                sim_time_ns=40_000_000)
    static = run_experiment(ExperimentConfig.bench_profile(**base))
    shared_cfg = ExperimentConfig.bench_profile(**base)
    shared_cfg.network = replace(shared_cfg.network,
                                 shared_buffer_alpha=2.0)
    shared = run_experiment(shared_cfg)
    assert shared.metrics.counters.total_drops \
        < static.metrics.counters.total_drops
