"""Workload spec dataclasses and the ``--workload`` directive grammar."""

import pickle

import pytest

from repro.workload.spec import (
    BackgroundSpec,
    CoflowSpec,
    DutyCycleSpec,
    IncastSpec,
    SkewSpec,
    WorkloadParseError,
    WorkloadSpec,
    parse_workload,
    parse_workloads,
    specs_from_legacy,
)


# -- parsing -----------------------------------------------------------------

def test_parse_bare_kinds_give_defaults():
    assert parse_workload("background") == BackgroundSpec()
    assert parse_workload("incast") == IncastSpec()
    assert parse_workload("coflow") == CoflowSpec()
    assert parse_workload("duty_cycle") == DutyCycleSpec()


def test_parse_duty_cycle_accepts_hyphen():
    assert parse_workload("duty-cycle:duty=0.5") == DutyCycleSpec(duty=0.5)


def test_parse_background_options_and_aliases():
    spec = parse_workload("background:load=0.3,dist=web_search,cap=200000")
    assert spec == BackgroundSpec(load=0.3, distribution="web_search",
                                  size_cap=200_000)
    alias = parse_workload(
        "background:load=0.3,distribution=web_search,size_cap=200000")
    assert alias == spec


def test_parse_incast_options():
    spec = parse_workload("incast:scale=24,load=0.1,bytes=20000")
    assert spec == IncastSpec(load=0.1, scale=24, flow_bytes=20_000)
    assert parse_workload("incast:qps=150").qps == 150


def test_parse_coflow_options():
    spec = parse_workload(
        "coflow:width=8,stages=2,load=0.2,pattern=partition_aggregate")
    assert spec == CoflowSpec(width=8, stages=2, load=0.2,
                              pattern="partition_aggregate")


def test_parse_duty_cycle_period_accepts_time_suffix():
    spec = parse_workload("duty_cycle:load=0.3,duty=0.1,period=1ms")
    assert spec == DutyCycleSpec(load=0.3, duty=0.1, period_ns=1_000_000)
    assert parse_workload("duty_cycle:period=500").period_ns == 500


def test_parse_skew_options():
    spec = parse_workload("background:load=0.4,skew=zipf,zipf_s=1.4")
    assert spec.skew == SkewSpec(kind="zipf", zipf_s=1.4)
    spec = parse_workload(
        "incast:skew=hotrack,hot_fraction=0.8,hot_racks=2")
    assert spec.skew == SkewSpec(kind="hotrack", hot_fraction=0.8,
                                 hot_racks=2)


def test_parse_whitespace_and_case_tolerated():
    spec = parse_workload("  Background : LOAD = 0.25 ")
    assert spec == BackgroundSpec(load=0.25)


def test_parse_workloads_returns_tuple_in_order():
    specs = parse_workloads(["background:load=0.2", "coflow:width=4"])
    assert specs == (BackgroundSpec(load=0.2), CoflowSpec(width=4))
    assert parse_workloads([]) == ()
    assert parse_workloads(None) == ()


@pytest.mark.parametrize("directive", [
    "warp",                                  # unknown kind
    "background:burst=9",                    # unknown option
    "background:load",                       # missing =value
    "background:load=much",                  # unparseable value
    "coflow:pattern=ring",                   # bad enum
    "incast:load=0.1,qps=50",                # both load and qps
    "duty_cycle:duty=0",                     # duty out of range
    "duty_cycle:period=0",                   # non-positive period
    "background:zipf_s=1.4",                 # skew option without skew=
    "background:skew=diagonal",              # unknown skew kind
    "background:skew=zipf,zipf_s=-1",        # bad skew parameter
])
def test_parse_errors_are_workload_parse_errors(directive):
    with pytest.raises(WorkloadParseError):
        parse_workload(directive)
    # WorkloadParseError is a ValueError, so legacy handlers still catch it.
    with pytest.raises(ValueError):
        parse_workload(directive)


def test_parse_error_names_the_directive():
    with pytest.raises(WorkloadParseError, match="burst"):
        parse_workload("background:burst=9")


# -- spec validation ---------------------------------------------------------

def test_incast_spec_rejects_load_and_qps():
    with pytest.raises(ValueError):
        IncastSpec(load=0.1, qps=100)


def test_coflow_spec_rejects_load_and_cps():
    with pytest.raises(ValueError):
        CoflowSpec(load=0.1, cps=5)


@pytest.mark.parametrize("bad", [
    lambda: BackgroundSpec(load=-0.1),
    lambda: BackgroundSpec(size_cap=0),
    lambda: IncastSpec(scale=0),
    lambda: CoflowSpec(width=0),
    lambda: CoflowSpec(stages=0),
    lambda: CoflowSpec(pattern="ring"),
    lambda: DutyCycleSpec(duty=1.5),
    lambda: DutyCycleSpec(period_ns=0),
    lambda: DutyCycleSpec(period_ns=1.5e6),   # float ns rejected
    lambda: SkewSpec(kind="diagonal"),
    lambda: SkewSpec(zipf_s=0),
    lambda: SkewSpec(hot_fraction=0.0),
    lambda: SkewSpec(hot_racks=0),
])
def test_spec_validation(bad):
    with pytest.raises(ValueError):
        bad()


def test_flows_per_coflow():
    assert CoflowSpec(width=8, stages=2).flows_per_coflow == 128
    assert CoflowSpec(width=8, stages=2,
                      pattern="partition_aggregate").flows_per_coflow == 32


def test_offered_load():
    assert BackgroundSpec(load=0.3).offered_load == 0.3
    assert IncastSpec(qps=100).offered_load == 0.0
    assert IncastSpec(load=0.1).offered_load == 0.1
    assert CoflowSpec(load=0.2).offered_load == 0.2
    assert DutyCycleSpec(load=0.4, duty=0.1).offered_load == 0.4


def test_specs_are_frozen_hashable_picklable():
    spec = CoflowSpec(width=4, skew=SkewSpec(kind="zipf"))
    with pytest.raises(Exception):
        spec.width = 8
    assert hash(spec) == hash(CoflowSpec(width=4,
                                         skew=SkewSpec(kind="zipf")))
    assert pickle.loads(pickle.dumps(spec)) == spec
    assert isinstance(spec, WorkloadSpec)


def test_specs_from_legacy_defaults():
    background, incast = specs_from_legacy()
    assert background == BackgroundSpec(load=0.15)
    assert incast == IncastSpec()
    background, incast = specs_from_legacy(
        bg_load=0.5, bg_size_cap=100_000, incast_qps=60, incast_scale=8)
    assert background.load == 0.5 and background.size_cap == 100_000
    assert incast.qps == 60 and incast.scale == 8
