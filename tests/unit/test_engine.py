"""Event calendar and simulation loop."""

import pytest

from repro.sim.engine import COMPACTION_MIN_ENTRIES, Engine
from repro.sim.timers import Timer


def test_events_run_in_time_order():
    engine = Engine()
    order = []
    engine.schedule(30, order.append, "c")
    engine.schedule(10, order.append, "a")
    engine.schedule(20, order.append, "b")
    engine.run()
    assert order == ["a", "b", "c"]
    assert engine.now == 30


def test_same_time_events_run_fifo():
    engine = Engine()
    order = []
    for tag in range(5):
        engine.schedule(100, order.append, tag)
    engine.run()
    assert order == [0, 1, 2, 3, 4]


def test_priority_breaks_ties():
    engine = Engine()
    order = []
    engine.schedule(100, order.append, "low", priority=5)
    engine.schedule(100, order.append, "high", priority=-5)
    engine.run()
    assert order == ["high", "low"]


def test_cancelled_events_do_not_run():
    engine = Engine()
    order = []
    event = engine.schedule(10, order.append, "x")
    engine.schedule(5, order.append, "y")
    event.cancel()
    engine.run()
    assert order == ["y"]


def test_run_until_stops_and_advances_clock():
    engine = Engine()
    order = []
    engine.schedule(10, order.append, 1)
    engine.schedule(100, order.append, 2)
    executed = engine.run(until=50)
    assert executed == 1
    assert order == [1]
    assert engine.now == 50  # clock advanced to the horizon
    engine.run()
    assert order == [1, 2]


def test_events_scheduled_during_run_execute():
    engine = Engine()
    order = []

    def first():
        order.append("first")
        engine.schedule(5, order.append, "nested")

    engine.schedule(10, first)
    engine.run()
    assert order == ["first", "nested"]
    assert engine.now == 15


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(ValueError):
        engine.schedule(-1, lambda: None)


def test_schedule_at_absolute_time():
    engine = Engine()
    seen = []
    engine.schedule_at(42, seen.append, "x")
    engine.run()
    assert engine.now == 42
    assert seen == ["x"]


def test_pending_counts_live_events():
    engine = Engine()
    keep = engine.schedule(10, lambda: None)
    drop = engine.schedule(20, lambda: None)
    drop.cancel()
    assert engine.pending() == 1
    assert keep is not None


def test_peek_time_skips_cancelled():
    engine = Engine()
    first = engine.schedule(5, lambda: None)
    engine.schedule(9, lambda: None)
    first.cancel()
    assert engine.peek_time() == 9


def test_max_events_bound():
    engine = Engine()
    for _ in range(10):
        engine.schedule(1, lambda: None)
    executed = engine.run(max_events=3)
    assert executed == 3
    assert engine.pending() == 7


def test_events_executed_accumulates():
    engine = Engine()
    engine.schedule(1, lambda: None)
    engine.schedule(2, lambda: None)
    engine.run()
    assert engine.events_executed == 2


# -- tuple fast path ---------------------------------------------------------


def test_fast_path_runs_in_time_order_with_events():
    engine = Engine()
    order = []
    engine.schedule(30, order.append, "c")
    engine.schedule_fast(10, order.append, "a")
    engine.schedule(20, order.append, "b")
    engine.run()
    assert order == ["a", "b", "c"]
    assert engine.now == 30


def test_fast_path_interleaves_fifo_with_event_path():
    # Same timestamp: both paths share one sequence counter, so execution
    # order is exactly insertion order (priority still wins first).
    engine = Engine()
    order = []
    engine.schedule(10, order.append, "a")
    engine.schedule_fast(10, order.append, "b")
    engine.schedule(10, order.append, "d", priority=5)
    engine.schedule_fast(10, order.append, "c")
    engine.run()
    assert order == ["a", "b", "c", "d"]


def test_fast_path_counts_and_clock():
    engine = Engine()
    engine.schedule_fast(7, lambda: None)
    assert engine.pending() == 1
    assert engine.peek_time() == 7
    engine.run()
    assert engine.now == 7
    assert engine.events_executed == 1


def test_fast_path_negative_delay_rejected():
    with pytest.raises(ValueError):
        Engine().schedule_fast(-1, lambda: None)


def test_fast_path_survives_cancellation_around_it():
    engine = Engine()
    order = []
    doomed = engine.schedule(10, order.append, "doomed")
    engine.schedule_fast(10, order.append, "kept")
    doomed.cancel()
    engine.run()
    assert order == ["kept"]


# -- lazy cancellation + heap compaction -------------------------------------


def test_retransmit_timer_resets_bound_heap_growth():
    # The pathological pattern from transports: the RTO timer is re-armed
    # on every ACK, cancelling the previous event each time.  Without
    # compaction the calendar keeps every tombstone (10k entries here).
    engine = Engine()
    fired = []
    rto = Timer(engine, fired.append, "rto")
    for _ in range(10_000):
        rto.start(1_000)
    assert len(engine._heap) <= 2 * COMPACTION_MIN_ENTRIES
    assert engine.pending() == 1
    engine.run()
    assert fired == ["rto"]
    assert engine.now == 1_000


def test_compaction_drops_tombstones_and_keeps_order():
    engine = Engine()
    fired = []
    events = [engine.schedule(1_000 + i, fired.append, i)
              for i in range(200)]
    for event in events[:150]:
        event.cancel()  # >50% cancelled on a big heap -> compaction
    assert len(engine._heap) < 150  # tombstones physically removed
    engine.run()
    assert fired == list(range(150, 200))


def test_small_heaps_never_compact():
    # Below the size floor tombstones are only dropped lazily at pop
    # time, so tiny calendars never pay the compaction churn.
    engine = Engine()
    events = [engine.schedule(10 + i, lambda: None) for i in range(10)]
    for event in events:
        event.cancel()
    assert len(engine._heap) == 10
    assert engine.pending() == 0
    engine.run()
    assert engine.events_executed == 0
