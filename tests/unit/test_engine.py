"""Event calendar and simulation loop."""

import pytest

from repro.sim.engine import Engine


def test_events_run_in_time_order():
    engine = Engine()
    order = []
    engine.schedule(30, order.append, "c")
    engine.schedule(10, order.append, "a")
    engine.schedule(20, order.append, "b")
    engine.run()
    assert order == ["a", "b", "c"]
    assert engine.now == 30


def test_same_time_events_run_fifo():
    engine = Engine()
    order = []
    for tag in range(5):
        engine.schedule(100, order.append, tag)
    engine.run()
    assert order == [0, 1, 2, 3, 4]


def test_priority_breaks_ties():
    engine = Engine()
    order = []
    engine.schedule(100, order.append, "low", priority=5)
    engine.schedule(100, order.append, "high", priority=-5)
    engine.run()
    assert order == ["high", "low"]


def test_cancelled_events_do_not_run():
    engine = Engine()
    order = []
    event = engine.schedule(10, order.append, "x")
    engine.schedule(5, order.append, "y")
    event.cancel()
    engine.run()
    assert order == ["y"]


def test_run_until_stops_and_advances_clock():
    engine = Engine()
    order = []
    engine.schedule(10, order.append, 1)
    engine.schedule(100, order.append, 2)
    executed = engine.run(until=50)
    assert executed == 1
    assert order == [1]
    assert engine.now == 50  # clock advanced to the horizon
    engine.run()
    assert order == [1, 2]


def test_events_scheduled_during_run_execute():
    engine = Engine()
    order = []

    def first():
        order.append("first")
        engine.schedule(5, order.append, "nested")

    engine.schedule(10, first)
    engine.run()
    assert order == ["first", "nested"]
    assert engine.now == 15


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(ValueError):
        engine.schedule(-1, lambda: None)


def test_schedule_at_absolute_time():
    engine = Engine()
    seen = []
    engine.schedule_at(42, seen.append, "x")
    engine.run()
    assert engine.now == 42
    assert seen == ["x"]


def test_pending_counts_live_events():
    engine = Engine()
    keep = engine.schedule(10, lambda: None)
    drop = engine.schedule(20, lambda: None)
    drop.cancel()
    assert engine.pending() == 1
    assert keep is not None


def test_peek_time_skips_cancelled():
    engine = Engine()
    first = engine.schedule(5, lambda: None)
    engine.schedule(9, lambda: None)
    first.cancel()
    assert engine.peek_time() == 9


def test_max_events_bound():
    engine = Engine()
    for _ in range(10):
        engine.schedule(1, lambda: None)
    executed = engine.run(max_events=3)
    assert executed == 3
    assert engine.pending() == 7


def test_events_executed_accumulates():
    engine = Engine()
    engine.schedule(1, lambda: None)
    engine.schedule(2, lambda: None)
    engine.run()
    assert engine.events_executed == 2
