"""Fault specs, the --fault grammar, and link/network runtime rewiring."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.faults import (
    FaultInjector,
    FaultSpec,
    cable_key,
    parse_fault,
    parse_faults,
    parse_rate_bps,
    parse_time_ns,
)
from repro.forwarding.ecmp import EcmpPolicy
from repro.host.host import HostStackConfig
from repro.metrics.collector import MetricsCollector
from repro.net.builder import NetworkParams, build_network
from repro.net.link import Link
from repro.net.topology import LeafSpine
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import MILLISECOND, mbps
from repro.transport.reno import RenoSender
from tests.helpers import SinkDevice, mk_data


# -- FaultSpec validation ------------------------------------------------------


def test_spec_normalizes_link_order():
    spec = FaultSpec(kind="down", link=("spine1", "leaf0"), at_ns=5)
    assert spec.link == ("leaf0", "spine1")
    assert spec == FaultSpec(kind="down", link=("leaf0", "spine1"), at_ns=5)


def test_spec_rejects_bad_kind_and_times():
    with pytest.raises(ValueError):
        FaultSpec(kind="explode", link=("a", "b"), at_ns=0)
    with pytest.raises(ValueError):
        FaultSpec(kind="down", link=("a", "b"), at_ns=-1)
    with pytest.raises(ValueError):
        FaultSpec(kind="down", link=("a", "b"), at_ns=1.5)  # noqa: VR003


def test_spec_kind_specific_fields():
    with pytest.raises(ValueError):
        FaultSpec(kind="rate", link=("a", "b"), at_ns=0)  # missing rate
    with pytest.raises(ValueError):
        FaultSpec(kind="loss", link=("a", "b"), at_ns=0, loss_rate=1.0)
    with pytest.raises(ValueError):
        FaultSpec(kind="down", link=("a", "b"), at_ns=0, rate_bps=10)
    FaultSpec(kind="rate", link=("a", "b"), at_ns=0, rate_bps=10)
    FaultSpec(kind="loss", link=("a", "b"), at_ns=0, loss_rate=0.0)


def test_specs_are_hashable_and_picklable():
    import pickle

    spec = FaultSpec(kind="rate", link=("a", "b"), at_ns=7, rate_bps=100)
    assert pickle.loads(pickle.dumps(spec)) == spec
    assert len({spec, spec}) == 1


# -- parsing -------------------------------------------------------------------


def test_parse_time_and_rate():
    assert parse_time_ns("50ms") == 50 * MILLISECOND
    assert parse_time_ns("3us") == 3_000
    assert parse_time_ns("1500") == 1_500
    assert parse_time_ns("1s") == 1_000_000_000
    assert parse_rate_bps("40mbps") == mbps(40)
    assert parse_rate_bps("2gbps") == 2_000_000_000
    assert parse_rate_bps("9600") == 9_600
    with pytest.raises(ValueError):
        parse_time_ns("fast")
    with pytest.raises(ValueError):
        parse_rate_bps("many")


def test_parse_fault_down_up_directive():
    specs = parse_fault("link:leaf0-spine1:down@50ms,up@120ms")
    assert specs == (
        FaultSpec(kind="down", link=("leaf0", "spine1"),
                  at_ns=50 * MILLISECOND),
        FaultSpec(kind="up", link=("leaf0", "spine1"),
                  at_ns=120 * MILLISECOND),
    )


def test_parse_fault_rate_and_loss():
    rate, loss, heal = parse_fault(
        "link:leaf0-h3:rate=40mbps@10ms,loss=0.02@20ms,loss=0@60ms")
    assert rate.kind == "rate" and rate.rate_bps == mbps(40)
    assert rate.link == ("h3", "leaf0")
    assert loss.loss_rate == 0.02
    assert heal.loss_rate == 0.0


def test_parse_fault_rejects_malformed():
    for bad in ("leaf0-spine1:down@1ms",          # missing link: prefix
                "link:leaf0:down@1ms",            # no cable
                "link:leaf0-spine1:down",         # no @time
                "link:leaf0-spine1:melt@1ms",     # unknown event
                "link:leaf0-spine1:down=3@1ms"):  # value on down
        with pytest.raises(ValueError):
            parse_fault(bad)


def test_parse_faults_concatenates_directives():
    specs = parse_faults(["link:a-b:down@1ms", "link:c-d:up@2ms"])
    assert [s.kind for s in specs] == ["down", "up"]
    assert parse_faults([]) == ()
    assert parse_faults(None) == ()


# -- link-level rewiring -------------------------------------------------------


def test_down_link_drops_at_the_wire_with_reason():
    engine = Engine()
    sink = SinkDevice()
    dropped = []
    link = Link(engine, 10 ** 9, 0, sink, 0,
                on_drop=lambda p, reason: dropped.append(reason))
    link.set_up(False)
    link.deliver(mk_data())
    engine.run()
    assert sink.received == []
    assert dropped == ["link_down"]


def test_packet_already_propagating_still_arrives():
    """Bits committed to the wire before the cut are delivered."""
    engine = Engine()
    sink = SinkDevice()
    link = Link(engine, 10 ** 9, 1_000, sink, 0)
    link.deliver(mk_data())       # schedules arrival at t=1000
    link.set_up(False)            # cut after the packet entered the wire
    engine.run()
    assert len(sink.received) == 1


def test_set_rate_validation_and_effect():
    engine = Engine()
    link = Link(engine, 10 ** 9, 0, SinkDevice(), 0)
    link.set_rate(5)
    assert link.rate_bps == 5
    with pytest.raises(ValueError):
        link.set_rate(0)


def test_set_loss_needs_rng_and_heals():
    import random

    engine = Engine()
    link = Link(engine, 10 ** 9, 0, SinkDevice(), 0)
    with pytest.raises(ValueError):
        link.set_loss(0.5)
    link.set_loss(0.5, random.Random(1))
    assert link.loss_rate == 0.5
    link.set_loss(0.0)
    assert link.loss_rate == 0.0


# -- network-level rewiring ----------------------------------------------------


def _network(n_spines=2, n_leaves=2, hosts_per_leaf=1):
    engine = Engine()
    metrics = MetricsCollector()
    network = build_network(
        engine, LeafSpine(n_spines, n_leaves, hosts_per_leaf),
        NetworkParams(), metrics,
        HostStackConfig(transport_cls=RenoSender),
        lambda s, r: EcmpPolicy(s, r), RngRegistry(1))
    return engine, network, metrics


def test_cable_registry_covers_all_links():
    _, network, _ = _network()
    # 2 hosts x 2 directions + 4 fabric cables x 2 directions.
    assert len(network.links) == 2 * 2 + 4 * 2
    assert network.links[("leaf0", "spine0")].dst is \
        network.switches["spine0"]
    with pytest.raises(ValueError):
        network.cable_links("leaf0", "nonexistent")


def test_cable_down_removes_fib_candidates():
    _, network, _ = _network()
    leaf0 = network.switches["leaf0"]
    host_behind_leaf1 = 1
    assert len(leaf0.fib[host_behind_leaf1]) == 2   # both spines
    network.set_cable_state("leaf0", "spine0", up=False)
    assert not network.links[("leaf0", "spine0")].up
    assert not network.links[("spine0", "leaf0")].up
    candidates = leaf0.fib[host_behind_leaf1]
    assert len(candidates) == 1
    # The surviving candidate reaches spine1.
    assert leaf0.ports[candidates[0]].peer is network.switches["spine1"]


def test_cable_up_restores_routes():
    _, network, _ = _network()
    leaf0 = network.switches["leaf0"]
    before = leaf0.fib[1]
    network.set_cable_state("leaf0", "spine0", up=False)
    network.set_cable_state("leaf0", "spine0", up=True)
    assert leaf0.fib[1] == before
    assert network.dead_cables == set()


def test_partition_yields_empty_candidates_and_no_route_drop():
    engine, network, metrics = _network(n_spines=1, n_leaves=2)
    network.set_cable_state("leaf0", "spine0", up=False)
    leaf0 = network.switches["leaf0"]
    assert leaf0.fib[1] == ()   # host 1 is unreachable from leaf0
    packet = mk_data(dst=1)
    leaf0.receive(packet, in_port=0)
    engine.run()
    assert metrics.counters.drops["no_route"] == 1


def test_host_cable_down_does_not_touch_switch_routes():
    _, network, _ = _network()
    leaf0 = network.switches["leaf0"]
    before = dict(leaf0.fib)
    network.set_cable_state("h0", "leaf0", up=False)
    assert leaf0.fib == before
    assert not network.links[("h0", "leaf0")].up


# -- injector ------------------------------------------------------------------


def test_injector_validates_cables_eagerly():
    engine, network, _ = _network()
    with pytest.raises(ValueError):
        FaultInjector(engine, network, RngRegistry(1),
                      [FaultSpec(kind="down", link=("leaf0", "spine9"),
                                 at_ns=0)])


def test_injector_applies_in_time_order():
    engine, network, _ = _network()
    down = FaultSpec(kind="down", link=("leaf0", "spine0"),
                     at_ns=2 * MILLISECOND)
    up = FaultSpec(kind="up", link=("leaf0", "spine0"),
                   at_ns=5 * MILLISECOND)
    events = []
    injector = FaultInjector(engine, network, RngRegistry(1), [up, down],
                             on_event=lambda kind, link:
                             events.append((engine.now, kind)))
    injector.schedule()
    engine.run(until=3 * MILLISECOND)
    assert not network.links[("leaf0", "spine0")].up
    engine.run(until=6 * MILLISECOND)
    assert network.links[("leaf0", "spine0")].up
    assert events == [(2 * MILLISECOND, "link_down"),
                      (5 * MILLISECOND, "link_up")]
    assert [spec.kind for _, spec in injector.applied] == ["down", "up"]


def test_injector_rate_and_loss_faults():
    engine, network, _ = _network()
    injector = FaultInjector(
        engine, network, RngRegistry(1),
        [FaultSpec(kind="rate", link=("leaf0", "spine0"), at_ns=1_000,
                   rate_bps=mbps(1)),
         FaultSpec(kind="loss", link=("leaf0", "spine0"), at_ns=2_000,
                   loss_rate=0.25)])
    injector.schedule()
    engine.run(until=10_000)
    forward, backward = network.cable_links("leaf0", "spine0")
    assert forward.rate_bps == backward.rate_bps == mbps(1)
    assert forward.loss_rate == backward.loss_rate == 0.25
    assert forward.loss_rng is not None


def test_config_with_faults_round_trip():
    specs = parse_fault("link:leaf0-spine1:down@5ms,up@12ms")
    config = ExperimentConfig.bench_profile(system="ecmp", faults=specs)
    assert config.faults == specs
    clone = config.with_faults(())
    assert clone.faults == () and config.faults == specs


def test_cable_key():
    assert cable_key("b", "a") == ("a", "b")
    assert cable_key("a", "b") == ("a", "b")
