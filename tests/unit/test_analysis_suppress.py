"""Pragmas, VR090 unused-suppression tracking, and the baseline."""

import textwrap

from repro.analysis.lint import Violation
from repro.analysis.suppress import (
    Baseline,
    RULE_UNUSED,
    apply_suppressions,
    apply_suppressions_for_path,
    fingerprint,
    parse_pragmas,
)


def v(line, code, path="mod.py"):
    return Violation(path, line, 1, code, f"{code} message")


def test_pragma_suppresses_matching_code():
    source = "x = bad_thing()  # repro: lint-disable VR110\n"
    surviving, unused = apply_suppressions([v(1, "VR110")], source)
    assert surviving == []
    assert unused == []


def test_pragma_does_not_suppress_other_codes():
    source = "x = bad_thing()  # repro: lint-disable VR110\n"
    surviving, unused = apply_suppressions([v(1, "VR120")], source)
    assert [x.code for x in surviving] == ["VR120"]
    # ... and the VR110 pragma is now unused.
    assert [x.code for x in unused] == [RULE_UNUSED]


def test_pragma_multiple_codes():
    source = "x = y  # repro: lint-disable VR110, VR120\n"
    surviving, unused = apply_suppressions(
        [v(1, "VR110"), v(1, "VR120")], source)
    assert surviving == []
    assert unused == []


def test_unused_pragma_reported_with_stale_code_in_message():
    source = "x = 1  # repro: lint-disable VR130\n"
    surviving, unused = apply_suppressions_for_path([], "mod.py", source)
    assert surviving == []
    [stale] = unused
    assert stale.code == RULE_UNUSED
    assert "VR130" in stale.message
    assert stale.path == "mod.py"


def test_pragma_outside_select_is_not_reported_unused():
    # A partial --select must not call full-run suppressions stale:
    # VR120 never ran here, so its pragma is inapplicable, not unused.
    source = "x = 1  # repro: lint-disable VR120\n"
    surviving, unused = apply_suppressions([], source, select={"VR001"})
    assert surviving == []
    assert unused == []
    _, unused = apply_suppressions([], source, select={"VR120"})
    assert [x.code for x in unused] == [RULE_UNUSED]


def test_pragma_in_docstring_is_not_a_pragma():
    source = textwrap.dedent('''
        """Docs mention # repro: lint-disable VR110 as an example."""
        x = 1
    ''').lstrip()
    assert parse_pragmas(source) == {}


def test_pragma_in_string_literal_is_not_a_pragma():
    source = 'text = "# repro: lint-disable VR110"\n'
    assert parse_pragmas(source) == {}


def test_legacy_noqa_still_honored_and_untracked():
    source = "x = bad_thing()  # noqa: VR110\n"
    surviving, unused = apply_suppressions([v(1, "VR110")], source)
    assert surviving == []
    assert unused == []  # noqa is never reported as unused
    # An unused noqa stays silent too (legacy behaviour).
    surviving, unused = apply_suppressions([], "y = 1  # noqa: VR120\n")
    assert unused == []


def test_baseline_roundtrip_and_filter(tmp_path):
    source = "flow.delay_ns = seconds()\nother = 2\n"
    sources = {"mod.py": source}
    finding = v(1, "VR100")
    baseline = Baseline.from_findings([finding], sources,
                                      path=tmp_path / "baseline.json")
    baseline.save()

    loaded = Baseline.load(tmp_path / "baseline.json")
    fresh, matched = loaded.filter([finding], sources)
    assert fresh == []
    assert len(matched) == 1
    assert loaded.stale(matched) == []


def test_baseline_survives_line_shift(tmp_path):
    old = {"mod.py": "flow.delay_ns = seconds()\n"}
    finding_old = v(1, "VR100")
    baseline = Baseline.from_findings([finding_old], old)

    # Two lines inserted above: same content, new line number.
    new = {"mod.py": "import os\n\nflow.delay_ns = seconds()\n"}
    fresh, matched = baseline.filter([v(3, "VR100")], new)
    assert fresh == []
    assert len(matched) == 1


def test_baseline_invalidated_when_flagged_line_changes(tmp_path):
    old = {"mod.py": "flow.delay_ns = seconds()\n"}
    baseline = Baseline.from_findings([v(1, "VR100")], old)

    new = {"mod.py": "flow.delay_ns = other_seconds()\n"}
    fresh, matched = baseline.filter([v(1, "VR100")], new)
    assert [x.code for x in fresh] == ["VR100"]
    assert matched == []
    assert len(baseline.stale(matched)) == 1


def test_fingerprint_is_stable_and_content_sensitive():
    a = fingerprint("mod.py", "VR100", "x = 1")
    assert a == fingerprint("mod.py", "VR100", "x = 1")
    assert a != fingerprint("mod.py", "VR110", "x = 1")
    assert a != fingerprint("mod.py", "VR100", "x = 2")
    assert a != fingerprint("other.py", "VR100", "x = 1")
