"""Deflection-aware telemetry monitor (§5 extension)."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.forwarding.ecmp import EcmpPolicy
from repro.host.host import HostStackConfig
from repro.metrics.collector import MetricsCollector
from repro.net.builder import NetworkParams, build_network
from repro.net.topology import LeafSpine
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import MILLISECOND
from repro.telemetry import TelemetryMonitor
from repro.transport.reno import RenoSender


def _idle_network():
    engine = Engine()
    metrics = MetricsCollector()
    network = build_network(
        engine, LeafSpine(2, 2, 1), NetworkParams(), metrics,
        HostStackConfig(transport_cls=RenoSender),
        lambda s, r: EcmpPolicy(s, r), RngRegistry(1))
    return engine, network


def test_interval_validation():
    engine, network = _idle_network()
    with pytest.raises(ValueError):
        TelemetryMonitor(engine, network, interval_ns=0)


def test_idle_network_samples_zero_utilization():
    engine, network = _idle_network()
    monitor = TelemetryMonitor(engine, network, interval_ns=100_000)
    monitor.start()
    engine.run(until=1_000_000)
    assert monitor.samples
    assert monitor.mean_utilization() == 0.0
    assert monitor.events == []


def test_start_is_idempotent():
    engine, network = _idle_network()
    monitor = TelemetryMonitor(engine, network, interval_ns=100_000)
    monitor.start()
    monitor.start()
    engine.run(until=250_000)
    ticks = {s.time_ns for s in monitor.samples}
    assert ticks == {100_000, 200_000}


def test_active_flow_registers_utilization():
    engine, network = _idle_network()
    monitor = TelemetryMonitor(engine, network, interval_ns=500_000)
    monitor.start()
    network.hosts[1].open_receiver(1, peer=0, size=200_000)
    sender = network.hosts[0].open_sender(1, dst=1, size=200_000)
    sender.start()
    engine.run(until=5_000_000)
    assert monitor.mean_utilization() > 0.0
    busiest = max(monitor.samples, key=lambda s: s.utilization)
    assert busiest.utilization > 0.3


def test_microburst_detected_in_live_vertigo_run():
    config = ExperimentConfig.bench_profile(
        system="vertigo", transport="dctcp", bg_load=0.0, incast_qps=200,
        incast_scale=10, incast_flow_bytes=10_000,
        sim_time_ns=20 * MILLISECOND)
    config.telemetry_interval_ns = MILLISECOND
    result = run_experiment(config)
    monitor = result.telemetry
    assert monitor is not None
    assert result.metrics.counters.deflections > 0
    # Deflection absorbed the bursts: telemetry must flag microburst
    # intervals that a drop-based monitor would miss.
    assert monitor.microburst_count() >= 1
    assert monitor.mean_utilization() > 0.0


def test_persistent_congestion_classified_on_drops():
    engine, network = _idle_network()
    monitor = TelemetryMonitor(engine, network, interval_ns=100_000)
    monitor.start()
    network.metrics.counters.drops["overflow"] += 5
    network.metrics.counters.deflections += 50
    engine.run(until=150_000)
    assert monitor.persistent_count() == 1
    assert monitor.microburst_count() == 0  # drops dominate the label


def test_event_records_hottest_port():
    engine, network = _idle_network()
    monitor = TelemetryMonitor(engine, network, interval_ns=100_000,
                               microburst_deflection_threshold=1)
    monitor.start()
    network.metrics.counters.deflections += 3
    engine.run(until=150_000)
    assert len(monitor.events) == 1
    event = monitor.events[0]
    assert event.kind == "microburst"
    assert event.deflections == 3
    assert event.hottest_port[0] in network.switches


def test_stop_halts_sampling():
    engine, network = _idle_network()
    monitor = TelemetryMonitor(engine, network, interval_ns=100_000)
    monitor.start()
    engine.run(until=250_000)
    monitor.stop()
    engine.run(until=1_000_000)
    assert {s.time_ns for s in monitor.samples} == {100_000, 200_000}
    # stop() is idempotent and start() resumes cleanly afterwards.
    monitor.stop()
    monitor.start()
    engine.run(until=1_150_000)
    assert max(s.time_ns for s in monitor.samples) > 1_000_000


def test_summary_is_detached_snapshot():
    engine, network = _idle_network()
    monitor = TelemetryMonitor(engine, network, interval_ns=100_000)
    monitor.start()
    engine.run(until=250_000)
    monitor.record_fault("link_down", ("leaf0", "spine0"))
    summary = monitor.summary()
    n_samples, n_faults = len(summary.samples), len(summary.faults)
    # Later monitor activity must not leak into the snapshot.
    engine.run(until=1_000_000)
    monitor.record_fault("link_up", ("leaf0", "spine0"))
    assert len(summary.samples) == n_samples
    assert len(summary.faults) == n_faults
    assert len(monitor.samples) > n_samples
    # The shared report surface computes identically on both types.
    assert summary.mean_utilization() == pytest.approx(
        sum(s.utilization for s in summary.samples) / n_samples)
    assert summary.fault_count() == 1


def test_record_fault_lands_on_timeline():
    engine, network = _idle_network()
    monitor = TelemetryMonitor(engine, network, interval_ns=100_000,
                               microburst_deflection_threshold=1)
    monitor.start()
    network.metrics.counters.deflections += 3
    engine.run(until=150_000)
    monitor.record_fault("link_down", ("leaf0", "spine1"))
    engine.run(until=250_000)
    monitor.record_fault("link_up", ("leaf0", "spine1"))
    assert [f.kind for f in monitor.faults] == ["link_down", "link_up"]
    assert [f.time_ns for f in monitor.faults] == [150_000, 250_000]
    timeline = monitor.timeline()
    # Congestion events and fault events interleave in time order.
    assert [type(e).__name__ for e in timeline] \
        == ["CongestionEvent", "FaultEvent", "FaultEvent"]
    assert all(timeline[i].time_ns <= timeline[i + 1].time_ns
               for i in range(len(timeline) - 1))
