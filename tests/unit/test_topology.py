"""Leaf-spine and fat-tree structure and multipath routing."""

import pytest

from repro.net.topology import (
    FatTree,
    LeafSpine,
    paper_fat_tree,
    paper_leaf_spine,
)


def test_paper_leaf_spine_dimensions():
    topo = paper_leaf_spine()
    assert topo.n_hosts == 320
    assert len(topo.switch_names) == 12  # 8 leaves + 4 spines
    assert len(topo.switch_adjacency) == 32  # full bipartite 8x4


def test_paper_fat_tree_dimensions():
    topo = paper_fat_tree()
    assert topo.n_hosts == 128
    assert len(topo.switch_names) == 80  # 32 edge + 32 agg + 16 core


def test_leaf_spine_host_tor_mapping():
    topo = LeafSpine(n_spines=2, n_leaves=3, hosts_per_leaf=4)
    assert topo.host_tor(0) == "leaf0"
    assert topo.host_tor(3) == "leaf0"
    assert topo.host_tor(4) == "leaf1"
    assert topo.host_tor(11) == "leaf2"
    with pytest.raises(ValueError):
        topo.host_tor(12)


def test_leaf_spine_validation():
    with pytest.raises(ValueError):
        LeafSpine(0, 2, 2)


def test_fat_tree_validation():
    with pytest.raises(ValueError):
        FatTree(3)  # odd
    with pytest.raises(ValueError):
        FatTree(0)


def test_fat_tree_host_tor_mapping():
    topo = FatTree(4)  # 16 hosts, 2 per edge
    assert topo.n_hosts == 16
    assert topo.host_tor(0) == "edge0_0"
    assert topo.host_tor(1) == "edge0_0"
    assert topo.host_tor(2) == "edge0_1"
    assert topo.host_tor(4) == "edge1_0"


def test_fat_tree_degree_counts():
    topo = FatTree(4)
    neighbours = topo.neighbours()
    for pod in range(4):
        for i in range(2):
            assert len(neighbours[f"edge{pod}_{i}"]) == 2  # up to aggs
            assert len(neighbours[f"agg{pod}_{i}"]) == 4   # 2 edge + 2 core
    for core in range(4):
        assert len(neighbours[f"core{core}"]) == 4  # one agg per pod


def test_leaf_spine_next_hops_all_spines_up():
    topo = LeafSpine(n_spines=4, n_leaves=4, hosts_per_leaf=2)
    table = topo.next_hop_table()
    # From any other leaf, all 4 spines are equal-cost next hops.
    assert set(table["leaf1"]["leaf0"]) == {f"spine{i}" for i in range(4)}
    # From a spine, the only next hop is the target leaf itself.
    assert table["spine0"]["leaf2"] == ("leaf2",)


def test_fat_tree_next_hops_match_updown_routing():
    topo = FatTree(4)
    table = topo.next_hop_table()
    # Same pod, different edge: via both aggs of the pod.
    assert set(table["edge0_0"]["edge0_1"]) == {"agg0_0", "agg0_1"}
    # Different pod from an edge: still both aggs (4 paths overall).
    assert set(table["edge0_0"]["edge1_0"]) == {"agg0_0", "agg0_1"}
    # Aggs reach remote pods via their two cores.
    assert set(table["agg0_0"]["edge1_0"]) == {"core0", "core1"}
    # Core has exactly one downward path per pod.
    assert table["core0"]["edge1_0"] == ("agg1_0",)


def test_next_hop_distances_decrease_toward_target():
    topo = FatTree(4)
    table = topo.next_hop_table()
    for tor in {topo.host_tor(h) for h in range(topo.n_hosts)}:
        distances = topo.bfs_distances(tor)
        for switch in topo.switch_names:
            if switch == tor:
                continue
            for hop in table[switch][tor]:
                assert distances[hop] == distances[switch] - 1


def test_bfs_distances_leaf_spine():
    topo = LeafSpine(n_spines=2, n_leaves=3, hosts_per_leaf=1)
    distances = topo.bfs_distances("leaf0")
    assert distances["leaf0"] == 0
    assert distances["spine0"] == 1
    assert distances["leaf2"] == 2
