"""Routing caches: memoized per-flow decisions and their invalidation.

The base policy memoizes static hash routing (per flow key) and the
deflection target set (per excluded port); both must be dropped when
:meth:`repro.net.switch.Switch.topology_changed` reports a runtime
FIB/port/link change, and never consulted stale afterwards.
"""

from repro.forwarding.ecmp import EcmpPolicy
from repro.net.queues import DropTailQueue
from repro.sim.engine import Engine
from tests.helpers import make_switch, mk_data, seeded_rng


def _setup(n_fabric_ports=4):
    engine = Engine()
    switch, _, _ = make_switch(engine, n_host_ports=1,
                               n_fabric_ports=n_fabric_ports)
    policy = EcmpPolicy(switch, seeded_rng())
    switch.policy = policy
    return switch, policy


def test_flow_hash_port_is_memoized():
    switch, policy = _setup()
    packet = mk_data(flow_id=7, dst=0)
    first = policy.flow_hash_port(packet, salt=123)
    # Poison the FIB without notifying the switch: the cached decision
    # must be served without re-consulting it.
    switch.fib[0] = (99,)
    assert policy.flow_hash_port(packet, salt=123) == first


def test_flow_hash_port_matches_uncached_decision():
    switch, policy = _setup()
    packet = mk_data(flow_id=7, dst=0)
    cached = policy.flow_hash_port(packet, salt=123)
    policy.invalidate_cache()
    assert policy.flow_hash_port(packet, salt=123) == cached


def test_topology_change_invalidates_flow_cache():
    switch, policy = _setup()
    packet = mk_data(flow_id=7, dst=0)
    assert policy.flow_hash_port(packet, salt=123) == 0  # host 0's port
    switch.fib[0] = (2,)  # reroute host 0 via fabric port 2
    switch.topology_changed()
    assert policy.flow_hash_port(packet, salt=123) == 2


def test_topology_change_invalidates_deflection_targets():
    switch, policy = _setup(n_fabric_ports=2)  # port 0 host, 1-2 fabric
    assert policy.deflection_targets(exclude=1) == (2,)
    new_port = switch.add_port(DropTailQueue(30_000), faces_switch=True)
    switch.topology_changed()
    assert policy.deflection_targets(exclude=1) == (2, new_port)


def test_switch_ports_cache_resets_on_add_port():
    switch, _ = _setup(n_fabric_ports=2)
    assert switch.switch_ports == (1, 2)
    port = switch.add_port(DropTailQueue(30_000), faces_switch=True)
    assert switch.switch_ports == (1, 2, port)
