"""ECMP, DRILL, and DIBS forwarding policies."""

from collections import Counter

from repro.forwarding.dibs import DibsPolicy
from repro.forwarding.drill import DrillPolicy
from repro.forwarding.ecmp import EcmpPolicy
from repro.sim.engine import Engine
from tests.helpers import fill_queue, make_switch, mk_data, seeded_rng


def _multipath_switch(engine, ranked=False, **kwargs):
    """Switch where host 0 is reachable via all fabric ports (spine view)."""
    switch, sinks, metrics = make_switch(engine, n_host_ports=0,
                                         n_fabric_ports=4, ranked=ranked,
                                         **kwargs)
    switch.fib[0] = tuple(switch.switch_ports)
    return switch, sinks, metrics


# -- ECMP -----------------------------------------------------------------------


def test_ecmp_same_flow_same_port():
    engine = Engine()
    switch, _, _ = _multipath_switch(engine)
    switch.policy = EcmpPolicy(switch, seeded_rng())
    choices = set()
    for seq in range(20):
        packet = mk_data(flow_id=5, seq=seq * 100, dst=0)
        switch.receive(packet, in_port=0)
        engine.run()
        # find which sink got it: all sinks are distinct objects
    counts = [len(sink.received) for sink in
              (switch.ports[p].link.dst for p in switch.switch_ports)]
    assert sorted(counts) == [0, 0, 0, 20]
    assert choices == set()


def test_ecmp_spreads_distinct_flows():
    engine = Engine()
    switch, _, _ = _multipath_switch(engine)
    switch.policy = EcmpPolicy(switch, seeded_rng())
    for flow in range(200):
        switch.receive(mk_data(flow_id=flow, dst=0), in_port=0)
    engine.run()
    used = sum(1 for p in switch.switch_ports
               if switch.ports[p].link.dst.received)
    assert used == 4  # all paths exercised across many flows


def test_ecmp_drops_on_full_queue():
    engine = Engine()
    switch, _, metrics = make_switch(engine, n_host_ports=1,
                                     n_fabric_ports=0)
    switch.policy = EcmpPolicy(switch, seeded_rng())
    fill_queue(switch, 0)
    switch.receive(mk_data(dst=0), in_port=0)
    assert metrics.counters.drops["overflow"] == 1


# -- DRILL ----------------------------------------------------------------------


def test_drill_prefers_least_loaded():
    engine = Engine()
    switch, _, _ = _multipath_switch(engine)
    switch.policy = DrillPolicy(switch, seeded_rng(), d=4, m=0)
    # Pre-load all but port 3 of the fabric.
    for port in switch.switch_ports[:-1]:
        fill_queue(switch, port, payload=1000)
    packet = mk_data(dst=0)
    switch.receive(packet, in_port=0)
    # With d=4 every candidate is sampled, so the empty one must win.
    empty = switch.switch_ports[-1]
    assert packet in switch.ports[empty].queue.packets() \
        or switch.ports[empty].busy


def test_drill_memory_retains_best_port():
    engine = Engine()
    switch, _, _ = _multipath_switch(engine)
    policy = DrillPolicy(switch, seeded_rng(), d=2, m=1)
    switch.policy = policy
    switch.receive(mk_data(flow_id=1, dst=0), in_port=0)
    candidates = switch.candidates(0)
    assert candidates in policy._memory
    assert len(policy._memory[candidates]) == 1


def test_drill_single_candidate_short_circuits():
    engine = Engine()
    switch, sinks, _ = make_switch(engine, n_host_ports=1, n_fabric_ports=0)
    switch.policy = DrillPolicy(switch, seeded_rng())
    packet = mk_data(dst=0)
    switch.receive(packet, in_port=0)
    engine.run()
    assert sinks[0].received == [packet]


def test_drill_drops_on_full_queue():
    engine = Engine()
    switch, _, metrics = make_switch(engine, n_host_ports=1,
                                     n_fabric_ports=0)
    switch.policy = DrillPolicy(switch, seeded_rng())
    fill_queue(switch, 0)
    switch.receive(mk_data(dst=0), in_port=0)
    assert metrics.counters.drops["overflow"] == 1


def test_drill_per_packet_decisions_differ():
    engine = Engine()
    switch, _, _ = _multipath_switch(engine)
    switch.policy = DrillPolicy(switch, seeded_rng(), d=2, m=1)
    for seq in range(100):
        switch.receive(mk_data(flow_id=1, seq=seq * 100, dst=0), in_port=0)
    engine.run()
    used = sum(1 for p in switch.switch_ports
               if switch.ports[p].link.dst.received)
    assert used >= 2  # same flow spread over multiple ports (per-packet)


# -- DIBS -----------------------------------------------------------------------


def test_dibs_forwards_normally_with_space():
    engine = Engine()
    switch, sinks, metrics = make_switch(engine, n_host_ports=1)
    switch.policy = DibsPolicy(switch, seeded_rng())
    packet = mk_data(dst=0)
    switch.receive(packet, in_port=1)
    engine.run()
    assert sinks[0].received == [packet]
    assert metrics.counters.deflections == 0


def test_dibs_deflects_arriving_packet_on_overflow():
    engine = Engine()
    switch, _, metrics = make_switch(engine, n_host_ports=1,
                                     n_fabric_ports=4)
    switch.policy = DibsPolicy(switch, seeded_rng())
    fill_queue(switch, 0)
    packet = mk_data(dst=0)
    switch.receive(packet, in_port=1)
    assert metrics.counters.deflections == 1
    assert packet.deflections == 1
    assert metrics.counters.total_drops == 0
    # The packet landed on some fabric port, not the host port.
    on_fabric = any(packet in switch.ports[p].queue.packets()
                    or switch.ports[p].busy for p in switch.switch_ports)
    assert on_fabric


def test_dibs_never_deflects_to_other_host_ports():
    engine = Engine()
    switch, _, _ = make_switch(engine, n_host_ports=3, n_fabric_ports=2)
    policy = DibsPolicy(switch, seeded_rng())
    switch.policy = policy
    targets = policy._deflection_targets(exclude=0)
    assert set(targets) == set(switch.switch_ports)


def test_dibs_drops_when_no_space_anywhere():
    engine = Engine()
    switch, _, metrics = make_switch(engine, n_host_ports=1,
                                     n_fabric_ports=2)
    switch.policy = DibsPolicy(switch, seeded_rng())
    for port in range(3):
        fill_queue(switch, port)
    switch.receive(mk_data(dst=0), in_port=1)
    assert metrics.counters.drops["deflect_failed"] == 1


def test_dibs_deflection_budget_enforced():
    engine = Engine()
    switch, _, metrics = make_switch(engine, n_host_ports=1,
                                     n_fabric_ports=4)
    switch.policy = DibsPolicy(switch, seeded_rng(), max_deflections=3)
    fill_queue(switch, 0)
    packet = mk_data(dst=0)
    packet.deflections = 3
    switch.receive(packet, in_port=1)
    assert metrics.counters.drops["deflection_limit"] == 1
