"""Packet construction."""

import pytest

from repro.core.flowinfo import FlowInfo
from repro.net.packet import (
    ACK_WIRE_BYTES,
    HEADER_BYTES,
    PacketKind,
    ack_packet,
    data_packet,
)


def test_data_packet_wire_size_includes_headers():
    packet = data_packet(1, 2, 7, seq=0, payload=1460)
    assert packet.kind is PacketKind.DATA
    assert packet.wire_bytes == 1460 + HEADER_BYTES
    assert packet.end_seq == 1460


def test_data_packet_payload_bounds():
    with pytest.raises(ValueError):
        data_packet(1, 2, 7, seq=0, payload=0)
    with pytest.raises(ValueError):
        data_packet(1, 2, 7, seq=0, payload=2000, mss=1460)


def test_ack_packet_fields():
    ack = ack_packet(2, 1, 7, ack_no=2920, ece=True, ts_echo=555)
    assert ack.kind is PacketKind.ACK
    assert ack.wire_bytes == ACK_WIRE_BYTES
    assert ack.ack_no == 2920
    assert ack.ece and ack.ts_echo == 555


def test_uids_are_unique():
    a = data_packet(1, 2, 7, 0, 100)
    b = data_packet(1, 2, 7, 0, 100)
    assert a.uid != b.uid


def test_rank_uses_flowinfo_when_present():
    packet = data_packet(1, 2, 7, 0, 100)
    assert packet.rank() == packet.wire_bytes  # unmarked: ranks by size
    packet.flowinfo = FlowInfo(rfs=123456)
    assert packet.rank() == 123456


def test_ecn_fields_default_off():
    packet = data_packet(1, 2, 7, 0, 100)
    assert not packet.ecn_capable and not packet.ecn_ce
    marked = data_packet(1, 2, 7, 0, 100, ecn_capable=True)
    assert marked.ecn_capable
