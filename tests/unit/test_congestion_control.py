"""Reno, DCTCP, and Swift congestion-control reactions."""

from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Engine
from repro.transport.base import TransportConfig
from repro.transport.dctcp import DctcpSender, marking_threshold_bytes
from repro.transport.reno import RenoSender
from repro.transport.swift import SwiftSender
from tests.unit.test_transport_base import StubHost, loopback


def _bare_sender(cls, engine=None, size=1_000_000, **config_kwargs):
    engine = engine or Engine()
    metrics = MetricsCollector()
    host = StubHost(engine, 1)
    config = TransportConfig(**config_kwargs)
    sender = cls(engine, host, 7, 2, size, config, metrics)
    return sender, engine


# -- Reno -------------------------------------------------------------------------


def test_reno_slow_start_doubles_per_rtt():
    sender, _ = _bare_sender(RenoSender, init_cwnd=2.0)
    start = sender.cwnd
    sender.on_new_ack_cc(1460, rtt_ns=None, ece=False)
    sender.on_new_ack_cc(1460, rtt_ns=None, ece=False)
    assert sender.cwnd == start + 2  # +1 per ACKed packet


def test_reno_congestion_avoidance_linear():
    sender, _ = _bare_sender(RenoSender, init_cwnd=10.0)
    sender.ssthresh = 5.0  # below cwnd: CA mode
    before = sender.cwnd
    sender.on_new_ack_cc(1460, rtt_ns=None, ece=False)
    assert abs(sender.cwnd - (before + 1 / before)) < 1e-9


def test_reno_fast_retransmit_halves():
    sender, _ = _bare_sender(RenoSender, init_cwnd=16.0)
    sender.on_fast_retransmit_cc()
    assert sender.cwnd == 8.0
    assert sender.ssthresh == 8.0


def test_reno_rto_collapses_to_one():
    sender, _ = _bare_sender(RenoSender, init_cwnd=16.0)
    sender.on_rto_cc()
    assert sender.cwnd == 1.0
    assert sender.ssthresh == 8.0


def test_reno_min_ssthresh_floor():
    sender, _ = _bare_sender(RenoSender, init_cwnd=2.0)
    sender.on_rto_cc()
    assert sender.ssthresh == 2.0


# -- DCTCP -------------------------------------------------------------------------


def test_dctcp_is_always_ecn_capable():
    sender, _ = _bare_sender(DctcpSender)
    assert sender.config.ecn_capable


def test_dctcp_cut_proportional_to_alpha():
    sender, _ = _bare_sender(DctcpSender, init_cwnd=10.0)
    sender.alpha = 0.5
    sender.snd_una = 100_000
    sender._window_end = 0          # close the observation window now
    sender._window_acked = 10_000
    sender._window_marked = 10_000  # every byte marked
    before = sender.cwnd
    sender._end_observation_window()
    # alpha' = (1-g)*0.5 + g*1.0; cwnd *= (1 - alpha'/2)
    expected_alpha = 0.5 * (1 - 1 / 16) + 1 / 16
    assert abs(sender.alpha - expected_alpha) < 1e-9
    assert abs(sender.cwnd - before * (1 - expected_alpha / 2)) < 1e-9


def test_dctcp_no_cut_without_marks():
    sender, _ = _bare_sender(DctcpSender, init_cwnd=10.0)
    sender.alpha = 0.8
    sender.snd_una = 100_000
    sender._window_end = 0
    sender._window_acked = 10_000
    sender._window_marked = 0
    before = sender.cwnd
    sender._end_observation_window()
    assert sender.cwnd == before      # growth only, no reduction
    assert sender.alpha < 0.8         # alpha decays toward 0


def test_dctcp_alpha_converges_to_zero_without_marks():
    sender, _ = _bare_sender(DctcpSender)
    sender.alpha = 1.0
    for _ in range(100):
        sender._window_acked = 10_000
        sender._window_marked = 0
        sender._window_end = sender.snd_una
        sender._end_observation_window()
    assert sender.alpha < 0.01


def test_dctcp_end_to_end_with_marks_slows_down():
    engine = Engine()
    mark_all = {"on": True}

    def channel_marker(packet):
        if mark_all["on"] and packet.ecn_capable:
            packet.ecn_ce = True
        return False  # never drop

    sender, receiver, _, _, _ = loopback(engine, size=100_000,
                                         drop=channel_marker,
                                         sender_cls=DctcpSender)
    sender.start()
    engine.run()
    assert receiver.completed
    assert sender.alpha > 0.1  # alpha tracked the persistent marking


def test_marking_threshold_helper():
    assert marking_threshold_bytes(1460) == 65 * 1460
    assert marking_threshold_bytes(1000, packets=10) == 10_000


# -- Swift --------------------------------------------------------------------------


def test_swift_increases_below_target():
    sender, _ = _bare_sender(SwiftSender, init_cwnd=4.0,
                             swift_target_delay_ns=100_000)
    before = sender.cwnd
    sender.on_new_ack_cc(1460, rtt_ns=50_000, ece=False)
    assert sender.cwnd > before


def test_swift_decreases_above_target_once_per_rtt():
    sender, engine = _bare_sender(SwiftSender, init_cwnd=10.0,
                                  swift_target_delay_ns=100_000)
    sender.srtt_ns = 100_000
    before = sender.cwnd
    sender.on_new_ack_cc(1460, rtt_ns=200_000, ece=False)
    first_cut = sender.cwnd
    assert first_cut < before
    # A second over-target ACK within the same RTT must not cut again.
    sender.on_new_ack_cc(1460, rtt_ns=200_000, ece=False)
    assert sender.cwnd == first_cut


def test_swift_decrease_bounded_by_max_mdf():
    sender, _ = _bare_sender(SwiftSender, init_cwnd=10.0,
                             swift_target_delay_ns=10_000,
                             swift_max_mdf=0.5)
    sender.on_new_ack_cc(1460, rtt_ns=10_000_000, ece=False)  # huge RTT
    assert sender.cwnd == 5.0  # capped at 50% per decision


def test_swift_cwnd_can_fall_below_one():
    sender, engine = _bare_sender(SwiftSender, init_cwnd=1.0,
                                  swift_target_delay_ns=10_000,
                                  swift_min_cwnd=0.01)
    for step in range(20):
        engine.now += 10_000_000  # allow once-per-RTT decreases
        sender.on_new_ack_cc(1460, rtt_ns=1_000_000, ece=False)
    assert sender.cwnd < 1.0
    assert sender.cwnd >= 0.01


def test_swift_pacing_gap_below_one_packet():
    sender, _ = _bare_sender(SwiftSender, init_cwnd=1.0)
    sender.cwnd = 0.5
    sender.srtt_ns = 100_000
    assert sender.pacing_gap_ns() == 200_000  # rtt / cwnd
    sender.cwnd = 2.0
    assert sender.pacing_gap_ns() == 0


def test_swift_rto_single_is_md_not_reset():
    sender, _ = _bare_sender(SwiftSender, init_cwnd=8.0,
                             swift_max_mdf=0.5, swift_min_cwnd=0.01)
    sender.on_rto_cc()
    assert sender.cwnd == 4.0  # one timeout: multiplicative decrease


def test_swift_consecutive_rtos_reset_to_min():
    sender, _ = _bare_sender(SwiftSender, init_cwnd=8.0,
                             swift_min_cwnd=0.01)
    for _ in range(SwiftSender.RETX_RESET_THRESHOLD):
        sender.on_rto_cc()
    assert sender.cwnd == 0.01


def test_swift_ack_resets_rto_streak():
    sender, _ = _bare_sender(SwiftSender, init_cwnd=8.0,
                             swift_target_delay_ns=100_000)
    sender.on_rto_cc()
    sender.on_new_ack_cc(1460, rtt_ns=50_000, ece=False)
    assert sender._consecutive_rtos == 0


def test_swift_end_to_end_transfer():
    engine = Engine()
    sender, receiver, _, _, _ = loopback(engine, size=50_000,
                                         sender_cls=SwiftSender)
    sender.start()
    engine.run()
    assert receiver.completed


def test_swift_paced_transfer_below_one_packet():
    engine = Engine()
    config = TransportConfig(init_cwnd=0.5, swift_target_delay_ns=30_000,
                             swift_min_cwnd=0.01)
    sender, receiver, _, src, _ = loopback(engine, size=5_000,
                                           config=config,
                                           sender_cls=SwiftSender)
    sender.start()
    engine.run(until=5_000)
    assert len(src.sent) == 1  # pacing admits a single packet at t=0
    engine.run()
    assert receiver.completed
