"""Network assembly from topology descriptions."""

from repro.forwarding.ecmp import EcmpPolicy
from repro.forwarding.vertigo import VertigoPolicy
from repro.host.host import HostStackConfig
from repro.metrics.collector import MetricsCollector
from repro.net.builder import NetworkParams, build_network
from repro.net.queues import DropTailQueue, RankedQueue
from repro.net.topology import FatTree, LeafSpine
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.transport.reno import RenoSender


def _build(topology, *, ranked=False, params=None):
    engine = Engine()
    metrics = MetricsCollector()
    stack = HostStackConfig(transport_cls=RenoSender)
    params = params or NetworkParams()
    policy_cls = VertigoPolicy if ranked else EcmpPolicy
    network = build_network(
        engine, topology, params, metrics, stack,
        lambda switch, rng: policy_cls(switch, rng), RngRegistry(1),
        use_ranked_queues=ranked)
    return network


def test_leaf_spine_port_counts():
    topo = LeafSpine(n_spines=2, n_leaves=3, hosts_per_leaf=4)
    network = _build(topo)
    for leaf in range(3):
        assert len(network.switches[f"leaf{leaf}"].ports) == 4 + 2
    for spine in range(2):
        assert len(network.switches[f"spine{spine}"].ports) == 3


def test_hosts_attached_and_addressable():
    topo = LeafSpine(n_spines=2, n_leaves=2, hosts_per_leaf=2)
    network = _build(topo)
    assert len(network.hosts) == 4
    for host in network.hosts:
        assert host.nic.link is not None
        assert host.nic.link.dst.name == topo.host_tor(host.host_id)


def test_fib_complete_for_every_switch_host_pair():
    topo = FatTree(4)
    network = _build(topo)
    for switch in network.switches.values():
        for host in range(topo.n_hosts):
            candidates = switch.fib[host]
            assert candidates, f"{switch.name} has no route to {host}"
            for port in candidates:
                assert 0 <= port < len(switch.ports)


def test_tor_fib_points_directly_at_host_port():
    topo = LeafSpine(n_spines=2, n_leaves=2, hosts_per_leaf=2)
    network = _build(topo)
    leaf0 = network.switches["leaf0"]
    for host in (0, 1):
        (port,) = leaf0.fib[host]
        assert leaf0.ports[port].peer is network.hosts[host]
        assert not leaf0.port_faces_switch[port]


def test_remote_leaf_has_all_spines_as_candidates():
    topo = LeafSpine(n_spines=4, n_leaves=2, hosts_per_leaf=1)
    network = _build(topo)
    leaf0 = network.switches["leaf0"]
    candidates = leaf0.fib[1]  # host 1 is behind leaf1
    assert len(candidates) == 4
    assert all(leaf0.port_faces_switch[p] for p in candidates)


def test_queue_flavor_follows_system():
    topo = LeafSpine(n_spines=2, n_leaves=2, hosts_per_leaf=1)
    fifo_net = _build(topo, ranked=False)
    ranked_net = _build(topo, ranked=True)
    fifo_q = fifo_net.switches["leaf0"].ports[0].queue
    ranked_q = ranked_net.switches["leaf0"].ports[0].queue
    assert isinstance(fifo_q, DropTailQueue)
    assert isinstance(ranked_q, RankedQueue)


def test_links_are_bidirectional_pairs():
    topo = LeafSpine(n_spines=1, n_leaves=2, hosts_per_leaf=1)
    network = _build(topo)
    leaf0 = network.switches["leaf0"]
    spine0 = network.switches["spine0"]
    up = next(p for p in leaf0.ports if p.peer is spine0)
    down = next(p for p in spine0.ports if p.peer is leaf0)
    assert up.link.dst_port == down.index
    assert down.link.dst_port == up.index


def test_network_params_applied_to_links():
    topo = LeafSpine(n_spines=1, n_leaves=2, hosts_per_leaf=1)
    params = NetworkParams(host_rate_bps=123, fabric_rate_bps=456,
                           buffer_bytes=9999)
    network = _build(topo, params=params)
    leaf0 = network.switches["leaf0"]
    host_port = leaf0.fib[0][0]
    assert leaf0.ports[host_port].link.rate_bps == 123
    fabric_port = leaf0.switch_ports[0]
    assert leaf0.ports[fabric_port].link.rate_bps == 456
    assert leaf0.ports[0].queue.capacity_bytes == 9999


def test_every_switch_gets_policy_with_own_stream():
    topo = LeafSpine(n_spines=2, n_leaves=2, hosts_per_leaf=1)
    network = _build(topo)
    policies = [s.policy for s in network.switches.values()]
    assert all(policy is not None for policy in policies)
    rngs = {id(policy.rng) for policy in policies}
    assert len(rngs) == len(policies)  # independent streams


def test_base_rtt_positive():
    assert NetworkParams().base_rtt_ns() > 0
