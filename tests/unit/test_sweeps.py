"""Sweep helpers and table formatting."""

from repro.experiments.sweeps import format_table


def test_format_table_alignment_and_order():
    rows = [
        {"system": "ecmp", "mean_qct_s": 0.123456, "drops": 10},
        {"system": "vertigo", "mean_qct_s": 0.01, "drops": 0},
    ]
    table = format_table(rows)
    lines = table.splitlines()
    assert lines[0].split() == ["system", "mean_qct_s", "drops"]
    assert "ecmp" in lines[2] and "vertigo" in lines[3]
    # Columns align: every line has the header's width.
    assert all(len(line) <= len(lines[0]) + 2 for line in lines[2:])


def test_format_table_column_selection():
    rows = [{"a": 1, "b": 2, "c": 3}]
    table = format_table(rows, columns=["c", "a"])
    header = table.splitlines()[0].split()
    assert header == ["c", "a"]
    assert "2" not in table.splitlines()[2]


def test_format_table_empty():
    assert format_table([]) == "(no rows)"


def test_format_table_float_precision():
    table = format_table([{"x": 0.000123456}])
    assert "0.0001235" in table  # 4 significant digits


def test_format_table_missing_cells_blank():
    rows = [{"a": 1}, {"a": 2, "b": 3}]
    table = format_table(rows, columns=["a", "b"])
    assert table.splitlines()[2].split() == ["1"]
