"""Deterministic per-component random streams."""

from repro.sim.rng import RngRegistry


def test_same_name_returns_same_stream():
    registry = RngRegistry(seed=7)
    assert registry.stream("a") is registry.stream("a")


def test_streams_are_deterministic_across_registries():
    values_1 = [RngRegistry(seed=7).stream("x").random() for _ in range(1)]
    values_2 = [RngRegistry(seed=7).stream("x").random() for _ in range(1)]
    assert values_1 == values_2


def test_different_names_give_independent_streams():
    registry = RngRegistry(seed=7)
    a = [registry.stream("a").random() for _ in range(5)]
    b = [registry.stream("b").random() for _ in range(5)]
    assert a != b


def test_creation_order_does_not_matter():
    reg_1 = RngRegistry(seed=3)
    reg_1.stream("first")
    value_1 = reg_1.stream("second").random()
    reg_2 = RngRegistry(seed=3)
    value_2 = reg_2.stream("second").random()
    assert value_1 == value_2


def test_different_seeds_differ():
    assert RngRegistry(1).stream("x").random() \
        != RngRegistry(2).stream("x").random()


def test_fork_is_deterministic_and_distinct():
    parent = RngRegistry(seed=9)
    child_a = parent.fork("salt")
    child_b = RngRegistry(seed=9).fork("salt")
    assert child_a.seed == child_b.seed
    assert child_a.seed != parent.seed
    assert child_a.stream("x").random() == child_b.stream("x").random()
