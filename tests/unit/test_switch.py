"""Switch dataplane basics (policy-independent)."""

import pytest

from repro.forwarding.ecmp import EcmpPolicy
from repro.sim.engine import Engine
from tests.helpers import make_switch, mk_data, seeded_rng


def test_receive_increments_hops_and_forwards():
    engine = Engine()
    switch, sinks, metrics = make_switch(engine, n_host_ports=1)
    switch.policy = EcmpPolicy(switch, seeded_rng())
    packet = mk_data(dst=0)
    switch.receive(packet, in_port=1)
    engine.run()
    assert packet.hops == 1
    assert sinks[0].received == [packet]
    assert metrics.counters.forwarded == 1


def test_hop_limit_drops():
    engine = Engine()
    switch, _, metrics = make_switch(engine)
    switch.policy = EcmpPolicy(switch, seeded_rng())
    packet = mk_data(dst=0)
    packet.hops = switch.max_hops  # next hop exceeds the budget
    switch.receive(packet, in_port=1)
    engine.run()
    assert metrics.counters.drops["hop_limit"] == 1
    assert metrics.counters.forwarded == 0


def test_unknown_destination_raises():
    engine = Engine()
    switch, _, _ = make_switch(engine, n_host_ports=1)
    switch.policy = EcmpPolicy(switch, seeded_rng())
    with pytest.raises(KeyError):
        switch.candidates(999)


def test_switch_ports_lists_fabric_ports():
    engine = Engine()
    switch, _, _ = make_switch(engine, n_host_ports=2, n_fabric_ports=3)
    assert switch.switch_ports == (2, 3, 4)


def test_drop_counts_by_reason():
    engine = Engine()
    switch, _, metrics = make_switch(engine)
    switch.drop(mk_data(), "test_reason")
    switch.drop(mk_data(), "test_reason")
    assert metrics.counters.drops["test_reason"] == 2


def test_queue_bytes_reports_occupancy():
    engine = Engine()
    switch, _, _ = make_switch(engine)
    assert switch.queue_bytes(0) == 0
    packet = mk_data(payload=1000)
    switch.ports[0].queue.push(packet)
    assert switch.queue_bytes(0) == packet.wire_bytes
