"""Background traffic and incast application generators."""

import random

import pytest

from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Engine
from repro.sim.units import SECOND
from repro.workload.background import BackgroundTraffic, poisson_rate_for_load
from repro.workload.distributions import cache_follower
from repro.workload.incast import IncastApp, qps_for_load


class FlowLog:
    def __init__(self):
        self.flows = []

    def __call__(self, src, dst, size, is_incast=False, query_id=None):
        self.flows.append((src, dst, size, is_incast, query_id))


def test_poisson_rate_formula():
    # 50% of 10 hosts x 1 Gbps with 1 MB mean flows.
    rate = poisson_rate_for_load(0.5, 10, 10 ** 9, 1_000_000)
    assert rate == pytest.approx(0.5 * 10 * 1e9 / 8e6)


def test_background_offered_load_close_to_target():
    engine = Engine()
    log = FlowLog()
    sizes = cache_follower().truncated(200_000)
    traffic = BackgroundTraffic(engine, log, n_hosts=16,
                                host_rate_bps=10 ** 9, load=0.5,
                                sizes=sizes, rng=random.Random(1),
                                until_ns=SECOND)
    traffic.start()
    engine.run(until=SECOND)
    offered = sum(size for _, _, size, _, _ in log.flows) * 8
    capacity = 16 * 10 ** 9
    assert offered / capacity == pytest.approx(0.5, rel=0.1)


def test_background_src_dst_distinct_and_in_range():
    engine = Engine()
    log = FlowLog()
    traffic = BackgroundTraffic(engine, log, n_hosts=4,
                                host_rate_bps=10 ** 9, load=0.3,
                                sizes=cache_follower(),
                                rng=random.Random(2),
                                until_ns=SECOND // 10)
    traffic.start()
    engine.run(until=SECOND // 10)
    assert log.flows
    for src, dst, _, is_incast, query_id in log.flows:
        assert 0 <= src < 4 and 0 <= dst < 4 and src != dst
        assert not is_incast and query_id is None


def test_background_zero_load_generates_nothing():
    engine = Engine()
    log = FlowLog()
    traffic = BackgroundTraffic(engine, log, n_hosts=4,
                                host_rate_bps=10 ** 9, load=0.0,
                                sizes=cache_follower(),
                                rng=random.Random(3), until_ns=SECOND)
    traffic.start()
    engine.run(until=SECOND)
    assert log.flows == []


def test_background_stops_at_horizon():
    engine = Engine()
    log = FlowLog()
    traffic = BackgroundTraffic(engine, log, n_hosts=4,
                                host_rate_bps=10 ** 9, load=0.5,
                                sizes=cache_follower(),
                                rng=random.Random(4),
                                until_ns=SECOND // 100)
    traffic.start()
    engine.run()
    assert engine.now <= SECOND // 100
    assert traffic.flows_generated == len(log.flows)


def test_background_needs_two_hosts():
    with pytest.raises(ValueError):
        BackgroundTraffic(Engine(), FlowLog(), n_hosts=1,
                          host_rate_bps=10 ** 9, load=0.5,
                          sizes=cache_follower(),
                          rng=random.Random(0), until_ns=SECOND)


def test_qps_for_load_formula():
    qps = qps_for_load(0.25, 32, 200_000_000, 8, 40_000)
    assert qps == pytest.approx(0.25 * 32 * 2e8 / (8 * 8 * 40_000))


def test_incast_queries_have_correct_fanout():
    engine = Engine()
    log = FlowLog()
    metrics = MetricsCollector()
    app = IncastApp(engine, log, metrics, n_hosts=16, qps=500, scale=5,
                    flow_bytes=40_000, rng=random.Random(5),
                    until_ns=SECOND // 10)
    app.start()
    engine.run()
    assert app.queries_issued >= 10
    assert len(log.flows) == app.queries_issued * 5
    for src, dst, size, is_incast, query_id in log.flows:
        assert is_incast and size == 40_000 and query_id is not None
    assert len(metrics.queries) == app.queries_issued


def test_incast_servers_distinct_and_exclude_client():
    engine = Engine()
    log = FlowLog()
    metrics = MetricsCollector()
    app = IncastApp(engine, log, metrics, n_hosts=8, qps=200, scale=7,
                    flow_bytes=1_000, rng=random.Random(6),
                    until_ns=SECOND // 20)
    app.start()
    engine.run()
    by_query = {}
    for src, dst, _, _, query_id in log.flows:
        by_query.setdefault(query_id, []).append((src, dst))
    for query_id, pairs in by_query.items():
        client = metrics.queries[query_id].client
        servers = [src for src, _ in pairs]
        assert len(set(servers)) == 7
        assert client not in servers
        assert all(dst == client for _, dst in pairs)


def test_incast_scale_must_be_below_host_count():
    with pytest.raises(ValueError):
        IncastApp(Engine(), FlowLog(), MetricsCollector(), n_hosts=8,
                  qps=10, scale=8, flow_bytes=1000,
                  rng=random.Random(0), until_ns=SECOND)


def test_incast_responses_start_after_request_delay():
    engine = Engine()
    stamps = []

    def log(src, dst, size, is_incast=False, query_id=None):
        stamps.append(engine.now)

    metrics = MetricsCollector()
    app = IncastApp(engine, log, metrics, n_hosts=8, qps=100, scale=3,
                    flow_bytes=1000, rng=random.Random(7),
                    until_ns=SECOND // 50, request_delay_ns=5_000)
    app.start()
    engine.run()
    issue_times = [q.start_ns for q in metrics.queries.values()]
    # Every response flow starts at least request_delay after its query.
    assert all(any(0 < stamp - t0 <= 6_000 for t0 in issue_times)
               for stamp in stamps)
