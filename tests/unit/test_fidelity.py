"""Unit coverage for the per-link fidelity controller.

Config validation, deterministic path resolution, the demote / promote
/ pin lattice, fair-share round timing (integer ns only), and the
engine's recurring-event primitive the promotion epoch rides on.
"""

import dataclasses

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.net.fidelity import (
    FIDELITY_MODES,
    FidelityConfig,
    FidelityController,
)
from repro.sim.engine import Engine
from repro.sim.units import MILLISECOND


def _hybrid_result(**fidelity_kwargs):
    config = ExperimentConfig.bench_profile(
        system="vertigo", transport="dctcp", bg_load=0.2,
        incast_qps=60, incast_scale=6, sim_time_ns=5 * MILLISECOND)
    config = dataclasses.replace(
        config, fidelity=FidelityConfig(mode="hybrid", **fidelity_kwargs))
    return run_experiment(config)


# -- config validation --------------------------------------------------------

def test_default_mode_is_packet_and_inactive():
    config = FidelityConfig()
    assert config.mode == "packet"
    assert not config.active


def test_flow_and_hybrid_are_active():
    for mode in ("flow", "hybrid"):
        assert FidelityConfig(mode=mode).active


def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="fidelity mode"):
        FidelityConfig(mode="analog")


@pytest.mark.parametrize("field,value", [
    ("demote_shares", 0),
    ("demote_queue_bytes", -1),
    ("promote_epoch_ns", -5),
    ("promote_util_permille", 1001),
])
def test_threshold_validation(field, value):
    with pytest.raises(ValueError):
        FidelityConfig(mode="hybrid", **{field: value})


def test_digest_view_covers_every_field():
    config = FidelityConfig(mode="hybrid", demote_shares=7,
                            demote_queue_bytes=1000, promote_epoch_ns=99,
                            promote_util_permille=123)
    assert config.digest_view() == ("hybrid", 7, 1000, 99, 123)
    assert len(FIDELITY_MODES) == 3


def test_packet_mode_builds_no_controller():
    engine = Engine()
    with pytest.raises(ValueError, match="packet mode"):
        FidelityController(engine, network=None, config=FidelityConfig())


# -- installation and path resolution ----------------------------------------

def test_controller_installed_on_every_layer():
    result = _hybrid_result()
    network = result.network
    controller = network.fidelity
    assert isinstance(controller, FidelityController)
    for switch in network.switches.values():
        assert switch.fidelity is controller
    for link in network.links.values():
        assert link.fidelity is controller
    # Auto thresholds resolved to positive integers.
    assert controller.demote_queue_bytes > 0
    assert controller.promote_epoch_ns > 0
    assert controller.standing_queue_bytes > 0


def test_path_resolution_is_deterministic_and_routed():
    result = _hybrid_result()
    controller = result.network.fidelity
    path_a = controller._resolve_path(0, 9, flow_id=1234)
    path_b = controller._resolve_path(0, 9, flow_id=1234)
    assert path_a == path_b
    assert path_a[0] is result.network.hosts[0].nic.link
    # The walk terminates at the destination host's access link.
    assert path_a[-1].dst is result.network.hosts[9]


def test_different_flows_can_hash_to_different_paths():
    result = _hybrid_result()
    controller = result.network.fidelity
    paths = {controller._resolve_path(0, 20, flow_id=fid)
             for fid in range(16)}
    # A multi-path fabric with a flow-hash spreads flows across > 1 path.
    assert len(paths) > 1


# -- mode lattice -------------------------------------------------------------

def test_links_start_analytic():
    result = _hybrid_result()
    controller = result.network.fidelity
    analytic, packet = controller.link_mode_counts()
    assert analytic + packet == len(result.network.links)


def test_demote_and_promote_cycle():
    result = _hybrid_result()
    controller = result.network.fidelity
    link = next(iter(result.network.links.values()))
    state = controller._state[link]
    state.analytic = True
    before = controller.demotions
    controller._demote(link, "queue")
    assert not state.analytic
    assert controller.demotions == before + 1
    # Second demotion of an already-packet link is a no-op.
    controller._demote(link, "queue")
    assert controller.demotions == before + 1
    controller._promote(link)
    assert state.analytic
    assert controller.promotions >= 1


def test_fault_pins_both_directions_permanently():
    result = _hybrid_result()
    network = result.network
    controller = network.fidelity
    (a, b) = next(iter(network.links))
    controller.on_fault(a, b)
    for key in ((a, b), (b, a)):
        link = network.links.get(key)
        if link is None:
            continue
        state = controller._state[link]
        assert state.pinned and not state.analytic
        # A pinned link never promotes, however quiet.
        controller._on_epoch()
        assert not state.analytic
    assert controller.pinned >= 1


def test_flow_mode_ignores_congestion_demotions_but_not_faults():
    config = ExperimentConfig.bench_profile(
        system="vertigo", transport="dctcp", bg_load=0.1,
        sim_time_ns=2 * MILLISECOND)
    config = dataclasses.replace(config,
                                 fidelity=FidelityConfig(mode="flow"))
    result = run_experiment(config)
    controller = result.network.fidelity
    link = next(iter(result.network.links.values()))
    controller._demote(link, "queue")
    assert controller._state[link].analytic  # congestion ignored
    (a, b) = next(iter(result.network.links))
    controller.on_fault(a, b)
    assert not controller._state[result.network.links[(a, b)]].analytic


# -- round timing -------------------------------------------------------------

def test_analytic_round_math_is_integer_ns():
    result = _hybrid_result()
    controller = result.network.fidelity
    sender = None
    for host in result.network.hosts:
        for candidate in host.senders.values():
            if candidate.flow_id in controller._flows:
                sender = candidate
                break
        if sender is not None:
            break
    assert sender is not None, "expected at least one adopted flow"
    for pipelined in (False, True):
        round_ns, rtt_ns = controller.analytic_round_ns(
            sender, 15_000, 1_500, pipelined)
        controller.round_finished(sender)
        assert isinstance(round_ns, int) and isinstance(rtt_ns, int)
        assert round_ns >= rtt_ns > 0 or pipelined


def test_concurrent_rounds_shrink_the_fair_share():
    result = _hybrid_result()
    controller = result.network.fidelity
    flows = [fid for fid in controller._flows]
    senders = {s.flow_id: s for h in result.network.hosts
               for s in h.senders.values()}
    shared = [senders[fid] for fid in flows if fid in senders]
    assert len(shared) >= 2
    first, _ = controller.analytic_round_ns(shared[0], 150_000, 1_500, True)
    # Claim many concurrent rounds on overlapping paths, then re-time.
    for other in shared[1:]:
        controller.analytic_round_ns(other, 150_000, 1_500, True)
    # Re-measure the first sender's next round with contention in place.
    controller.round_finished(shared[0])
    contended, _ = controller.analytic_round_ns(shared[0], 150_000, 1_500,
                                               True)
    assert contended >= first
    for other in shared:
        controller.round_finished(other)


def test_round_claims_never_go_negative():
    # Rounds in flight at the horizon legitimately keep their claims
    # (committed, like packets on the wire); but a double release would
    # drive a counter below zero.
    result = _hybrid_result()
    controller = result.network.fidelity
    assert all(state.active >= 0 for state in controller._state.values())
    assert all(state.shares >= 0 for state in controller._state.values())


# -- engine recurring events --------------------------------------------------

def test_schedule_every_fires_at_fixed_interval():
    engine = Engine()
    ticks = []
    engine.schedule_every(10, lambda: ticks.append(engine.now))
    engine.schedule_fast(100, lambda: None)
    engine.run(until=95)
    assert ticks == [10, 20, 30, 40, 50, 60, 70, 80, 90]


def test_schedule_every_stop_cancels_future_fires():
    engine = Engine()
    ticks = []
    handle = engine.schedule_every(10, lambda: ticks.append(engine.now))

    def stop():
        handle.stop()

    engine.schedule_fast(35, stop)
    engine.schedule_fast(100, lambda: None)
    engine.run(until=100)
    assert ticks == [10, 20, 30]


def test_schedule_every_callback_can_stop_itself():
    engine = Engine()
    ticks = []
    handle = engine.schedule_every(5, lambda: (
        ticks.append(engine.now),
        handle.stop() if len(ticks) >= 2 else None))
    engine.schedule_fast(100, lambda: None)
    engine.run(until=100)
    assert ticks == [5, 10]


def test_schedule_every_rejects_nonpositive_interval():
    engine = Engine()
    with pytest.raises(ValueError):
        engine.schedule_every(0, lambda: None)
