"""Sliding-window sender / cumulative-ACK receiver machinery.

Uses a loopback harness: sender and receiver host stubs wired by a
configurable channel (delay, per-packet drop hooks) so loss and
reordering can be injected precisely.
"""

from typing import Callable, List, Optional

from repro.metrics.collector import MetricsCollector
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Engine
from repro.transport.base import FlowReceiver, FlowSender, TransportConfig
from repro.transport.reno import RenoSender


class StubHost:
    """Minimal host: forwards stack egress over a test channel."""

    def __init__(self, engine: Engine, host_id: int) -> None:
        self.engine = engine
        self.host_id = host_id
        self.channel: Optional[Callable[[Packet], None]] = None
        self.sent: List[Packet] = []

    def send_packet(self, packet: Packet) -> None:
        self.sent.append(packet)
        if self.channel is not None:
            self.channel(packet)


def loopback(engine: Engine, *, delay_ns: int = 10_000,
             drop: Optional[Callable[[Packet], bool]] = None,
             size: int = 20_000, config: Optional[TransportConfig] = None,
             sender_cls=RenoSender):
    """Wire a sender at host 1 and receiver at host 2 through a channel."""
    metrics = MetricsCollector()
    src, dst = StubHost(engine, 1), StubHost(engine, 2)
    metrics.flow_started(7, 1, 2, size, 0)
    config = config or TransportConfig()
    sender = sender_cls(engine, src, 7, 2, size, config, metrics)
    receiver = FlowReceiver(engine, dst, 7, 1, size, metrics,
                            config=config)

    def channel_from_src(packet: Packet) -> None:
        if drop is not None and drop(packet):
            return
        engine.schedule(delay_ns, receiver.on_data, packet)

    def channel_from_dst(packet: Packet) -> None:
        engine.schedule(delay_ns, sender.on_ack, packet)

    src.channel = channel_from_src
    dst.channel = channel_from_dst
    return sender, receiver, metrics, src, dst


def test_lossless_transfer_completes():
    engine = Engine()
    sender, receiver, metrics, src, _ = loopback(engine, size=20_000)
    sender.start()
    engine.run()
    assert receiver.completed
    assert sender.completed
    assert metrics.flows[7].completed
    assert metrics.counters.retransmissions == 0


def test_initial_window_limits_first_burst():
    engine = Engine()
    config = TransportConfig(init_cwnd=4.0)
    sender, _, _, src, _ = loopback(engine, size=1_000_000, config=config)
    sender.start()
    assert len(src.sent) == 4  # exactly the initial window, before any ACK


def test_segments_are_mss_sized_with_small_tail():
    engine = Engine()
    sender, _, _, src, _ = loopback(engine, size=3_000)
    sender.start()
    engine.run()
    data = [p for p in src.sent if p.kind is PacketKind.DATA]
    assert [p.payload for p in data] == [1460, 1460, 80]


def test_single_loss_recovered_by_fast_retransmit():
    engine = Engine()
    lost = {1460}  # drop the second segment once

    def drop(packet: Packet) -> bool:
        if packet.kind is PacketKind.DATA and packet.seq in lost \
                and packet.tx_count == 1:
            lost.discard(packet.seq)
            return True
        return False

    sender, receiver, metrics, _, _ = loopback(engine, size=30_000,
                                               drop=drop)
    sender.start()
    engine.run()
    assert receiver.completed
    assert metrics.counters.retransmissions == 1
    # Fast retransmit, not an RTO: completion well before min RTO.
    assert metrics.flows[7].fct_ns < TransportConfig().min_rto_ns


def test_loss_without_fast_retransmit_needs_rto():
    engine = Engine()
    lost = {1460}

    def drop(packet: Packet) -> bool:
        if packet.kind is PacketKind.DATA and packet.seq in lost \
                and packet.tx_count == 1:
            lost.discard(packet.seq)
            return True
        return False

    config = TransportConfig(fast_retransmit=False,
                             min_rto_ns=5_000_000,
                             init_rto_ns=5_000_000)
    sender, receiver, metrics, _, _ = loopback(engine, size=30_000,
                                               drop=drop, config=config)
    sender.start()
    engine.run()
    assert receiver.completed
    assert metrics.flows[7].fct_ns >= 5_000_000  # paid a full RTO


def test_tail_loss_recovered_by_rto():
    engine = Engine()

    def drop(packet: Packet) -> bool:
        # Drop the very last segment's first transmission: no dupacks.
        return (packet.kind is PacketKind.DATA and packet.tx_count == 1
                and packet.end_seq == 20_000)

    config = TransportConfig(min_rto_ns=2_000_000, init_rto_ns=2_000_000)
    sender, receiver, metrics, _, _ = loopback(engine, size=20_000,
                                               drop=drop, config=config)
    sender.start()
    engine.run()
    assert receiver.completed
    assert metrics.counters.retransmissions >= 1


def test_every_packet_dropped_then_released_still_completes():
    engine = Engine()
    state = {"drop_all": True}

    def drop(packet: Packet) -> bool:
        return state["drop_all"]

    config = TransportConfig(min_rto_ns=1_000_000, init_rto_ns=1_000_000)
    sender, receiver, _, _, _ = loopback(engine, size=5_000, drop=drop,
                                         config=config)
    sender.start()
    engine.run(until=3_500_000)
    assert not receiver.completed
    state["drop_all"] = False
    engine.run()
    assert receiver.completed


def test_rto_backoff_doubles():
    engine = Engine()
    drops: List[int] = []

    def drop(packet: Packet) -> bool:
        if packet.kind is PacketKind.DATA:
            drops.append(engine.now)
            return True
        return False

    config = TransportConfig(init_cwnd=1.0, min_rto_ns=1_000_000,
                             init_rto_ns=1_000_000)
    sender, _, _, _, _ = loopback(engine, size=1_000, drop=drop,
                                  config=config)
    sender.start()
    engine.run(until=20_000_000)
    gaps = [b - a for a, b in zip(drops, drops[1:])]
    assert gaps[0] >= 1_000_000
    assert gaps[1] >= 2 * gaps[0] * 0.99  # exponential backoff


def test_receiver_reorder_buffer_delivers_all_bytes():
    engine = Engine()
    metrics = MetricsCollector()
    dst = StubHost(engine, 2)
    metrics.flow_started(7, 1, 2, 4_000, 0)
    receiver = FlowReceiver(engine, dst, 7, 1, 4_000, metrics)
    from tests.helpers import mk_data
    segs = [mk_data(flow_id=7, seq=s, payload=1000, src=1, dst=2)
            for s in (0, 1000, 2000, 3000)]
    receiver.on_data(segs[0])
    receiver.on_data(segs[2])          # out of order
    assert receiver.rcv_nxt == 1000    # holds at the gap
    receiver.on_data(segs[1])
    assert receiver.rcv_nxt == 3000    # drained through the buffer
    receiver.on_data(segs[3])
    assert receiver.completed
    assert metrics.counters.reordered_arrivals == 1


def test_receiver_acks_echo_ecn_and_timestamp():
    engine = Engine()
    metrics = MetricsCollector()
    dst = StubHost(engine, 2)
    receiver = FlowReceiver(engine, dst, 7, 1, 10_000, metrics)
    from tests.helpers import mk_data
    packet = mk_data(flow_id=7, seq=0, payload=1000, src=1, dst=2)
    packet.ecn_ce = True
    packet.sent_at = 123
    receiver.on_data(packet)
    ack = dst.sent[-1]
    assert ack.kind is PacketKind.ACK
    assert ack.ece and ack.ts_echo == 123
    assert ack.ack_no == 1000


def test_duplicate_data_reacked_not_recounted():
    engine = Engine()
    metrics = MetricsCollector()
    metrics.flow_started(7, 1, 2, 2_000, 0)
    dst = StubHost(engine, 2)
    receiver = FlowReceiver(engine, dst, 7, 1, 2_000, metrics)
    from tests.helpers import mk_data
    packet = mk_data(flow_id=7, seq=0, payload=1000, src=1, dst=2)
    receiver.on_data(packet)
    dup = mk_data(flow_id=7, seq=0, payload=1000, src=1, dst=2)
    receiver.on_data(dup)
    assert receiver.rcv_nxt == 1000
    assert dst.sent[-1].ack_no == 1000  # still cumulative-ACKed


def test_rtt_estimator_from_timestamp_echo():
    engine = Engine()
    sender, receiver, _, _, _ = loopback(engine, size=2_000,
                                         delay_ns=50_000)
    sender.start()
    engine.run()
    assert sender.srtt_ns is not None
    assert 90_000 <= sender.srtt_ns <= 110_000  # ~2x one-way delay


def test_sender_stops_timers_on_completion():
    engine = Engine()
    sender, _, _, _, _ = loopback(engine, size=1_000)
    sender.start()
    engine.run()
    assert sender.completed
    assert not sender._rto_timer.armed
    assert engine.pending() == 0
