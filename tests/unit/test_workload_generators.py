"""Coflow and duty-cycle generators: barriers, CCT accounting, burst gating."""

import random

import pytest

from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Engine
from repro.sim.units import MILLISECOND, SECOND
from repro.workload.coflow import CoflowApp, cps_for_load
from repro.workload.distributions import cache_follower
from repro.workload.dutycycle import DutyCycleTraffic


class FakeNet:
    """A flow opener that completes each flow after a fixed service time,
    driving metrics and the coflow's barrier callback the way the
    experiment runner does (completion recorded, then ``on_done``)."""

    def __init__(self, engine, metrics, service_ns=10_000):
        self.engine = engine
        self.metrics = metrics
        self.service_ns = service_ns
        self.opened = []
        self._next_flow_id = 0

    def __call__(self, src, dst, size, is_incast=False, query_id=None,
                 coflow_id=None, on_done=None):
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        self.opened.append((self.engine.now, src, dst, size, coflow_id))
        self.metrics.flow_started(flow_id, src, dst, size, self.engine.now,
                                  is_incast=is_incast, query_id=query_id,
                                  coflow_id=coflow_id)
        self.engine.schedule_fast(self.service_ns, self._finish, flow_id,
                                  on_done)

    def _finish(self, flow_id, on_done):
        self.metrics.flow_completed(flow_id, self.engine.now)
        if on_done is not None:
            on_done(flow_id)


def make_coflow_app(pattern="shuffle", width=3, stages=2, cps=200.0,
                    n_hosts=16, until_ns=SECOND // 10, seed=1):
    engine = Engine()
    metrics = MetricsCollector()
    net = FakeNet(engine, metrics)
    app = CoflowApp(engine, net, metrics, n_hosts=n_hosts, cps=cps,
                    width=width, stages=stages, pattern=pattern,
                    flow_bytes=40_000, rng=random.Random(seed),
                    until_ns=until_ns)
    return engine, metrics, net, app


def test_cps_for_load_formula():
    cps = cps_for_load(0.2, 16, 10 ** 9, 64, 40_000)
    assert cps == pytest.approx(0.2 * 16 * 1e9 / (8 * 64 * 40_000))
    with pytest.raises(ValueError):
        cps_for_load(0.2, 16, 10 ** 9, 0, 40_000)


def test_shuffle_coflow_opens_width_squared_per_stage():
    engine, metrics, net, app = make_coflow_app(width=3, stages=2)
    app.start()
    engine.run()
    assert app.coflows_launched >= 2
    assert app.flows_per_coflow == 18
    by_coflow = {}
    for _, src, dst, _, coflow_id in net.opened:
        by_coflow.setdefault(coflow_id, []).append((src, dst))
    completed = [c for c in metrics.coflows.values() if c.completed]
    assert completed
    for record in completed:
        assert len(by_coflow[record.coflow_id]) == 18


def test_shuffle_stage_barrier_orders_flow_opens():
    engine, metrics, net, app = make_coflow_app(width=2, stages=2,
                                                cps=20.0)
    app.start()
    engine.run()
    by_coflow = {}
    for t, src, dst, _, coflow_id in net.opened:
        by_coflow.setdefault(coflow_id, []).append((t, src, dst))
    record = next(c for c in metrics.coflows.values() if c.completed)
    opens = by_coflow[record.coflow_id]
    assert len(opens) == 8
    stage1, stage2 = opens[:4], opens[4:]
    # Every stage-2 flow opens only after every stage-1 flow finished.
    last_stage1_end = max(t for t, _, _ in stage1) + net.service_ns
    assert all(t >= last_stage1_end for t, _, _ in stage2)
    # Roles swap between stages: stage-2 sends the reverse direction.
    senders1 = {src for _, src, _ in stage1}
    senders2 = {src for _, src, _ in stage2}
    assert senders1 == {dst for _, _, dst in stage2}
    assert senders2 == {dst for _, _, dst in stage1}


def test_partition_aggregate_scatters_then_gathers():
    engine, metrics, net, app = make_coflow_app(
        pattern="partition_aggregate", width=4, stages=1, cps=20.0)
    app.start()
    engine.run()
    assert app.flows_per_coflow == 8
    record = next(c for c in metrics.coflows.values() if c.completed)
    opens = [(t, src, dst) for t, src, dst, _, cid in net.opened
             if cid == record.coflow_id]
    scatter, gather = opens[:4], opens[4:]
    roots = {src for _, src, _ in scatter}
    assert len(roots) == 1
    root = roots.pop()
    assert all(dst != root for _, _, dst in scatter)
    assert all(dst == root for _, _, dst in gather)
    assert {src for _, src, _ in gather} == {dst for _, _, dst in scatter}


def test_cct_spans_first_open_to_last_completion():
    engine, metrics, net, app = make_coflow_app(width=2, stages=1,
                                                cps=10.0)
    app.start()
    engine.run()
    record = next(c for c in metrics.coflows.values() if c.completed)
    flows = [f for f in metrics.flows.values()
             if f.coflow_id == record.coflow_id]
    assert record.n_flows == len(flows) == 4
    assert record.end_ns == max(f.end_ns for f in flows)
    assert record.cct_ns == record.end_ns - record.start_ns
    assert metrics.mean_cct_s() > 0


def test_coflow_width_must_fit_topology():
    with pytest.raises(ValueError):
        make_coflow_app(width=9, n_hosts=16)   # shuffle needs 2x9 hosts
    with pytest.raises(ValueError):
        make_coflow_app(pattern="partition_aggregate", width=16,
                        n_hosts=16)            # pa needs width+1 hosts


def test_coflow_zero_rate_generates_nothing():
    engine, metrics, net, app = make_coflow_app(cps=0.0)
    app.start()
    engine.run()
    assert net.opened == [] and app.coflows_launched == 0


# -- duty cycle ---------------------------------------------------------------

def make_duty(duty, load=0.4, period_ns=MILLISECOND, seed=3,
              until_ns=SECOND // 2):
    engine = Engine()
    log = []

    def opener(src, dst, size, is_incast=False, query_id=None):
        log.append((engine.now, src, dst, size))

    traffic = DutyCycleTraffic(engine, opener, n_hosts=16,
                               host_rate_bps=10 ** 9, load=load, duty=duty,
                               period_ns=period_ns,
                               sizes=cache_follower().truncated(200_000),
                               rng=random.Random(seed), until_ns=until_ns)
    traffic.start()
    engine.run(until=until_ns)
    return traffic, log


def test_duty_cycle_arrivals_stay_inside_on_windows():
    traffic, log = make_duty(duty=0.2)
    assert log
    for t, _, _, _ in log:
        assert t % traffic.period_ns < traffic.on_ns


def test_duty_cycle_preserves_offered_load():
    # The same mean byte rate regardless of burstiness.
    offered = {}
    for duty in (1.0, 0.25):
        traffic, log = make_duty(duty=duty)
        offered[duty] = sum(size for _, _, _, size in log) * 8
    capacity = 16 * 10 ** 9 // 2   # half-second horizon
    assert offered[1.0] / capacity == pytest.approx(0.4, rel=0.15)
    assert offered[0.25] == pytest.approx(offered[1.0], rel=0.2)


def test_duty_one_matches_plain_background_statistics():
    traffic, log = make_duty(duty=1.0)
    assert traffic.on_ns == traffic.period_ns
    # With a full on-window, nothing is gated: arrivals cover the period.
    phases = [t % traffic.period_ns for t, _, _, _ in log]
    assert max(phases) > 0.9 * traffic.period_ns


def test_duty_cycle_times_are_monotone_ints():
    traffic, log = make_duty(duty=0.1, seed=11)
    times = [t for t, _, _, _ in log]
    assert all(type(t) is int for t in times)
    assert times == sorted(times)


def test_duty_cycle_picks_valid_endpoints():
    traffic, log = make_duty(duty=0.5, seed=12, until_ns=SECOND // 20)
    assert traffic.flows_generated == len(log)
    for _, src, dst, _ in log:
        assert 0 <= src < 16 and 0 <= dst < 16 and src != dst


def test_duty_cycle_zero_load_generates_nothing():
    traffic, log = make_duty(duty=0.5, load=0.0)
    assert log == []


def test_duty_cycle_validation():
    engine = Engine()
    with pytest.raises(ValueError):
        DutyCycleTraffic(engine, lambda *a, **k: None, n_hosts=1,
                         host_rate_bps=10 ** 9, load=0.1, duty=0.5,
                         period_ns=1000, sizes=cache_follower(),
                         rng=random.Random(0), until_ns=SECOND)
    with pytest.raises(ValueError):
        DutyCycleTraffic(engine, lambda *a, **k: None, n_hosts=4,
                         host_rate_bps=10 ** 9, load=0.1, duty=0.0,
                         period_ns=1000, sizes=cache_follower(),
                         rng=random.Random(0), until_ns=SECOND)
