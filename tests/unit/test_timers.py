"""Restartable timers."""

from repro.sim.engine import Engine
from repro.sim.timers import Timer


def test_timer_fires_once():
    engine = Engine()
    fired = []
    timer = Timer(engine, fired.append, "x")
    timer.start(100)
    engine.run()
    assert fired == ["x"]
    assert not timer.armed


def test_timer_restart_replaces_previous():
    engine = Engine()
    fired = []
    timer = Timer(engine, lambda: fired.append(engine.now))
    timer.start(100)
    timer.start(500)
    engine.run()
    assert fired == [500]


def test_timer_stop_cancels():
    engine = Engine()
    fired = []
    timer = Timer(engine, fired.append, 1)
    timer.start(100)
    timer.stop()
    engine.run()
    assert fired == []
    assert not timer.armed


def test_timer_expires_at_and_remaining():
    engine = Engine()
    timer = Timer(engine, lambda: None)
    assert timer.expires_at is None
    assert timer.remaining() is None
    timer.start(250)
    assert timer.expires_at == 250
    assert timer.remaining() == 250


def test_timer_rearm_inside_callback():
    engine = Engine()
    fires = []

    def on_fire():
        fires.append(engine.now)
        if len(fires) < 3:
            timer.start(10)

    timer = Timer(engine, on_fire)
    timer.start(10)
    engine.run()
    assert fires == [10, 20, 30]


def test_timer_armed_property_tracks_state():
    engine = Engine()
    timer = Timer(engine, lambda: None)
    assert not timer.armed
    timer.start(5)
    assert timer.armed
    engine.run()
    assert not timer.armed
