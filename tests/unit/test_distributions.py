"""Empirical flow-size distributions."""

import random

import pytest

from repro.workload.distributions import (
    DISTRIBUTIONS,
    EmpiricalCDF,
    cache_follower,
    data_mining,
    get_distribution,
    web_search,
)


def test_all_named_distributions_construct():
    for name in DISTRIBUTIONS:
        dist = get_distribution(name)
        assert dist.mean() > 0


def test_unknown_distribution_rejected():
    with pytest.raises(ValueError):
        get_distribution("nope")


def test_quantile_endpoints():
    dist = cache_follower()
    assert dist.quantile(0.0) == 500
    assert dist.quantile(1.0) == 10_000_000


def test_quantile_monotone():
    dist = web_search()
    values = [dist.quantile(i / 100) for i in range(101)]
    assert all(b >= a for a, b in zip(values, values[1:]))


def test_quantile_hits_breakpoints():
    dist = cache_follower()
    assert dist.quantile(0.5) == pytest.approx(24_000, rel=1e-6)


def test_cache_follower_is_mice_dominated():
    # Paper §4.2: 50% of cache-follower flows send less than 24 KB.
    dist = cache_follower()
    rng = random.Random(0)
    samples = [dist.sample(rng) for _ in range(4000)]
    under_24k = sum(size <= 24_000 for size in samples) / len(samples)
    assert 0.45 <= under_24k <= 0.55


def test_data_mining_is_heavy_tailed():
    dist = data_mining()
    rng = random.Random(0)
    samples = [dist.sample(rng) for _ in range(4000)]
    assert sum(s < 10_000 for s in samples) / len(samples) > 0.6
    assert max(samples) > 10_000_000


def test_sampling_respects_seed():
    dist = web_search()
    a = [dist.sample(random.Random(5)) for _ in range(10)]
    b = [dist.sample(random.Random(5)) for _ in range(10)]
    assert a == b


def test_samples_are_positive_ints():
    dist = data_mining()
    rng = random.Random(1)
    for _ in range(100):
        value = dist.sample(rng)
        assert isinstance(value, int) and value >= 1


def test_truncation_caps_tail_and_lowers_mean():
    full = data_mining()
    capped = full.truncated(1_000_000)
    rng = random.Random(2)
    assert max(capped.sample(rng) for _ in range(2000)) <= 1_000_000
    assert capped.mean() < full.mean()


def test_truncation_cap_below_min_rejected():
    with pytest.raises(ValueError):
        cache_follower().truncated(10)


def test_cdf_validation():
    with pytest.raises(ValueError):
        EmpiricalCDF([(100, 0.0)])  # too few points
    with pytest.raises(ValueError):
        EmpiricalCDF([(100, 0.0), (50, 1.0)])  # values not increasing
    with pytest.raises(ValueError):
        EmpiricalCDF([(100, 0.5), (200, 1.0)])  # doesn't start at 0
    with pytest.raises(ValueError):
        EmpiricalCDF([(100, 0.0), (200, 0.9)])  # doesn't end at 1
    with pytest.raises(ValueError):
        EmpiricalCDF([(0, 0.0), (200, 1.0)])  # non-positive size


def test_mean_matches_sampled_mean():
    dist = cache_follower()
    rng = random.Random(3)
    sampled = sum(dist.sample(rng) for _ in range(20_000)) / 20_000
    assert sampled == pytest.approx(dist.mean(), rel=0.15)
