"""The shared traffic-matrix layer: uniform legacy equivalence and skews."""

import random
from collections import Counter

import pytest

from repro.workload.matrix import NodeMatrix
from repro.workload.spec import SkewSpec


def rack_of(host):
    """Four hosts per rack, like a small leaf-spine."""
    return f"leaf{host // 4}"


# -- uniform: bit-for-bit legacy equivalence ---------------------------------

def test_uniform_pick_src_matches_legacy_draws():
    matrix = NodeMatrix(16)
    a, b = random.Random(7), random.Random(7)
    for _ in range(200):
        assert matrix.pick_src(a) == b.randrange(16)


def test_uniform_pick_dst_matches_legacy_draws():
    matrix = NodeMatrix(16)
    a, b = random.Random(8), random.Random(8)
    for src in list(range(16)) * 10:
        dst = matrix.pick_dst(a, src)
        legacy = b.randrange(15)
        legacy = legacy + 1 if legacy >= src else legacy
        assert dst == legacy and dst != src


def test_uniform_pick_servers_matches_legacy_draws():
    matrix = NodeMatrix(16)
    a, b = random.Random(9), random.Random(9)
    for client in range(16):
        servers = matrix.pick_servers(a, client, 5)
        pool = list(range(16))
        pool.remove(client)
        assert servers == b.sample(pool, 5)


# -- invariants common to every skew -----------------------------------------

@pytest.mark.parametrize("skew", [
    SkewSpec(),
    SkewSpec(kind="zipf", zipf_s=1.2),
    SkewSpec(kind="hotrack", hot_fraction=0.7, hot_racks=1),
    SkewSpec(kind="permutation"),
])
def test_picks_in_range_and_distinct(skew):
    matrix = NodeMatrix(16, skew, rack_of=rack_of,
                        setup_rng=random.Random(0))
    rng = random.Random(1)
    for _ in range(300):
        src = matrix.pick_src(rng)
        dst = matrix.pick_dst(rng, src)
        assert 0 <= src < 16 and 0 <= dst < 16 and src != dst
    for client in range(16):
        servers = matrix.pick_servers(rng, client, 6)
        assert len(servers) == len(set(servers)) == 6
        assert client not in servers
        assert all(0 <= s < 16 for s in servers)


# -- zipf --------------------------------------------------------------------

def test_zipf_concentrates_on_low_hosts():
    matrix = NodeMatrix(16, SkewSpec(kind="zipf", zipf_s=1.5))
    rng = random.Random(2)
    counts = Counter(matrix.pick_src(rng) for _ in range(4000))
    # Host 0 carries by far the most traffic; the tail is long but thin.
    assert counts[0] > counts[8] > 0 or counts[8] == 0
    assert counts[0] / 4000 > 0.25


# -- hotrack -----------------------------------------------------------------

def test_hotrack_hot_fraction_lands_on_first_rack():
    skew = SkewSpec(kind="hotrack", hot_fraction=0.8, hot_racks=1)
    matrix = NodeMatrix(16, skew, rack_of=rack_of)
    rng = random.Random(3)
    picks = [matrix.pick_src(rng) for _ in range(4000)]
    hot = sum(1 for p in picks if p < 4)   # rack leaf0 = hosts 0..3
    assert hot / 4000 == pytest.approx(0.8, abs=0.05)


def test_hotrack_needs_rack_map_and_cold_racks():
    with pytest.raises(ValueError):
        NodeMatrix(16, SkewSpec(kind="hotrack"))
    with pytest.raises(ValueError):
        NodeMatrix(8, SkewSpec(kind="hotrack", hot_racks=2),
                   rack_of=rack_of)   # 8 hosts -> 2 racks, all hot


# -- permutation -------------------------------------------------------------

def test_permutation_is_fixed_derangement():
    matrix = NodeMatrix(16, SkewSpec(kind="permutation"),
                        setup_rng=random.Random(4))
    rng = random.Random(5)
    partners = {src: matrix.pick_dst(rng, src) for src in range(16)}
    assert all(partners[src] != src for src in range(16))
    assert len(set(partners.values())) == 16   # a bijection
    # Picks are fixed: asking again returns the same partner...
    assert all(matrix.pick_dst(rng, src) == partners[src]
               for src in range(16))
    # ...and consumes no randomness at all.
    state_before = rng.getstate()
    matrix.pick_dst(rng, 3)
    assert rng.getstate() == state_before


def test_permutation_has_no_fixed_point_across_seed_sweep():
    # A shuffle leaves exactly one fixed point with probability ~1/e;
    # the old rotation fix-up was a no-op in that case and let hosts
    # send to themselves.  Sweep many setup seeds to cover it.
    for seed in range(2000):
        matrix = NodeMatrix(8, SkewSpec(kind="permutation"),
                            setup_rng=random.Random(seed))
        perm = matrix._perm
        assert sorted(perm) == list(range(8)), seed   # still a bijection
        assert all(perm[i] != i for i in range(8)), seed


def test_permutation_needs_setup_rng():
    with pytest.raises(ValueError):
        NodeMatrix(16, SkewSpec(kind="permutation"))


def test_permutation_servers_exclude_client_and_wrap():
    matrix = NodeMatrix(8, SkewSpec(kind="permutation"),
                        setup_rng=random.Random(6))
    rng = random.Random(7)
    for client in range(8):
        servers = matrix.pick_servers(rng, client, 7)
        assert sorted(servers) == [h for h in range(8) if h != client]


# -- errors ------------------------------------------------------------------

def test_matrix_needs_two_hosts():
    with pytest.raises(ValueError):
        NodeMatrix(1)


def test_pick_servers_rejects_impossible_count():
    matrix = NodeMatrix(8)
    with pytest.raises(ValueError):
        matrix.pick_servers(random.Random(0), 0, 8)


def test_pick_dst_rejects_src_as_only_eligible_host():
    # hot_fraction=1.0 with a single-host hot rack gives every other
    # host weight 0: picking a destination for that host must raise
    # instead of spinning in the rejection loop forever.
    skew = SkewSpec(kind="hotrack", hot_fraction=1.0, hot_racks=1)
    matrix = NodeMatrix(8, skew, rack_of=lambda h: f"leaf{h}")
    rng = random.Random(0)
    with pytest.raises(ValueError):
        matrix.pick_dst(rng, 0)
    # Other sources still resolve (to the lone hot host).
    assert matrix.pick_dst(rng, 1) == 0
