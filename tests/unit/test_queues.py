"""Byte-bounded FIFO and ranked output queues."""

import pytest

from repro.core.flowinfo import FlowInfo
from repro.net.queues import DropTailQueue, RankedQueue
from tests.helpers import mk_data


def _marked(rank, payload=1000, seq=0, flow_id=1):
    packet = mk_data(flow_id=flow_id, seq=seq, payload=payload)
    packet.flowinfo = FlowInfo(rfs=rank)
    return packet


def test_droptail_fifo_order():
    queue = DropTailQueue(10_000)
    a, b = mk_data(seq=0), mk_data(seq=1000)
    queue.push(a)
    queue.push(b)
    assert queue.pop() is a
    assert queue.pop() is b


def test_droptail_byte_accounting():
    queue = DropTailQueue(10_000)
    packet = mk_data(payload=1000)
    queue.push(packet)
    assert queue.bytes == packet.wire_bytes
    queue.pop()
    assert queue.bytes == 0


def test_droptail_fits_respects_capacity():
    queue = DropTailQueue(1500)
    big = mk_data(payload=1400)   # 1440 wire bytes
    queue.push(big)
    assert not queue.fits(mk_data(payload=100))
    with pytest.raises(OverflowError):
        queue.push(mk_data(payload=100))


def test_droptail_free_bytes():
    queue = DropTailQueue(5000)
    assert queue.free_bytes == 5000
    queue.push(mk_data(payload=960))  # 1000 wire
    assert queue.free_bytes == 4000


def test_ecn_marks_above_threshold_only_capable_packets():
    queue = DropTailQueue(100_000, ecn_threshold_bytes=2000)
    filler_1 = mk_data(payload=1460)
    filler_2 = mk_data(payload=1460)
    queue.push(filler_1)
    queue.push(filler_2)  # occupancy 1500 -> below threshold at arrival
    capable = mk_data(payload=1000, ecn_capable=True)
    queue.push(capable)   # occupancy 3000 >= 2000 at arrival
    assert capable.ecn_ce
    not_capable = mk_data(payload=1000)
    queue.push(not_capable)
    assert not not_capable.ecn_ce
    assert queue.stats.ecn_marked == 1


def test_no_ecn_marking_when_disabled():
    queue = DropTailQueue(100_000)
    for _ in range(10):
        packet = mk_data(payload=1460, ecn_capable=True)
        queue.push(packet)
        assert not packet.ecn_ce


def test_ranked_pop_is_srpt_order():
    queue = RankedQueue(100_000)
    queue.push(_marked(30_000))
    queue.push(_marked(1_000))
    queue.push(_marked(20_000))
    assert queue.pop().flowinfo.rfs == 1_000
    assert queue.pop().flowinfo.rfs == 20_000
    assert queue.pop().flowinfo.rfs == 30_000


def test_ranked_peek_and_pop_tail():
    queue = RankedQueue(100_000)
    low, high = _marked(10), _marked(99_999)
    queue.push(low)
    queue.push(high)
    assert queue.peek_tail() is high
    assert queue.pop_tail() is high
    assert queue.peek_tail() is low


def test_ranked_byte_accounting_with_tail_pops():
    queue = RankedQueue(100_000)
    packets = [_marked(rank, payload=1000) for rank in (5, 3, 9)]
    for packet in packets:
        queue.push(packet)
    total = sum(packet.wire_bytes for packet in packets)
    assert queue.bytes == total
    dropped = queue.pop_tail()
    assert queue.bytes == total - dropped.wire_bytes


def test_ranked_overflow_raises():
    queue = RankedQueue(1000)
    queue.push(_marked(1, payload=900))
    with pytest.raises(OverflowError):
        queue.push(_marked(2, payload=900))


def test_ranked_ecn_marking():
    queue = RankedQueue(100_000, ecn_threshold_bytes=1000)
    queue.push(_marked(1, payload=1460))
    capable = _marked(2, payload=1000)
    capable.ecn_capable = True
    queue.push(capable)
    assert capable.ecn_ce


def test_stats_track_max_occupancy_and_counts():
    queue = DropTailQueue(100_000)
    queue.push(mk_data(payload=1460), now_ns=0)
    queue.push(mk_data(payload=1460), now_ns=10)
    queue.pop(now_ns=20)
    stats = queue.stats
    assert stats.enqueued == 2
    assert stats.dequeued == 1
    assert stats.max_bytes == 3000


def test_occupancy_integral_time_weighted():
    queue = DropTailQueue(100_000)
    packet = mk_data(payload=960)  # 1000 wire bytes
    queue.push(packet, now_ns=0)
    queue.pop(now_ns=100)  # held 1000 bytes for 100 ns
    assert queue.stats.occupancy_integral == 1000 * 100


def test_packets_snapshot():
    fifo = DropTailQueue(100_000)
    a, b = mk_data(seq=0), mk_data(seq=1000)
    fifo.push(a)
    fifo.push(b)
    assert fifo.packets() == [a, b]
    ranked = RankedQueue(100_000)
    ranked.push(_marked(7))
    ranked.push(_marked(3))
    assert [p.flowinfo.rfs for p in ranked.packets()] == [3, 7]
