"""RunReport: the unified result surface."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    RunReport,
    format_table,
    run_experiment,
)
from repro.experiments.report import ROW_KEYS
from repro.trace import TraceConfig


@pytest.fixture(scope="module")
def result():
    config = ExperimentConfig.bench_profile(
        system="vertigo", transport="dctcp", bg_load=0.3,
        incast_load=0.1, incast_scale=4, sim_time_ns=10_000_000, seed=2)
    config.telemetry_interval_ns = 1_000_000
    config.trace = TraceConfig(level="flow", sample_period_ns=1_000_000)
    return run_experiment(config)


def test_report_row_matches_legacy_row(result):
    report = result.report()
    assert isinstance(report, RunReport)
    assert tuple(report.row().keys()) == ROW_KEYS
    assert report.row() == result.row()


def test_report_run_section(result):
    run = result.report().run
    assert run["seed"] == 2
    assert run["sim_time_ns"] == 10_000_000
    assert run["events_executed"] == result.engine.events_executed
    assert run["flows_recorded"] == len(result.metrics.flows)


def test_report_telemetry_section(result):
    telemetry = result.report().telemetry
    assert telemetry is not None
    assert set(telemetry) == {"mean_utilization", "microbursts",
                              "persistent", "fault_events", "samples",
                              "pfc_deadlocks"}
    assert telemetry["samples"] > 0


def test_report_trace_section(result):
    trace = result.report().trace
    assert trace is not None
    assert trace["level"] == "flow"
    assert trace["events"] == len(result.trace.events)
    assert trace["dropped_events"] == 0
    assert "flow.start" in trace["counts"]
    assert "sample.port" in trace["counts"]


def test_report_profile_section(result):
    profile = result.report().profile
    assert set(profile) == {"build", "run", "finalize"}
    assert all(seconds >= 0 for seconds in profile.values())


def test_report_to_dict_schema(result):
    view = result.report().to_dict()
    assert set(view) == {"row", "run", "drops", "telemetry", "trace",
                         "profile", "fidelity", "drops_by_class", "pfc"}
    assert tuple(view["row"].keys()) == ROW_KEYS


def test_untraced_report_sections_none():
    config = ExperimentConfig.bench_profile(
        system="ecmp", transport="dctcp", bg_load=0.1,
        sim_time_ns=2_000_000)
    report = run_experiment(config).report()
    assert report.telemetry is None
    assert report.trace is None


def test_format_table_accepts_reports_results_and_dicts(result):
    report = result.report()
    table = format_table([report, result, result.row()])
    lines = table.splitlines()
    assert lines[0].split()[:2] == ["system", "transport"]
    assert len(lines) == 2 + 3  # header + divider + three rows
    assert "vertigo" in table
