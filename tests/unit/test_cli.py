"""Command-line interface."""

import pytest

from repro.cli import build_parser, config_from_args, main
from repro.net.topology import FatTree, LeafSpine


def test_defaults_build_bench_profile():
    args = build_parser().parse_args([])
    config = config_from_args(args)
    assert config.system.name == "vertigo"
    assert config.transport_name == "dctcp"
    assert isinstance(config.topology, LeafSpine)
    assert config.topology.n_hosts == 32


def test_all_knobs_flow_through():
    args = build_parser().parse_args([
        "--system", "dibs", "--transport", "swift", "--bg-load", "0.3",
        "--incast-load", "0.1", "--incast-scale", "5",
        "--incast-flow-bytes", "2000", "--sim-ms", "10", "--seed", "9"])
    config = config_from_args(args)
    assert config.system.name == "dibs"
    assert config.transport_name == "swift"
    assert config.workload.bg_load == 0.3
    assert config.workload.incast_load == 0.1
    assert config.workload.incast_scale == 5
    assert config.workload.incast_flow_bytes == 2000
    assert config.sim_time_ns == 10_000_000
    assert config.seed == 9


def test_fat_tree_flag():
    args = build_parser().parse_args(["--fat-tree", "4"])
    config = config_from_args(args)
    assert isinstance(config.topology, FatTree)
    assert config.topology.k == 4


def test_paper_scale_flag():
    args = build_parser().parse_args(["--paper-scale"])
    config = config_from_args(args)
    assert config.topology.n_hosts == 320


def test_invalid_system_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--system", "bogus"])


def test_main_runs_tiny_experiment(capsys):
    code = main(["--system", "ecmp", "--bg-load", "0.05",
                 "--incast-load", "0.02", "--incast-scale", "3",
                 "--incast-flow-bytes", "3000", "--sim-ms", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "mean_fct_s" in out
    assert "ecmp" in out


TINY = ["--bg-load", "0.05", "--incast-load", "0.02",
        "--incast-scale", "3", "--incast-flow-bytes", "3000",
        "--sim-ms", "5"]


def test_run_subcommand_equals_legacy(capsys):
    assert main(["run", "--system", "ecmp", *TINY]) == 0
    out = capsys.readouterr().out
    assert "mean_fct_s" in out and "ecmp" in out


def test_trace_flags_write_valid_jsonl_and_chrome(tmp_path, capsys):
    jsonl = str(tmp_path / "t.jsonl")
    chrome = str(tmp_path / "t.json")
    code = main(["run", "--system", "vertigo", *TINY,
                 "--trace", jsonl, "--trace-level", "packet",
                 "--sample-us", "1000", "--trace-chrome", chrome])
    assert code == 0
    capsys.readouterr()

    from repro.trace import validate_file
    assert validate_file(jsonl) == []

    import json
    view = json.load(open(chrome))
    assert view["traceEvents"]

    code = main(["trace-view", jsonl, "--validate"])
    assert code == 0
    out = capsys.readouterr().out
    assert "1 run(s)" in out
    assert "records by kind" in out


def test_trace_view_flags_invalid_file(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"ev":"bogus.kind","t":1}\n')
    assert main(["trace-view", str(bad), "--validate"]) == 1


def test_trace_view_chrome_conversion(tmp_path, capsys):
    jsonl = str(tmp_path / "t.jsonl")
    out = str(tmp_path / "converted.json")
    assert main(["run", *TINY, "--trace", jsonl]) == 0
    assert main(["trace-view", jsonl, "--chrome", out]) == 0
    capsys.readouterr()
    import json
    assert json.load(open(out))["displayTimeUnit"] == "ms"


def test_sweep_subcommand(capsys):
    code = main(["sweep", "--systems", "ecmp,vertigo", *TINY])
    assert code == 0
    out = capsys.readouterr().out
    assert "ecmp" in out and "vertigo" in out


def test_sweep_rejects_unknown_system(capsys):
    assert main(["sweep", "--systems", "warp", *TINY]) == 2


def test_malformed_fault_is_one_line_usage_error(capsys):
    """A bad --fault directive exits 2 with one stderr line, no traceback."""
    for argv in (["run", *TINY, "--fault", "link:bogus"],
                 ["sweep", "--systems", "ecmp", *TINY,
                  "--fault", "link:a-b:flap@1ms"]):
        assert main(argv) == 2
        err = capsys.readouterr().err
        lines = [line for line in err.splitlines() if line]
        assert len(lines) == 1
        assert lines[0].startswith("repro: error:")


def test_bad_repro_jobs_is_usage_error(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_JOBS", "many")
    assert main(["sweep", "--systems", "ecmp", *TINY]) == 2
    err = capsys.readouterr().err
    assert "REPRO_JOBS" in err
    assert main(["run", *TINY, "--seeds", "2"]) == 2
    assert "REPRO_JOBS" in capsys.readouterr().err


def test_bad_run_timeout_env_is_usage_error(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_RUN_TIMEOUT_S", "soon")
    assert main(["sweep", "--systems", "ecmp", *TINY]) == 2
    assert "REPRO_RUN_TIMEOUT_S" in capsys.readouterr().err


def test_sweep_rejects_journal_plus_resume(tmp_path, capsys):
    assert main(["sweep", "--systems", "ecmp", *TINY,
                 "--journal", str(tmp_path / "a.jsonl"),
                 "--resume", str(tmp_path / "b.jsonl")]) == 2


def test_sweep_journal_then_resume_skips_completed(tmp_path, capsys):
    journal = str(tmp_path / "sweep.jsonl")
    assert main(["sweep", "--systems", "ecmp", *TINY,
                 "--journal", journal]) == 0
    capsys.readouterr()
    assert main(["sweep", "--systems", "ecmp", *TINY,
                 "--resume", journal]) == 0
    err = capsys.readouterr().err
    assert "1 resumed from journal" in err


def test_lint_subcommand_clean_tree():
    assert main(["lint", "src/repro/trace"]) == 0


def test_multi_seed_traces_concatenate_in_seed_order(tmp_path, capsys):
    jsonl = str(tmp_path / "seeds.jsonl")
    code = main(["run", "--system", "vertigo", *TINY,
                 "--seeds", "2", "--trace", jsonl])
    assert code == 0
    import json
    seeds = [json.loads(line)["seed"] for line in open(jsonl)
             if '"trace.meta"' in line]
    assert seeds == [1, 2]


def test_workload_directives_flow_through():
    args = build_parser().parse_args([
        "--workload", "coflow:width=4,stages=2,cps=500",
        "--workload", "background:load=0.1",
        "--warmup", "2ms", "--cooldown", "1ms"])
    config = config_from_args(args)
    kinds = [spec.kind for spec in config.workload.specs]
    assert kinds == ["coflow", "background"]
    assert config.workload.specs[0].width == 4
    assert config.workload.warmup_ns == 2_000_000
    assert config.workload.cooldown_ns == 1_000_000


def test_warmup_applies_to_profile_workload():
    args = build_parser().parse_args(["--warmup", "5ms"])
    config = config_from_args(args)
    assert config.workload.warmup_ns == 5_000_000
    assert config.workload.bg_load == 0.5   # CLI default mix untouched


def test_run_with_workload_reports_cct(capsys):
    code = main(["run", "--system", "ecmp", "--sim-ms", "5",
                 "--workload", "coflow:width=3,cps=2000,bytes=5000"])
    assert code == 0
    out = capsys.readouterr().out
    assert "mean_cct_s" in out


def test_malformed_workload_is_one_line_usage_error(capsys):
    """A bad --workload directive exits 2, mirroring --fault."""
    for argv in (["run", *TINY, "--workload", "warp"],
                 ["run", *TINY, "--workload", "coflow:pattern=ring"],
                 ["sweep", "--systems", "ecmp", *TINY,
                  "--workload", "background:load=much"]):
        assert main(argv) == 2
        err = capsys.readouterr().err
        lines = [line for line in err.splitlines() if line]
        assert len(lines) == 1
        assert lines[0].startswith("repro: error:")
