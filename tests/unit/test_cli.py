"""Command-line interface."""

import pytest

from repro.cli import build_parser, config_from_args, main
from repro.net.topology import FatTree, LeafSpine


def test_defaults_build_bench_profile():
    args = build_parser().parse_args([])
    config = config_from_args(args)
    assert config.system.name == "vertigo"
    assert config.transport_name == "dctcp"
    assert isinstance(config.topology, LeafSpine)
    assert config.topology.n_hosts == 32


def test_all_knobs_flow_through():
    args = build_parser().parse_args([
        "--system", "dibs", "--transport", "swift", "--bg-load", "0.3",
        "--incast-load", "0.1", "--incast-scale", "5",
        "--incast-flow-bytes", "2000", "--sim-ms", "10", "--seed", "9"])
    config = config_from_args(args)
    assert config.system.name == "dibs"
    assert config.transport_name == "swift"
    assert config.workload.bg_load == 0.3
    assert config.workload.incast_load == 0.1
    assert config.workload.incast_scale == 5
    assert config.workload.incast_flow_bytes == 2000
    assert config.sim_time_ns == 10_000_000
    assert config.seed == 9


def test_fat_tree_flag():
    args = build_parser().parse_args(["--fat-tree", "4"])
    config = config_from_args(args)
    assert isinstance(config.topology, FatTree)
    assert config.topology.k == 4


def test_paper_scale_flag():
    args = build_parser().parse_args(["--paper-scale"])
    config = config_from_args(args)
    assert config.topology.n_hosts == 320


def test_invalid_system_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--system", "bogus"])


def test_main_runs_tiny_experiment(capsys):
    code = main(["--system", "ecmp", "--bg-load", "0.05",
                 "--incast-load", "0.02", "--incast-scale", "3",
                 "--incast-flow-bytes", "3000", "--sim-ms", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "mean_fct_s" in out
    assert "ecmp" in out
