"""Unit tests: checkpoint store format, atomicity, and config surface."""

import json
import os
import pickle

import pytest

from repro.checkpoint import (
    CheckpointConfig,
    CheckpointError,
    RunPreempted,
    discard,
    load_latest,
    peek_header,
    progress_path,
    read_checkpoint,
    read_progress,
    write_checkpoint,
    write_progress,
)
from repro.checkpoint.protocol import Snapshot
from repro.checkpoint.store import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    PREVIOUS_SUFFIX,
)


def _write(path, world, sim_now_ns=1_000, events=42, config="cfg" * 21):
    return write_checkpoint(str(path), world, config_digest=config,
                            sim_now_ns=sim_now_ns, events_executed=events)


# -- file format ---------------------------------------------------------------

def test_header_line_then_payload(tmp_path):
    path = tmp_path / "run.ckpt"
    header = _write(path, {"state": [1, 2, 3]})
    raw = path.read_bytes()
    line, _, payload = raw.partition(b"\n")
    parsed = json.loads(line)
    assert parsed == header
    assert parsed["checkpoint"] == CHECKPOINT_MAGIC
    assert parsed["version"] == CHECKPOINT_VERSION
    assert parsed["payload_bytes"] == len(payload)
    assert pickle.loads(payload) == {"state": [1, 2, 3]}


def test_read_checkpoint_roundtrip_and_config_check(tmp_path):
    path = tmp_path / "run.ckpt"
    _write(path, ["world"], sim_now_ns=7, events=9, config="a" * 64)
    header, world = read_checkpoint(str(path), expect_config="a" * 64)
    assert world == ["world"]
    assert header["sim_now_ns"] == 7
    assert header["events_executed"] == 9
    with pytest.raises(CheckpointError, match="belongs to config"):
        read_checkpoint(str(path), expect_config="b" * 64)


def test_peek_header_does_not_unpickle(tmp_path):
    path = tmp_path / "run.ckpt"
    _write(path, {"big": list(range(1000))})
    header = peek_header(str(path))
    assert header["checkpoint"] == CHECKPOINT_MAGIC


def test_version_mismatch_rejected(tmp_path):
    path = tmp_path / "run.ckpt"
    _write(path, "x")
    raw = path.read_bytes()
    line, _, payload = raw.partition(b"\n")
    header = json.loads(line)
    header["version"] = CHECKPOINT_VERSION + 1
    path.write_bytes(json.dumps(header).encode() + b"\n" + payload)
    with pytest.raises(CheckpointError, match="version"):
        read_checkpoint(str(path))


# -- rotation and corruption fallback ------------------------------------------

def test_write_rotates_previous_generation(tmp_path):
    path = tmp_path / "run.ckpt"
    _write(path, "epoch1", sim_now_ns=1)
    _write(path, "epoch2", sim_now_ns=2)
    assert os.path.exists(str(path) + PREVIOUS_SUFFIX)
    header, world, used = load_latest(str(path))
    assert world == "epoch2" and used == str(path)
    prev_header, prev_world = read_checkpoint(str(path) + PREVIOUS_SUFFIX)
    assert prev_world == "epoch1"


@pytest.mark.parametrize("corruption", ["truncate", "flip", "garbage"])
def test_corrupt_latest_falls_back_to_previous(tmp_path, corruption):
    path = tmp_path / "run.ckpt"
    _write(path, "epoch1", sim_now_ns=1)
    _write(path, "epoch2", sim_now_ns=2)
    raw = path.read_bytes()
    if corruption == "truncate":
        path.write_bytes(raw[:len(raw) // 2])
    elif corruption == "flip":
        path.write_bytes(raw[:-3] + bytes([raw[-3] ^ 0xFF]) + raw[-2:])
    else:
        path.write_bytes(b"not a checkpoint at all\n")
    header, world, used = load_latest(str(path))
    assert world == "epoch1"
    assert used == str(path) + PREVIOUS_SUFFIX


def test_both_generations_corrupt_raises_latest_error(tmp_path):
    path = tmp_path / "run.ckpt"
    _write(path, "epoch1")
    _write(path, "epoch2")
    path.write_bytes(b"garbage\n")
    (tmp_path / ("run.ckpt" + PREVIOUS_SUFFIX)).write_bytes(b"junk\n")
    with pytest.raises(CheckpointError):
        load_latest(str(path))


def test_load_latest_none_when_absent(tmp_path):
    assert load_latest(str(tmp_path / "nope.ckpt")) is None


def test_discard_removes_all_artifacts(tmp_path):
    path = tmp_path / "run.ckpt"
    _write(path, "epoch1")
    _write(path, "epoch2")
    write_progress(str(path), sim_now_ns=1, events_executed=2,
                   sim_time_ns=10)
    discard(str(path))
    assert list(tmp_path.iterdir()) == []


# -- progress sidecar ----------------------------------------------------------

def test_progress_roundtrip(tmp_path):
    path = str(tmp_path / "run.ckpt")
    assert read_progress(path) is None
    write_progress(path, sim_now_ns=5_000_000, events_executed=123,
                   sim_time_ns=10_000_000)
    record = read_progress(path)
    assert record == {"sim_now_ns": 5_000_000, "events_executed": 123,
                      "sim_time_ns": 10_000_000}
    assert os.path.exists(progress_path(path))


def test_corrupt_progress_reads_as_none(tmp_path):
    path = str(tmp_path / "run.ckpt")
    with open(progress_path(path), "w") as fh:
        fh.write("{not json")
    assert read_progress(path) is None


# -- RunPreempted --------------------------------------------------------------

def test_run_preempted_pickles_across_processes():
    exc = RunPreempted("/tmp/x.ckpt", 5_000_000)
    clone = pickle.loads(pickle.dumps(exc))
    assert clone.path == "/tmp/x.ckpt"
    assert clone.sim_now_ns == 5_000_000
    assert "5000000" in str(clone)


# -- CheckpointConfig ----------------------------------------------------------

def test_checkpoint_config_validation():
    with pytest.raises(ValueError):
        CheckpointConfig(every_ns=0)
    with pytest.raises(ValueError):
        CheckpointConfig(every_ns=1, path="a", directory="b")
    with pytest.raises(ValueError):
        CheckpointConfig.every_ms(0)


def test_checkpoint_config_resolve_path():
    explicit = CheckpointConfig(every_ns=1, path="here.ckpt")
    assert explicit.resolve_path("d" * 64) == "here.ckpt"
    managed = CheckpointConfig(every_ns=1, directory="ckpts")
    assert managed.resolve_path("d" * 64) == os.path.join("ckpts",
                                                          "d" * 16 + ".ckpt")
    default = CheckpointConfig.every_ms(5)
    assert default.every_ns == 5_000_000
    assert ".repro-checkpoints" in default.resolve_path("e" * 64)


def test_checkpoint_config_stays_out_of_config_digest():
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.digest import config_digest
    plain = ExperimentConfig.bench_profile(seed=3)
    ticked = ExperimentConfig.bench_profile(seed=3)
    ticked.checkpoint = CheckpointConfig.every_ms(5)
    assert config_digest(plain) == config_digest(ticked)


# -- Snapshot protocol ---------------------------------------------------------

class _Base(Snapshot):
    SNAPSHOT_ATTRS = ("a",)

    def __init__(self):
        self.a = 1


class _Derived(_Base):
    SNAPSHOT_ATTRS = _Base.SNAPSHOT_ATTRS + ("b",)

    def __init__(self):
        super().__init__()
        self.b = 2
        self.transient = "not captured"


def test_snapshot_state_covers_declared_attrs_only():
    obj = _Derived()
    state = obj.snapshot_state()
    assert state == {"a": 1, "b": 2}
    clone = pickle.loads(pickle.dumps(obj))
    assert clone.a == 1 and clone.b == 2
    assert not hasattr(clone, "transient")


def test_restore_state_sets_declared_attrs():
    obj = _Derived()
    obj.restore_state({"a": 10, "b": 20})
    assert (obj.a, obj.b) == (10, 20)
