"""Unit conversions."""

import pytest

from repro.sim.units import (
    MICROSECOND,
    MILLISECOND,
    SECOND,
    bits_to_bytes,
    bytes_to_bits,
    fmt_time,
    gbps,
    kb,
    mb,
    mbps,
    msecs,
    seconds,
    transmission_delay_ns,
    usecs,
)


def test_time_constants_are_nanoseconds():
    assert SECOND == 1_000_000_000
    assert MILLISECOND == 1_000_000
    assert MICROSECOND == 1_000


def test_seconds_conversion():
    assert seconds(1.5) == 1_500_000_000
    assert seconds(0) == 0


def test_usecs_and_msecs():
    assert usecs(360) == 360_000
    assert msecs(10) == 10_000_000


def test_rate_helpers():
    assert gbps(10) == 10_000_000_000
    assert mbps(200) == 200_000_000


def test_size_helpers():
    assert kb(300) == 300_000
    assert mb(1.5) == 1_500_000


def test_bits_bytes_roundtrip():
    assert bytes_to_bits(125) == 1000
    assert bits_to_bytes(1000) == 125


def test_transmission_delay_exact():
    # 1500 bytes at 1 Gbps = 12 us exactly.
    assert transmission_delay_ns(1500, 10 ** 9) == 12_000


def test_transmission_delay_rounds_up():
    # 1 byte at 3 bps -> 8/3 s, must round *up* so packets never overlap.
    assert transmission_delay_ns(1, 3) == (8 * SECOND + 2) // 3


def test_transmission_delay_rejects_bad_rate():
    with pytest.raises(ValueError):
        transmission_delay_ns(100, 0)


def test_fmt_time_units():
    assert fmt_time(500) == "500ns"
    assert fmt_time(2_500) == "2.500us"
    assert fmt_time(3_000_000) == "3.000ms"
    assert fmt_time(2 * SECOND).endswith("s")


# -- rounding contract (see the module docstring) ------------------------------


def test_round_half_to_even():
    # Python's round() is banker's rounding: halves go to the even integer.
    assert seconds(0.5e-9) == 0
    assert seconds(1.5e-9) == 2
    assert seconds(2.5e-9) == 2
    assert usecs(0.0005) == 0
    assert usecs(0.0015) == 2


def test_sub_resolution_rounds_to_zero():
    assert seconds(0.4e-9) == 0
    assert usecs(0.0004) == 0
    assert msecs(4e-7) == 0


def test_one_nanosecond_is_representable():
    assert seconds(1e-9) == 1
    assert usecs(0.001) == 1
    assert msecs(1e-6) == 1


def test_nearest_not_truncation():
    # 0.7 ns must round to 1, not truncate to 0.
    assert seconds(0.7e-9) == 1
    assert seconds(1.4e-9) == 1


def test_large_values_within_float_precision_are_exact():
    # Powers of two stay exact in binary floating point.
    assert seconds(2.0 ** 20) == 2 ** 20 * SECOND
    assert seconds(86_400.0) == 86_400 * SECOND  # one day


def test_integer_arithmetic_avoids_float_precision_loss():
    # Beyond 2**53 ns the float path is lossy; the documented remedy —
    # integer arithmetic with the constants — is exact.
    big_days = 200
    exact = big_days * 86_400 * SECOND
    assert exact > 2 ** 53
    assert exact == big_days * 86_400 * SECOND  # no float involved


def test_transmission_delay_never_underestimates():
    # ceil(bits * 1e9 / rate) >= exact serialization time, for awkward
    # rates that do not divide the bit count evenly.
    for size, rate in [(1, 7), (1461, 999_999_999), (53, 3)]:
        delay = transmission_delay_ns(size, rate)
        assert delay * rate >= size * 8 * SECOND
        assert (delay - 1) * rate < size * 8 * SECOND
