"""Unit conversions."""

import pytest

from repro.sim.units import (
    MICROSECOND,
    MILLISECOND,
    SECOND,
    bits_to_bytes,
    bytes_to_bits,
    fmt_time,
    gbps,
    kb,
    mb,
    mbps,
    msecs,
    seconds,
    transmission_delay_ns,
    usecs,
)


def test_time_constants_are_nanoseconds():
    assert SECOND == 1_000_000_000
    assert MILLISECOND == 1_000_000
    assert MICROSECOND == 1_000


def test_seconds_conversion():
    assert seconds(1.5) == 1_500_000_000
    assert seconds(0) == 0


def test_usecs_and_msecs():
    assert usecs(360) == 360_000
    assert msecs(10) == 10_000_000


def test_rate_helpers():
    assert gbps(10) == 10_000_000_000
    assert mbps(200) == 200_000_000


def test_size_helpers():
    assert kb(300) == 300_000
    assert mb(1.5) == 1_500_000


def test_bits_bytes_roundtrip():
    assert bytes_to_bits(125) == 1000
    assert bits_to_bytes(1000) == 125


def test_transmission_delay_exact():
    # 1500 bytes at 1 Gbps = 12 us exactly.
    assert transmission_delay_ns(1500, 10 ** 9) == 12_000


def test_transmission_delay_rounds_up():
    # 1 byte at 3 bps -> 8/3 s, must round *up* so packets never overlap.
    assert transmission_delay_ns(1, 3) == (8 * SECOND + 2) // 3


def test_transmission_delay_rejects_bad_rate():
    with pytest.raises(ValueError):
        transmission_delay_ns(100, 0)


def test_fmt_time_units():
    assert fmt_time(500) == "500ns"
    assert fmt_time(2_500) == "2.500us"
    assert fmt_time(3_000_000) == "3.000ms"
    assert fmt_time(2 * SECOND).endswith("s")
