"""LetFlow flowlet-switching baseline."""

import pytest

from repro.forwarding.letflow import LetFlowPolicy
from repro.sim.engine import Engine
from tests.helpers import fill_queue, make_switch, mk_data, seeded_rng


def _letflow_switch(engine, gap_ns=1000, n_fabric_ports=4):
    switch, sinks, metrics = make_switch(engine, n_host_ports=0,
                                         n_fabric_ports=n_fabric_ports)
    switch.fib[0] = tuple(switch.switch_ports)
    switch.policy = LetFlowPolicy(switch, seeded_rng(),
                                  flowlet_gap_ns=gap_ns)
    return switch, sinks, metrics


def test_gap_validation():
    engine = Engine()
    switch, _, _ = make_switch(engine)
    with pytest.raises(ValueError):
        LetFlowPolicy(switch, seeded_rng(), flowlet_gap_ns=0)


def test_packets_within_flowlet_stick_to_one_path():
    engine = Engine()
    switch, _, _ = _letflow_switch(engine, gap_ns=1_000_000)
    for seq in range(10):  # all at t=0: one flowlet
        switch.receive(mk_data(flow_id=1, seq=seq * 100, dst=0), in_port=0)
    used = [p for p in switch.switch_ports
            if switch.ports[p].queue.packets() or switch.ports[p].busy]
    assert len(used) == 1
    policy = switch.policy
    assert policy.flowlet_switches == 0


def test_gap_triggers_new_path_choice():
    engine = Engine()
    switch, _, _ = _letflow_switch(engine, gap_ns=1000)
    switched = 0
    for burst in range(40):
        switch.receive(mk_data(flow_id=1, seq=burst * 100, dst=0),
                       in_port=0)
        engine.run(until=engine.now + 10_000)  # exceed the flowlet gap
    # With 4 candidates and 40 independent re-picks, multiple paths and
    # at least one switch must have occurred.
    assert switch.policy.flowlet_switches >= 1
    used = sum(1 for p in switch.switch_ports
               if switch.ports[p].link.dst.received)
    assert used >= 2


def test_different_flows_balance_across_paths():
    engine = Engine()
    switch, _, _ = _letflow_switch(engine, gap_ns=1_000_000)
    for flow in range(100):
        switch.receive(mk_data(flow_id=flow, dst=0), in_port=0)
    engine.run()
    used = sum(1 for p in switch.switch_ports
               if switch.ports[p].link.dst.received)
    assert used == 4


def test_overflow_tail_drops():
    engine = Engine()
    switch, sinks, metrics = make_switch(engine, n_host_ports=1,
                                         n_fabric_ports=0)
    switch.policy = LetFlowPolicy(switch, seeded_rng())
    fill_queue(switch, 0)
    switch.receive(mk_data(dst=0), in_port=0)
    assert metrics.counters.drops["overflow"] == 1
    assert metrics.counters.deflections == 0


def test_runner_supports_letflow():
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_experiment

    config = ExperimentConfig.bench_profile(
        system="letflow", transport="dctcp", bg_load=0.1, incast_qps=40,
        incast_scale=4, incast_flow_bytes=5_000, sim_time_ns=20_000_000)
    result = run_experiment(config)
    assert result.metrics.counters.delivered > 0
    assert result.metrics.flow_completion_pct() > 30
