"""SARIF 2.1.0 export and its structural validator."""

import json

from repro.analysis.driver import ALL_HINTS, ALL_RULES, main
from repro.analysis.lint import Violation
from repro.analysis.sarif import (
    SARIF_VERSION,
    to_sarif,
    validate,
    validate_file,
)


def sample_violations():
    return [
        Violation("src/repro/mod.py", 10, 5, "VR100", "seconds into ns"),
        Violation("src/repro/mod.py", 20, 1, "VR110", "global draw"),
    ]


def test_export_validates_against_schema_subset():
    document = to_sarif(sample_violations(), ALL_RULES, ALL_HINTS)
    assert validate(document) == []


def test_export_structure():
    document = to_sarif(sample_violations(), ALL_RULES, ALL_HINTS)
    assert document["version"] == SARIF_VERSION
    run = document["runs"][0]
    rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    assert "VR100" in rule_ids and "VR001" in rule_ids
    result = run["results"][0]
    assert result["ruleId"] == "VR100"
    assert rule_ids[result["ruleIndex"]] == "VR100"
    location = result["locations"][0]["physicalLocation"]
    assert location["region"]["startLine"] == 10
    assert location["artifactLocation"]["uri"].endswith("mod.py")


def test_validator_rejects_bad_documents():
    assert validate([]) != []
    assert validate({"version": "2.0.0", "runs": []}) != []

    document = to_sarif(sample_violations(), ALL_RULES, ALL_HINTS)
    document["runs"][0]["results"][0]["ruleIndex"] = 999
    assert any("ruleIndex" in problem for problem in validate(document))

    document = to_sarif(sample_violations(), ALL_RULES, ALL_HINTS)
    document["runs"][0]["results"][0]["locations"][0][
        "physicalLocation"]["region"]["startLine"] = 0
    assert any("startLine" in problem for problem in validate(document))


def test_cli_format_sarif_writes_valid_file(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("timeout_ns = 1.5\n")
    out = tmp_path / "findings.sarif"
    code = main([str(bad), "--format", "sarif", "--output", str(out)])
    assert code == 1
    assert validate_file(str(out)) == []
    document = json.loads(out.read_text())
    rule_ids = {result["ruleId"]
                for result in document["runs"][0]["results"]}
    assert "VR003" in rule_ids


def test_cli_format_sarif_stdout(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("timeout_ns = 1.5\n")
    assert main([str(bad), "--format", "sarif"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert validate(document) == []


def test_cli_format_json(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("timeout_ns = 1.5\n")
    assert main([str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == 1
    assert payload["findings"][0]["code"] == "VR003"
