"""Vertigo's in-network selective deflection (paper §3.2)."""

import pytest

from repro.core.flowinfo import FlowInfo
from repro.forwarding.vertigo import VertigoPolicy, VertigoSwitchParams
from repro.sim.engine import Engine
from tests.helpers import fill_queue, make_switch, mk_data, seeded_rng


def _vertigo_switch(engine, params=None, n_host_ports=1, n_fabric_ports=4,
                    **kwargs):
    ranked = params.scheduling if params else True
    switch, sinks, metrics = make_switch(engine, n_host_ports=n_host_ports,
                                         n_fabric_ports=n_fabric_ports,
                                         ranked=ranked, **kwargs)
    switch.policy = VertigoPolicy(switch, seeded_rng(), params)
    return switch, sinks, metrics


def _marked(rank, **kwargs):
    packet = mk_data(**kwargs)
    packet.flowinfo = FlowInfo(rfs=rank)
    return packet


def test_forwards_normally_with_space():
    engine = Engine()
    switch, sinks, metrics = _vertigo_switch(engine)
    packet = _marked(40_000, dst=0)
    switch.receive(packet, in_port=1)
    engine.run()
    assert sinks[0].received == [packet]
    assert metrics.counters.deflections == 0


def test_small_rfs_displaces_large_rfs_on_full_queue():
    """The arriving small packet gets the buffer; the tail deflects."""
    engine = Engine()
    switch, _, metrics = _vertigo_switch(engine)
    filled = fill_queue(switch, 0, rank=20_000)
    small = _marked(3_000, dst=0)
    switch.receive(small, in_port=1)
    host_queue = switch.ports[0].queue
    ranks = [p.flowinfo.rfs for p in host_queue.packets()]
    assert 3_000 in ranks or switch.ports[0].busy
    assert metrics.counters.deflections >= 1
    assert metrics.counters.total_drops == 0
    assert filled >= 1


def test_large_rfs_arrival_is_deflected_itself():
    engine = Engine()
    switch, _, metrics = _vertigo_switch(engine)
    fill_queue(switch, 0, rank=3_000)
    big = _marked(20_000, dst=0)
    switch.receive(big, in_port=1)
    # None of the small buffered packets were displaced.
    host_queue = switch.ports[0].queue
    assert all(p.flowinfo.rfs == 3_000 for p in host_queue.packets())
    assert big.deflections == 1
    assert metrics.counters.deflections == 1


def test_deflection_prefers_less_loaded_of_two():
    engine = Engine()
    switch, _, _ = _vertigo_switch(
        engine, VertigoSwitchParams(def_choices=2), n_fabric_ports=2)
    fill_queue(switch, 0, rank=3_000)           # full host port
    fill_queue(switch, switch.switch_ports[0], rank=3_000)  # one busy uplink
    big = _marked(20_000, dst=0)
    switch.receive(big, in_port=2)
    empty_port = switch.switch_ports[1]
    assert big in switch.ports[empty_port].queue.packets() \
        or switch.ports[empty_port].busy


def test_both_deflection_targets_full_drops_largest_rfs():
    """Forced insert keeps the smallest-RFS packets (§3.2)."""
    engine = Engine()
    switch, _, metrics = _vertigo_switch(
        engine, VertigoSwitchParams(), n_fabric_ports=2)
    fill_queue(switch, 0, rank=3_000)
    for port in switch.switch_ports:
        fill_queue(switch, port, rank=10_000)
    medium = _marked(5_000, dst=0)
    switch.receive(medium, in_port=2)
    # medium displaces a 10k filler somewhere in the fabric queues (it may
    # immediately start transmitting, being the smallest rank).
    assert metrics.counters.drops["congestion_displaced"] >= 1
    landed = any(5_000 in [p.flowinfo.rfs for p in
                           switch.ports[port].queue.packets()]
                 or switch.ports[port].busy
                 for port in switch.switch_ports)
    assert landed
    assert medium.deflections == 1


def test_forced_insert_drops_arrival_when_it_is_largest():
    engine = Engine()
    switch, _, metrics = _vertigo_switch(
        engine, VertigoSwitchParams(), n_fabric_ports=2)
    fill_queue(switch, 0, rank=3_000)
    for port in switch.switch_ports:
        fill_queue(switch, port, rank=1_000)
    huge = _marked(99_000, dst=0)
    switch.receive(huge, in_port=2)
    assert metrics.counters.drops["congestion_drop"] == 1


def test_no_deflection_ablation_drops_selectively():
    engine = Engine()
    params = VertigoSwitchParams(deflection=False)
    switch, _, metrics = _vertigo_switch(engine, params)
    fill_queue(switch, 0, rank=20_000)
    small = _marked(3_000, dst=0)
    switch.receive(small, in_port=1)
    # Small packet still wins the buffer; the displaced big one is dropped.
    assert metrics.counters.drops["selective_drop"] >= 1
    ranks = [p.flowinfo.rfs for p in switch.ports[0].queue.packets()]
    assert 3_000 in ranks or switch.ports[0].busy


def test_no_scheduling_ablation_deflects_arrival():
    engine = Engine()
    params = VertigoSwitchParams(scheduling=False)
    switch, _, metrics = _vertigo_switch(engine, params)
    fill_queue(switch, 0, rank=3_000)
    small = _marked(100, dst=0)  # would win under SRPT...
    switch.receive(small, in_port=1)
    # ...but FIFO queues cannot displace, so it detours instead.
    assert small.deflections == 1
    assert metrics.counters.deflections == 1


def test_deflection_budget_respected():
    engine = Engine()
    params = VertigoSwitchParams(max_deflections=2)
    switch, _, metrics = _vertigo_switch(engine, params)
    fill_queue(switch, 0, rank=100)
    packet = _marked(50_000, dst=0)
    packet.deflections = 2
    switch.receive(packet, in_port=1)
    assert metrics.counters.drops["deflection_limit"] == 1


def test_unmarked_packets_rank_by_wire_size():
    """Non-Vertigo traffic in a ranked queue behaves like a tiny flow."""
    engine = Engine()
    switch, _, _ = _vertigo_switch(engine)
    fill_queue(switch, 0, rank=50_000)
    plain = mk_data(dst=0, payload=100)  # rank = 140 wire bytes
    switch.receive(plain, in_port=1)
    ranks = [p.rank() for p in switch.ports[0].queue.packets()]
    assert plain.rank() in ranks or switch.ports[0].busy


def test_param_validation():
    with pytest.raises(ValueError):
        VertigoSwitchParams(fw_choices=0)
    with pytest.raises(ValueError):
        VertigoSwitchParams(def_choices=0)


def test_random_forwarding_choice_with_fw1():
    engine = Engine()
    params = VertigoSwitchParams(fw_choices=1)
    switch, _, _ = _vertigo_switch(engine, params, n_host_ports=0,
                                   n_fabric_ports=4)
    switch.fib[0] = tuple(switch.switch_ports)
    for seq in range(50):
        switch.receive(_marked(10_000, dst=0, seq=seq * 100), in_port=0)
    engine.run()
    used = sum(1 for p in switch.switch_ports
               if switch.ports[p].link.dst.received)
    assert used >= 3  # uniform random touches nearly all ports
