"""Symbol table + call graph (repro.analysis.callgraph)."""

import textwrap

from repro.analysis.callgraph import CallGraph, Project


def build(**modules):
    sources = {f"{name}.py": textwrap.dedent(source)
               for name, source in modules.items()}
    project = Project.from_sources(sources)
    return project, CallGraph(project)


def test_module_functions_and_classes_indexed():
    project, _ = build(mod="""
        def helper():
            pass

        class Thing:
            def method(self):
                pass
    """)
    assert "mod.py::helper" in project.functions
    assert "mod.py::Thing.method" in project.functions
    assert project.functions["mod.py::Thing.method"].cls == "Thing"


def test_local_call_edge():
    _, graph = build(mod="""
        def callee():
            pass

        def caller():
            callee()
    """)
    callees = {site.callee for site in graph.edges["mod.py::caller"]}
    assert "mod.py::callee" in callees


def test_self_method_call_resolves_through_class():
    _, graph = build(mod="""
        class Thing:
            def a(self):
                self.b()

            def b(self):
                pass
    """)
    callees = {site.callee for site in graph.edges["mod.py::Thing.a"]}
    assert "mod.py::Thing.b" in callees


def test_cross_module_import_call_edge():
    _, graph = build(
        helper="""
            def jitter():
                pass
        """,
        entry="""
            from helper import jitter

            def tick():
                jitter()
        """)
    callees = {site.callee for site in graph.edges["entry.py::tick"]}
    assert "helper.py::jitter" in callees


def test_policy_methods_are_entry_points():
    _, graph = build(mod="""
        class ForwardingPolicy:
            pass

        class Spray(ForwardingPolicy):
            def forward(self, packet, ports):
                return ports[0]
    """)
    assert "mod.py::Spray.forward" in graph.entry_points


def test_scheduled_callbacks_are_entry_points():
    _, graph = build(mod="""
        def on_timer():
            pass

        def setup(engine):
            engine.schedule(10, on_timer)
    """)
    assert "mod.py::on_timer" in graph.entry_points


def test_reachability_and_witness_path():
    project, graph = build(mod="""
        class ForwardingPolicy:
            pass

        class Spray(ForwardingPolicy):
            def forward(self, packet, ports):
                return helper(ports)

        def helper(ports):
            return deeper(ports)

        def deeper(ports):
            return ports[0]
    """)
    parents = graph.reachable()
    assert "mod.py::deeper" in parents
    chain = graph.witness_path(parents, "mod.py::deeper")
    assert chain[0] == "mod.py::Spray.forward"
    assert chain[-1] == "mod.py::deeper"


def test_unrelated_function_not_reachable():
    _, graph = build(mod="""
        class ForwardingPolicy:
            pass

        class Spray(ForwardingPolicy):
            def forward(self, packet, ports):
                return ports[0]

        def offline_report():
            pass
    """)
    assert "mod.py::offline_report" not in graph.reachable()


def test_syntax_error_module_skipped():
    project = Project.from_sources({
        "ok.py": "def fine():\n    pass\n",
        "broken.py": "def broken(:\n",
    })
    assert "ok.py::fine" in project.functions
    assert "broken.py" not in project.modules


def test_unpicklable_class_detection():
    project, _ = build(mod="""
        import threading

        class WithLock:
            def __init__(self):
                self._lock = threading.Lock()

        class Plain:
            def __init__(self):
                self.n = 0
    """)
    by_name = {info.name: info
               for infos in project.classes.values() for info in infos}
    assert by_name["WithLock"].unpicklable
    assert not by_name["Plain"].unpicklable
