"""PABO packet-bounce baseline."""

from repro.forwarding.pabo import PaboPolicy
from repro.sim.engine import Engine
from tests.helpers import fill_queue, make_switch, mk_data, seeded_rng


def _pabo_switch(engine, **kwargs):
    switch, sinks, metrics = make_switch(engine, n_host_ports=1,
                                         n_fabric_ports=4)
    switch.policy = PaboPolicy(switch, seeded_rng(), **kwargs)
    return switch, sinks, metrics


def test_forwards_normally_with_space():
    engine = Engine()
    switch, sinks, metrics = _pabo_switch(engine)
    packet = mk_data(dst=0)
    switch.receive(packet, in_port=1)
    engine.run()
    assert sinks[0].received == [packet]
    assert metrics.counters.deflections == 0


def test_bounces_back_out_the_input_port():
    engine = Engine()
    switch, sinks, metrics = _pabo_switch(engine)
    fill_queue(switch, 0)
    packet = mk_data(dst=0)
    in_port = switch.switch_ports[1]
    switch.receive(packet, in_port=in_port)
    engine.run()
    # The packet went back to the upstream peer on the arrival port.
    assert packet in sinks[in_port].received
    assert packet.deflections == 1
    assert metrics.counters.deflections == 1


def test_bounce_from_host_port_drops():
    engine = Engine()
    switch, _, metrics = _pabo_switch(engine)
    fill_queue(switch, 0)
    # Arrived from the (full) destination host's own port: cannot bounce.
    switch.receive(mk_data(dst=0), in_port=0)
    assert metrics.counters.drops["bounce_failed"] == 1


def test_bounce_budget_enforced():
    engine = Engine()
    switch, _, metrics = _pabo_switch(engine, max_bounces=2)
    fill_queue(switch, 0)
    packet = mk_data(dst=0)
    packet.deflections = 2
    switch.receive(packet, in_port=switch.switch_ports[0])
    assert metrics.counters.drops["bounce_failed"] == 1


def test_bounce_fails_when_reverse_path_full():
    engine = Engine()
    switch, _, metrics = _pabo_switch(engine)
    fill_queue(switch, 0)
    in_port = switch.switch_ports[0]
    fill_queue(switch, in_port)
    switch.receive(mk_data(dst=0), in_port=in_port)
    assert metrics.counters.drops["bounce_failed"] == 1


def test_runner_supports_pabo():
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_experiment

    config = ExperimentConfig.bench_profile(
        system="pabo", transport="dctcp", bg_load=0.1, incast_qps=40,
        incast_scale=4, incast_flow_bytes=5_000, sim_time_ns=20_000_000)
    result = run_experiment(config)
    assert result.metrics.counters.delivered > 0
