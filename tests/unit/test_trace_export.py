"""repro.trace.export: JSONL, Chrome trace_event, validation."""

import json

import pytest

from repro.trace import (
    TraceConfig,
    Tracer,
    chrome_trace,
    convert_jsonl_to_chrome,
    jsonl_lines,
    read_jsonl,
    validate_file,
    validate_lines,
    write_chrome_trace,
    write_jsonl,
)


def make_trace(seed=1):
    tracer = Tracer(TraceConfig(level="packet"))

    class Pkt:
        flow_id = seed
        seq = 0
        wire_bytes = 1500
        deflections = 1
        hops = 3

    tracer.flow_start(10, flow=seed, src="h0", dst="h1", size=3000,
                      is_incast=False, query=None)
    tracer.pkt_enqueue(20, "leaf0", 0, Pkt())
    tracer.pkt_deflect(25, "leaf0", 0, 1, Pkt())
    tracer.pkt_drop(30, "leaf0", "queue_overflow", Pkt())
    tracer.flow_end(99, flow=seed, fct_ns=89)
    tracer.sample_port(50, "leaf0", 0, qbytes=4500, qpkts=3, util=0.75)
    tracer.sample_flow(50, "h0", flow=seed, cwnd=4.5, srtt_ns=8000,
                       inflight=2, acked=1, cc=("dctcp", 0.1))
    return tracer.detach(meta={"seed": seed, "system": "vertigo",
                               "transport": "dctcp"})


def test_jsonl_starts_with_meta_then_events_then_samples():
    lines = list(jsonl_lines(make_trace()))
    objs = [json.loads(line) for line in lines]
    assert objs[0]["ev"] == "trace.meta"
    assert objs[0]["schema"] == 1
    assert objs[0]["seed"] == 1
    kinds = [obj["ev"] for obj in objs[1:]]
    assert kinds == ["flow.start", "pkt.enqueue", "pkt.deflect",
                     "pkt.drop", "flow.end", "sample.port", "sample.flow"]


def test_jsonl_lines_are_canonical_json():
    for line in jsonl_lines(make_trace()):
        assert line == json.dumps(json.loads(line), sort_keys=True,
                                  separators=(",", ":"))


def test_jsonl_export_validates_clean(tmp_path):
    path = str(tmp_path / "t.jsonl")
    lines = write_jsonl([make_trace(1), make_trace(2)], path)
    assert lines == 16  # 2 runs x (1 meta + 5 events + 2 samples)
    assert validate_file(path) == []


def test_validator_catches_problems():
    assert validate_lines([]) == ["empty trace file"]
    problems = validate_lines(['{"ev":"flow.end","t":1,"flow":1,'
                               '"fct_ns":2}'])
    assert any("before any trace.meta" in p for p in problems)
    meta = '{"ev":"trace.meta","schema":1}'
    assert validate_lines([meta, "not json"]) != []
    assert any("unknown event kind" in p for p in
               validate_lines([meta, '{"ev":"bogus.kind","t":1}']))
    assert any("missing fields" in p for p in
               validate_lines([meta, '{"ev":"flow.end","t":1}']))
    assert any("undocumented fields" in p for p in
               validate_lines([meta, '{"ev":"flow.end","t":1,"flow":1,'
                                     '"fct_ns":2,"extra":3}']))
    assert any("'t'" in p for p in
               validate_lines([meta, '{"ev":"flow.end","t":-5,"flow":1,'
                                     '"fct_ns":2}']))
    assert any("schema" in p for p in
               validate_lines(['{"ev":"trace.meta","schema":99}']))


def test_chrome_trace_structure():
    view = chrome_trace([make_trace(1), make_trace(2)])
    assert set(view) == {"traceEvents", "displayTimeUnit"}
    events = view["traceEvents"]
    phases = {event["ph"] for event in events}
    assert phases == {"M", "i", "C"}
    pids = {event["pid"] for event in events}
    assert pids == {1, 2}  # one process per run
    names = {event["args"].get("name") for event in events
             if event["ph"] == "M"}
    assert "run seed=1" in names and "leaf0" in names
    counters = [event for event in events if event["ph"] == "C"]
    assert {counter["name"] for counter in counters} == \
        {"leaf0:p0 queue", "flow1 cwnd", "flow2 cwnd"}


def test_chrome_conversion_matches_in_memory_export(tmp_path):
    """file->chrome must be byte-identical to memory->chrome."""
    traces = [make_trace(1), make_trace(2)]
    jsonl = str(tmp_path / "t.jsonl")
    direct = str(tmp_path / "direct.json")
    via_file = str(tmp_path / "viafile.json")
    write_jsonl(traces, jsonl)
    write_chrome_trace(traces, direct)
    convert_jsonl_to_chrome(jsonl, via_file)
    assert open(direct).read() == open(via_file).read()


def test_read_jsonl_round_trip(tmp_path):
    path = str(tmp_path / "t.jsonl")
    write_jsonl([make_trace(1), make_trace(2)], path)
    runs = read_jsonl(path)
    assert len(runs) == 2
    meta, records = runs[0]
    assert meta["seed"] == 1
    assert len(records) == 7


def test_read_jsonl_rejects_headerless_stream(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"ev":"flow.end","t":1,"flow":1,"fct_ns":2}\n')
    with pytest.raises(ValueError):
        read_jsonl(str(path))
