"""repro.trace core: hook registry, tracer, ring buffers, levels."""

import pytest

from repro.trace import (
    EVENT_FIELDS,
    PACKET_KINDS,
    TraceConfig,
    Tracer,
)
from repro.trace import hooks


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with the hooks dormant."""
    assert hooks.active() is None
    yield
    hooks.deactivate()


def test_register_returns_current_tracer():
    assert hooks.register("tests.fake_module") is None
    tracer = Tracer(TraceConfig())
    with hooks.activated(tracer):
        assert hooks.register("tests.other_fake") is tracer


def test_activate_rewrites_registered_modules():
    import repro.sim.engine as engine_mod
    import repro.net.switch as switch_mod

    assert engine_mod._TRACE is None
    assert switch_mod._TRACE is None
    tracer = Tracer(TraceConfig())
    with hooks.activated(tracer):
        assert engine_mod._TRACE is tracer
        assert switch_mod._TRACE is tracer
    assert engine_mod._TRACE is None
    assert switch_mod._TRACE is None


def test_nested_activation_rejected():
    with hooks.activated(Tracer(TraceConfig())):
        with pytest.raises(RuntimeError):
            hooks.activate(Tracer(TraceConfig()))


def test_flow_level_skips_packet_events():
    config = TraceConfig(level="flow")
    assert not config.packets
    assert TraceConfig(level="packet").packets
    with pytest.raises(ValueError):
        TraceConfig(level="verbose")


def test_packet_kinds_cover_pkt_and_ord_namespaces():
    for kind in EVENT_FIELDS:
        expected = kind.startswith(("pkt.", "ord."))
        assert (kind in PACKET_KINDS) == expected


def test_event_ring_buffer_bounds_memory():
    tracer = Tracer(TraceConfig(max_events=10))
    for i in range(25):
        tracer.flow_end(i, flow=i, fct_ns=i)
    data = tracer.detach(meta={})
    assert len(data.events) == 10
    assert data.emitted_events == 25
    assert data.dropped_events == 15
    # Oldest records were discarded deterministically.
    assert [record[2] for record in data.events] == list(range(15, 25))


def test_sample_ring_buffer_bounds_memory():
    tracer = Tracer(TraceConfig(max_samples=4))
    for i in range(9):
        tracer.sample_port(i, "leaf0", 0, qbytes=i, qpkts=1, util=0.5)
    data = tracer.detach(meta={})
    assert len(data.samples) == 4
    assert data.dropped_samples == 5


def test_detach_carries_meta_and_counts():
    tracer = Tracer(TraceConfig())
    tracer.flow_start(5, flow=1, src="h0", dst="h1", size=100,
                      is_incast=False, query=None)
    tracer.flow_end(90, flow=1, fct_ns=85)
    data = tracer.detach(meta={"seed": 7})
    assert data.meta["seed"] == 7
    assert data.counts() == {"flow.start": 1, "flow.end": 1}
    assert len(data.digest()) == 64


def test_schema_field_tuples_match_recorders():
    """Every recorded tuple must line up with its EVENT_FIELDS row."""
    tracer = Tracer(TraceConfig(level="packet"))

    class Pkt:
        flow_id = 3
        seq = 7
        wire_bytes = 1500
        deflections = 2
        hops = 4

    pkt = Pkt()
    tracer.pkt_enqueue(1, "leaf0", 0, pkt)
    tracer.pkt_dequeue(2, "leaf0", 0, pkt)
    tracer.pkt_deflect(3, "leaf0", 0, 1, pkt)
    tracer.pkt_drop(4, "leaf0", "queue_overflow", pkt)
    tracer.pkt_ecn(5, "leaf0", pkt)
    tracer.pkt_deliver(6, "h1", pkt)
    tracer.ord_hold(7, "h1", flow=3, tag=9)
    tracer.ord_release(8, "h1", flow=3, tag=9, why="drain")
    data = tracer.detach(meta={})
    for record in data.events:
        kind = record[0]
        assert len(record) == 2 + len(EVENT_FIELDS[kind]), kind
