"""Delayed ACKs and NewReno partial-ACK recovery."""

from repro.net.packet import PacketKind
from repro.sim.engine import Engine
from repro.transport.base import TransportConfig
from tests.unit.test_transport_base import loopback


def test_per_packet_acks_by_default():
    engine = Engine()
    sender, receiver, _, _, dst = loopback(engine, size=10_000)
    sender.start()
    engine.run()
    data_count = 10_000 // 1460 + 1
    acks = [p for p in dst.sent if p.kind is PacketKind.ACK]
    assert len(acks) == data_count


def test_delayed_ack_halves_ack_count():
    engine = Engine()
    config = TransportConfig(delayed_ack=True)
    sender, receiver, _, _, dst = loopback(engine, size=29_200,
                                           config=config)
    sender.start()
    engine.run()
    assert receiver.completed
    acks = [p for p in dst.sent if p.kind is PacketKind.ACK]
    # 20 segments -> about 10 coalesced ACKs (+1 for completion flush).
    assert len(acks) <= 12


def test_delayed_ack_timer_flushes_odd_segment():
    engine = Engine()
    config = TransportConfig(delayed_ack=True, init_cwnd=1.0,
                             delayed_ack_timeout_ns=200_000)
    sender, receiver, _, _, dst = loopback(engine, size=100_000,
                                           config=config)
    sender.start()
    # One segment in flight; the delayed-ACK timer must fire so the
    # sender is not stalled until RTO.
    engine.run(until=2_000_000)
    acks = [p for p in dst.sent if p.kind is PacketKind.ACK]
    assert acks, "delayed-ACK timer never flushed"
    assert sender.snd_una > 0


def test_delayed_ack_immediate_on_out_of_order():
    engine = Engine()
    lost = {1460}

    def drop(packet):
        if packet.kind is PacketKind.DATA and packet.seq in lost \
                and packet.tx_count == 1:
            lost.discard(packet.seq)
            return True
        return False

    config = TransportConfig(delayed_ack=True)
    sender, receiver, metrics, _, dst = loopback(engine, size=30_000,
                                                 drop=drop, config=config)
    sender.start()
    engine.run()
    assert receiver.completed
    # Fast retransmit still worked (completion well under the RTO).
    assert metrics.flows[7].fct_ns < config.min_rto_ns


def test_delayed_ack_flushes_on_ce_change():
    engine = Engine()
    state = {"count": 0}

    def marker(packet):
        # Mark exactly the 3rd data segment CE.
        if packet.kind is PacketKind.DATA:
            state["count"] += 1
            if state["count"] == 3 and packet.ecn_capable:
                packet.ecn_ce = True
        return False

    from repro.transport.dctcp import DctcpSender

    config = TransportConfig(delayed_ack=True)
    sender, receiver, _, _, dst = loopback(engine, size=14_600,
                                           drop=marker, config=config,
                                           sender_cls=DctcpSender)
    sender.start()
    engine.run()
    assert receiver.completed
    ece_acks = [p for p in dst.sent
                if p.kind is PacketKind.ACK and p.ece]
    assert ece_acks, "CE mark was never echoed"
    clean_acks = [p for p in dst.sent
                  if p.kind is PacketKind.ACK and not p.ece]
    assert clean_acks, "unmarked traffic must not echo ECE"


def test_newreno_partial_ack_retransmits_next_hole():
    engine = Engine()
    lost = {1460, 4380}  # two holes in the first window

    def drop(packet):
        if packet.kind is PacketKind.DATA and packet.seq in lost \
                and packet.tx_count == 1:
            lost.discard(packet.seq)
            return True
        return False

    config = TransportConfig(newreno=True, min_rto_ns=50_000_000,
                             init_rto_ns=50_000_000)
    sender, receiver, metrics, _, _ = loopback(engine, size=30_000,
                                               drop=drop, config=config)
    sender.start()
    engine.run()
    assert receiver.completed
    # Both holes repaired without any RTO (huge RTO would dominate FCT).
    assert metrics.flows[7].fct_ns < 10_000_000
    assert metrics.counters.retransmissions == 2


def test_without_newreno_second_hole_costs_rto():
    engine = Engine()
    lost = {1460, 4380}

    def drop(packet):
        if packet.kind is PacketKind.DATA and packet.seq in lost \
                and packet.tx_count == 1:
            lost.discard(packet.seq)
            return True
        return False

    config = TransportConfig(newreno=False, min_rto_ns=5_000_000,
                             init_rto_ns=5_000_000)
    sender, receiver, metrics, _, _ = loopback(engine, size=30_000,
                                               drop=drop, config=config)
    sender.start()
    engine.run()
    assert receiver.completed
    # Reno without partial-ACK recovery pays at least one RTO here.
    assert metrics.flows[7].fct_ns >= 5_000_000
