"""flowinfo header: RFS rotation boosting (paper §3.1.2)."""

import pytest

from repro.core.flowinfo import (
    RFS_MASK,
    FlowInfo,
    boost_rfs,
    rotations_for_factor,
    rotl32,
    rotr32,
    unboost_rfs,
)


def test_rotr_halves_even_values():
    assert rotr32(20_000, 1) == 10_000
    assert rotr32(40_000, 2) == 10_000


def test_rotr_wraps_odd_values_to_high_bit():
    assert rotr32(1, 1) == 1 << 31


def test_rotl_inverts_rotr():
    for value in (0, 1, 2, 12345, RFS_MASK, 0xDEADBEEF):
        for count in range(0, 40):
            assert rotl32(rotr32(value, count), count) == value & RFS_MASK


def test_rotation_counts_mod_32():
    assert rotr32(0xABCD1234, 32) == 0xABCD1234
    assert rotr32(0xABCD1234, 33) == rotr32(0xABCD1234, 1)


def test_rotations_for_factor():
    assert rotations_for_factor(1) == 0
    assert rotations_for_factor(2) == 1
    assert rotations_for_factor(4) == 2
    assert rotations_for_factor(8) == 3


def test_rotations_for_factor_rejects_non_power():
    with pytest.raises(ValueError):
        rotations_for_factor(3)
    with pytest.raises(ValueError):
        rotations_for_factor(0)


def test_boost_divides_by_factor_per_retransmission():
    # 2x boosting: each retransmission halves the (even) RFS.
    assert boost_rfs(40_000, retcnt=1, boost_factor=2) == 20_000
    assert boost_rfs(40_000, retcnt=2, boost_factor=2) == 10_000
    # 4x boosting: each retransmission quarters it.
    assert boost_rfs(40_000, retcnt=1, boost_factor=4) == 10_000


def test_boost_applies_to_original_not_iteratively():
    original = 48_000
    once = boost_rfs(original, 1)
    twice = boost_rfs(original, 2)
    assert twice == boost_rfs(once, 1)  # equal here, but computed from orig


def test_unboost_recovers_original():
    for original in (7, 1460, 40_000, 999_999, RFS_MASK):
        for retcnt in range(0, 16):
            for factor in (2, 4, 8):
                wire = boost_rfs(original, retcnt, factor)
                assert unboost_rfs(wire, retcnt, factor) == original


def test_flowinfo_validates_field_ranges():
    FlowInfo(rfs=0)
    FlowInfo(rfs=RFS_MASK, retcnt=15, flow_id3=7, first=True)
    with pytest.raises(ValueError):
        FlowInfo(rfs=RFS_MASK + 1)
    with pytest.raises(ValueError):
        FlowInfo(rfs=0, retcnt=16)
    with pytest.raises(ValueError):
        FlowInfo(rfs=0, flow_id3=8)


def test_flowinfo_original_rfs():
    info = FlowInfo(rfs=boost_rfs(30_000, 3), retcnt=3)
    assert info.original_rfs() == 30_000


def test_flowinfo_copy_is_independent():
    info = FlowInfo(rfs=100, retcnt=2, flow_id3=3, first=True)
    clone = info.copy()
    clone.rfs = 200
    assert info.rfs == 100
    assert clone.retcnt == 2 and clone.flow_id3 == 3 and clone.first
