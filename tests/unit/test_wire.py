"""Byte-exact flowinfo wire encodings (paper Figure 3)."""

import pytest

from repro.core.flowinfo import FlowInfo
from repro.core.wire import (
    FLOWINFO_OPTION_TYPE,
    IPV4_OPTION_LEN,
    L3_HEADER_LEN,
    decode_ipv4_option,
    decode_l3,
    encode_ipv4_option,
    encode_l3,
)


def test_l3_header_is_seven_bytes():
    # Paper: "FLOWINFO as a Layer-3 Header — additional overhead: 7 bytes".
    assert len(encode_l3(FlowInfo(rfs=40_000))) == 7 == L3_HEADER_LEN


def test_ipv4_option_is_eight_bytes():
    # Paper: "FLOWINFO as IPv4 Option header — additional overhead: 8 bytes".
    assert len(encode_ipv4_option(FlowInfo(rfs=40_000))) == 8 \
        == IPV4_OPTION_LEN


def test_l3_roundtrip():
    info = FlowInfo(rfs=123_456, retcnt=5, flow_id3=3, first=True)
    decoded, ethertype = decode_l3(encode_l3(info, inner_ethertype=0x0800))
    assert decoded == info
    assert ethertype == 0x0800


def test_ipv4_option_roundtrip():
    info = FlowInfo(rfs=2 ** 32 - 1, retcnt=15, flow_id3=7, first=False)
    assert decode_ipv4_option(encode_ipv4_option(info)) == info


def test_l3_decode_tolerates_trailing_payload():
    info = FlowInfo(rfs=99)
    decoded, _ = decode_l3(encode_l3(info) + b"payload bytes")
    assert decoded == info


def test_decode_short_buffers_rejected():
    with pytest.raises(ValueError):
        decode_l3(b"\x00\x01")
    with pytest.raises(ValueError):
        decode_ipv4_option(b"\x00")


def test_ipv4_option_type_checked():
    raw = bytearray(encode_ipv4_option(FlowInfo(rfs=1)))
    raw[0] = 0x01
    with pytest.raises(ValueError):
        decode_ipv4_option(bytes(raw))


def test_option_type_has_copied_bit():
    # The option must be copied into every fragment (copied bit set).
    assert FLOWINFO_OPTION_TYPE & 0x80


def test_field_packing_no_crosstalk():
    for retcnt in (0, 1, 15):
        for flow_id3 in (0, 5, 7):
            for first in (False, True):
                info = FlowInfo(rfs=7, retcnt=retcnt, flow_id3=flow_id3,
                                first=first)
                decoded = decode_ipv4_option(encode_ipv4_option(info))
                assert (decoded.retcnt, decoded.flow_id3, decoded.first) \
                    == (retcnt, flow_id3, first)
