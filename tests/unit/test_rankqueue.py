"""PIEO-style rank queue."""

import pytest

from repro.core.scheduler import RankQueue


def test_pop_min_orders_by_rank():
    queue = RankQueue()
    for rank in (30, 10, 20):
        queue.push(rank, f"r{rank}")
    assert [queue.pop_min()[0] for _ in range(3)] == [10, 20, 30]


def test_pop_max_orders_by_rank():
    queue = RankQueue()
    for rank in (30, 10, 20):
        queue.push(rank, f"r{rank}")
    assert [queue.pop_max()[0] for _ in range(3)] == [30, 20, 10]


def test_mixed_min_max_pops():
    queue = RankQueue()
    for rank in range(10):
        queue.push(rank, rank)
    assert queue.pop_min() == (0, 0)
    assert queue.pop_max() == (9, 9)
    assert queue.pop_max() == (8, 8)
    assert queue.pop_min() == (1, 1)
    assert len(queue) == 6


def test_equal_ranks_min_end_is_fifo():
    queue = RankQueue()
    queue.push(5, "first")
    queue.push(5, "second")
    assert queue.pop_min()[1] == "first"
    assert queue.pop_min()[1] == "second"


def test_equal_ranks_max_end_evicts_newest():
    # A displaced packet should be the most recent arrival among equals,
    # keeping the FIFO order of the survivors.
    queue = RankQueue()
    queue.push(5, "old")
    queue.push(5, "new")
    assert queue.pop_max()[1] == "new"


def test_peek_does_not_remove():
    queue = RankQueue()
    queue.push(1, "a")
    queue.push(2, "b")
    assert queue.peek_min() == (1, "a")
    assert queue.peek_max() == (2, "b")
    assert len(queue) == 2


def test_peek_empty_returns_none():
    queue = RankQueue()
    assert queue.peek_min() is None
    assert queue.peek_max() is None


def test_pop_empty_raises():
    queue = RankQueue()
    with pytest.raises(IndexError):
        queue.pop_min()
    with pytest.raises(IndexError):
        queue.pop_max()


def test_len_and_bool():
    queue = RankQueue()
    assert not queue
    queue.push(1, "x")
    assert queue and len(queue) == 1
    queue.pop_min()
    assert not queue


def test_items_snapshot_sorted():
    queue = RankQueue()
    for rank in (5, 1, 3):
        queue.push(rank, str(rank))
    queue.pop_max()  # drop rank 5
    assert queue.items() == [(1, "1"), (3, "3")]


def test_interleaved_operations_stay_consistent():
    queue = RankQueue()
    import random
    rng = random.Random(0)
    shadow = []
    for step in range(500):
        op = rng.random()
        if op < 0.5 or not shadow:
            rank = rng.randrange(100)
            queue.push(rank, step)
            shadow.append(rank)
        elif op < 0.75:
            rank, _ = queue.pop_min()
            assert rank == min(shadow)
            shadow.remove(rank)
        else:
            rank, _ = queue.pop_max()
            assert rank == max(shadow)
            shadow.remove(rank)
        assert len(queue) == len(shadow)


def test_dead_entries_do_not_accumulate():
    # Lazy-deleted twins must be compacted away: a switch queue that
    # only ever pops min would otherwise retain every packet it ever
    # forwarded in the max heap, growing memory (and checkpoint
    # payloads) linearly with history.
    queue = RankQueue()
    for step in range(10_000):
        queue.push(step % 97, step)
        if step >= 8:  # steady-state occupancy of ~8 entries
            queue.pop_min()
    bound = max(RankQueue._COMPACT_FLOOR, 2 * len(queue))
    assert len(queue._min_heap) <= bound
    assert len(queue._max_heap) <= bound


def test_drained_queue_releases_everything():
    queue = RankQueue()
    for rank in range(50):
        queue.push(rank, object())
    for _ in range(25):
        queue.pop_min()
        queue.pop_max()
    assert len(queue) == 0
    assert queue._min_heap == [] and queue._max_heap == []
    assert queue._dead == set()


def test_compaction_preserves_pop_order():
    # Pop order is a pure function of (rank, seq); the compaction that
    # rebuilds the heaps must be invisible to callers.
    import random
    rng = random.Random(7)

    def drive(queue):
        out = []
        for step in range(3_000):
            if rng.random() < 0.6 or not queue:
                queue.push(rng.randrange(50), step)
            elif rng.random() < 0.9:
                out.append(queue.pop_min())
            else:
                out.append(queue.pop_max())
        while queue:
            out.append(queue.pop_min())
        return out

    eager = RankQueue()
    lazy = RankQueue()
    lazy._COMPACT_FLOOR = 10 ** 9  # compaction never triggers
    state = rng.getstate()
    first = drive(eager)
    rng.setstate(state)
    second = drive(lazy)
    assert first == second
