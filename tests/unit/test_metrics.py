"""Metrics collector and statistics helpers."""

import math

import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.stats import cdf_points, mean, percentile
from repro.sim.units import SECOND


def test_mean_and_empty_mean():
    assert mean([1, 2, 3]) == 2
    assert math.isnan(mean([]))


def test_percentile_interpolation():
    values = [10, 20, 30, 40]
    assert percentile(values, 0) == 10
    assert percentile(values, 100) == 40
    assert percentile(values, 50) == 25
    assert percentile([7], 99) == 7
    assert math.isnan(percentile([], 50))


def test_percentile_bounds():
    with pytest.raises(ValueError):
        percentile([1], 101)


def test_cdf_points():
    assert cdf_points([3, 1, 2]) == [(1, 1 / 3), (2, 2 / 3), (3, 1.0)]


def test_flow_lifecycle_and_fct():
    metrics = MetricsCollector()
    metrics.flow_started(1, 0, 1, 1000, start_ns=SECOND)
    assert not metrics.flows[1].completed
    metrics.flow_completed(1, end_ns=2 * SECOND)
    assert metrics.flows[1].fct_ns == SECOND
    assert metrics.mean_fct_s() == 1.0
    assert metrics.flow_completion_pct() == 100.0


def test_flow_completed_idempotent():
    metrics = MetricsCollector()
    metrics.flow_started(1, 0, 1, 1000, 0)
    metrics.flow_completed(1, 100)
    metrics.flow_completed(1, 999)
    assert metrics.flows[1].end_ns == 100


def test_query_completes_when_all_flows_do():
    metrics = MetricsCollector()
    metrics.query_started(5, client=0, start_ns=0, n_flows=2)
    metrics.flow_started(1, 1, 0, 100, 0, is_incast=True, query_id=5)
    metrics.flow_started(2, 2, 0, 100, 0, is_incast=True, query_id=5)
    metrics.flow_completed(1, SECOND)
    assert not metrics.queries[5].completed
    metrics.flow_completed(2, 3 * SECOND)
    assert metrics.queries[5].completed
    assert metrics.queries[5].qct_ns == 3 * SECOND
    assert metrics.mean_qct_s() == 3.0
    assert metrics.query_completion_pct() == 100.0


def test_incomplete_stats_are_nan_or_partial():
    metrics = MetricsCollector()
    assert math.isnan(metrics.flow_completion_pct())
    assert math.isnan(metrics.mean_qct_s())
    metrics.flow_started(1, 0, 1, 100, 0)
    assert metrics.flow_completion_pct() == 0.0


def test_fct_filters():
    metrics = MetricsCollector()
    metrics.flow_started(1, 0, 1, 50_000, 0, is_incast=True, query_id=None)
    metrics.flow_started(2, 0, 1, 500_000, 0)
    metrics.flow_completed(1, SECOND)
    metrics.flow_completed(2, 2 * SECOND)
    assert metrics.mean_fct_s(incast_only=True) == 1.0
    assert metrics.mean_fct_s(background_only=True) == 2.0
    assert metrics.mean_fct_s(max_size=100_000) == 1.0
    assert metrics.mean_fct_s(min_size=100_000) == 2.0


def test_goodput_counts_partial_deliveries():
    metrics = MetricsCollector()
    metrics.flow_started(1, 0, 1, 1000, 0)
    metrics.flows[1].bytes_delivered = 500
    assert metrics.goodput_bps(SECOND) == 500 * 8
    metrics.flow_completed(1, SECOND)
    assert metrics.goodput_bps(SECOND) == 1000 * 8


def test_goodput_min_size_filter():
    metrics = MetricsCollector()
    metrics.flow_started(1, 0, 1, 100, 0)
    metrics.flow_started(2, 0, 1, 10_000_000, 0)
    metrics.flow_completed(1, 1)
    metrics.flows[2].bytes_delivered = 2_000_000
    elephant_only = metrics.goodput_bps(SECOND, min_size=1_000_000)
    assert elephant_only == 2_000_000 * 8


def test_network_counters_derived_metrics():
    metrics = MetricsCollector()
    counters = metrics.counters
    counters.forwarded = 90
    counters.drops["overflow"] = 10
    assert counters.total_drops == 10
    assert counters.drop_rate() == pytest.approx(0.1)
    counters.delivered = 4
    counters.hops_delivered = 10
    assert counters.mean_hops() == 2.5


def test_drop_rate_empty_network():
    metrics = MetricsCollector()
    assert metrics.counters.drop_rate() == 0.0
    assert math.isnan(metrics.counters.mean_hops())


def test_p99_uses_percentile():
    metrics = MetricsCollector()
    for i in range(100):
        metrics.flow_started(i, 0, 1, 100, 0)
        metrics.flow_completed(i, (i + 1) * SECOND)
    assert metrics.p99_fct_s() == pytest.approx(percentile(
        [float(i + 1) for i in range(100)], 99))


# -- coflow accounting --------------------------------------------------------

def test_coflow_completes_when_all_flows_do():
    metrics = MetricsCollector()
    metrics.coflow_started(1, start_ns=0, n_flows=2, stages=1)
    metrics.flow_started(1, 0, 1, 100, 0, coflow_id=1)
    metrics.flow_started(2, 2, 3, 100, 0, coflow_id=1)
    metrics.flow_completed(1, SECOND)
    assert not metrics.coflows[1].completed
    metrics.flow_completed(2, 3 * SECOND)
    assert metrics.coflows[1].completed
    assert metrics.coflows[1].cct_ns == 3 * SECOND
    assert metrics.mean_cct_s() == 3.0
    assert metrics.coflow_completion_pct() == 100.0
    assert metrics.cct_samples_s() == [3.0]


def test_incomplete_coflow_stats():
    metrics = MetricsCollector()
    assert math.isnan(metrics.mean_cct_s())
    assert math.isnan(metrics.coflow_completion_pct())
    metrics.coflow_started(1, start_ns=0, n_flows=2, stages=1)
    metrics.flow_started(1, 0, 1, 100, 0, coflow_id=1)
    metrics.flow_completed(1, SECOND)
    assert metrics.coflow_completion_pct() == 0.0
    assert math.isnan(metrics.p99_cct_s())


# -- measurement window -------------------------------------------------------

def test_window_excludes_warmup_and_cooldown_starts():
    metrics = MetricsCollector()
    metrics.set_window(SECOND, 3 * SECOND)
    # Starts at 0 (warmup), 2s (inside), 3s (cooldown; window is half-open).
    for flow_id, start in ((1, 0), (2, 2 * SECOND), (3, 3 * SECOND)):
        metrics.flow_started(flow_id, 0, 1, 100, start)
        metrics.flow_completed(flow_id, start + SECOND)
    assert metrics.fct_samples_s() == [1.0]
    assert metrics.flow_completion_pct() == 100.0


def test_window_counts_straddling_flow_exactly_once():
    metrics = MetricsCollector()
    metrics.set_window(SECOND, 3 * SECOND)
    # Starts inside the window, completes after it: counted (once, by
    # its start side), even though it ends past window_end.
    metrics.flow_started(1, 0, 1, 100, 2 * SECOND)
    metrics.flow_completed(1, 5 * SECOND)
    # Starts before the window, ends inside it: not counted.
    metrics.flow_started(2, 0, 1, 100, 0)
    metrics.flow_completed(2, 2 * SECOND)
    assert metrics.fct_samples_s() == [3.0]
    assert metrics.flow_completion_pct() == 100.0


def test_window_applies_to_queries_and_coflows():
    metrics = MetricsCollector()
    metrics.set_window(SECOND, None)
    metrics.query_started(1, client=0, start_ns=0, n_flows=1)
    metrics.flow_started(1, 1, 0, 100, 0, is_incast=True, query_id=1)
    metrics.flow_completed(1, 2 * SECOND)
    metrics.coflow_started(1, start_ns=0, n_flows=1, stages=1)
    metrics.flow_started(2, 0, 1, 100, 0, coflow_id=1)
    metrics.flow_completed(2, 2 * SECOND)
    assert metrics.qct_samples_s() == []
    assert metrics.cct_samples_s() == []
    assert math.isnan(metrics.query_completion_pct())
    assert math.isnan(metrics.coflow_completion_pct())


def test_window_goodput_uses_window_span():
    metrics = MetricsCollector()
    metrics.set_window(SECOND, 2 * SECOND)
    metrics.flow_started(1, 0, 1, 1000, 0)            # excluded
    metrics.flow_completed(1, SECOND // 2)
    metrics.flow_started(2, 0, 1, 1000, SECOND)       # included
    metrics.flow_completed(2, 2 * SECOND)
    # duration_ns argument is overridden by the 1 s window span.
    assert metrics.goodput_bps(10 * SECOND) == pytest.approx(8000.0)


def test_window_validation():
    metrics = MetricsCollector()
    with pytest.raises(ValueError):
        metrics.set_window(SECOND, SECOND)
