"""Sweep journal: roundtrip, verification, and crash tolerance."""

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.digest import config_digest, run_digest
from repro.experiments.runner import run_experiment
from repro.runtime import JournalError, SweepJournal


@pytest.fixture(scope="module")
def tiny_result():
    config = ExperimentConfig.bench_profile(
        system="vertigo", transport="dctcp", bg_load=0.1,
        sim_time_ns=1_000_000, seed=1)
    return config, run_experiment(config).portable()


def test_roundtrip_ok_entry(tmp_path, tiny_result):
    config, result = tiny_result
    digest = config_digest(config)
    path = str(tmp_path / "j.jsonl")
    with SweepJournal.create(path, n_points=1) as journal:
        journal.record(digest, 0, "ok", 1, 0.5, result=result)
    with SweepJournal.resume(path) as journal:
        loaded = journal.completed_result(digest)
        assert loaded is not None
        assert run_digest(loaded) == run_digest(result)
        assert journal.entries[digest]["attempts"] == 1
        assert journal.skipped_lines == 0


def test_non_ok_entries_do_not_resume(tmp_path, tiny_result):
    config, _ = tiny_result
    digest = config_digest(config)
    path = str(tmp_path / "j.jsonl")
    with SweepJournal.create(path, n_points=1) as journal:
        journal.record(digest, 0, "failed", 3, 1.0, error="boom")
    with SweepJournal.resume(path) as journal:
        assert journal.completed_result(digest) is None


def test_latest_entry_wins(tmp_path, tiny_result):
    config, result = tiny_result
    digest = config_digest(config)
    path = str(tmp_path / "j.jsonl")
    with SweepJournal.create(path, n_points=1) as journal:
        journal.record(digest, 0, "crashed", 1, 0.1, error="killed")
        journal.record(digest, 0, "ok", 2, 0.6, result=result)
    with SweepJournal.resume(path) as journal:
        assert journal.completed_result(digest) is not None


def test_torn_final_line_is_skipped_not_fatal(tmp_path, tiny_result):
    config, result = tiny_result
    digest = config_digest(config)
    path = str(tmp_path / "j.jsonl")
    with SweepJournal.create(path, n_points=2) as journal:
        journal.record(digest, 0, "ok", 1, 0.5, result=result)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"digest": "abc", "status": "ok", "payl')  # torn write
    with SweepJournal.resume(path) as journal:
        assert journal.skipped_lines == 1
        assert journal.completed_result(digest) is not None


def test_corrupt_payload_forces_rerun(tmp_path, tiny_result):
    config, result = tiny_result
    digest = config_digest(config)
    path = str(tmp_path / "j.jsonl")
    with SweepJournal.create(path, n_points=1) as journal:
        journal.record(digest, 0, "ok", 1, 0.5, result=result)
    # Corrupt the recorded payload in place.
    lines = open(path).read().splitlines()
    entry = json.loads(lines[1])
    entry["payload"] = "definitely-not-base64-pickle!"
    lines[1] = json.dumps(entry)
    open(path, "w").write("\n".join(lines) + "\n")
    with SweepJournal.resume(path) as journal:
        assert journal.completed_result(digest) is None


def test_digest_mismatch_forces_rerun(tmp_path, tiny_result):
    config, result = tiny_result
    digest = config_digest(config)
    path = str(tmp_path / "j.jsonl")
    with SweepJournal.create(path, n_points=1) as journal:
        journal.record(digest, 0, "ok", 1, 0.5, result=result)
    lines = open(path).read().splitlines()
    entry = json.loads(lines[1])
    entry["run_digest"] = "0" * 64  # payload no longer matches
    lines[1] = json.dumps(entry)
    open(path, "w").write("\n".join(lines) + "\n")
    with SweepJournal.resume(path) as journal:
        assert journal.completed_result(digest) is None


def test_resume_rejects_non_journal_files(tmp_path):
    not_journal = tmp_path / "random.jsonl"
    not_journal.write_text('{"ev": "trace.meta"}\n')
    with pytest.raises(JournalError):
        SweepJournal.resume(str(not_journal))
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(JournalError):
        SweepJournal.resume(str(empty))


def test_resumed_journal_appends(tmp_path, tiny_result):
    config, result = tiny_result
    digest = config_digest(config)
    path = str(tmp_path / "j.jsonl")
    with SweepJournal.create(path, n_points=2) as journal:
        journal.record(digest, 0, "ok", 1, 0.5, result=result)
    with SweepJournal.resume(path) as journal:
        journal.record("other-digest", 1, "failed", 2, 0.3, error="boom")
    assert len(open(path).read().splitlines()) == 3  # header + 2 entries
