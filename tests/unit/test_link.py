"""Ports and links: serialization, propagation, transmit loop."""

import pytest

from repro.net.link import Link, Port
from repro.net.queues import DropTailQueue
from repro.sim.engine import Engine
from tests.helpers import SinkDevice, mk_data


def _wire(engine, rate_bps=1_000_000_000, delay_ns=1_000):
    sink = SinkDevice()
    port = Port(engine, SinkDevice("src"), 0, DropTailQueue(1_000_000))
    port.attach(Link(engine, rate_bps, delay_ns, sink, 0))
    return port, sink


def test_delivery_time_is_serialization_plus_propagation():
    engine = Engine()
    port, sink = _wire(engine, rate_bps=10 ** 9, delay_ns=1_000)
    packet = mk_data(payload=1460)  # 1500 wire bytes -> 12 us at 1 Gbps
    port.enqueue(packet)
    engine.run()
    assert sink.received == [packet]
    assert engine.now == 12_000 + 1_000


def test_back_to_back_packets_serialize_sequentially():
    engine = Engine()
    port, sink = _wire(engine, rate_bps=10 ** 9, delay_ns=0)
    first, second = mk_data(payload=1460), mk_data(payload=1460)
    port.enqueue(first)
    port.enqueue(second)
    engine.run()
    assert sink.received == [first, second]
    assert engine.now == 24_000  # two serializations, no overlap


def test_port_counts_bytes_and_packets():
    engine = Engine()
    port, _ = _wire(engine)
    packet = mk_data(payload=1000)
    port.enqueue(packet)
    engine.run()
    assert port.packets_sent == 1
    assert port.bytes_sent == packet.wire_bytes


def test_port_idle_until_enqueue():
    engine = Engine()
    port, sink = _wire(engine)
    engine.run()
    assert not port.busy and sink.received == []


def test_enqueue_while_busy_waits():
    engine = Engine()
    port, sink = _wire(engine, rate_bps=10 ** 9, delay_ns=0)
    port.enqueue(mk_data(payload=1460))
    engine.run(until=6_000)  # mid-serialization
    assert port.busy
    port.enqueue(mk_data(payload=1460))
    engine.run()
    assert len(sink.received) == 2


def test_link_validations():
    engine = Engine()
    sink = SinkDevice()
    with pytest.raises(ValueError):
        Link(engine, 0, 0, sink, 0)
    with pytest.raises(ValueError):
        Link(engine, 1, -1, sink, 0)


def test_peer_exposed():
    engine = Engine()
    port, sink = _wire(engine)
    assert port.peer is sink
