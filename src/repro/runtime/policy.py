"""Supervision policy: retries, backoff, and per-run deadlines.

A :class:`SupervisorPolicy` is the knob set of the crash-tolerant sweep
runtime (:mod:`repro.runtime.supervisor`): how many times a failing run
is retried, how long a run may take before the watchdog kills it, and
how retry backoff is spaced.

Backoff is exponential with jitter, but the jitter draws from a **named,
seeded RNG stream** (``RngRegistry(seed).stream("runtime.backoff")``) so
the retry schedule of a supervised sweep is itself deterministic — the
same failures produce the same waits, run after run.  Backoff never
touches any simulation stream: the supervisor lives entirely outside
simulated time.

Environment variables (CLI flags override them):

- ``REPRO_RUN_TIMEOUT_S`` — per-run wall-clock deadline in (fractional)
  seconds; unset/empty disables deadlines.
- ``REPRO_MAX_RETRIES`` — retry attempts after the first try (default 2).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Optional

from repro.sim.rng import RngRegistry

ENV_RUN_TIMEOUT = "REPRO_RUN_TIMEOUT_S"
ENV_MAX_RETRIES = "REPRO_MAX_RETRIES"

#: Named RNG streams this module owns (checked by lint rule VR110).
RNG_STREAMS = ("runtime.backoff",)

#: Terminal classifications of one sweep point under supervision.
#: ``aborted`` marks points cancelled by an interrupt before finishing.
RUN_STATUSES = ("ok", "timeout", "crashed", "failed", "aborted")


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number of seconds, "
                         f"got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {raw!r}")
    return value


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None
    if value < 0:
        raise ValueError(f"{name} cannot be negative, got {raw!r}")
    return value


@dataclass(frozen=True)
class SupervisorPolicy:
    """How the sweep supervisor treats failing or stuck runs."""

    #: Retry attempts granted after the first try (0 = never retry).
    max_retries: int = 2
    #: Per-run wall-clock deadline in seconds; None disables the watchdog.
    run_timeout_s: Optional[float] = None
    #: Grace window between the watchdog's SIGTERM (checkpoint-then-exit
    #: request) and the hard SIGKILL fallback.
    preempt_grace_s: float = 5.0
    #: Wall-clock seconds without *simulated-clock* progress (read from
    #: checkpoint progress sidecars) before a run is flagged as stalled;
    #: None disables stall detection.
    stall_timeout_s: Optional[float] = None
    #: First backoff interval; doubles per retry up to :attr:`backoff_cap_s`.
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 8.0
    #: Seed of the named RNG stream the backoff jitter draws from.
    backoff_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.run_timeout_s is not None and self.run_timeout_s <= 0:
            raise ValueError("run_timeout_s must be positive (or None)")
        if self.preempt_grace_s < 0:
            raise ValueError("preempt_grace_s cannot be negative")
        if self.stall_timeout_s is not None and self.stall_timeout_s <= 0:
            raise ValueError("stall_timeout_s must be positive (or None)")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff intervals cannot be negative")

    @classmethod
    def from_env(cls, *, run_timeout_s: Optional[float] = None,
                 max_retries: Optional[int] = None,
                 **overrides) -> "SupervisorPolicy":
        """Resolve a policy from explicit values, else the environment.

        Explicit arguments win over ``REPRO_RUN_TIMEOUT_S`` /
        ``REPRO_MAX_RETRIES``; malformed environment values raise
        ``ValueError`` with a one-line message.
        """
        if run_timeout_s is None:
            run_timeout_s = _env_float(ENV_RUN_TIMEOUT)
        if max_retries is None:
            max_retries = _env_int(ENV_MAX_RETRIES)
        kwargs = dict(overrides)
        if run_timeout_s is not None:
            kwargs["run_timeout_s"] = run_timeout_s
        if max_retries is not None:
            kwargs["max_retries"] = max_retries
        return cls(**kwargs)

    def backoff_stream(self) -> random.Random:
        """The named, seeded jitter stream (fresh per supervised sweep)."""
        return RngRegistry(self.backoff_seed).stream("runtime.backoff")

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Wait before retry ``attempt`` (1-based): capped exponential
        backoff, jittered to 50–100 % of the nominal interval."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        nominal = min(self.backoff_cap_s,
                      self.backoff_base_s * (2 ** (attempt - 1)))
        return nominal * (0.5 + 0.5 * rng.random())
