"""repro.runtime — crash-tolerant supervised sweep execution.

The harness-side counterpart to :mod:`repro.faults` (PR 3 made the
*simulated network* fault-tolerant; this package makes the *harness that
runs it* fault-tolerant): a supervisor that survives worker crashes,
kills stuck runs on a wall-clock deadline, retries transient failures
with deterministic backoff, journals every completion for
checkpoint/resume, and degrades gracefully on SIGINT/SIGTERM.

Quickstart::

    from repro.runtime import SupervisorPolicy, run_supervised

    report = run_supervised(configs, jobs=4,
                            policy=SupervisorPolicy(max_retries=3,
                                                    run_timeout_s=120),
                            journal="sweep.jsonl")
    if not report.ok:
        print(report.manifest())

Resume after a crash or Ctrl-C::

    report = run_supervised(configs, jobs=4, resume="sweep.jsonl")

See DESIGN.md ("Runtime supervision") for the failure model.
"""

from repro.runtime.journal import JournalError, SweepJournal
from repro.runtime.policy import RUN_STATUSES, SupervisorPolicy
from repro.runtime.supervisor import (
    RunOutcome,
    SweepReport,
    SweepSupervisor,
    run_supervised,
)

__all__ = [
    "RUN_STATUSES",
    "JournalError",
    "RunOutcome",
    "SupervisorPolicy",
    "SweepJournal",
    "SweepReport",
    "SweepSupervisor",
    "run_supervised",
]
