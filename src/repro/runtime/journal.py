"""Append-only sweep journal: crash-safe checkpoint/resume for sweeps.

Every terminal outcome of a supervised sweep point is appended to a
JSONL journal and flushed (``flush`` + ``fsync``) before the supervisor
moves on, so an OOM kill, a power cut, or a Ctrl-C can lose at most the
point that was in flight.  ``repro sweep --resume <journal>`` reloads
the journal, skips every point whose config digest already has an ``ok``
entry, and re-runs the rest — producing final results digest-identical
to an uninterrupted sweep (the chaos-smoke CI job enforces this byte for
byte).

File format — one JSON object per line:

- header (first line): ``{"journal": "repro.sweep", "version": 1,
  "points": N}``
- completion lines: ``{"digest": <config digest>, "index": i,
  "status": "ok" | "timeout" | "crashed" | "failed" | "aborted",
  "attempts": n, "wall_s": w, "error": msg-or-null,
  "run_digest": <run digest or null>, "payload": <base64 pickle of
  RunResult.portable() for ok entries, else null>}``

Matching is by config digest, not by index, so a resumed sweep may
reorder, extend, or subset the original point list and still reuse every
completed point that is still part of it.  Payloads are verified against
their recorded run digest on load; an entry that fails verification (or
a line truncated by the crash itself) is ignored and the point re-runs.
"""

from __future__ import annotations

import base64
import io
import json
import os
import pickle
from typing import Dict, Optional

from repro.experiments.digest import run_digest
from repro.experiments.runner import RunResult

JOURNAL_MAGIC = "repro.sweep"
JOURNAL_VERSION = 1


class JournalError(ValueError):
    """The journal file is not a repro sweep journal."""


def encode_result(result: RunResult) -> str:
    """Base64-pickled portable copy of a result (journal payload)."""
    portable = result if result.network is None else result.portable()
    return base64.b64encode(
        pickle.dumps(portable, protocol=pickle.HIGHEST_PROTOCOL)).decode()


def decode_result(payload: str) -> RunResult:
    return pickle.loads(base64.b64decode(payload.encode()))


class SweepJournal:
    """Append-only JSONL record of a supervised sweep's completions."""

    def __init__(self, path: str, handle: io.TextIOBase,
                 entries: Optional[Dict[str, dict]] = None) -> None:
        self.path = path
        self._handle = handle
        #: Latest journal entry per config digest (all statuses).
        self.entries: Dict[str, dict] = entries or {}
        #: Lines that could not be parsed on load (e.g. a write truncated
        #: by the crash being recovered from); they are skipped, not fatal.
        self.skipped_lines = 0

    # -- constructors ----------------------------------------------------------

    @classmethod
    def create(cls, path: str, n_points: int) -> "SweepJournal":
        """Start a fresh journal (truncates an existing file)."""
        handle = open(path, "w", encoding="utf-8")
        journal = cls(path, handle)
        journal._append({"journal": JOURNAL_MAGIC,
                         "version": JOURNAL_VERSION, "points": n_points})
        return journal

    @classmethod
    def resume(cls, path: str) -> "SweepJournal":
        """Open an existing journal, loading its completed entries.

        New completions append to the same file, so an interrupted
        *resume* can itself be resumed.
        """
        entries: Dict[str, dict] = {}
        skipped = 0
        header_seen = False
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # Most likely the torn final write of the crash we
                    # are recovering from; the point simply re-runs.
                    skipped += 1
                    continue
                if not header_seen:
                    if record.get("journal") != JOURNAL_MAGIC:
                        raise JournalError(
                            f"{path} is not a repro sweep journal "
                            f"(missing header)")
                    if record.get("version") != JOURNAL_VERSION:
                        raise JournalError(
                            f"{path}: unsupported journal version "
                            f"{record.get('version')!r}")
                    header_seen = True
                    continue
                digest = record.get("digest")
                if isinstance(digest, str):
                    entries[digest] = record  # latest entry wins
                else:
                    skipped += 1
        if not header_seen:
            raise JournalError(f"{path} is empty (no journal header)")
        handle = open(path, "a", encoding="utf-8")
        journal = cls(path, handle, entries)
        journal.skipped_lines = skipped
        return journal

    # -- recording -------------------------------------------------------------

    def _append(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True,
                                      separators=(",", ":")) + "\n")
        self._handle.flush()
        try:
            os.fsync(self._handle.fileno())
        except OSError:
            # Non-seekable targets (pipes, some filesystems) cannot
            # fsync; flushed-but-unsynced is still best effort.
            return

    def record(self, digest: str, index: int, status: str, attempts: int,
               wall_s: float, error: Optional[str] = None,
               result: Optional[RunResult] = None) -> None:
        """Append one terminal outcome; flushed before returning."""
        entry = {
            "digest": digest,
            "index": index,
            "status": status,
            "attempts": attempts,
            "wall_s": round(wall_s, 6),
            "error": error,
            "run_digest": run_digest(result) if result is not None else None,
            "payload": encode_result(result) if result is not None else None,
            # Checkpoint lineage: {"restored_from_ns", "checkpoints_written",
            # "path"} when the run was checkpointed or restored, else None.
            "checkpoint": getattr(result, "checkpoint", None)
            if result is not None else None,
        }
        self._append(entry)
        self.entries[digest] = entry

    # -- resume reads ----------------------------------------------------------

    def completed_result(self, digest: str) -> Optional[RunResult]:
        """The verified result for ``digest``, or None if it must re-run.

        Only ``ok`` entries count as completed; the decoded payload is
        re-hashed and must match the recorded run digest, so a corrupt
        or stale payload silently falls back to re-running the point.
        """
        entry = self.entries.get(digest)
        if not entry or entry.get("status") != "ok":
            return None
        payload = entry.get("payload")
        if not payload:
            return None
        try:
            result = decode_result(payload)
        except Exception:  # corrupt payload: re-run the point
            return None
        if run_digest(result) != entry.get("run_digest"):
            return None
        return result

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
