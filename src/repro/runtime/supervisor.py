"""Crash-tolerant supervised sweep execution.

:class:`SweepSupervisor` wraps the plain parallel executor
(:mod:`repro.experiments.parallel`) with the supervision shape that
preemption-tolerant fleets use:

- **Crash detection & pool rebuild.**  A worker dying (SIGKILL, OOM,
  segfault) breaks the whole :class:`~concurrent.futures.ProcessPoolExecutor`;
  the supervisor catches the breakage, rebuilds the pool, and re-queues
  every run that was in flight — completed results are never lost.
- **Per-run wall-clock deadlines.**  With
  :attr:`~repro.runtime.policy.SupervisorPolicy.run_timeout_s` set, a
  watchdog thread kills the worker pool when a run overshoots its
  deadline and classifies that run as ``timeout`` instead of letting one
  stuck run hang the sweep.  Runs that merely shared the pool with the
  stuck one are re-queued without a retry penalty.
- **Bounded retry with deterministic backoff.**  Transient failures
  (crashes, timeouts, one-off exceptions) are retried up to
  ``max_retries`` times with exponential backoff whose jitter draws from
  a named, seeded RNG stream; a run failing twice with the *same*
  exception is deterministic and fails fast.
- **Journaling.**  Every terminal outcome is appended to a
  :class:`~repro.runtime.journal.SweepJournal` and flushed, enabling
  ``--resume`` to skip completed points.
- **Graceful degradation.**  SIGINT/SIGTERM stop the sweep at the next
  safe point, flush the journal, and return a partial
  :class:`SweepReport` whose failure manifest names every missing point.

Supervision is zero-cost when idle: a serial sweep with no deadline
configured is a plain in-process loop (no pool, no watchdog, no threads)
around the same ``run_experiment`` calls, and the per-event simulator
hot path is untouched.

Results produced under supervision are always **portable**
(:meth:`RunResult.portable`) — identical digests, no live network —
whether they ran serially, in a worker, or were reloaded from a journal.
"""

from __future__ import annotations

import contextlib
import math
import os
import signal
import threading
import time  # noqa: VR002 - supervision measures real wall time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.analysis import sanitize as _sanitize
from repro.checkpoint.runtime import install_worker_handlers
from repro.checkpoint.store import RunPreempted, read_progress
from repro.experiments.config import ExperimentConfig
from repro.experiments.digest import config_digest, sweep_digest
from repro.experiments.parallel import _run_portable, _worker_init, resolve_jobs
from repro.experiments.report import placeholder_row
from repro.experiments.runner import RunResult
from repro.runtime.journal import SweepJournal
from repro.runtime.policy import RUN_STATUSES, SupervisorPolicy
from repro.trace.profiler import PhaseProfiler

Runner = Callable[[ExperimentConfig], RunResult]


def _supervised_worker_init(sanitize_on: bool) -> None:
    """Pool initializer: sanitizer state + clean signal disposition.

    Forked workers inherit the supervisor's SIGINT/SIGTERM trap
    (installed while the pool is built), which would make every pool
    teardown — the executor SIGTERMs surviving workers when one dies —
    print a spurious ``KeyboardInterrupt`` traceback per worker.  Reset
    to ignore SIGINT (the supervisor owns interrupt handling and reaps
    workers itself); SIGTERM gets the checkpoint-aware worker handler —
    a run in flight latches a preemption request (checkpoint-then-exit
    at the next epoch boundary), an idle worker dies quietly as before.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    install_worker_handlers()
    _worker_init(sanitize_on)


@dataclass
class RunOutcome:
    """Terminal classification of one sweep point under supervision."""

    index: int
    config: ExperimentConfig
    digest: str
    status: str  # one of RUN_STATUSES
    attempts: int
    wall_s: float
    error: Optional[str] = None
    result: Optional[RunResult] = None
    #: True when the result was reloaded from a journal, not re-run.
    resumed: bool = False
    #: True when the progress watchdog saw the simulated clock stop
    #: advancing for longer than ``stall_timeout_s`` (flag, not a kill).
    stalled: bool = False
    #: Last simulated timestamp / event count the run was known to have
    #: reached (from its checkpoint progress sidecar); None when the run
    #: completed normally or was never checkpointed.
    last_sim_ns: Optional[int] = None
    last_events: Optional[int] = None

    def __post_init__(self) -> None:
        if self.status not in RUN_STATUSES:
            raise ValueError(f"unknown run status {self.status!r}; "
                             f"choose from {RUN_STATUSES}")

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class SweepReport:
    """Everything a supervised sweep produced, losses included.

    ``outcomes`` has exactly one entry per submitted config, in sweep
    order; points that never completed (failed permanently, or were cut
    off by an interrupt) carry ``result=None`` and a non-``ok`` status.
    """

    outcomes: List[RunOutcome]
    interrupted: bool = False
    wall_s: float = 0.0
    #: Wall seconds by supervision phase: ``runtime.retry`` (backoff
    #: waits), ``runtime.timeout`` (wall time of watchdog-killed runs).
    profile: Dict[str, float] = field(default_factory=dict)
    #: Journal file these outcomes were appended to, or None.
    journal_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def results(self) -> List[Optional[RunResult]]:
        """Per-point results in sweep order (None for missing points)."""
        return [outcome.result for outcome in self.outcomes]

    def failures(self) -> List[RunOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def manifest(self) -> Dict[str, object]:
        """Structured failure manifest (CLI, benches, format_table)."""
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return {
            "points": len(self.outcomes),
            "ok": counts.get("ok", 0),
            "resumed": sum(1 for o in self.outcomes if o.resumed),
            "interrupted": self.interrupted,
            "counts": counts,
            "stalls": [outcome.index for outcome in self.outcomes
                       if outcome.stalled],
            "failures": [{
                "index": outcome.index,
                "digest": outcome.digest,
                "status": outcome.status,
                "attempts": outcome.attempts,
                "error": outcome.error,
                "seed": outcome.config.seed,
                "system": outcome.config.system.name,
                "last_sim_ns": outcome.last_sim_ns,
                "last_events": outcome.last_events,
                "stalled": outcome.stalled,
            } for outcome in self.failures()],
        }

    def rows(self) -> List[Dict[str, object]]:
        """Summary-table rows; missing points render explicitly.

        When every point completed this matches the historical
        ``[result.row() for result in results]`` (plus ``seed``); any
        failure adds a ``status`` column to every row and emits
        placeholder rows for the missing points instead of crashing the
        table.
        """
        degraded = not self.ok
        rows = []
        for outcome in self.outcomes:
            if outcome.ok:
                row = outcome.result.row()
                row["seed"] = outcome.config.seed
                if degraded:
                    row["status"] = "ok"
            else:
                row = placeholder_row(outcome.config, outcome.status)
                row["seed"] = outcome.config.seed
            rows.append(row)
        return rows

    def sweep_digest(self) -> str:
        """Order-sensitive digest over the whole sweep.

        Completed points contribute their run digest; missing points
        contribute a ``!<status>`` marker (so a degraded sweep can never
        collide with a complete one).
        """
        return sweep_digest([
            outcome.result if outcome.ok else f"!{outcome.status}"
            for outcome in self.outcomes
        ])


@dataclass
class _Watch:
    """Watchdog bookkeeping for one in-flight future."""

    deadline: float                        # math.inf = no deadline
    progress_path: Optional[str] = None    # checkpoint path (stall probe)
    grace_until: Optional[float] = None    # SIGTERM sent; SIGKILL at this
    last_sim: Optional[int] = None         # last observed simulated clock
    last_change: float = 0.0               # wall time of last advance


class _Watchdog(threading.Thread):
    """Deadline enforcement and stall detection for in-flight runs.

    Scans the watched futures a few times a second.  A run overshooting
    its deadline is marked timed out and the pool is **soft-killed**
    (SIGTERM): checkpointed runs write a final checkpoint and exit
    gracefully (:class:`RunPreempted`), preserving their progress.  A
    worker that still has not yielded after ``grace_s`` is SIGKILLed —
    the only portable way to reclaim a truly stuck process — and the
    supervisor's crash path rebuilds the pool and classifies the
    victims.

    With ``stall_timeout_s`` set, the watchdog also polls each run's
    checkpoint progress sidecar; a simulated clock that stops advancing
    for that long flags the run as **stalled** (surfaced in the outcome
    and failure manifest — a flag, never a kill, since a stalled clock
    with wall progress may be a legitimately heavy epoch).
    """

    def __init__(self, kill_workers: Callable[[], None],
                 soft_kill: Callable[[], None], *,
                 grace_s: float = 5.0,
                 stall_timeout_s: Optional[float] = None,
                 poll_s: float = 0.05) -> None:
        super().__init__(name="repro-sweep-watchdog", daemon=True)
        self._kill_workers = kill_workers
        self._soft_kill = soft_kill
        self._grace_s = grace_s
        self._stall_timeout_s = stall_timeout_s
        self._poll_s = poll_s
        self._lock = threading.Lock()
        self._watched: Dict[object, _Watch] = {}
        self._timed_out: set = set()
        self._stalled: set = set()
        # NB: not named _stop — that would shadow Thread._stop(), which
        # threading._after_fork() calls inside forked worker processes.
        self._halt = threading.Event()
        #: Number of kill sweeps performed, soft or hard (read by the
        #: supervisor to tell collateral pool victims from genuine
        #: crashes).
        self.kills = 0

    def watch(self, future, deadline: float,
              progress_path: Optional[str] = None) -> None:
        now = time.monotonic()  # noqa: VR002 - harness wall clock
        with self._lock:
            self._watched[future] = _Watch(deadline=deadline,
                                           progress_path=progress_path,
                                           last_change=now)

    def unwatch(self, future) -> None:
        with self._lock:
            self._watched.pop(future, None)

    def was_timed_out(self, future) -> bool:
        with self._lock:
            return future in self._timed_out

    def was_stalled(self, future) -> bool:
        with self._lock:
            return future in self._stalled

    def stop(self) -> None:
        self._halt.set()

    def _probe_stall(self, future, watch: _Watch, now: float) -> None:
        if self._stall_timeout_s is None or watch.progress_path is None:
            return
        progress = read_progress(watch.progress_path)
        sim_now = progress.get("sim_now_ns") if progress else None
        if sim_now != watch.last_sim:
            watch.last_sim = sim_now
            watch.last_change = now
        elif now - watch.last_change >= self._stall_timeout_s:
            with self._lock:
                self._stalled.add(future)

    def run(self) -> None:
        while not self._halt.wait(self._poll_s):
            now = time.monotonic()  # noqa: VR002 - harness wall clock
            with self._lock:
                scan = list(self._watched.items())
            overdue = []
            expired = []
            for future, watch in scan:
                if future.done():
                    continue
                self._probe_stall(future, watch, now)
                if watch.grace_until is not None:
                    if now >= watch.grace_until:
                        expired.append(future)
                elif now >= watch.deadline:
                    overdue.append(future)
            if overdue:
                with self._lock:
                    for future in overdue:
                        self._timed_out.add(future)
                        watch = self._watched.get(future)
                        if watch is not None:
                            watch.grace_until = now + self._grace_s
                # Soft kill: ask every worker to checkpoint-then-exit.
                self.kills += 1
                self._soft_kill()
            if expired:
                with self._lock:
                    for future in expired:
                        self._watched.pop(future, None)
                # Grace elapsed and the worker still has not yielded:
                # reclaim it the hard way.
                self.kills += 1
                self._kill_workers()


@dataclass
class _Flight:
    """Bookkeeping for one submitted, not-yet-completed run."""

    index: int
    started: float
    kills_at_submit: int


class SweepSupervisor:
    """Run a config list to completion despite crashes and stalls."""

    def __init__(self, configs: Iterable[ExperimentConfig], *,
                 jobs: Optional[int] = None,
                 policy: Optional[SupervisorPolicy] = None,
                 journal: Optional[object] = None,
                 resume: Optional[str] = None,
                 runner: Optional[Runner] = None,
                 on_outcome: Optional[Callable[[RunOutcome], None]] = None,
                 mp_context=None) -> None:
        self.configs = list(configs)
        self.policy = policy or SupervisorPolicy.from_env()
        self.jobs = resolve_jobs(jobs)
        self.runner: Runner = runner or _run_portable
        self.on_outcome = on_outcome
        self._mp_context = mp_context
        if journal is not None and resume is not None:
            raise ValueError("pass either journal= (start fresh) or "
                             "resume= (continue an existing journal)")
        self._journal_path = journal if isinstance(journal, str) else None
        self._journal: Optional[SweepJournal] = \
            journal if isinstance(journal, SweepJournal) else None
        self._resume_path = resume
        self._stop = threading.Event()
        self._interrupt_signum: Optional[int] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()

    # -- public controls -------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the sweep to stop at the next safe point (thread-safe)."""
        self._stop.set()

    def worker_pids(self) -> List[int]:
        """PIDs of live pool workers (chaos tests aim their SIGKILLs here)."""
        with self._pool_lock:
            pool = self._pool
            processes = getattr(pool, "_processes", None) if pool else None
            return list(processes or ())

    @property
    def interrupted(self) -> bool:
        return self._interrupt_signum is not None

    # -- the run ---------------------------------------------------------------

    def run(self) -> SweepReport:
        started = time.monotonic()  # noqa: VR002 - harness wall clock
        profiler = PhaseProfiler()
        digests = [config_digest(config) for config in self.configs]
        journal = self._open_journal(len(self.configs))
        outcomes: Dict[int, RunOutcome] = {}
        self._load_resumed(journal, digests, outcomes)
        pending = [index for index in range(len(self.configs))
                   if index not in outcomes]
        use_pool = self.jobs > 1 \
            or self.policy.run_timeout_s is not None \
            or self.policy.stall_timeout_s is not None
        try:
            with self._trap_signals():
                try:
                    if use_pool and pending:
                        self._run_pool(pending, digests, outcomes, journal,
                                       profiler)
                    else:
                        self._run_serial(pending, digests, outcomes, journal,
                                         profiler)
                except KeyboardInterrupt:
                    self._stop.set()
                    if self._interrupt_signum is None:
                        self._interrupt_signum = signal.SIGINT
            # Anything without a terminal outcome was cut off.
            for index in range(len(self.configs)):
                if index not in outcomes:
                    outcome = RunOutcome(
                        index=index, config=self.configs[index],
                        digest=digests[index], status="aborted", attempts=0,
                        wall_s=0.0, error="interrupted before completion")
                    outcomes[index] = outcome
                    if journal is not None:
                        journal.record(digests[index], index, "aborted", 0,
                                       0.0, error=outcome.error)
        finally:
            if journal is not None:
                journal.close()
        wall_s = time.monotonic() - started  # noqa: VR002 - harness wall clock
        return SweepReport(
            outcomes=[outcomes[index] for index in
                      range(len(self.configs))],
            interrupted=self.interrupted or self._stop.is_set(),
            wall_s=round(wall_s, 6),
            profile=profiler.report(),
            journal_path=journal.path if journal is not None else None)

    # -- setup helpers ---------------------------------------------------------

    def _open_journal(self, n_points: int) -> Optional[SweepJournal]:
        if self._journal is not None:
            return self._journal
        if self._resume_path is not None:
            return SweepJournal.resume(self._resume_path)
        if self._journal_path is not None:
            return SweepJournal.create(self._journal_path, n_points)
        return None

    def _load_resumed(self, journal: Optional[SweepJournal],
                      digests: Sequence[str],
                      outcomes: Dict[int, RunOutcome]) -> None:
        if journal is None or not journal.entries:
            return
        for index, digest in enumerate(digests):
            result = journal.completed_result(digest)
            if result is None:
                continue
            entry = journal.entries[digest]
            outcomes[index] = RunOutcome(
                index=index, config=self.configs[index], digest=digest,
                status="ok", attempts=int(entry.get("attempts", 1)),
                wall_s=float(entry.get("wall_s", 0.0)), result=result,
                resumed=True)

    def _record(self, outcome: RunOutcome,
                outcomes: Dict[int, RunOutcome],
                journal: Optional[SweepJournal]) -> None:
        outcomes[outcome.index] = outcome
        if journal is not None:
            journal.record(outcome.digest, outcome.index, outcome.status,
                           outcome.attempts, outcome.wall_s,
                           error=outcome.error, result=outcome.result)
        if self.on_outcome is not None:
            self.on_outcome(outcome)

    def _checkpoint_path(self, index: int,
                         digests: Sequence[str]) -> Optional[str]:
        """Managed checkpoint path of point ``index``, or None."""
        checkpoint = self.configs[index].checkpoint
        if checkpoint is None:
            return None
        return checkpoint.resolve_path(digests[index])

    def _last_progress(self, index: int, digests: Sequence[str]):
        """(sim_now_ns, events_executed) last reported by the run's
        progress sidecar, or None — failure-manifest provenance."""
        path = self._checkpoint_path(index, digests)
        if path is None:
            return None
        progress = read_progress(path)
        if progress is None:
            return None
        return (progress.get("sim_now_ns"), progress.get("events_executed"))

    @contextlib.contextmanager
    def _trap_signals(self):
        """SIGINT/SIGTERM → stop flag + KeyboardInterrupt (main thread only).

        The handler records the signal and raises ``KeyboardInterrupt``
        so both execution paths unwind to their graceful-stop handling;
        previous handlers are restored on exit.
        """
        if threading.current_thread() is not threading.main_thread():
            yield
            return
        previous = {}

        def handler(signum, frame):
            self._interrupt_signum = signum
            self._stop.set()
            raise KeyboardInterrupt

        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, handler)
        try:
            yield
        finally:
            for signum, old in previous.items():
                signal.signal(signum, old)

    # -- serial path (zero supervision overhead) -------------------------------

    def _run_serial(self, pending: List[int], digests: Sequence[str],
                    outcomes: Dict[int, RunOutcome],
                    journal: Optional[SweepJournal],
                    profiler: PhaseProfiler) -> None:
        rng = self.policy.backoff_stream()
        for index in pending:
            if self._stop.is_set():
                return
            attempts = 0
            wall_s = 0.0
            last_signature: Optional[str] = None
            while True:
                attempts += 1
                t0 = time.monotonic()  # noqa: VR002 - harness wall clock
                try:
                    result = self.runner(self.configs[index])
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    wall_s += time.monotonic() - t0  # noqa: VR002
                    signature = f"{type(exc).__name__}: {exc}"
                    deterministic = signature == last_signature
                    last_signature = signature
                    if deterministic or attempts > self.policy.max_retries:
                        error = signature + (" (failed identically twice; "
                                             "not retrying)"
                                             if deterministic else "")
                        progress = self._last_progress(index, digests)
                        last_sim, last_events = progress or (None, None)
                        self._record(RunOutcome(
                            index=index, config=self.configs[index],
                            digest=digests[index], status="failed",
                            attempts=attempts, wall_s=round(wall_s, 6),
                            error=error, last_sim_ns=last_sim,
                            last_events=last_events), outcomes, journal)
                        break
                    with profiler.phase("runtime.retry"):
                        self._stop.wait(self.policy.backoff_s(attempts, rng))
                    if self._stop.is_set():
                        return
                    continue
                wall_s += time.monotonic() - t0  # noqa: VR002
                self._record(RunOutcome(
                    index=index, config=self.configs[index],
                    digest=digests[index], status="ok", attempts=attempts,
                    wall_s=round(wall_s, 6), result=result),
                    outcomes, journal)
                break

    # -- pool path -------------------------------------------------------------

    def _ensure_pool(self, remaining: int) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                workers = max(1, min(self.jobs, remaining))
                self._pool = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_supervised_worker_init,
                    initargs=(_sanitize.enabled(),),
                    mp_context=self._mp_context)
            return self._pool

    def _teardown_pool(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _kill_workers(self) -> None:
        """SIGKILL every live pool worker (watchdog / interrupt path)."""
        for pid in self.worker_pids():
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                continue

    def _soft_kill_workers(self) -> None:
        """SIGTERM every live pool worker: checkpoint-then-exit request.

        Checkpointed runs latch the preemption flag and yield with
        :class:`RunPreempted` at their next epoch boundary;
        un-checkpointed runs in flight latch and run on (aborting would
        only lose their work — the hard kill reclaims the genuinely
        stuck one after the grace window); idle workers keep the
        historical die-on-SIGTERM behaviour.
        """
        for pid in self.worker_pids():
            try:
                os.kill(pid, signal.SIGTERM)
            except (ProcessLookupError, PermissionError):
                continue

    def _run_pool(self, pending: List[int], digests: Sequence[str],
                  outcomes: Dict[int, RunOutcome],
                  journal: Optional[SweepJournal],
                  profiler: PhaseProfiler) -> None:
        policy = self.policy
        rng = policy.backoff_stream()
        attempts = {index: 0 for index in pending}
        wall_acc = {index: 0.0 for index in pending}
        last_signature: Dict[int, str] = {}
        not_before = {index: 0.0 for index in pending}
        queue = deque(pending)
        inflight: Dict[object, _Flight] = {}
        watchdog = None
        if policy.run_timeout_s is not None \
                or policy.stall_timeout_s is not None:
            watchdog = _Watchdog(self._kill_workers,
                                 self._soft_kill_workers,
                                 grace_s=policy.preempt_grace_s,
                                 stall_timeout_s=policy.stall_timeout_s)
            watchdog.start()

        def requeue(index: int, penalty: bool) -> None:
            if penalty:
                delay = policy.backoff_s(attempts[index], rng)
                not_before[index] = time.monotonic() + delay  # noqa: VR002
            queue.append(index)

        def finish(index: int, status: str, *, error: Optional[str] = None,
                   result: Optional[RunResult] = None,
                   future: Optional[object] = None) -> None:
            stalled = watchdog is not None and future is not None \
                and watchdog.was_stalled(future)
            last_sim = last_events = None
            if status != "ok":
                progress = self._last_progress(index, digests)
                if progress is not None:
                    last_sim, last_events = progress
            self._record(RunOutcome(
                index=index, config=self.configs[index],
                digest=digests[index], status=status,
                attempts=attempts[index],
                wall_s=round(wall_acc[index], 6), error=error,
                result=result, stalled=stalled, last_sim_ns=last_sim,
                last_events=last_events), outcomes, journal)

        try:
            while (queue or inflight) and not self._stop.is_set():
                now = time.monotonic()  # noqa: VR002 - harness wall clock
                self._submit_ready(queue, inflight, not_before, now, watchdog,
                                   digests)
                if not inflight:
                    # Everything runnable is backing off; wait the gap out.
                    gap = min((not_before[index] for index in queue),
                              default=now) - now
                    if gap > 0:
                        with profiler.phase("runtime.retry"):
                            self._stop.wait(min(gap, 0.1))
                    continue
                done, _ = wait(set(inflight), timeout=0.1,
                               return_when=FIRST_COMPLETED)
                for future in done:
                    flight = inflight.pop(future)
                    if watchdog is not None:
                        watchdog.unwatch(future)
                    index = flight.index
                    run_wall = time.monotonic() - flight.started  # noqa: VR002
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        self._teardown_pool()
                        timed_out = watchdog is not None \
                            and watchdog.was_timed_out(future)
                        collateral = not timed_out and watchdog is not None \
                            and watchdog.kills > flight.kills_at_submit
                        if collateral:
                            # Innocent bystander of a watchdog kill aimed
                            # at another run: retry without penalty.
                            requeue(index, penalty=False)
                            continue
                        wall_acc[index] += run_wall
                        attempts[index] += 1
                        if timed_out:
                            profiler.add("runtime.timeout", run_wall)
                            if attempts[index] > policy.max_retries:
                                finish(index, "timeout", error=(
                                    f"exceeded --run-timeout "
                                    f"{policy.run_timeout_s:g}s "
                                    f"({attempts[index]} attempt(s))"),
                                    future=future)
                            else:
                                requeue(index, penalty=True)
                        else:
                            if attempts[index] > policy.max_retries:
                                finish(index, "crashed", error=(
                                    f"worker process died "
                                    f"({attempts[index]} attempt(s))"),
                                    future=future)
                            else:
                                requeue(index, penalty=True)
                    except RunPreempted:
                        # The worker checkpointed and yielded gracefully.
                        timed_out = watchdog is not None \
                            and watchdog.was_timed_out(future)
                        if timed_out:
                            wall_acc[index] += run_wall
                            attempts[index] += 1
                            profiler.add("runtime.timeout", run_wall)
                            if attempts[index] > policy.max_retries:
                                finish(index, "timeout", error=(
                                    f"exceeded --run-timeout "
                                    f"{policy.run_timeout_s:g}s "
                                    f"({attempts[index]} attempt(s); "
                                    f"checkpoint retained)"),
                                    future=future)
                            else:
                                # The retry auto-resumes from the
                                # checkpoint just written, so the
                                # deadline now bounds *incremental*
                                # progress per attempt.
                                requeue(index, penalty=True)
                        else:
                            # Innocent bystander of a soft-kill sweep
                            # aimed at another run: its checkpoint
                            # preserves all progress; resume free.
                            requeue(index, penalty=False)
                    except (SystemExit, Exception) as exc:
                        # SystemExit: concurrent.futures ships worker
                        # BaseExceptions back through the future — the
                        # worker SIGTERM handler's exit lands here when
                        # the signal interrupts a task that is not a
                        # checkpointed run (custom runners).
                        timed_out = watchdog is not None \
                            and watchdog.was_timed_out(future)
                        if not timed_out and isinstance(exc, SystemExit) \
                                and watchdog is not None \
                                and watchdog.kills > flight.kills_at_submit:
                            # Terminated by a soft-kill sweep aimed at
                            # another run: retry without penalty.
                            requeue(index, penalty=False)
                            continue
                        wall_acc[index] += run_wall
                        attempts[index] += 1
                        if timed_out:
                            profiler.add("runtime.timeout", run_wall)
                            if attempts[index] > policy.max_retries:
                                finish(index, "timeout", error=(
                                    f"exceeded --run-timeout "
                                    f"{policy.run_timeout_s:g}s "
                                    f"({attempts[index]} attempt(s))"),
                                    future=future)
                            else:
                                requeue(index, penalty=True)
                            continue
                        signature = f"{type(exc).__name__}: {exc}"
                        deterministic = \
                            last_signature.get(index) == signature
                        last_signature[index] = signature
                        if deterministic \
                                or attempts[index] > policy.max_retries:
                            error = signature + (
                                " (failed identically twice; not retrying)"
                                if deterministic else "")
                            finish(index, "failed", error=error,
                                   future=future)
                        else:
                            requeue(index, penalty=True)
                    else:
                        wall_acc[index] += run_wall
                        attempts[index] += 1
                        finish(index, "ok", result=result, future=future)
        except KeyboardInterrupt:
            self._stop.set()
            raise
        finally:
            if watchdog is not None:
                watchdog.stop()
            if self._stop.is_set():
                # Interrupt: reclaim workers instead of orphaning them.
                self._kill_workers()
            self._teardown_pool()

    def _submit_ready(self, queue: deque, inflight: Dict[object, _Flight],
                      not_before: Dict[int, float], now: float,
                      watchdog: Optional[_Watchdog],
                      digests: Sequence[str]) -> None:
        """Fill free pool slots with runs whose backoff has elapsed."""
        while queue and len(inflight) < self.jobs:
            index = None
            for _ in range(len(queue)):
                candidate = queue.popleft()
                if now >= not_before.get(candidate, 0.0):
                    index = candidate
                    break
                queue.append(candidate)
            if index is None:
                return
            remaining = len(queue) + len(inflight) + 1
            pool = self._ensure_pool(remaining)
            try:
                future = pool.submit(self.runner, self.configs[index])
            except (BrokenProcessPool, RuntimeError):
                # Pool broke between completions; rebuild and retry on
                # the next loop iteration.
                self._teardown_pool()
                queue.appendleft(index)
                return
            kills = watchdog.kills if watchdog is not None else 0
            inflight[future] = _Flight(index=index, started=now,
                                       kills_at_submit=kills)
            if watchdog is not None:
                deadline = now + self.policy.run_timeout_s \
                    if self.policy.run_timeout_s is not None else math.inf
                watchdog.watch(future, deadline,
                               self._checkpoint_path(index, digests))


def run_supervised(configs: Iterable[ExperimentConfig], *,
                   jobs: Optional[int] = None,
                   policy: Optional[SupervisorPolicy] = None,
                   journal: Optional[object] = None,
                   resume: Optional[str] = None,
                   runner: Optional[Runner] = None,
                   on_outcome: Optional[Callable[[RunOutcome], None]] = None,
                   mp_context=None) -> SweepReport:
    """Run a sweep under the crash-tolerant supervisor.

    Drop-in upgrade over :func:`repro.experiments.parallel.run_many`:
    same ordering and digests, plus crash recovery, deadlines, bounded
    deterministic retry, journaling (``journal=`` path starts one,
    ``resume=`` continues one), and graceful interrupt handling.  See
    :class:`SweepSupervisor` for the mechanics and :class:`SweepReport`
    for the result surface.
    """
    supervisor = SweepSupervisor(
        configs, jobs=jobs, policy=policy, journal=journal, resume=resume,
        runner=runner, on_outcome=on_outcome, mp_context=mp_context)
    return supervisor.run()
