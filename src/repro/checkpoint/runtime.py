"""Preemption signaling for checkpointed runs.

SIGTERM (and, for foreground single runs, SIGINT) must not kill a
checkpointed run mid-event: signal handlers can fire between any two
bytecodes, where the simulation graph is not at a consistent boundary.
The handlers here therefore only set a flag; the runner's epoch loop
polls :func:`preemption_requested` at checkpoint boundaries, writes a
final checkpoint, and raises
:class:`~repro.checkpoint.store.RunPreempted` — checkpoint-then-exit.

Two installation profiles:

- :func:`install_worker_handlers` — sweep worker processes.  SIGTERM
  sets the flag; a worker with no active checkpointed run exits
  immediately (the historical ``SIG_DFL`` behaviour), so un-checkpointed
  sweeps keep their crash-recovery semantics.
- :func:`install_foreground_handlers` — a single ``repro run`` with
  checkpointing on.  SIGTERM and SIGINT both set the flag, replacing
  KeyboardInterrupt's mid-event abort with a graceful epoch-boundary
  exit.
"""

from __future__ import annotations

import contextlib
import signal
from typing import Iterator

#: Process-wide preemption latch. ``active`` marks a checkpointed run in
#: flight (the handler defers to its epoch loop); ``preempt`` is the
#: request flag that loop polls.
_state = {"active": False, "preempt": False}  # noqa: VR004 - signal latch


def preemption_requested() -> bool:
    """Has a preemption signal arrived since the run started?"""
    return _state["preempt"]


def _worker_handler(signum: int, frame: object) -> None:
    _state["preempt"] = True
    if not _state["active"]:
        # Idle worker, or a run without checkpointing: preserve the
        # plain terminate-on-SIGTERM contract.
        raise SystemExit(128 + signum)


def _foreground_handler(signum: int, frame: object) -> None:
    _state["preempt"] = True
    if not _state["active"]:
        raise KeyboardInterrupt


def install_worker_handlers() -> None:
    """Worker-process profile: SIGTERM requests checkpoint-then-exit."""
    signal.signal(signal.SIGTERM, _worker_handler)


def install_foreground_handlers() -> None:
    """Foreground single-run profile: SIGTERM/SIGINT request preemption."""
    signal.signal(signal.SIGTERM, _foreground_handler)
    signal.signal(signal.SIGINT, _foreground_handler)


@contextlib.contextmanager
def active_run() -> Iterator[None]:
    """Scope one checkpointed run: clears stale requests on entry so a
    signal delivered to an idle worker never preempts the *next* run."""
    _state["active"] = True
    _state["preempt"] = False
    try:
        yield
    finally:
        _state["active"] = False
        _state["preempt"] = False
