"""The ``Snapshot`` protocol: explicit state enumeration for checkpoints.

A checkpoint of a live simulation is one pickle of the connected object
graph (engine, network, transports, workload generators, ...).  Pickle
would happily serialize ``__dict__`` wholesale, but that makes state
coverage *implicit*: a new mutable attribute added to a component is
silently included — or, for ``__slots__`` classes, silently dropped —
and nothing reviews the decision.

Stateful components therefore implement this protocol instead: they
declare every instance attribute in ``SNAPSHOT_ATTRS`` (a literal tuple,
so the checkpoint-coverage lint pass of VR120 can read it from the AST),
and ``snapshot_state()`` / ``restore_state()`` enumerate exactly those.
The protocol is wired into ``__getstate__`` / ``__setstate__`` so plain
pickling of the object graph flows through the explicit enumeration —
one mechanism serves in-run checkpoints, worker-process transfer, and
the lint.

Subclasses extend the declaration rather than replace it::

    class RankedQueue(_BoundedQueue):
        SNAPSHOT_ATTRS = _BoundedQueue.SNAPSHOT_ATTRS + ("_ranked",)

What is deliberately *not* snapshotted lives outside these classes (see
DESIGN.md "Checkpoint/restore"): wall-clock profiling, process-global
trace hook activation, and the module-level packet-uid counter (identity
only, re-watermarked on restore).
"""

from __future__ import annotations

from typing import Dict, Tuple


class Snapshot:
    """Mixin: explicit, lintable snapshot/restore of instance state.

    ``SNAPSHOT_ATTRS`` must name *every* instance attribute, mutable or
    not — restore rebuilds the object from the enumeration alone, with
    no ``__init__`` replay.  The VR120 checkpoint-coverage lint flags
    attributes assigned in methods but missing from the declaration.
    """

    # Slot-free mixin: ``__slots__``-based components keep their compact
    # layout (no __dict__ is added by inheriting the protocol).
    __slots__ = ()

    SNAPSHOT_ATTRS: Tuple[str, ...] = ()

    def snapshot_state(self) -> Dict[str, object]:
        """Capture the declared attributes as a plain dict."""
        return {name: getattr(self, name) for name in self.SNAPSHOT_ATTRS}

    def restore_state(self, state: Dict[str, object]) -> None:
        """Reinstate a :meth:`snapshot_state` capture onto this object."""
        for name in self.SNAPSHOT_ATTRS:
            setattr(self, name, state[name])

    def __getstate__(self) -> Dict[str, object]:
        return self.snapshot_state()

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.restore_state(state)
