"""Atomic checkpoint files with versioned headers and content digests.

A checkpoint file is one JSON header line followed by a pickle payload::

    {"checkpoint": "repro.checkpoint", "version": 1, "config": "...",
     "sim_now_ns": ..., "events_executed": ..., "payload_bytes": N,
     "sha256": "..."}\\n
    <N bytes of pickle>

Writes are atomic (tmp + ``os.replace``) and keep one generation of
history: the previous checkpoint survives as ``<path>.prev``, so a
corrupt or torn latest file — wrong magic, truncated payload, digest
mismatch — falls back to the previous epoch instead of losing the run.

A small JSON *progress sidecar* (``<path>.progress``) rides along with
every checkpoint epoch; it is cheap enough to read from the supervising
process, powering the stall watchdog and the last-progress fields of
failure manifests.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
from typing import Dict, Optional, Tuple

CHECKPOINT_MAGIC = "repro.checkpoint"
CHECKPOINT_VERSION = 1

#: Suffix of the one-generation history file kept beside the latest.
PREVIOUS_SUFFIX = ".prev"
#: Suffix of the progress sidecar written at every checkpoint epoch.
PROGRESS_SUFFIX = ".progress"

#: Header size guard: a valid header line is well under this.
_MAX_HEADER_BYTES = 64 * 1024


class CheckpointError(RuntimeError):
    """A checkpoint file is unreadable, corrupt, or incompatible."""


class RunPreempted(RuntimeError):
    """A run checkpointed and yielded after a preemption request.

    Raised out of the epoch loop after the checkpoint is safely on disk;
    carries the checkpoint path and the simulated time reached so
    supervisors and the CLI can point at the resume artifact.
    """

    def __init__(self, path: str, sim_now_ns: int) -> None:
        super().__init__(f"run preempted at {sim_now_ns} ns; "
                         f"checkpoint written to {path}")
        self.path = path
        self.sim_now_ns = sim_now_ns

    def __reduce__(self):
        return (RunPreempted, (self.path, self.sim_now_ns))


def _fsync_write(path: str, blob: bytes) -> None:
    with open(path, "wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())


def write_checkpoint(path: str, world: object, *, config_digest: str,
                     sim_now_ns: int, events_executed: int
                     ) -> Dict[str, object]:
    """Atomically persist ``world`` to ``path``; returns the header.

    The previous latest (if any) is rotated to ``<path>.prev`` first, so
    a torn write of the new file never costs more than one epoch.
    """
    payload = pickle.dumps(world, protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "checkpoint": CHECKPOINT_MAGIC,
        "version": CHECKPOINT_VERSION,
        "config": config_digest,
        "sim_now_ns": sim_now_ns,
        "events_executed": events_executed,
        "payload_bytes": len(payload),
        "sha256": hashlib.sha256(payload).hexdigest(),
    }
    blob = json.dumps(header, sort_keys=True).encode("utf-8") + b"\n" + payload
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    tmp = path + ".tmp"
    _fsync_write(tmp, blob)
    if os.path.exists(path):
        os.replace(path, path + PREVIOUS_SUFFIX)
    os.replace(tmp, path)
    return header


def _read_header(fh: io.BufferedReader, path: str) -> Dict[str, object]:
    line = fh.readline(_MAX_HEADER_BYTES)
    if not line.endswith(b"\n"):
        raise CheckpointError(f"{path}: missing or oversized header line")
    try:
        header = json.loads(line)
    except ValueError as exc:
        raise CheckpointError(f"{path}: unparsable header: {exc}") from None
    if not isinstance(header, dict) \
            or header.get("checkpoint") != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path}: not a repro checkpoint file")
    if header.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {header.get('version')!r} "
            f"is not supported (expected {CHECKPOINT_VERSION})")
    return header


def peek_header(path: str) -> Dict[str, object]:
    """Read and validate only the header of a checkpoint file."""
    try:
        with open(path, "rb") as fh:
            return _read_header(fh, path)
    except OSError as exc:
        raise CheckpointError(f"{path}: {exc}") from None


def read_checkpoint(path: str, *, expect_config: Optional[str] = None
                    ) -> Tuple[Dict[str, object], object]:
    """Load one checkpoint file, verifying digest and (optionally) config.

    Raises :class:`CheckpointError` on any corruption: bad header, short
    payload, content-digest mismatch, or a config-digest mismatch when
    ``expect_config`` is given.
    """
    try:
        with open(path, "rb") as fh:
            header = _read_header(fh, path)
            payload = fh.read()
    except OSError as exc:
        raise CheckpointError(f"{path}: {exc}") from None
    if len(payload) != header["payload_bytes"]:
        raise CheckpointError(
            f"{path}: torn payload ({len(payload)} bytes, header promises "
            f"{header['payload_bytes']})")
    if hashlib.sha256(payload).hexdigest() != header["sha256"]:
        raise CheckpointError(f"{path}: payload digest mismatch")
    if expect_config is not None and header["config"] != expect_config:
        raise CheckpointError(
            f"{path}: checkpoint belongs to config {header['config'][:12]}…, "
            f"not the requested config {expect_config[:12]}…")
    try:
        world = pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(f"{path}: payload unpickling failed: "
                              f"{exc}") from None
    return header, world


def load_latest(path: str, *, expect_config: Optional[str] = None
                ) -> Optional[Tuple[Dict[str, object], object, str]]:
    """Load the newest intact checkpoint at ``path``, else its ``.prev``.

    Returns ``(header, world, used_path)``; ``None`` when neither
    generation exists.  A corrupt/torn latest falls back to the previous
    generation; if both are corrupt, the *latest* error propagates.
    """
    candidates = [path, path + PREVIOUS_SUFFIX]
    first_error: Optional[CheckpointError] = None
    seen_any = False
    for candidate in candidates:
        if not os.path.exists(candidate):
            continue
        seen_any = True
        try:
            header, world = read_checkpoint(candidate,
                                            expect_config=expect_config)
        except CheckpointError as exc:
            if first_error is None:
                first_error = exc
            continue
        return header, world, candidate
    if seen_any and first_error is not None:
        raise first_error
    return None


def discard(path: str) -> None:
    """Remove a checkpoint, its previous generation, and its sidecar."""
    for victim in (path, path + PREVIOUS_SUFFIX, path + PROGRESS_SUFFIX,
                   path + ".tmp"):
        try:
            os.remove(victim)
        except OSError:
            pass


# -- progress sidecars --------------------------------------------------------

def progress_path(path: str) -> str:
    return path + PROGRESS_SUFFIX


def write_progress(path: str, *, sim_now_ns: int, events_executed: int,
                   sim_time_ns: int) -> None:
    """Atomically update the progress sidecar beside checkpoint ``path``.

    No fsync: the sidecar is advisory (watchdog + manifests); losing the
    last update on power failure costs nothing.
    """
    record = {"sim_now_ns": sim_now_ns, "events_executed": events_executed,
              "sim_time_ns": sim_time_ns}
    sidecar = progress_path(path)
    tmp = sidecar + ".tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(record, fh, sort_keys=True)
        os.replace(tmp, sidecar)
    except OSError:
        # Progress reporting must never take a run down.
        pass


def read_progress(path: str) -> Optional[Dict[str, int]]:
    """The latest progress record beside checkpoint ``path``, or None."""
    try:
        with open(progress_path(path), "r", encoding="utf-8") as fh:
            record = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(record, dict):
        return None
    return record
