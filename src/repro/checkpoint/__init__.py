"""Deterministic in-run checkpoint/restore for long simulations.

One simulated second of a paper-scale hybrid run costs ~21 s of wall
clock; multi-second sweep points run for minutes.  This package makes
those runs survivable: at every checkpoint epoch the runner persists the
*entire* live simulation — event calendar, named RNG streams, switch and
PFC state, fidelity controllers, transports, workload cursors — and a
killed, preempted, or crashed run resumes from its last epoch with a
final run digest byte-identical to an uninterrupted run.

Pieces:

- :mod:`repro.checkpoint.protocol` — the :class:`Snapshot` protocol
  (explicit ``snapshot_state()`` / ``restore_state()`` per component,
  linted for coverage by VR120).
- :mod:`repro.checkpoint.store` — atomic versioned checkpoint files
  with content digests, one-generation fallback, progress sidecars.
- :mod:`repro.checkpoint.config` — :class:`CheckpointConfig`, the knob
  carried (digest-neutrally) by ``ExperimentConfig``.
- :mod:`repro.checkpoint.runtime` — SIGTERM/SIGINT checkpoint-then-exit
  signaling for workers and foreground runs.
"""

from repro.checkpoint.config import DEFAULT_CHECKPOINT_DIR, CheckpointConfig
from repro.checkpoint.protocol import Snapshot
from repro.checkpoint.store import (CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
                                    CheckpointError, RunPreempted, discard,
                                    load_latest, peek_header, progress_path,
                                    read_checkpoint, read_progress,
                                    write_checkpoint, write_progress)

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointConfig",
    "CheckpointError",
    "DEFAULT_CHECKPOINT_DIR",
    "RunPreempted",
    "Snapshot",
    "discard",
    "load_latest",
    "peek_header",
    "progress_path",
    "read_checkpoint",
    "read_progress",
    "write_checkpoint",
    "write_progress",
]
