"""Checkpoint policy attached to an :class:`ExperimentConfig`.

``CheckpointConfig`` is deliberately **excluded from config digests**
(the field on ``ExperimentConfig`` is ``repr=False``): whether and how
often a run checkpoints must not change its identity, exactly like
trace and profiling settings must not change its results.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.sim.units import MILLISECOND

#: Directory used when neither ``path`` nor ``directory`` is given.
DEFAULT_CHECKPOINT_DIR = ".repro-checkpoints"


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often a run snapshots itself.

    ``every_ns`` is the epoch length in simulated nanoseconds; the run
    loop stops at every multiple of it and persists the full simulation
    state.  ``path`` pins the checkpoint file explicitly (single runs);
    otherwise files land in ``directory`` keyed by the config digest, so
    sweep points never collide and a retried run finds its own state.
    """

    every_ns: int
    path: Optional[str] = None
    directory: Optional[str] = None

    def __post_init__(self) -> None:
        if self.every_ns <= 0:
            raise ValueError("checkpoint interval must be positive")
        if self.path is not None and self.directory is not None:
            raise ValueError("give either an explicit checkpoint path or "
                             "a directory, not both")

    @classmethod
    def every_ms(cls, ms: float, *, path: Optional[str] = None,
                 directory: Optional[str] = None) -> "CheckpointConfig":
        """The CLI surface: ``--checkpoint-every`` takes simulated ms."""
        every_ns = round(ms * MILLISECOND)
        if every_ns <= 0:
            raise ValueError("checkpoint interval must be positive")
        return cls(every_ns=every_ns, path=path, directory=directory)

    def resolve_path(self, config_digest: str) -> str:
        """The checkpoint file for the run identified by this digest."""
        if self.path is not None:
            return self.path
        directory = self.directory or DEFAULT_CHECKPOINT_DIR
        return os.path.join(directory, f"{config_digest[:16]}.ckpt")
