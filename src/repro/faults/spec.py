"""Declarative fault specifications and their CLI grammar.

A :class:`FaultSpec` names one scheduled change to one cable of the
fabric: take it down, bring it back up, degrade its rate, or impose a
probabilistic corruption loss.  Specs are frozen, hashable and picklable,
so they ride inside :class:`~repro.experiments.config.ExperimentConfig`
through the parallel sweep executor and into the determinism digest
unchanged.

Timestamps are integer nanoseconds (the simulator's canonical time unit;
``repro.analysis.lint`` rules VR003/VR005 enforce this statically) and
the corruption loss draws from a named RNG stream derived from the cable
endpoints, so fault scenarios never perturb any other component's
randomness and digests stay reproducible.

The CLI grammar (``--fault``) packs several events for one cable into a
single directive::

    link:leaf0-spine1:down@50ms,up@120ms
    link:leaf0-spine1:rate=40mbps@10ms,rate=160mbps@90ms
    link:leaf0-h3:loss=0.02@0ms,loss=0@60ms

``<endpoint>`` is a switch name or ``h<id>`` for a host; times accept
``ns``/``us``/``ms``/``s`` suffixes (bare integers are nanoseconds) and
rates accept ``bps``/``kbps``/``mbps``/``gbps`` (bare integers are
bits/s).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.sim.units import GIGA, KILO, MEGA, MICROSECOND, MILLISECOND, SECOND

#: Recognized fault kinds.
FAULT_KINDS = ("down", "up", "rate", "loss")

_TIME_SCALES = {"ns": 1, "us": MICROSECOND, "ms": MILLISECOND, "s": SECOND}
_RATE_SCALES = {"bps": 1, "kbps": KILO, "mbps": MEGA, "gbps": GIGA}

_TIME_RE = re.compile(r"^(?P<value>\d+(?:\.\d+)?)(?P<unit>ns|us|ms|s)?$")
_RATE_RE = re.compile(r"^(?P<value>\d+(?:\.\d+)?)(?P<unit>[kmg]?bps)?$",
                      re.IGNORECASE)


class FaultParseError(ValueError):
    """A ``--fault`` directive (or a time/rate literal) failed to parse.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    callers keep working; the CLI catches it to turn a malformed
    directive into a one-line usage error (exit status 2).
    """


def cable_key(a: str, b: str) -> Tuple[str, str]:
    """Canonical (sorted) endpoint pair naming a full-duplex cable."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled change to one cable.

    ``kind`` is one of :data:`FAULT_KINDS`; ``rate_bps`` is required for
    ``rate`` faults and ``loss_rate`` for ``loss`` faults (``loss=0``
    heals a previously injected corruption).
    """

    kind: str
    link: Tuple[str, str]
    at_ns: int
    rate_bps: Optional[int] = None
    loss_rate: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {FAULT_KINDS}")
        if not (isinstance(self.link, tuple) and len(self.link) == 2
                and all(isinstance(end, str) and end for end in self.link)):
            raise ValueError(f"fault link must be a pair of endpoint "
                             f"names, got {self.link!r}")
        if type(self.at_ns) is not int:
            raise ValueError(f"fault timestamps are integer nanoseconds, "
                             f"got {self.at_ns!r} "
                             f"({type(self.at_ns).__name__})")
        if self.at_ns < 0:
            raise ValueError(f"fault timestamp cannot be negative "
                             f"(at_ns={self.at_ns})")
        if self.kind == "rate":
            if self.rate_bps is None or self.rate_bps <= 0:
                raise ValueError("rate faults need a positive rate_bps")
        elif self.rate_bps is not None:
            raise ValueError(f"rate_bps is only valid on rate faults, "
                             f"not {self.kind!r}")
        if self.kind == "loss":
            if self.loss_rate is None \
                    or not 0.0 <= self.loss_rate < 1.0:
                raise ValueError("loss faults need loss_rate in [0, 1)")
        elif self.loss_rate is not None:
            raise ValueError(f"loss_rate is only valid on loss faults, "
                             f"not {self.kind!r}")
        # Canonicalize the endpoint order so equal cables compare equal.
        object.__setattr__(self, "link", cable_key(*self.link))

    def describe(self) -> str:
        """Compact human-readable form (telemetry/event labels)."""
        a, b = self.link
        extra = ""
        if self.kind == "rate":
            extra = f"={self.rate_bps}bps"
        elif self.kind == "loss":
            extra = f"={self.loss_rate:g}"
        return f"{a}-{b}:{self.kind}{extra}@{self.at_ns}ns"


def parse_time_ns(text: str) -> int:
    """``"50ms"`` / ``"120us"`` / ``"1500"`` → integer nanoseconds."""
    match = _TIME_RE.match(text.strip())
    if not match:
        raise FaultParseError(f"cannot parse time {text!r} "
                              f"(expected e.g. 50ms, 120us, 1500)")
    scale = _TIME_SCALES[match.group("unit") or "ns"]
    return round(float(match.group("value")) * scale)


def parse_rate_bps(text: str) -> int:
    """``"40mbps"`` / ``"10gbps"`` / ``"200000"`` → integer bits/s."""
    match = _RATE_RE.match(text.strip())
    if not match:
        raise FaultParseError(f"cannot parse rate {text!r} "
                              f"(expected e.g. 40mbps, 10gbps, 200000)")
    scale = _RATE_SCALES[(match.group("unit") or "bps").lower()]
    return round(float(match.group("value")) * scale)


def parse_fault(directive: str) -> Tuple[FaultSpec, ...]:
    """Parse one ``--fault`` directive into its fault specs.

    Grammar: ``link:<a>-<b>:<event>[,<event>...]`` where each event is
    ``down@<time>``, ``up@<time>``, ``rate=<rate>@<time>`` or
    ``loss=<fraction>@<time>``.
    """
    parts = directive.strip().split(":", 2)
    if len(parts) != 3 or parts[0] != "link":
        raise FaultParseError(
            f"malformed fault directive {directive!r}; expected "
            f"link:<a>-<b>:<event>[,<event>...]")
    _, endpoints, events = parts
    try:
        end_a, end_b = endpoints.split("-", 1)
    except ValueError:
        raise FaultParseError(f"malformed cable {endpoints!r}; expected "
                              f"<a>-<b>, e.g. leaf0-spine1") from None
    if not end_a or not end_b:
        raise FaultParseError(f"malformed cable {endpoints!r}; expected "
                              f"<a>-<b>, e.g. leaf0-spine1")
    link = cable_key(end_a, end_b)
    specs = []
    for event in events.split(","):
        event = event.strip()
        if "@" not in event:
            raise FaultParseError(f"fault event {event!r} has no @<time>")
        action, _, when = event.partition("@")
        at_ns = parse_time_ns(when)
        name, _, value = action.partition("=")
        name = name.strip().lower()
        if name == "down" or name == "up":
            if value:
                raise FaultParseError(f"{name} faults take no value "
                                      f"(got {event!r})")
            specs.append(FaultSpec(kind=name, link=link, at_ns=at_ns))
        elif name == "rate":
            specs.append(FaultSpec(kind="rate", link=link, at_ns=at_ns,
                                   rate_bps=parse_rate_bps(value)))
        elif name == "loss":
            try:
                loss_rate = float(value)
            except ValueError:
                raise FaultParseError(
                    f"cannot parse loss fraction {value!r} in "
                    f"{event!r}") from None
            specs.append(FaultSpec(kind="loss", link=link, at_ns=at_ns,
                                   loss_rate=loss_rate))
        else:
            raise FaultParseError(f"unknown fault event {name!r} in "
                                  f"{directive!r}; choose from "
                                  f"{FAULT_KINDS}")
    if not specs:
        raise FaultParseError(f"fault directive {directive!r} has no "
                              f"events")
    return tuple(specs)


def parse_faults(directives) -> Tuple[FaultSpec, ...]:
    """Parse a sequence of ``--fault`` directives into one spec tuple."""
    specs = []
    for directive in directives or ():
        specs.extend(parse_fault(directive))
    return tuple(specs)
