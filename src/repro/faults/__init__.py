"""Deterministic, declaratively-configured fault injection.

Answering the reproduction's robustness questions — does Vertigo still
beat DIBS/DRILL when a spine link dies mid-incast?  do deflection loops
form under failure-induced asymmetry? — requires a dataplane that can be
rewired *while the simulation runs*.  This package provides the
declarative layer: :class:`FaultSpec` describes timed ``link_down`` /
``link_up`` transitions, rate degradation and probabilistic corruption
loss on named cables; :class:`FaultInjector` schedules them on the
engine (integer ns, deterministic ordering, named RNG streams) and
applies them through the runtime-rewiring surface of
:class:`~repro.net.builder.Network`, which recomputes routes over the
surviving edges and invalidates every memoized forwarding decision.

Scenarios thread through :class:`~repro.experiments.config.ExperimentConfig`
(``faults=...``), the CLI (``--fault link:leaf0-spine1:down@50ms,up@120ms``)
and the determinism digest; the telemetry monitor records each applied
fault on its congestion-event timeline.
"""

from repro.faults.injector import FAULT_PRIORITY, FaultInjector
from repro.faults.spec import (
    FAULT_KINDS,
    FaultParseError,
    FaultSpec,
    cable_key,
    parse_fault,
    parse_faults,
    parse_rate_bps,
    parse_time_ns,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_PRIORITY",
    "FaultInjector",
    "FaultParseError",
    "FaultSpec",
    "cable_key",
    "parse_fault",
    "parse_faults",
    "parse_rate_bps",
    "parse_time_ns",
]
