"""Deterministic fault scheduling against a live network.

The :class:`FaultInjector` turns a tuple of
:class:`~repro.faults.spec.FaultSpec` into engine events (integer
nanoseconds, priority ``FAULT_PRIORITY`` so a fault lands *before*
same-instant packet events and the rewired dataplane handles them) and
applies each through the :class:`~repro.net.builder.Network` rewiring
surface — :meth:`~repro.net.builder.Network.set_cable_state`,
``set_cable_rate``, ``set_cable_loss``.

Determinism: specs are sorted by ``(at_ns, spec order)`` before
scheduling, corruption loss draws from a per-cable named RNG stream
created eagerly at construction (so stream creation order never depends
on event interleaving), and every application is recorded on
``applied`` and optionally reported to an ``on_event`` callback (the
telemetry monitor's fault timeline).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from repro.checkpoint.protocol import Snapshot
from repro.faults.spec import FaultSpec
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.builder import Network

#: Faults sort before ordinary (priority 0) events at the same instant:
#: a cable cut at t takes effect before packets delivered at t.
FAULT_PRIORITY = -1

#: Named RNG streams this module owns (checked by lint rule VR110);
#: one per-cable loss stream, keyed by the canonical cable name.
RNG_STREAMS = ("faultloss:",)

#: ``on_event(kind, link)`` notification labels per spec kind.
EVENT_KINDS = {"down": "link_down", "up": "link_up", "rate": "link_rate",
               "loss": "link_loss_rate"}


class FaultInjector(Snapshot):
    """Schedules and applies a fault scenario on a built network."""

    # Pending fault firings live in the engine calendar (bound
    # ``_apply`` events); the injector itself carries the applied log
    # and the pre-created loss streams.
    SNAPSHOT_ATTRS = ("engine", "network", "on_event", "faults", "applied",
                      "_loss_streams")

    def __init__(self, engine: Engine, network: "Network",
                 rng: RngRegistry, faults: Sequence[FaultSpec],
                 on_event: Optional[Callable[[str, Tuple[str, str]], None]]
                 = None) -> None:
        self.engine = engine
        self.network = network
        self.on_event = on_event
        self.faults = tuple(faults)
        #: (time_ns, spec) log of faults applied so far, in order.
        self.applied: List[Tuple[int, FaultSpec]] = []
        self._validate()
        # Pre-create one loss stream per cable with a loss fault, keyed
        # by the canonical cable name — creation order is spec order,
        # never event-interleaving order.
        self._loss_streams = {}
        for spec in self.faults:
            if spec.kind == "loss" and spec.link not in self._loss_streams:
                a, b = spec.link
                self._loss_streams[spec.link] = rng.stream(
                    f"faultloss:{a}-{b}")

    def _validate(self) -> None:
        """Fail fast on cables that do not exist in this network."""
        for spec in self.faults:
            self.network.cable_links(*spec.link)

    def schedule(self) -> None:
        """Install every fault on the engine calendar (call before run)."""
        now = self.engine.now
        ordered = sorted(enumerate(self.faults),
                         key=lambda pair: (pair[1].at_ns, pair[0]))
        for _, spec in ordered:
            if spec.at_ns < now:
                raise ValueError(
                    f"fault {spec.describe()} is scheduled in the past "
                    f"(now={now})")
            self.engine.schedule(spec.at_ns - now, self._apply, spec,
                                 priority=FAULT_PRIORITY)

    def _apply(self, spec: FaultSpec) -> None:
        network = self.network
        a, b = spec.link
        if spec.kind == "down":
            network.set_cable_state(a, b, up=False)
        elif spec.kind == "up":
            network.set_cable_state(a, b, up=True)
        elif spec.kind == "rate":
            network.set_cable_rate(a, b, spec.rate_bps)
        else:  # "loss"
            network.set_cable_loss(a, b, spec.loss_rate,
                                   self._loss_streams.get(spec.link))
        self.applied.append((self.engine.now, spec))
        if self.on_event is not None:
            self.on_event(EVENT_KINDS[spec.kind], spec.link)
