"""Measurement: per-flow / per-query records and summary statistics."""

from repro.metrics.collector import (
    FlowRecord,
    MetricsCollector,
    NetworkCounters,
    QueryRecord,
)
from repro.metrics.stats import cdf_points, mean, percentile

__all__ = [
    "FlowRecord",
    "QueryRecord",
    "NetworkCounters",
    "MetricsCollector",
    "mean",
    "percentile",
    "cdf_points",
]
