"""Flow, query, and network-level measurement.

One :class:`MetricsCollector` is shared by every component of a simulation.
Hosts record flow starts/completions and reordering; switches record drops
and deflections; the incast application records query lifecycles; the
coflow generator records coflow lifecycles.  The collector then exposes
the summary statistics the paper reports — FCT, QCT, CCT, completion
percentages, goodput, drop rates.

A measurement window (:meth:`MetricsCollector.set_window`) excludes
warmup and cooldown from every summary statistic: a flow, query, or
coflow contributes if and only if it *started* inside the window, so
records straddling a boundary are counted exactly once (by their start
side) and never split.  Network counters (drops, deflections, hops) are
dataplane totals and are deliberately not windowed — they describe the
whole run, including the traffic that warmed it up.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.metrics.stats import mean, percentile
from repro.sim.units import SECOND
from repro.trace import hooks as _trace_hooks

_TRACE = _trace_hooks.register(__name__)


@dataclass
class NetworkCounters:
    """Dataplane-wide counters."""

    forwarded: int = 0                # packets enqueued at any switch port
    delivered: int = 0                # data packets handed to a host stack
    deflections: int = 0              # deflection decisions taken
    hops_delivered: int = 0           # sum of hop counts of delivered packets
    reordered_arrivals: int = 0       # data arrivals below the max seq seen
    retransmissions: int = 0          # transport re-sends
    aborted_flows: int = 0            # senders that hit the retry limit
    drops: Counter = field(default_factory=Counter)  # reason -> count
    #: The same drops keyed (priority class, reason); summing over
    #: classes reproduces ``drops`` exactly (tested).  Class 0 carries
    #: everything when no priority map is configured.
    class_drops: Counter = field(default_factory=Counter)

    @property
    def total_drops(self) -> int:
        return sum(self.drops.values())

    def mean_hops(self) -> float:
        if not self.delivered:
            return math.nan
        return self.hops_delivered / self.delivered

    def drop_rate(self) -> float:
        """Fraction of forwarded packets dropped in the network."""
        attempts = self.forwarded + self.total_drops
        return self.total_drops / attempts if attempts else 0.0


@dataclass
class FlowRecord:
    flow_id: int
    src: int
    dst: int
    size: int
    start_ns: int
    end_ns: Optional[int] = None
    bytes_delivered: int = 0
    is_incast: bool = False
    query_id: Optional[int] = None
    retransmissions: int = 0
    coflow_id: Optional[int] = None

    @property
    def completed(self) -> bool:
        return self.end_ns is not None

    @property
    def fct_ns(self) -> Optional[int]:
        return None if self.end_ns is None else self.end_ns - self.start_ns


@dataclass
class QueryRecord:
    query_id: int
    client: int
    start_ns: int
    n_flows: int
    flows_done: int = 0
    end_ns: Optional[int] = None

    @property
    def completed(self) -> bool:
        return self.end_ns is not None

    @property
    def qct_ns(self) -> Optional[int]:
        return None if self.end_ns is None else self.end_ns - self.start_ns


@dataclass
class CoflowRecord:
    """One coflow: every flow of every stage of one shuffle job.

    ``n_flows`` counts the flows of *all* stages (known up front from
    the spec), so the coflow completes — and its CCT is taken — when the
    last flow of the last stage finishes.
    """

    coflow_id: int
    start_ns: int
    n_flows: int
    stages: int
    flows_done: int = 0
    end_ns: Optional[int] = None

    @property
    def completed(self) -> bool:
        return self.end_ns is not None

    @property
    def cct_ns(self) -> Optional[int]:
        return None if self.end_ns is None else self.end_ns - self.start_ns


class MetricsCollector:
    """Shared sink for all measurements of a single simulation run."""

    def __init__(self) -> None:
        self.counters = NetworkCounters()
        self.flows: Dict[int, FlowRecord] = {}
        self.queries: Dict[int, QueryRecord] = {}
        self.coflows: Dict[int, CoflowRecord] = {}
        # Measurement window [start, end); end=None means unbounded.
        self.window_start = 0
        self.window_end: Optional[int] = None

    def set_window(self, start_ns: int, end_ns: Optional[int]) -> None:
        """Restrict every summary statistic to records whose *start*
        falls in ``[start_ns, end_ns)`` — the warmup/cooldown exclusion
        of duty-cycle-style sweeps."""
        if end_ns is not None and end_ns <= start_ns:
            raise ValueError("measurement window must be non-empty")
        self.window_start = start_ns
        self.window_end = end_ns

    def _in_window(self, start_ns: int) -> bool:
        if start_ns < self.window_start:
            return False
        return self.window_end is None or start_ns < self.window_end

    def count_wire_drop(self, packet, reason: str) -> None:
        """Account one on-the-wire loss (``Link.on_drop`` hook)."""
        self.counters.drops[reason] += 1
        self.counters.class_drops[(packet.pclass, reason)] += 1

    # -- flow lifecycle ----------------------------------------------------

    def flow_started(self, flow_id: int, src: int, dst: int, size: int,
                     start_ns: int, *, is_incast: bool = False,
                     query_id: Optional[int] = None,
                     coflow_id: Optional[int] = None) -> FlowRecord:
        record = FlowRecord(flow_id=flow_id, src=src, dst=dst, size=size,
                            start_ns=start_ns, is_incast=is_incast,
                            query_id=query_id, coflow_id=coflow_id)
        self.flows[flow_id] = record
        if _TRACE is not None:
            _TRACE.flow_start(start_ns, flow_id, src, dst, size, is_incast,
                              query_id)
        return record

    def flow_progress(self, flow_id: int, delivered_bytes: int) -> None:
        self.flows[flow_id].bytes_delivered = delivered_bytes

    def flow_completed(self, flow_id: int, end_ns: int) -> None:
        record = self.flows.get(flow_id)
        if record is None or record.end_ns is not None:
            # Unregistered flows (endpoints used standalone, without the
            # experiment runner) complete silently.
            return
        record.end_ns = end_ns
        record.bytes_delivered = record.size
        if _TRACE is not None:
            _TRACE.flow_end(end_ns, flow_id, record.fct_ns)
        if record.query_id is not None:
            query = self.queries[record.query_id]
            query.flows_done += 1
            if query.flows_done == query.n_flows and query.end_ns is None:
                query.end_ns = end_ns
                if _TRACE is not None:
                    _TRACE.query_end(end_ns, query.query_id, query.qct_ns)
        if record.coflow_id is not None:
            coflow = self.coflows[record.coflow_id]
            coflow.flows_done += 1
            if coflow.flows_done == coflow.n_flows and coflow.end_ns is None:
                coflow.end_ns = end_ns
                if _TRACE is not None:
                    _TRACE.coflow_end(end_ns, coflow.coflow_id,
                                      coflow.cct_ns)

    # -- query lifecycle ----------------------------------------------------

    def query_started(self, query_id: int, client: int, start_ns: int,
                      n_flows: int) -> QueryRecord:
        record = QueryRecord(query_id=query_id, client=client,
                             start_ns=start_ns, n_flows=n_flows)
        self.queries[query_id] = record
        if _TRACE is not None:
            _TRACE.query_start(start_ns, query_id, client, n_flows)
        return record

    # -- coflow lifecycle ----------------------------------------------------

    def coflow_started(self, coflow_id: int, start_ns: int, n_flows: int,
                       stages: int, pattern: str = "shuffle") -> CoflowRecord:
        record = CoflowRecord(coflow_id=coflow_id, start_ns=start_ns,
                              n_flows=n_flows, stages=stages)
        self.coflows[coflow_id] = record
        if _TRACE is not None:
            _TRACE.coflow_start(start_ns, coflow_id, pattern, n_flows,
                                stages)
        return record

    # -- summaries -----------------------------------------------------------

    def _fcts_s(self, *, incast_only: bool = False,
                background_only: bool = False,
                max_size: Optional[int] = None,
                min_size: Optional[int] = None) -> List[float]:
        values = []
        for flow in self.flows.values():
            if not flow.completed:
                continue
            if not self._in_window(flow.start_ns):
                continue
            if incast_only and not flow.is_incast:
                continue
            if background_only and flow.is_incast:
                continue
            if max_size is not None and flow.size > max_size:
                continue
            if min_size is not None and flow.size < min_size:
                continue
            # Reporting boundary: FCTs leave the simulator as float
            # seconds, the unit the paper's figures use.
            values.append(flow.fct_ns / SECOND)  # noqa: VR003
        return values

    def mean_fct_s(self, **filters) -> float:
        return mean(self._fcts_s(**filters))

    def p99_fct_s(self, **filters) -> float:
        return percentile(self._fcts_s(**filters), 99)

    def fct_samples_s(self, **filters) -> List[float]:
        return self._fcts_s(**filters)

    def _qcts_s(self) -> List[float]:
        # Reporting boundary: QCTs leave the simulator as float seconds.
        return [query.qct_ns / SECOND  # noqa: VR003
                for query in self.queries.values()
                if query.completed and self._in_window(query.start_ns)]

    def mean_qct_s(self) -> float:
        return mean(self._qcts_s())

    def p99_qct_s(self) -> float:
        return percentile(self._qcts_s(), 99)

    def qct_samples_s(self) -> List[float]:
        return self._qcts_s()

    def _ccts_s(self) -> List[float]:
        # Reporting boundary: CCTs leave the simulator as float seconds.
        return [coflow.cct_ns / SECOND  # noqa: VR003
                for coflow in self.coflows.values()
                if coflow.completed and self._in_window(coflow.start_ns)]

    def mean_cct_s(self) -> float:
        return mean(self._ccts_s())

    def p99_cct_s(self) -> float:
        return percentile(self._ccts_s(), 99)

    def cct_samples_s(self) -> List[float]:
        return self._ccts_s()

    def flow_completion_pct(self) -> float:
        flows = [flow for flow in self.flows.values()
                 if self._in_window(flow.start_ns)]
        if not flows:
            return math.nan
        done = sum(1 for flow in flows if flow.completed)
        return 100.0 * done / len(flows)

    def query_completion_pct(self) -> float:
        queries = [query for query in self.queries.values()
                   if self._in_window(query.start_ns)]
        if not queries:
            return math.nan
        done = sum(1 for query in queries if query.completed)
        return 100.0 * done / len(queries)

    def coflow_completion_pct(self) -> float:
        coflows = [coflow for coflow in self.coflows.values()
                   if self._in_window(coflow.start_ns)]
        if not coflows:
            return math.nan
        done = sum(1 for coflow in coflows if coflow.completed)
        return 100.0 * done / len(coflows)

    def goodput_bps(self, duration_ns: int, *,
                    min_size: Optional[int] = None) -> float:
        """Application-level delivered bytes per second.

        With a measurement window set, only flows started inside the
        window contribute and the window span replaces ``duration_ns``.
        """
        if self.window_end is not None:
            duration_ns = self.window_end - self.window_start
        if duration_ns <= 0:
            return math.nan
        delivered = sum(
            flow.bytes_delivered for flow in self.flows.values()
            if (min_size is None or flow.size >= min_size)
            and self._in_window(flow.start_ns))
        # Reporting boundary: goodput leaves the simulator as float bits/s.
        return delivered * 8 * SECOND / duration_ns  # noqa: VR003
