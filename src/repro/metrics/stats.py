"""Small statistics helpers used by the metrics collector and benchmarks."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; NaN for an empty input (plots show a gap)."""
    total = 0.0
    count = 0
    for value in values:
        total += value
        count += 1
    return total / count if count else math.nan


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile (same convention as numpy default).

    ``pct`` is in [0, 100].  NaN for an empty input.
    """
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    if not values:
        return math.nan
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    value = ordered[low] * (1 - frac) + ordered[high] * frac
    # Float interpolation may overshoot by one ulp; stay in range.
    return min(max(value, ordered[low]), ordered[high])


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, fraction <= value) points."""
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]
