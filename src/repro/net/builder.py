"""Network assembly: topology description → live simulated network.

Creates switches (with the queue flavour and forwarding policy the
evaluated system requires), hosts (with the stack composition), links in
both directions, and pre-populates every switch FIB with multipath
next-hop candidates (paper §3.2 assumes pre-populated forwarding tables).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.host.host import Host, HostStackConfig
from repro.metrics.collector import MetricsCollector
from repro.net.link import Link
from repro.net.queues import DropTailQueue, RankedQueue, SharedBufferPool
from repro.net.switch import DEFAULT_MAX_HOPS, Switch
from repro.net.topology import Topology
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import gbps, kb, usecs

PolicyFactory = Callable[[Switch, "RngRegistry"], object]


@dataclass(frozen=True)
class NetworkParams:
    """Physical-layer parameters (paper §4.1 defaults at full scale)."""

    host_rate_bps: int = gbps(10)
    fabric_rate_bps: int = gbps(40)
    host_link_delay_ns: int = usecs(1)
    fabric_link_delay_ns: int = usecs(1)
    buffer_bytes: int = kb(300)          # per-port buffer capacity
    ecn_threshold_bytes: Optional[int] = None
    max_hops: int = DEFAULT_MAX_HOPS
    #: Failure injection: independent per-delivery loss probability on
    #: every link (0 = perfect links, the default).
    link_loss_rate: float = 0.0
    #: Shared-buffer switches: Dynamic Threshold alpha.  None (default)
    #: keeps the paper's static per-port buffers; a value turns each
    #: switch's port buffers into one DT-managed shared pool of
    #: ``buffer_bytes x n_ports``.
    shared_buffer_alpha: Optional[float] = None

    def base_rtt_ns(self, mss_wire_bytes: int = 1500) -> int:
        """Unloaded host-to-host RTT across the fabric (worst case path).

        Two host links and up to four fabric links each way, counting
        serialization of a full-MSS packet at every hop plus the ACK path.
        """
        data_ser = (2 * mss_wire_bytes * 8 * 1_000_000_000
                    // self.host_rate_bps
                    + 4 * mss_wire_bytes * 8 * 1_000_000_000
                    // self.fabric_rate_bps)
        prop = 2 * (2 * self.host_link_delay_ns
                    + 4 * self.fabric_link_delay_ns)
        return data_ser + prop


class Network:
    """A fully wired simulated datacenter network."""

    def __init__(self, engine: Engine, topology: Topology,
                 params: NetworkParams, metrics: MetricsCollector) -> None:
        self.engine = engine
        self.topology = topology
        self.params = params
        self.metrics = metrics
        self.switches: Dict[str, Switch] = {}
        self.hosts: List[Host] = []

    def host(self, host_id: int) -> Host:
        return self.hosts[host_id]

    def all_switch_queues(self):
        for switch in self.switches.values():
            for port in switch.ports:
                yield switch.name, port.index, port.queue


def build_network(engine: Engine, topology: Topology, params: NetworkParams,
                  metrics: MetricsCollector, stack: HostStackConfig,
                  policy_factory: PolicyFactory, rng: RngRegistry,
                  use_ranked_queues: bool = False) -> Network:
    """Instantiate and wire the whole network."""
    network = Network(engine, topology, params, metrics)

    def count_link_loss(packet) -> None:
        metrics.counters.drops["link_loss"] += 1

    def make_link(rate_bps: int, delay_ns: int, dst, dst_port: int,
                  name: str) -> Link:
        if params.link_loss_rate > 0.0:
            return Link(engine, rate_bps, delay_ns, dst, dst_port,
                        loss_rate=params.link_loss_rate,
                        loss_rng=rng.stream(f"linkloss:{name}"),
                        on_loss=count_link_loss)
        return Link(engine, rate_bps, delay_ns, dst, dst_port)

    pools: Dict[str, SharedBufferPool] = {}

    def make_queue(switch_name: str):
        queue_cls = RankedQueue if use_ranked_queues else DropTailQueue
        pool = None
        if params.shared_buffer_alpha is not None:
            pool = pools.get(switch_name)
            if pool is None:
                # Start empty; every added port contributes its share.
                pool = SharedBufferPool(1, alpha=params.shared_buffer_alpha)
                pool.total_bytes = 0
                pools[switch_name] = pool
            pool.expand(params.buffer_bytes)
        return queue_cls(params.buffer_bytes,
                         ecn_threshold_bytes=params.ecn_threshold_bytes,
                         pool=pool)

    for name in topology.switch_names:
        network.switches[name] = Switch(engine, name, metrics.counters,
                                        max_hops=params.max_hops)

    for host_id in range(topology.n_hosts):
        network.hosts.append(Host(engine, host_id, stack, metrics))

    # (switch name, peer key) -> port index, where peer key is a switch
    # name or a host id.
    port_of: Dict[Tuple[str, object], int] = {}

    # Host access links.
    for host_id in range(topology.n_hosts):
        tor = network.switches[topology.host_tor(host_id)]
        host = network.hosts[host_id]
        port = tor.add_port(make_queue(tor.name), faces_switch=False)
        port_of[(tor.name, host_id)] = port
        tor.ports[port].attach(make_link(
            params.host_rate_bps, params.host_link_delay_ns, host, 0,
            f"{tor.name}->h{host_id}"))
        host.attach(make_link(
            params.host_rate_bps, params.host_link_delay_ns, tor, port,
            f"h{host_id}->{tor.name}"))

    # Fabric links (both directions of each cable).
    for name_a, name_b in topology.switch_adjacency:
        switch_a = network.switches[name_a]
        switch_b = network.switches[name_b]
        port_a = switch_a.add_port(make_queue(name_a), faces_switch=True)
        port_b = switch_b.add_port(make_queue(name_b), faces_switch=True)
        port_of[(name_a, name_b)] = port_a
        port_of[(name_b, name_a)] = port_b
        switch_a.ports[port_a].attach(make_link(
            params.fabric_rate_bps, params.fabric_link_delay_ns,
            switch_b, port_b, f"{name_a}->{name_b}"))
        switch_b.ports[port_b].attach(make_link(
            params.fabric_rate_bps, params.fabric_link_delay_ns,
            switch_a, port_a, f"{name_b}->{name_a}"))

    # FIBs: expand per-ToR next-hop names into per-host port candidates.
    next_hops = topology.next_hop_table()
    for host_id in range(topology.n_hosts):
        tor_name = topology.host_tor(host_id)
        for switch in network.switches.values():
            if switch.name == tor_name:
                switch.fib[host_id] = (port_of[(tor_name, host_id)],)
            else:
                names = next_hops[switch.name][tor_name]
                switch.fib[host_id] = tuple(
                    port_of[(switch.name, name)] for name in names)

    for switch in network.switches.values():
        switch.policy = policy_factory(
            switch, rng.stream(f"policy:{switch.name}"))

    return network
