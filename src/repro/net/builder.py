"""Network assembly: topology description → live simulated network.

Creates switches (with the queue flavour and forwarding policy the
evaluated system requires), hosts (with the stack composition), links in
both directions, and pre-populates every switch FIB with multipath
next-hop candidates (paper §3.2 assumes pre-populated forwarding tables).

The built :class:`Network` is the *mutation surface* for runtime
rewiring (:mod:`repro.faults`): it registers every directed link and its
transmitting port under canonical endpoint labels (switch names, hosts
as ``h<id>``), tracks the set of dead cables, and recomputes every
switch FIB over the surviving edges on demand
(:meth:`Network.rebuild_routes`).  The topology object itself is never
mutated, so configs can share one across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.host.host import Host, HostStackConfig
from repro.metrics.collector import MetricsCollector
from repro.net.link import Link, Port
from repro.net.pfc import PfcConfig
from repro.net.queues import (
    ClassLaneQueue,
    DropTailQueue,
    RankedQueue,
    SharedBufferPool,
)
from repro.net.switch import DEFAULT_MAX_HOPS, Switch
from repro.net.topology import Topology
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import gbps, kb, usecs

PolicyFactory = Callable[[Switch, "RngRegistry"], object]

#: Named RNG streams this module owns (checked by lint rule VR110);
#: trailing-colon entries declare per-entity stream-name prefixes.
RNG_STREAMS = ("linkloss:", "policy:")


def cable_key(a: str, b: str) -> Tuple[str, str]:
    """Canonical (sorted) endpoint pair naming a full-duplex cable."""
    return (a, b) if a <= b else (b, a)


def host_label(host_id: int) -> str:
    """The endpoint label hosts are registered under (``h<id>``)."""
    return f"h{host_id}"


@dataclass(frozen=True)
class NetworkParams:
    """Physical-layer parameters (paper §4.1 defaults at full scale)."""

    host_rate_bps: int = gbps(10)
    fabric_rate_bps: int = gbps(40)
    host_link_delay_ns: int = usecs(1)
    fabric_link_delay_ns: int = usecs(1)
    buffer_bytes: int = kb(300)          # per-port buffer capacity
    ecn_threshold_bytes: Optional[int] = None
    max_hops: int = DEFAULT_MAX_HOPS
    #: Failure injection: independent per-delivery loss probability on
    #: every link (0 = perfect links, the default).
    link_loss_rate: float = 0.0
    #: Shared-buffer switches: Dynamic Threshold alpha.  None (default)
    #: keeps the paper's static per-port buffers; a value turns each
    #: switch's port buffers into one DT-managed shared pool of
    #: ``buffer_bytes x n_ports``.
    shared_buffer_alpha: Optional[float] = None

    def base_rtt_ns(self, mss_wire_bytes: int = 1500) -> int:
        """Unloaded host-to-host RTT across the fabric (worst case path).

        Two host links and up to four fabric links each way, counting
        serialization of a full-MSS packet at every hop plus the ACK path.
        """
        data_ser = (2 * mss_wire_bytes * 8 * 1_000_000_000
                    // self.host_rate_bps
                    + 4 * mss_wire_bytes * 8 * 1_000_000_000
                    // self.fabric_rate_bps)
        prop = 2 * (2 * self.host_link_delay_ns
                    + 4 * self.fabric_link_delay_ns)
        return data_ser + prop


class Network:
    """A fully wired simulated datacenter network.

    Beyond the device containers, the network carries the runtime
    rewiring state: ``links`` maps each *directed* channel (keyed
    ``(src_label, dst_label)``) to its :class:`~repro.net.link.Link`,
    ``tx_ports`` maps the same key to the transmitting
    :class:`~repro.net.link.Port`, ``port_of`` maps ``(switch name, peer
    key)`` to the egress port index the builder wired, and
    ``dead_cables`` is the live set of failed cables routes are computed
    around.
    """

    def __init__(self, engine: Engine, topology: Topology,
                 params: NetworkParams, metrics: MetricsCollector) -> None:
        self.engine = engine
        self.topology = topology
        self.params = params
        self.metrics = metrics
        self.switches: Dict[str, Switch] = {}
        self.hosts: List[Host] = []
        self.links: Dict[Tuple[str, str], Link] = {}
        self.tx_ports: Dict[Tuple[str, str], Port] = {}
        self.port_of: Dict[Tuple[str, object], int] = {}
        self.dead_cables: Set[Tuple[str, str]] = set()
        #: Installed fidelity controller, or None (pure packet mode;
        #: see repro.net.fidelity).
        self.fidelity = None
        #: Installed PFC controller, or None (see repro.net.pfc).
        self.pfc = None

    def host(self, host_id: int) -> Host:
        return self.hosts[host_id]

    def all_switch_queues(self):
        for switch in self.switches.values():
            for port in switch.ports:
                yield switch.name, port.index, port.queue

    # -- runtime rewiring ------------------------------------------------------

    def cable_links(self, a: str, b: str) -> Tuple[Link, Link]:
        """Both directed links of the cable between endpoints ``a``/``b``."""
        try:
            return self.links[(a, b)], self.links[(b, a)]
        except KeyError:
            raise ValueError(
                f"no cable between {a!r} and {b!r}; endpoints are switch "
                f"names or h<id> host labels") from None

    def set_cable_state(self, a: str, b: str, up: bool) -> None:
        """Cut or restore the full-duplex cable ``a``–``b``.

        Cutting a switch-switch cable removes it from the live edge set
        and recomputes every FIB; cutting a host access cable only stops
        its traffic (routes to the host's ToR are unaffected).  Restoring
        re-kicks both transmit loops so held queues drain immediately.
        """
        forward, backward = self.cable_links(a, b)
        forward.set_up(up)
        backward.set_up(up)
        if self.fidelity is not None:
            self.fidelity.on_fault(a, b)
        key = cable_key(a, b)
        if a in self.switches and b in self.switches:
            if up:
                self.dead_cables.discard(key)
            else:
                self.dead_cables.add(key)
            self.rebuild_routes()
        if up:
            self.tx_ports[(a, b)].kick()
            self.tx_ports[(b, a)].kick()

    def set_cable_rate(self, a: str, b: str, rate_bps: int) -> None:
        """Degrade/restore both directions of a cable to ``rate_bps``."""
        forward, backward = self.cable_links(a, b)
        forward.set_rate(rate_bps)
        backward.set_rate(rate_bps)
        if self.fidelity is not None:
            self.fidelity.on_fault(a, b)

    def set_cable_loss(self, a: str, b: str, loss_rate: float,
                       loss_rng=None) -> None:
        """Impose (or heal, with 0) corruption loss on both directions."""
        forward, backward = self.cable_links(a, b)
        forward.set_loss(loss_rate, loss_rng)
        backward.set_loss(loss_rate, loss_rng)
        if self.fidelity is not None:
            self.fidelity.on_fault(a, b)

    def rebuild_routes(self, strict: bool = False) -> None:
        """Recompute every switch FIB over the live (non-dead) edge set.

        BFS runs from each ToR excluding ``dead_cables``; switches that
        lose all paths to a ToR get empty candidate tuples, which the
        forwarding policies turn into ``no_route`` drops.  Every switch
        is then told its topology changed so memoized flow-hash and
        deflection decisions are re-derived against the new FIBs.
        """
        topology = self.topology
        next_hops = topology.next_hop_table(exclude=self.dead_cables,
                                            strict=strict)
        port_of = self.port_of
        for host_id in range(topology.n_hosts):
            tor_name = topology.host_tor(host_id)
            for switch in self.switches.values():
                if switch.name == tor_name:
                    switch.fib[host_id] = (port_of[(tor_name, host_id)],)
                else:
                    names = next_hops[switch.name][tor_name]
                    switch.fib[host_id] = tuple(
                        port_of[(switch.name, name)] for name in names)
        for switch in self.switches.values():
            switch.topology_changed()
        if self.fidelity is not None:
            self.fidelity.on_topology_change()


def build_network(engine: Engine, topology: Topology, params: NetworkParams,
                  metrics: MetricsCollector, stack: HostStackConfig,
                  policy_factory: PolicyFactory, rng: RngRegistry,
                  use_ranked_queues: bool = False,
                  pfc: Optional[PfcConfig] = None) -> Network:
    """Instantiate and wire the whole network."""
    network = Network(engine, topology, params, metrics)
    pfc_configured = pfc is not None and pfc.configured
    if pfc_configured and params.shared_buffer_alpha is not None:
        raise ValueError(
            "PFC/priority lanes and shared-buffer (DT) switches are "
            "mutually exclusive: PFC accounts buffers at the ingress, "
            "DT at a shared egress pool")

    # Bound method (picklable): every Link retains it as on_drop, and
    # links ride in checkpoints.
    count_wire_drop = metrics.count_wire_drop

    def make_link(rate_bps: int, delay_ns: int, dst, dst_port: int,
                  name: str) -> Link:
        if params.link_loss_rate > 0.0:
            return Link(engine, rate_bps, delay_ns, dst, dst_port,
                        loss_rate=params.link_loss_rate,
                        loss_rng=rng.stream(f"linkloss:{name}"),
                        on_drop=count_wire_drop, label=name)
        return Link(engine, rate_bps, delay_ns, dst, dst_port,
                    on_drop=count_wire_drop, label=name)

    pools: Dict[str, SharedBufferPool] = {}

    # Per-lane egress capacity.  With PFC *enabled* the egress queues
    # are effectively unbounded: every resident packet is charged to an
    # ingress gate, so total occupancy is bounded by the sum of gate
    # capacities and the only loss point is gate admission
    # (``pfc_headroom``).  Priority lanes without PFC split the port
    # buffer evenly instead.
    num_lanes = pfc.num_classes if pfc_configured else 1
    if pfc is not None and pfc.enabled:
        lane_capacity = 1 << 60
    elif num_lanes > 1:
        lane_capacity = params.buffer_bytes // num_lanes
    else:
        lane_capacity = params.buffer_bytes

    def make_queue(switch_name: str):
        queue_cls = RankedQueue if use_ranked_queues else DropTailQueue
        pool = None
        if params.shared_buffer_alpha is not None:
            pool = pools.get(switch_name)
            if pool is None:
                # Start empty; every added port contributes its share.
                pool = SharedBufferPool(1, alpha=params.shared_buffer_alpha)
                pool.total_bytes = 0
                pools[switch_name] = pool
            pool.expand(params.buffer_bytes)
        if num_lanes > 1:
            queue = ClassLaneQueue(
                queue_cls(lane_capacity,
                          ecn_threshold_bytes=params.ecn_threshold_bytes)
                for _ in range(num_lanes))
        else:
            queue = queue_cls(lane_capacity,
                              ecn_threshold_bytes=params.ecn_threshold_bytes,
                              pool=pool)
        queue.label = switch_name
        return queue

    for name in topology.switch_names:
        network.switches[name] = Switch(engine, name, metrics.counters,
                                        max_hops=params.max_hops)

    for host_id in range(topology.n_hosts):
        host = Host(engine, host_id, stack, metrics)
        if pfc_configured and any(pfc.priority_map):
            host.priority_map = pfc.priority_map
        network.hosts.append(host)

    # (switch name, peer key) -> port index, where peer key is a switch
    # name or a host id.
    port_of = network.port_of

    def register(src_label: str, dst_label: str, link: Link,
                 tx_port: Port) -> None:
        network.links[(src_label, dst_label)] = link
        network.tx_ports[(src_label, dst_label)] = tx_port

    # Host access links.
    for host_id in range(topology.n_hosts):
        tor = network.switches[topology.host_tor(host_id)]
        host = network.hosts[host_id]
        port = tor.add_port(make_queue(tor.name), faces_switch=False)
        port_of[(tor.name, host_id)] = port
        down_link = make_link(
            params.host_rate_bps, params.host_link_delay_ns, host, 0,
            f"{tor.name}->h{host_id}")
        tor.ports[port].attach(down_link)
        up_link = make_link(
            params.host_rate_bps, params.host_link_delay_ns, tor, port,
            f"h{host_id}->{tor.name}")
        host.attach(up_link)
        register(tor.name, host_label(host_id), down_link, tor.ports[port])
        register(host_label(host_id), tor.name, up_link, host.nic)

    # Fabric links (both directions of each cable).
    for name_a, name_b in topology.switch_adjacency:
        switch_a = network.switches[name_a]
        switch_b = network.switches[name_b]
        port_a = switch_a.add_port(make_queue(name_a), faces_switch=True)
        port_b = switch_b.add_port(make_queue(name_b), faces_switch=True)
        port_of[(name_a, name_b)] = port_a
        port_of[(name_b, name_a)] = port_b
        link_ab = make_link(
            params.fabric_rate_bps, params.fabric_link_delay_ns,
            switch_b, port_b, f"{name_a}->{name_b}")
        link_ba = make_link(
            params.fabric_rate_bps, params.fabric_link_delay_ns,
            switch_a, port_a, f"{name_b}->{name_a}")
        switch_a.ports[port_a].attach(link_ab)
        switch_b.ports[port_b].attach(link_ba)
        register(name_a, name_b, link_ab, switch_a.ports[port_a])
        register(name_b, name_a, link_ba, switch_b.ports[port_b])

    # FIBs: expand per-ToR next-hop names into per-host port candidates.
    # Build-time wiring is strict: an unreachable ToR is a config error.
    network.rebuild_routes(strict=True)

    for switch in network.switches.values():
        switch.policy = policy_factory(
            switch, rng.stream(f"policy:{switch.name}"))

    return network
