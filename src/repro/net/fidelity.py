"""Per-link fidelity controller: analytic fast path for quiet links.

Most links in an incast experiment are uncongested most of the time, so
their per-packet events are pure overhead — only the incast downlink and
deflection neighbourhoods need packet fidelity.  The controller keeps a
two-point mode lattice per *directed* link:

- **flow (analytic)** — flows whose entire path is analytic skip the
  dataplane: each congestion window round collapses into a single
  completion event whose latency is computed (integer ns throughout)
  from per-hop link rates, propagation delays, current queue occupancy,
  and the number of analytic rounds concurrently in flight on each
  link (the fair-share bottleneck).
- **packet** — today's full store-and-forward path, unchanged.

Links start analytic and *demote* to packet mode when touched by
congestion or failure signals (share count at or above the threshold,
queue depth at or above the ECN/buffer threshold, a deflection, an ECN
mark, a wire drop, or a fault); in ``hybrid`` mode a periodic epoch tick
*promotes* a demoted link back once it has been quiet for a full epoch
(empty queue, idle transmitter, few shares, utilization below the
threshold).  Links touched by fault injection are **pinned** to packet
mode for the rest of the run.

Boundary-conversion invariants (what keeps digests deterministic):

- Mode only gates *eligibility*: packets in flight always complete
  normally, and an analytic round, once scheduled, always runs to its
  completion event (mirroring packets committed to the wire).  Flows
  convert between modes only at round boundaries, when no bytes are
  outstanding, so there is never partial in-flight state to translate.
- A flow enters analytic mode only when every link on its (deterministic
  flow-hashed) path is analytic and unpinned; any demotion on the path
  converts it back to packets at its next round boundary.
- All transition triggers are simulation events, all thresholds are
  integers, and all latency arithmetic is integer nanoseconds, so a
  fixed config yields a fixed event sequence and a fixed digest.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.checkpoint.protocol import Snapshot
from repro.net.packet import ACK_WIRE_BYTES
from repro.trace import hooks as _trace_hooks

_TRACE = _trace_hooks.register(__name__)

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.builder import Network
    from repro.net.link import Link, Port
    from repro.sim.engine import Engine

FIDELITY_MODES = ("packet", "flow", "hybrid")

#: Knuth multiplicative hash constant; picks one FIB candidate per flow
#: deterministically (mirrors the flow-hash idea the policies use).
_PATH_HASH = 2654435761

#: Safety bound on analytic path resolution (matches the dataplane's
#: deflection hop budget in spirit; shortest paths are far shorter).
_MAX_PATH_HOPS = 64


@dataclass(frozen=True)
class FidelityConfig:
    """Fidelity policy block — every field is a digest input.

    ``mode`` selects the engine: ``packet`` (no controller, today's
    behaviour), ``flow`` (links never demote except by fault pinning),
    or ``hybrid`` (demote on congestion signals, promote after a quiet
    epoch).  Thresholds of 0 mean "auto": resolved deterministically
    from the network parameters when the controller is installed.
    """

    mode: str = "packet"
    #: Demote a link once this many concurrent flows share it.  Moderate
    #: fan-in (the paper's incast degree included, and overlapping
    #: queries) is *modelled* by the analytic fair share; this trigger
    #: is for pathological convergence beyond what deflection absorbs,
    #: where the fair-share model stops tracking the loss tail.  The
    #: default is ~5x the paper's incast degree; lower it for systems
    #: without burst absorption (e.g. plain ECMP baselines).
    demote_shares: int = 64
    #: Demote on queue depth >= this many bytes (0 = auto: the ECN
    #: threshold if configured, else a quarter of the port buffer).
    demote_queue_bytes: int = 0
    #: Promotion epoch length (0 = auto: max(1 ms, 8 x base RTT)).
    promote_epoch_ns: int = 0
    #: Promote only when epoch utilization is at or below this (0-1000).
    promote_util_permille: int = 400

    def __post_init__(self) -> None:
        if self.mode not in FIDELITY_MODES:
            raise ValueError(
                f"fidelity mode must be one of {FIDELITY_MODES}, "
                f"got {self.mode!r}")
        if self.demote_shares < 1:
            raise ValueError("demote_shares must be >= 1")
        if self.demote_queue_bytes < 0:
            raise ValueError("demote_queue_bytes cannot be negative")
        if self.promote_epoch_ns < 0:
            raise ValueError("promote_epoch_ns cannot be negative")
        if not 0 <= self.promote_util_permille <= 1000:
            raise ValueError("promote_util_permille must be in [0, 1000]")

    @property
    def active(self) -> bool:
        return self.mode != "packet"

    def digest_view(self) -> Tuple:
        """The canonical tuple fed into the run digest."""
        return (self.mode, self.demote_shares, self.demote_queue_bytes,
                self.promote_epoch_ns, self.promote_util_permille)


class _LinkState:
    """Controller-side state for one directed link."""

    __slots__ = ("port", "analytic", "pinned", "shares", "active",
                 "analytic_since", "analytic_ns", "last_epoch_bytes",
                 "cascade_noted")

    def __init__(self, port: "Port") -> None:
        self.port = port
        self.analytic = True
        self.pinned = False
        #: Has this link already been counted against the demotion-
        #: cascade envelope?  (One count and one warning per link.)
        self.cascade_noted = False
        #: Registered (adopted, not yet stopped) flows routed over the
        #: link — the fan-in signal the shares demotion trigger reads.
        self.shares = 0
        #: Committed analytic rounds currently in flight across the
        #: link — the concurrency that sets the fair-share bottleneck.
        self.active = 0
        self.analytic_since = 0
        self.analytic_ns = 0
        self.last_epoch_bytes = 0


class _FlowPath:
    """The resolved directed-link path of one adopted flow."""

    __slots__ = ("path", "generation", "round_path")

    def __init__(self, path: Tuple["Link", ...], generation: int) -> None:
        self.path = path
        self.generation = generation
        #: The path claimed by the round in flight (released when the
        #: round completes), or None.  Kept separately from ``path`` so
        #: a mid-round topology refresh cannot unbalance the counters.
        self.round_path: Optional[Tuple["Link", ...]] = None


#: A link whose share count reaches this multiple of ``demote_shares``
#: is in demotion-cascade territory: fan-in far beyond the documented
#: envelope (see ROADMAP item 1 / benchmarks/test_paper_scale.py), where
#: hybrid mode silently degrades toward all-packet fidelity.
CASCADE_ENVELOPE_FACTOR = 5


class FidelityController(Snapshot):
    """Owns per-link modes, flow adoption, and the promotion epoch."""

    SNAPSHOT_ATTRS = ("engine", "network", "config", "_hybrid", "_state",
                      "_flows", "_generation", "_epoch_handle",
                      "demote_queue_bytes", "promote_epoch_ns",
                      "standing_queue_bytes", "demotions", "promotions",
                      "pinned", "analytic_rounds", "analytic_flows",
                      "cascade_links", "_cascade_warned")

    def __init__(self, engine: "Engine", network: "Network",
                 config: FidelityConfig) -> None:
        if not config.active:
            raise ValueError("packet mode does not build a controller")
        self.engine = engine
        self.network = network
        self.config = config
        self._hybrid = config.mode == "hybrid"
        self._state: Dict["Link", _LinkState] = {}
        self._flows: Dict[int, _FlowPath] = {}
        self._generation = 0
        self._epoch_handle = None
        # Resolved thresholds (filled by install()).
        self.demote_queue_bytes = config.demote_queue_bytes
        self.promote_epoch_ns = config.promote_epoch_ns
        #: Modelled steady-state occupancy of a contended queue (the
        #: ECN marking point DCTCP regulates around); resolved from the
        #: network parameters by install().
        self.standing_queue_bytes = 0
        # Aggregate transition/usage counters (all digest-safe integers).
        self.demotions = 0
        self.promotions = 0
        self.pinned = 0
        self.analytic_rounds = 0
        self.analytic_flows = 0
        #: Links seen beyond the demotion-cascade envelope
        #: (``CASCADE_ENVELOPE_FACTOR x demote_shares`` concurrent
        #: shares).  Deliberately *not* part of :meth:`summary` — the
        #: summary is a digest input and this telemetry counter must not
        #: change run identity.
        self.cascade_links = 0
        self._cascade_warned = False

    # -- installation ---------------------------------------------------------

    def install(self) -> None:
        """Wire the controller into every link, switch, and queue."""
        network = self.network
        params = network.params
        if self.demote_queue_bytes == 0:
            self.demote_queue_bytes = (params.ecn_threshold_bytes
                                       or params.buffer_bytes // 4)
        self.standing_queue_bytes = (params.ecn_threshold_bytes
                                     or params.buffer_bytes // 4)
        if self.promote_epoch_ns == 0:
            self.promote_epoch_ns = max(1_000_000, 8 * params.base_rtt_ns())
        for key, link in network.links.items():
            port = network.tx_ports[key]
            self._state[link] = _LinkState(port)
            link.fidelity = self
            port.queue.mark_hook = partial(self.on_ecn_mark, link)
        for switch in network.switches.values():
            switch.fidelity = self
        network.fidelity = self
        if self._hybrid:
            self._epoch_handle = self.engine.schedule_every(
                self.promote_epoch_ns, self._on_epoch)

    # -- flow adoption --------------------------------------------------------

    def adopt(self, sender) -> None:
        """Register a starting flow: resolve its path and claim shares."""
        path = self._resolve_path(sender.host.host_id, sender.dst,
                                  sender.flow_id)
        if path is None:
            return
        self._flows[sender.flow_id] = _FlowPath(path, self._generation)
        for link in path:
            state = self._state[link]
            state.shares += 1
            if state.shares >= self.config.demote_shares:
                self._demote(link, "shares")
                self._check_cascade(link, state)
        sender.fidelity = self

    def flow_stopped(self, sender) -> None:
        """Release the flow's shares (idempotent)."""
        flow = self._flows.pop(sender.flow_id, None)
        if flow is None:
            return
        for link in flow.path:
            self._state[link].shares -= 1
        if flow.round_path is not None:
            for link in flow.round_path:
                self._state[link].active -= 1
            flow.round_path = None

    def flow_analytic(self, sender) -> bool:
        """True iff the flow may run its next round analytically."""
        flow = self._flows.get(sender.flow_id)
        if flow is None:
            return False
        if flow.generation != self._generation:
            if not self._refresh_path(sender, flow):
                return False
        state = self._state
        for link in flow.path:
            if not state[link].analytic:
                return False
        return True

    def _refresh_path(self, sender, flow: _FlowPath) -> bool:
        """Re-resolve a path invalidated by a topology change."""
        path = self._resolve_path(sender.host.host_id, sender.dst,
                                  sender.flow_id)
        if path is None:
            # No surviving route: the flow falls back to packets (where
            # the dataplane turns it into no_route drops and an abort).
            self.flow_stopped(sender)
            sender.fidelity = None
            return False
        if path != flow.path:
            for link in flow.path:
                self._state[link].shares -= 1
            for link in path:
                state = self._state[link]
                state.shares += 1
                if state.shares >= self.config.demote_shares:
                    self._demote(link, "shares")
                    self._check_cascade(link, state)
            flow.path = path
        flow.generation = self._generation
        return True

    def _resolve_path(self, src: int, dst: int,
                      flow_id: int) -> Optional[Tuple["Link", ...]]:
        """Walk the FIBs from src to dst picking one flow-hashed branch."""
        link = self.network.hosts[src].nic.link
        if link is None:
            return None
        path = [link]
        node = link.dst
        hops = 0
        while hasattr(node, "fib"):
            candidates = node.fib.get(dst, ())
            if not candidates:
                return None
            index = (flow_id * _PATH_HASH) % len(candidates)
            link = node.ports[candidates[index]].link
            if link is None:
                return None
            path.append(link)
            node = link.dst
            hops += 1
            if hops > _MAX_PATH_HOPS:
                return None
        return tuple(path)

    # -- analytic round timing ------------------------------------------------

    def analytic_round_ns(self, sender, round_wire_bytes: int,
                          first_wire_bytes: int,
                          pipelined: bool) -> Tuple[int, int]:
        """(round completion, single-packet RTT) latencies, integer ns.

        The RTT term pipelines one full packet across every hop (store
        and forward), drains the queue bytes currently occupying each
        hop, and returns an ACK over the same hops (the reverse channel
        of every cable is rate/delay symmetric); the serialization term
        drains the window's wire bytes at the flow's bottleneck fair
        share ``min(rate // active_rounds)``.

        Fair share divides by the rounds *in flight* on each link (this
        one included), not by registered flows: a flow between rounds
        consumes no capacity, and counting it would starve long flows
        the way an idle reservation would.  The claim is released by
        :meth:`round_finished` when the round's completion event fires.

        The round completion is ``rtt + serialization`` for the first
        round of a contiguous analytic stretch (the pipe starts empty)
        but ``max(rtt, serialization)`` once ``pipelined``: a sliding
        window overlaps successive rounds, so a backlogged flow delivers
        continuously at its share (serialization-limited) and a
        window-limited flow turns one window per RTT — charging the
        pipe-refill RTT on every round would underestimate throughput
        by ~one RTT per window.
        """
        flow = self._flows[sender.flow_id]
        state = self._state
        rtt_ns = 0
        bottleneck_bps = 0
        standing = self.standing_queue_bytes
        for link in flow.path:
            link_state = state[link]
            link_state.active += 1
            rate = link.rate_bps
            rtt_ns += 2 * link.delay_ns
            rtt_ns += ((first_wire_bytes + ACK_WIRE_BYTES)
                       * 8 * 1_000_000_000) // rate
            queue_bytes = link_state.port.queue.bytes
            if link_state.active > 1:
                # DCTCP-style control holds a contended queue near the
                # marking threshold; charge that standing occupancy on
                # hops where rounds actually overlap.
                queue_bytes += standing
            rtt_ns += (queue_bytes * 8 * 1_000_000_000) // rate
            share_bps = rate // link_state.active
            if bottleneck_bps == 0 or share_bps < bottleneck_bps:
                bottleneck_bps = share_bps
        flow.round_path = flow.path
        if bottleneck_bps < 1:
            bottleneck_bps = 1
        rest = round_wire_bytes - first_wire_bytes
        serial_ns = (rest * 8 * 1_000_000_000) // bottleneck_bps if rest > 0 \
            else 0
        if pipelined:
            round_ns = serial_ns if serial_ns > rtt_ns else rtt_ns
        else:
            round_ns = rtt_ns + serial_ns
        self.analytic_rounds += 1
        return round_ns, rtt_ns

    def round_finished(self, sender) -> None:
        """Release the bottleneck claim of a completed analytic round."""
        flow = self._flows.get(sender.flow_id)
        if flow is None or flow.round_path is None:
            return
        state = self._state
        for link in flow.round_path:
            state[link].active -= 1
        flow.round_path = None

    def deliver_analytic(self, flow_id: int, dst: int, end: int) -> None:
        """Advance the receiving endpoint past analytically-sent bytes."""
        receiver = self.network.hosts[dst].receivers.get(flow_id)
        if receiver is None:
            return
        was_completed = receiver.completed
        receiver.on_analytic_bytes(end)
        if receiver.completed and not was_completed:
            self.analytic_flows += 1

    # -- demotion triggers (dataplane hooks) ----------------------------------

    def on_enqueue(self, port: "Port") -> None:
        link = port.link
        state = self._state.get(link)
        if (state is not None and state.analytic
                and port.queue.bytes >= self.demote_queue_bytes):
            self._demote(link, "queue")

    def on_deflection(self, from_link: "Link", to_link: "Link") -> None:
        self._demote(from_link, "deflect")
        if to_link is not from_link:
            self._demote(to_link, "deflect")

    def on_ecn_mark(self, link: "Link") -> None:
        self._demote(link, "ecn")

    def on_wire_drop(self, link: "Link") -> None:
        self._demote(link, "drop")

    def on_pause(self, link: "Link") -> None:
        """A PFC PAUSE hit this link's transmitter (repro.net.pfc).

        A paused link demotes to packet fidelity like a faulted one —
        the analytic fair-share model has no notion of a held
        transmitter — but is not pinned: once traffic drains and the
        link goes quiet it can promote back (hybrid mode).
        """
        self._demote(link, "pause")

    def on_fault(self, a: str, b: str) -> None:
        """Pin both directions of a faulted cable to packet mode."""
        links = self.network.links
        for key in ((a, b), (b, a)):
            link = links.get(key)
            if link is None:
                continue
            state = self._state.get(link)
            if state is None:
                continue
            if not state.pinned:
                state.pinned = True
                self.pinned += 1
            self._demote(link, "fault")

    def on_topology_change(self) -> None:
        """Invalidate every adopted flow's cached path."""
        self._generation += 1

    def _check_cascade(self, link: "Link", state: _LinkState) -> None:
        """Count (once per link) fan-in beyond the cascade envelope.

        Incast fan-in past ``CASCADE_ENVELOPE_FACTOR x demote_shares``
        is the documented demotion-cascade regime: hybrid runs quietly
        collapse toward packet fidelity and lose their speedup.  Emit
        one process-level warning per run so paper-scale sweeps can see
        it, and keep a counter (``cascade_links``) outside every digest
        input for reports and manifests.
        """
        envelope = CASCADE_ENVELOPE_FACTOR * self.config.demote_shares
        if state.cascade_noted or state.shares < envelope:
            return
        state.cascade_noted = True
        self.cascade_links += 1
        if not self._cascade_warned:
            self._cascade_warned = True
            warnings.warn(
                f"fidelity demotion cascade: link {link.label} reached "
                f"{state.shares} concurrent shares, beyond the "
                f"~{CASCADE_ENVELOPE_FACTOR}x demote_shares envelope "
                f"({envelope}); hybrid mode is degrading to packet "
                f"fidelity on the incast neighbourhood — raise "
                f"demote_shares or accept packet fidelity for this point "
                f"(ROADMAP item 1)",
                RuntimeWarning, stacklevel=2)

    # -- mode transitions -----------------------------------------------------

    def _demote(self, link: "Link", why: str) -> None:
        if not self._hybrid and why not in ("fault", "pause"):
            return  # flow mode: only faults/pauses force packet fidelity
        state = self._state.get(link)
        if state is None or not state.analytic:
            return
        now = self.engine.now
        state.analytic = False
        state.analytic_ns += now - state.analytic_since
        self.demotions += 1
        if _TRACE is not None:
            _TRACE.fid_mode(now, link.label, "packet", why)

    def _promote(self, link: "Link") -> None:
        state = self._state[link]
        state.analytic = True
        state.analytic_since = self.engine.now
        self.promotions += 1
        if _TRACE is not None:
            _TRACE.fid_mode(self.engine.now, link.label, "flow", "quiet")

    def _on_epoch(self) -> None:
        """Promote every demoted link that stayed quiet this epoch."""
        demote_shares = self.config.demote_shares
        util_limit = self.config.promote_util_permille
        epoch_ns = self.promote_epoch_ns
        for link, state in self._state.items():
            port = state.port
            delta_bytes = port.bytes_sent - state.last_epoch_bytes
            state.last_epoch_bytes = port.bytes_sent
            if state.analytic or state.pinned:
                continue
            if state.shares >= demote_shares:
                continue
            if port.queue.bytes > 0 or port.busy:
                continue
            util_permille = (delta_bytes * 8 * 1000 * 1_000_000_000
                             // (link.rate_bps * epoch_ns))
            if util_permille <= util_limit:
                self._promote(link)

    # -- reporting ------------------------------------------------------------

    def link_mode_counts(self) -> Tuple[int, int]:
        """(analytic, packet) directed-link counts right now."""
        n_analytic = 0
        for state in self._state.values():
            if state.analytic:
                n_analytic += 1
        return n_analytic, len(self._state) - n_analytic

    def summary(self, now_ns: int) -> Dict[str, object]:
        """Residency and transition aggregates (all deterministic ints)."""
        total_analytic_ns = 0
        analytic_links = 0
        for state in self._state.values():
            span = state.analytic_ns
            if state.analytic:
                span += now_ns - state.analytic_since
                analytic_links += 1
            total_analytic_ns += span
        n_links = len(self._state)
        denominator = n_links * now_ns
        residency = (total_analytic_ns * 1000 // denominator
                     if denominator > 0 else 1000)
        return {
            "mode": self.config.mode,
            "links": n_links,
            "analytic_links_at_end": analytic_links,
            "analytic_residency_permille": residency,
            "demotions": self.demotions,
            "promotions": self.promotions,
            "pinned_links": self.pinned,
            "analytic_rounds": self.analytic_rounds,
            "analytic_flows_completed": self.analytic_flows,
        }
