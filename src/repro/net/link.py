"""Ports and links.

A :class:`Port` owns one output queue and one directed :class:`Link`.
Transmission is store-and-forward: when the port is idle and its queue is
non-empty, the head (or minimum-rank) packet is serialized for
``wire_bytes * 8 / rate`` and then delivered to the peer device after the
link's propagation delay.  A full-duplex cable between two devices is two
directed links.

Links carry runtime-mutable failure state for the fault-injection
subsystem (:mod:`repro.faults`):

- **up/down** — a down link transmits nothing: the owning port holds its
  queue (packets accumulate and overflow upstream by policy).  A packet
  *mid-serialization* at the down instant finishes serializing and is
  then dropped at the wire with reason ``link_down`` (its bits hit a dead
  cable); a packet already *propagating* (``deliver`` already scheduled)
  was committed to the wire before the cut and still arrives.
- **rate** — takes effect from the next serialization; the in-flight
  packet keeps the rate it started with.
- **corruption loss** — each delivery is independently dropped with the
  configured probability, drawn from the caller-supplied named RNG
  stream so digests stay reproducible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Protocol, Union

from repro.checkpoint.protocol import Snapshot
from repro.sim.engine import Engine
from repro.sim.units import transmission_delay_ns
from repro.trace import hooks as _trace_hooks

_TRACE = _trace_hooks.register(__name__)

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.net.queues import DropTailQueue, RankedQueue

    PortQueue = Union[DropTailQueue, RankedQueue]
    DropCallback = Callable[["Packet", str], None]


class Device(Protocol):
    """Anything that can terminate a link (switch or host)."""

    name: str

    def receive(self, packet, in_port: int) -> None: ...


class Link(Snapshot):
    """A directed channel delivering packets to a peer device's input.

    Failure injection: ``up`` gates delivery (see the module docstring
    for in-flight semantics); with ``loss_rate`` > 0 each delivery is
    independently corrupted (dropped) with that probability, modelling
    bit errors or a flaky cable.  Corruption losses are counted via
    ``on_loss`` (legacy single-purpose hook) and every wire drop —
    corruption or dead link — is reported to ``on_drop(packet, reason)``.
    """

    __slots__ = ("engine", "rate_bps", "delay_ns", "dst", "dst_port",
                 "loss_rate", "loss_rng", "on_loss", "on_drop", "losses",
                 "up", "label", "fidelity")

    SNAPSHOT_ATTRS = ("engine", "rate_bps", "delay_ns", "dst", "dst_port",
                      "loss_rate", "loss_rng", "on_loss", "on_drop",
                      "losses", "up", "label", "fidelity")

    def __init__(self, engine: Engine, rate_bps: int, delay_ns: int,
                 dst: Device, dst_port: int, *, loss_rate: float = 0.0,
                 loss_rng=None, on_loss=None,
                 on_drop: Optional["DropCallback"] = None,
                 label: str = "") -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay_ns < 0:
            raise ValueError("propagation delay cannot be negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        if loss_rate > 0.0 and loss_rng is None:
            raise ValueError("lossy links need a random stream")
        self.engine = engine
        self.rate_bps = rate_bps
        self.delay_ns = delay_ns
        self.dst = dst
        self.dst_port = dst_port
        self.loss_rate = loss_rate
        self.loss_rng = loss_rng
        self.on_loss = on_loss
        self.on_drop = on_drop
        self.losses = 0
        self.up = True
        #: Directed-channel name (``src->dst``), the trace identity for
        #: wire drops.  Stamped by the network builder.
        self.label = label
        #: Fidelity controller observing wire drops, or None (pure
        #: packet mode; see repro.net.fidelity).
        self.fidelity = None

    # -- runtime rewiring (fault injection) -----------------------------------

    def set_up(self, up: bool) -> None:
        """Raise or cut the link.  The owning port re-kicks itself on up."""
        self.up = up

    def set_rate(self, rate_bps: int) -> None:
        """Degrade (or restore) the link rate; next serialization uses it."""
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        self.rate_bps = rate_bps

    def set_loss(self, loss_rate: float, loss_rng=None) -> None:
        """Impose (or heal, with 0) a probabilistic corruption loss."""
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        if loss_rate > 0.0 and loss_rng is None and self.loss_rng is None:
            raise ValueError("lossy links need a random stream")
        self.loss_rate = loss_rate
        if loss_rng is not None:
            self.loss_rng = loss_rng

    # -- dataplane ------------------------------------------------------------

    def deliver(self, packet) -> None:
        """Schedule arrival at the peer after the propagation delay."""
        if not self.up:
            if self.on_drop is not None:
                self.on_drop(packet, "link_down")
            if self.fidelity is not None:
                self.fidelity.on_wire_drop(self)
            if _TRACE is not None and _TRACE.packets:
                _TRACE.pkt_drop(self.engine.now, self.label, "link_down",
                                packet)
            return
        if self.loss_rate > 0.0 \
                and self.loss_rng.random() < self.loss_rate:
            self.losses += 1
            if self.on_loss is not None:
                self.on_loss(packet)
            if self.on_drop is not None:
                self.on_drop(packet, "link_loss")
            if self.fidelity is not None:
                self.fidelity.on_wire_drop(self)
            if _TRACE is not None and _TRACE.packets:
                _TRACE.pkt_drop(self.engine.now, self.label, "link_loss",
                                packet)
            return
        self.engine.schedule_fast(self.delay_ns, self.dst.receive, packet,
                                  self.dst_port)


class Port(Snapshot):
    """An output port: queue + attached egress link + transmit loop."""

    __slots__ = ("engine", "owner", "index", "queue", "link", "busy",
                 "bytes_sent", "packets_sent", "_paused", "on_drain")

    # In-flight packets (scheduled ``_tx_done`` / ``deliver`` events)
    # live in the engine calendar alongside.
    SNAPSHOT_ATTRS = ("engine", "owner", "index", "queue", "link", "busy",
                      "bytes_sent", "packets_sent", "_paused", "on_drain")

    def __init__(self, engine: Engine, owner: Device, index: int,
                 queue: "PortQueue") -> None:
        self.engine = engine
        self.owner = owner
        self.index = index
        self.queue = queue
        self.link: Optional[Link] = None
        self.busy = False
        self.bytes_sent = 0
        self.packets_sent = 0
        #: PFC hold state: bitmask of paused priority classes (bit i set
        #: = class i held by a downstream PAUSE).  0 when PFC is off.
        self._paused = 0
        #: Called whenever a packet leaves the queue (bytes freed).  Only
        #: host NICs in lossless (PFC) mode set this, to wake transports
        #: parked by edge backpressure; None everywhere else.
        self.on_drain = None

    def attach(self, link: Link) -> None:
        self.link = link

    @property
    def peer(self) -> Optional[Device]:
        return self.link.dst if self.link is not None else None

    def enqueue(self, packet) -> None:
        """Enqueue a packet that is known to fit, and kick the transmitter."""
        self.queue.push(packet, self.engine.now)
        self._try_transmit()

    def occupancy_bytes(self) -> int:
        return self.queue.bytes

    def fits(self, packet) -> bool:
        return self.queue.fits(packet)

    def kick(self) -> None:
        """Restart the transmit loop (after a link comes back up)."""
        self._try_transmit()

    def pfc_hold(self, pclass: int, hold: bool) -> None:
        """PFC PAUSE/RESUME for one priority class (repro.net.pfc).

        A held class stays queued; on a port with a plain (laneless)
        queue any held class holds the whole port — documented
        head-of-line blocking at the host NIC edge, never a drop.
        """
        if hold:
            self._paused |= 1 << pclass
        else:
            self._paused &= ~(1 << pclass)
            self._try_transmit()

    def _try_transmit(self) -> None:
        if self.busy or self.link is None or not self.link.up \
                or not self.queue:
            return
        if self._paused:
            pop_unpaused = getattr(self.queue, "pop_unpaused", None)
            if pop_unpaused is None:
                return  # laneless queue: any held class holds the port
            packet = pop_unpaused(self._paused, self.engine.now)
            if packet is None:
                return  # every non-empty lane is held
        else:
            packet = self.queue.pop(self.engine.now)
        if _TRACE is not None and _TRACE.packets:
            _TRACE.pkt_dequeue(self.engine.now, self.owner.name, self.index,
                               packet)
        self.busy = True
        tx_delay = transmission_delay_ns(packet.wire_bytes,
                                         self.link.rate_bps)
        self.engine.schedule_fast(tx_delay, self._tx_done, packet)
        if self.on_drain is not None:
            self.on_drain()

    def _tx_done(self, packet) -> None:
        self.busy = False
        self.bytes_sent += packet.wire_bytes
        self.packets_sent += 1
        if packet.pfc_gate is not None:
            # Store-and-forward: the packet leaves this switch now, so
            # its PFC ingress-buffer charge is released (repro.net.pfc).
            packet.pfc_gate.release(packet)
        self.link.deliver(packet)
        self._try_transmit()
