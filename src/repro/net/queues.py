"""Byte-bounded output queues.

Two queue flavours back switch ports:

- :class:`DropTailQueue` — FIFO with optional ECN marking (DCTCP-style
  instantaneous threshold), used by ECMP / DRILL / DIBS switches.
- :class:`RankedQueue` — dequeues in ascending RFS order (SRPT) and
  additionally exposes the tail (largest-RFS) packet for Vertigo's
  displace-and-deflect operation.  Also supports ECN marking so Vertigo
  composes with DCTCP.

Both account occupancy in bytes against a fixed capacity (the paper uses
300 KB per port).  Overflow *policy* — drop, deflect, displace — is decided
by the forwarding policy in :mod:`repro.forwarding`; the queues only
report whether a packet fits.

:class:`ClassLaneQueue` composes N of either flavour into per-priority-
class lanes behind the same interface: ``push``/``fits`` route by the
packet's ``pclass``, ``pop`` serves lanes in strict priority order
(lane 0 first), and ``pop_unpaused`` additionally skips lanes held by
PFC PAUSE (:mod:`repro.net.pfc`).  A port owns a lane queue only when
the experiment configures more than one priority class, so the
single-class datapath is byte-identical to the plain queues.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.analysis import sanitize as _sanitize
from repro.checkpoint.protocol import Snapshot
from repro.core.scheduler import RankQueue
from repro.net.packet import Packet
from repro.trace import hooks as _trace_hooks

_SANITIZE = _sanitize.register(__name__)
_TRACE = _trace_hooks.register(__name__)


@dataclass
class QueueStats:
    """Counters accumulated over a queue's lifetime."""

    enqueued: int = 0
    dequeued: int = 0
    ecn_marked: int = 0
    max_bytes: int = 0
    # Time-weighted occupancy integral (byte·ns) for mean queue depth.
    occupancy_integral: int = 0
    last_change_ns: int = 0

    def record_occupancy(self, now_ns: int, bytes_now: int) -> None:
        self.occupancy_integral += bytes_now * (now_ns - self.last_change_ns)
        self.last_change_ns = now_ns


class SharedBufferPool(Snapshot):
    """Dynamic Threshold shared-buffer management (Choudhury–Hahne).

    The paper's switches use static per-port buffers; shared-memory
    switches instead let a port's queue grow up to
    ``alpha x (free shared memory)``.  The paper defers exploring buffer
    management (§5) — this pool implements the classic DT policy so the
    ablation benches can compare both regimes.
    """

    SNAPSHOT_ATTRS = ("total_bytes", "alpha", "used_bytes")

    def __init__(self, total_bytes: int, alpha: float = 1.0) -> None:
        if total_bytes <= 0:
            raise ValueError("shared buffer must be positive")
        if alpha <= 0:
            raise ValueError("DT alpha must be positive")
        self.total_bytes = total_bytes
        self.alpha = alpha
        self.used_bytes = 0

    @property
    def free_bytes(self) -> int:
        return self.total_bytes - self.used_bytes

    def threshold(self) -> float:
        """Current per-queue occupancy limit."""
        return self.alpha * self.free_bytes

    def admits(self, queue_bytes: int, packet_bytes: int) -> bool:
        if self.used_bytes + packet_bytes > self.total_bytes:
            return False
        return queue_bytes + packet_bytes <= self.threshold()

    def on_push(self, packet_bytes: int) -> None:
        self.used_bytes += packet_bytes

    def on_pop(self, packet_bytes: int) -> None:
        self.used_bytes -= packet_bytes

    def expand(self, extra_bytes: int) -> None:
        """Grow the pool (used while ports are added at build time)."""
        self.total_bytes += extra_bytes


class _BoundedQueue(Snapshot):
    """Shared byte accounting and ECN marking for both queue flavours."""

    SNAPSHOT_ATTRS = ("capacity_bytes", "ecn_threshold_bytes", "pool",
                      "bytes", "stats", "label", "mark_hook")

    def __init__(self, capacity_bytes: int,
                 ecn_threshold_bytes: Optional[int] = None,
                 pool: Optional[SharedBufferPool] = None) -> None:
        if capacity_bytes <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.pool = pool
        self.bytes = 0
        self.stats = QueueStats()
        #: Owning node name, stamped by the builder/host; trace identity.
        self.label = ""
        #: Fidelity demotion callback fired on each ECN mark, or None
        #: (pure packet mode; set by repro.net.fidelity).
        self.mark_hook = None

    def fits(self, packet: Packet) -> bool:
        if self.pool is not None:
            return self.pool.admits(self.bytes, packet.wire_bytes)
        return self.bytes + packet.wire_bytes <= self.capacity_bytes

    @property
    def free_bytes(self) -> int:
        if self.pool is not None:
            return max(0, min(round(self.pool.threshold()) - self.bytes,
                              self.pool.free_bytes))
        return self.capacity_bytes - self.bytes

    def _on_push(self, packet: Packet, now_ns: int) -> None:
        if (self.ecn_threshold_bytes is not None and packet.ecn_capable
                and self.bytes >= self.ecn_threshold_bytes):
            packet.ecn_ce = True
            self.stats.ecn_marked += 1
            if self.mark_hook is not None:
                self.mark_hook()
            if _TRACE is not None and _TRACE.packets:
                _TRACE.pkt_ecn(now_ns, self.label, packet)
        self.stats.record_occupancy(now_ns, self.bytes)
        self.bytes += packet.wire_bytes
        if self.pool is not None:
            self.pool.on_push(packet.wire_bytes)
        self.stats.enqueued += 1
        if self.bytes > self.stats.max_bytes:
            self.stats.max_bytes = self.bytes

    def _on_pop(self, packet: Packet, now_ns: int) -> None:
        self.stats.record_occupancy(now_ns, self.bytes)
        self.bytes -= packet.wire_bytes
        if self.pool is not None:
            self.pool.on_pop(packet.wire_bytes)
        self.stats.dequeued += 1

    def packets(self) -> List[Packet]:  # pragma: no cover - overridden
        raise NotImplementedError

    def _sanitize_check(self) -> None:
        """Byte-accounting invariants, recomputed from the live packets."""
        tracked = sum(p.wire_bytes for p in self.packets())
        _sanitize.check(tracked == self.bytes,
                        "queue byte accounting drifted: tracked bytes=%d "
                        "but enqueued packets sum to %d", self.bytes, tracked)
        _sanitize.check(self.bytes >= 0,
                        "queue occupancy went negative: %d", self.bytes)
        if self.pool is None:
            _sanitize.check(self.bytes <= self.capacity_bytes,
                            "queue occupancy %d exceeds capacity %d",
                            self.bytes, self.capacity_bytes)
        else:
            _sanitize.check(0 <= self.pool.used_bytes
                            <= self.pool.total_bytes,
                            "shared pool accounting broken: used=%d "
                            "total=%d", self.pool.used_bytes,
                            self.pool.total_bytes)


class DropTailQueue(_BoundedQueue):
    """FIFO output queue with optional DCTCP-style ECN marking."""

    SNAPSHOT_ATTRS = _BoundedQueue.SNAPSHOT_ATTRS + ("_fifo",)

    def __init__(self, capacity_bytes: int,
                 ecn_threshold_bytes: Optional[int] = None,
                 pool: Optional[SharedBufferPool] = None) -> None:
        super().__init__(capacity_bytes, ecn_threshold_bytes, pool)
        self._fifo: Deque[Packet] = deque()

    def push(self, packet: Packet, now_ns: int = 0) -> None:
        if not self.fits(packet):
            raise OverflowError("push to full DropTailQueue")
        self._on_push(packet, now_ns)
        self._fifo.append(packet)
        if _SANITIZE:
            self._sanitize_check()

    def pop(self, now_ns: int = 0) -> Packet:
        packet = self._fifo.popleft()
        self._on_pop(packet, now_ns)
        if _SANITIZE:
            self._sanitize_check()
        return packet

    def __len__(self) -> int:
        return len(self._fifo)

    def __bool__(self) -> bool:
        return bool(self._fifo)

    def packets(self) -> List[Packet]:
        return list(self._fifo)


class RankedQueue(_BoundedQueue):
    """SRPT output queue ordered by the packets' RFS rank."""

    SNAPSHOT_ATTRS = _BoundedQueue.SNAPSHOT_ATTRS + ("_ranked",)

    def __init__(self, capacity_bytes: int,
                 ecn_threshold_bytes: Optional[int] = None,
                 pool: Optional[SharedBufferPool] = None) -> None:
        super().__init__(capacity_bytes, ecn_threshold_bytes, pool)
        self._ranked: RankQueue[Packet] = RankQueue()

    def push(self, packet: Packet, now_ns: int = 0) -> None:
        if not self.fits(packet):
            raise OverflowError("push to full RankedQueue")
        self._on_push(packet, now_ns)
        self._ranked.push(packet.rank(), packet)
        if _SANITIZE:
            self._sanitize_check()

    def pop(self, now_ns: int = 0) -> Packet:
        _, packet = self._ranked.pop_min()
        self._on_pop(packet, now_ns)
        if _SANITIZE:
            self._sanitize_check()
        return packet

    def peek_tail(self) -> Optional[Packet]:
        """The buffered packet with the largest RFS (deflection candidate)."""
        entry = self._ranked.peek_max()
        return entry[1] if entry else None

    def pop_tail(self, now_ns: int = 0) -> Packet:
        """Extract the largest-RFS packet (PIEO tail extraction)."""
        _, packet = self._ranked.pop_max()
        self._on_pop(packet, now_ns)
        if _SANITIZE:
            self._sanitize_check()
        return packet

    def __len__(self) -> int:
        return len(self._ranked)

    def __bool__(self) -> bool:
        return bool(self._ranked)

    def packets(self) -> List[Packet]:
        return [packet for _, packet in self._ranked.items()]


class ClassLaneQueue(Snapshot):
    """N per-priority-class lanes behind the single-queue interface.

    Each lane is a full :class:`DropTailQueue` or :class:`RankedQueue`;
    admission (``fits``/``push``) is decided by the arriving packet's
    lane alone, and ``pop`` drains lanes in strict priority order.
    Aggregate views (``bytes``, ``len``, ``packets``) cover all lanes so
    forwarding policies, the sanitizer, and samplers keep working
    unchanged.  Vertigo's displace-and-deflect operates on
    ``lane_for(packet)`` so deflection respects class lanes.
    """

    __slots__ = ("lanes", "num_classes", "_label")

    SNAPSHOT_ATTRS = ("lanes", "num_classes", "_label")

    def __init__(self, lanes) -> None:
        lanes = list(lanes)
        if not lanes:
            raise ValueError("a lane queue needs at least one lane")
        self.lanes = lanes
        self.num_classes = len(lanes)
        self._label = ""

    # -- per-packet routing ----------------------------------------------------

    def lane_for(self, packet: Packet):
        """The lane serving this packet's priority class."""
        return self.lanes[packet.pclass]

    def fits(self, packet: Packet) -> bool:
        return self.lanes[packet.pclass].fits(packet)

    def push(self, packet: Packet, now_ns: int = 0) -> None:
        self.lanes[packet.pclass].push(packet, now_ns)

    def pop(self, now_ns: int = 0) -> Packet:
        for lane in self.lanes:
            if lane:
                return lane.pop(now_ns)
        raise IndexError("pop from empty ClassLaneQueue")

    def pop_unpaused(self, paused_mask: int,
                     now_ns: int = 0) -> Optional[Packet]:
        """Strict-priority pop skipping PAUSEd lanes (None if all held)."""
        for index, lane in enumerate(self.lanes):
            if lane and not (paused_mask >> index) & 1:
                return lane.pop(now_ns)
        return None

    # -- aggregate views -------------------------------------------------------

    @property
    def bytes(self) -> int:
        return sum(lane.bytes for lane in self.lanes)

    @property
    def capacity_bytes(self) -> int:
        return sum(lane.capacity_bytes for lane in self.lanes)

    @property
    def free_bytes(self) -> int:
        return sum(lane.free_bytes for lane in self.lanes)

    @property
    def stats(self) -> QueueStats:
        """Merged lane counters (max_bytes sums the per-lane maxima)."""
        merged = QueueStats()
        for lane in self.lanes:
            stats = lane.stats
            merged.enqueued += stats.enqueued
            merged.dequeued += stats.dequeued
            merged.ecn_marked += stats.ecn_marked
            merged.max_bytes += stats.max_bytes
            merged.occupancy_integral += stats.occupancy_integral
            if stats.last_change_ns > merged.last_change_ns:
                merged.last_change_ns = stats.last_change_ns
        return merged

    @property
    def label(self) -> str:
        return self._label

    @label.setter
    def label(self, value: str) -> None:
        self._label = value
        for lane in self.lanes:
            lane.label = value

    @property
    def mark_hook(self):
        return self.lanes[0].mark_hook

    @mark_hook.setter
    def mark_hook(self, hook) -> None:
        for lane in self.lanes:
            lane.mark_hook = hook

    def __len__(self) -> int:
        return sum(len(lane) for lane in self.lanes)

    def __bool__(self) -> bool:
        return any(self.lanes)

    def packets(self) -> List[Packet]:
        merged: List[Packet] = []
        for lane in self.lanes:
            merged.extend(lane.packets())
        return merged

    def _sanitize_check(self) -> None:
        for lane in self.lanes:
            lane._sanitize_check()
