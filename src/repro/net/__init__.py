"""Network substrate: packets, queues, links, switches, and topologies.

This package is the repository's stand-in for the paper's OMNeT++/INET
substrate: store-and-forward output-queued switches connected by links
with serialization and propagation delay, byte-bounded per-port buffers,
and multipath route tables for leaf-spine and fat-tree topologies.
"""

from repro.net.packet import (
    ACK_WIRE_BYTES,
    DEFAULT_MSS,
    HEADER_BYTES,
    Packet,
    PacketKind,
)
from repro.net.queues import DropTailQueue, QueueStats, RankedQueue
from repro.net.link import Link, Port
from repro.net.switch import Switch
from repro.net.topology import (
    FatTree,
    LeafSpine,
    Topology,
    paper_fat_tree,
    paper_leaf_spine,
)

__all__ = [
    "ACK_WIRE_BYTES",
    "DEFAULT_MSS",
    "HEADER_BYTES",
    "Packet",
    "PacketKind",
    "DropTailQueue",
    "RankedQueue",
    "QueueStats",
    "Link",
    "Port",
    "Switch",
    "Topology",
    "LeafSpine",
    "FatTree",
    "paper_leaf_spine",
    "paper_fat_tree",
]
