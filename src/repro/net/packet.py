"""Simulated packets.

A :class:`Packet` models one wire-level datagram.  Data segments carry a
byte range ``[seq, seq + payload)`` of their flow; ACKs carry a cumulative
acknowledgement and congestion feedback (ECN echo for DCTCP, a remote
timestamp echo for Swift's RTT measurement).  Vertigo-marked packets
additionally carry a :class:`~repro.core.flowinfo.FlowInfo` header.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.core.flowinfo import FlowInfo

#: IP + transport header bytes charged to every packet on the wire.
HEADER_BYTES = 40
#: Wire size of a bare ACK.
ACK_WIRE_BYTES = HEADER_BYTES
#: Default maximum segment (payload) size in bytes.
DEFAULT_MSS = 1460

# Process-global uid source: uids are used only for identity (never for
# ordering or arithmetic), so sharing the counter across runs is harmless.
# Deliberately NOT checkpointed: a restore instead advances the
# watermark (advance_uid_watermark) past every uid alive in the
# snapshot, so identity stays unique without the counter value ever
# reaching a digest.
_packet_uid = itertools.count()  # noqa: VR004


def uid_watermark() -> int:
    """Next uid to be issued (burns one uid; identity-only, harmless)."""
    return next(_packet_uid)


def advance_uid_watermark(watermark: int) -> None:
    """Ensure future uids are >= ``watermark`` (checkpoint restore).

    Restored packets carry uids from the checkpointing process; new
    packets in this process must not collide with them or the ordering
    shim's release-exactly-once sets would see false duplicates.
    """
    global _packet_uid
    if watermark > next(_packet_uid):
        _packet_uid = itertools.count(watermark)  # noqa: VR004


class PacketKind(enum.Enum):
    DATA = "data"
    ACK = "ack"


@dataclass(slots=True)
class Packet:
    """One simulated datagram."""

    src: int                       # source host id
    dst: int                       # destination host id
    flow_id: int                   # globally unique flow identifier
    kind: PacketKind
    seq: int = 0                   # first payload byte offset (DATA)
    payload: int = 0               # payload bytes (DATA)
    ack_no: int = 0                # cumulative ACK byte offset (ACK)
    wire_bytes: int = HEADER_BYTES

    # Congestion/benchmark feedback.
    ecn_capable: bool = False
    ecn_ce: bool = False           # congestion-experienced mark (DATA)
    ece: bool = False              # congestion echo on the ACK
    ts_echo: int = -1              # sender timestamp echoed by the ACK (ns)
    sent_at: int = -1              # transport tx timestamp for RTT (ns)
    tx_count: int = 1              # transmission attempt number (1 = first)

    # Vertigo.
    flowinfo: Optional[FlowInfo] = None

    # Path bookkeeping (metrics).
    hops: int = 0
    deflections: int = 0

    # Priority-class lane (0 = highest priority; assigned at the sending
    # host from the experiment's priority map) and PFC ingress-buffer
    # accounting: the gate this packet is charged against at its current
    # switch, and the bytes charged (0 = not charged).  Both stay inert
    # (None/0) when PFC is not configured.
    pclass: int = 0
    pfc_gate: Optional[object] = None
    pfc_held: int = 0

    uid: int = field(default_factory=lambda: next(_packet_uid))

    @property
    def end_seq(self) -> int:
        """One past the last payload byte carried by this segment."""
        return self.seq + self.payload

    def rank(self) -> int:
        """Scheduling rank for ranked queues: the on-wire RFS field.

        Packets without a flowinfo header (non-Vertigo traffic traversing a
        Vertigo queue in mixed deployments) rank by wire size, which treats
        them like a flow about to finish.
        """
        return self.flowinfo.rfs if self.flowinfo is not None \
            else self.wire_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.kind is PacketKind.DATA:
            core = f"seq={self.seq}+{self.payload}"
        else:
            core = f"ack={self.ack_no}"
        rfs = f" rfs={self.flowinfo.rfs}" if self.flowinfo else ""
        return (f"<Pkt {self.kind.value} f{self.flow_id} "
                f"{self.src}->{self.dst} {core}{rfs}>")


def data_packet(src: int, dst: int, flow_id: int, seq: int, payload: int,
                *, mss: int = DEFAULT_MSS, ecn_capable: bool = False,
                sent_at: int = -1, tx_count: int = 1) -> Packet:
    """Construct a data segment with the standard header overhead."""
    if payload <= 0 or payload > mss:
        raise ValueError(f"payload {payload} outside (0, {mss}]")
    return Packet(src=src, dst=dst, flow_id=flow_id, kind=PacketKind.DATA,
                  seq=seq, payload=payload,
                  wire_bytes=payload + HEADER_BYTES,
                  ecn_capable=ecn_capable, sent_at=sent_at,
                  tx_count=tx_count)


def ack_packet(src: int, dst: int, flow_id: int, ack_no: int, *,
               ece: bool = False, ts_echo: int = -1) -> Packet:
    """Construct a cumulative ACK for ``flow_id`` (src is the data receiver)."""
    return Packet(src=src, dst=dst, flow_id=flow_id, kind=PacketKind.ACK,
                  ack_no=ack_no, wire_bytes=ACK_WIRE_BYTES, ece=ece,
                  ts_echo=ts_echo)
