"""Priority flow control: per-class ingress accounting and PAUSE frames.

Models 802.1Qbb-style PFC on top of the output-queued switch: every
switch *ingress* (the receiving end of a directed link) owns one
:class:`PfcGate` per priority class.  A gate charges each admitted packet
against a virtual ingress buffer for as long as the packet is resident at
the switch (queued or serializing — store-and-forward), and runs the
XOFF/XON state machine:

- occupancy crosses **XOFF** → send PAUSE: after one reverse-link
  propagation delay the upstream transmitter holds that class
  (:meth:`repro.net.link.Port.pfc_hold`).
- occupancy drains to **XON** → send RESUME the same way.

PAUSE/RESUME control frames are scheduled as integer-ns priority events
(:data:`PAUSE_PRIORITY`, like fault events) so a hold lands before any
same-instant packet arrival, and hold/resume pairs for one gate can
never reorder (same delay, same priority, FIFO sequence numbers).

Admission is the only loss point: a packet is always admitted while the
gate is below XOFF (the crossing packet is what *triggers* the pause),
and above XOFF it is admitted only into the configured **headroom**,
sized by default to cover the in-flight bytes of the pause loop
(2 x one-way BDP + 2 MTU).  With default headroom the fabric is
lossless; with ``headroom_bytes=0`` the post-XOFF in-flight packets are
dropped with reason ``pfc_headroom`` — both behaviours are tested.

Egress queues are effectively unbounded when PFC is enabled: every
switch-resident packet is charged to exactly one ingress gate, so total
residency is bounded by the sum of gate capacities and tail-drop at the
egress queue cannot occur.  Shared-buffer (DT) switches are mutually
exclusive with PFC for this reason.

The gate map is also the input for PFC *deadlock* detection: a cyclic
buffer dependency shows up as a cycle in the waits-on graph over
currently-paused switch-to-switch gates (:meth:`PfcController.paused_edges`),
which the telemetry monitor watches for (``repro.telemetry``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.checkpoint.protocol import Snapshot
from repro.trace import hooks as _trace_hooks

_TRACE = _trace_hooks.register(__name__)

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.builder import Network
    from repro.net.link import Port
    from repro.net.packet import Packet
    from repro.sim.engine import Engine

#: PAUSE/RESUME control events run at the same elevated priority as
#: fault events: ahead of any packet event scheduled for the same
#: instant, so a hold takes effect before the next same-tick dequeue.
PAUSE_PRIORITY = -1

#: Wire MTU used by the default headroom rule (full-size data segment).
MTU_WIRE_BYTES = 1500


@dataclass(frozen=True)
class PfcConfig:
    """Priority-class lanes and (optionally) lossless PFC.

    ``num_classes`` alone splits every switch egress queue into strict-
    priority lanes (lane 0 drains first); ``enabled`` additionally turns
    on the per-ingress XOFF/XON PAUSE machinery.  All byte thresholds
    are integers; 0 (or None for headroom) means "derive from the
    network parameters" (:func:`resolve_thresholds`).
    """

    enabled: bool = False
    num_classes: int = 1
    #: Flow → class map: a flow with id ``f`` uses class
    #: ``priority_map[f % len(priority_map)]`` for every packet (data
    #: and ACKs).  The default maps everything to class 0.
    priority_map: Tuple[int, ...] = (0,)
    xoff_bytes: int = 0            # 0 = auto: buffer / (2 * num_classes)
    xon_bytes: int = 0             # 0 = auto: xoff / 2
    #: None = auto (2 x one-way BDP + 2 MTU, lossless); 0 is honoured
    #: literally and *does* drop post-XOFF arrivals (reason
    #: ``pfc_headroom``).
    headroom_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_classes < 1:
            raise ValueError("num_classes must be >= 1")
        if not self.priority_map:
            raise ValueError("priority_map cannot be empty")
        for pclass in self.priority_map:
            if not 0 <= pclass < self.num_classes:
                raise ValueError(
                    f"priority_map entry {pclass} outside "
                    f"[0, {self.num_classes})")
        if self.xoff_bytes < 0 or self.xon_bytes < 0:
            raise ValueError("PFC thresholds cannot be negative")
        if self.xoff_bytes and self.xon_bytes > self.xoff_bytes:
            raise ValueError("XON threshold must not exceed XOFF")
        if self.headroom_bytes is not None and self.headroom_bytes < 0:
            raise ValueError("headroom cannot be negative")

    @property
    def configured(self) -> bool:
        """True when this config changes the datapath at all."""
        return self.enabled or self.num_classes > 1

    def digest_view(self) -> Tuple:
        """The digest-relevant projection (order is part of the format)."""
        return (self.enabled, self.num_classes, self.priority_map,
                self.xoff_bytes, self.xon_bytes, self.headroom_bytes)


def resolve_thresholds(config: PfcConfig, buffer_bytes: int,
                       rate_bps: int, delay_ns: int
                       ) -> Tuple[int, int, int]:
    """Resolve (xoff, xon, headroom) bytes, all-integer arithmetic.

    Auto XOFF gives each class half its even share of the port buffer;
    auto XON is half of XOFF (hysteresis); auto headroom covers the
    worst-case pause-loop in-flight bytes: one reverse propagation delay
    for the PAUSE plus one forward delay of line-rate bytes (2 x one-way
    BDP at the fastest link) plus one packet mid-serialization at each
    end (2 MTU).
    """
    xoff = config.xoff_bytes or buffer_bytes // (2 * config.num_classes)
    xon = config.xon_bytes or xoff // 2
    if config.headroom_bytes is not None:
        headroom = config.headroom_bytes
    else:
        bdp = rate_bps * delay_ns // (8 * 1_000_000_000)
        headroom = 2 * bdp + 2 * MTU_WIRE_BYTES
    if xoff <= 0:
        raise ValueError("resolved XOFF threshold must be positive")
    return xoff, xon, headroom


class PfcGate(Snapshot):
    """Ingress-buffer accounting for one (switch, in-port, class) triple.

    The gate charges packets while resident at the downstream switch and
    pauses/resumes the single upstream transmitter feeding this ingress.
    All state is integer bytes / integer ns.
    """

    __slots__ = ("engine", "network", "node", "in_port", "pclass",
                 "upstream_port", "upstream_label", "upstream_is_switch",
                 "delay_ns", "xoff", "xon", "capacity", "occupancy",
                 "paused", "paused_since", "pause_ns", "pause_events",
                 "headroom_drops")

    #: Pending PAUSE/RESUME frames live in the engine calendar (they are
    #: scheduled events), so the gate itself only carries its occupancy
    #: and XOFF/XON machine state.
    SNAPSHOT_ATTRS = ("engine", "network", "node", "in_port", "pclass",
                      "upstream_port", "upstream_label",
                      "upstream_is_switch", "delay_ns", "xoff", "xon",
                      "capacity", "occupancy", "paused", "paused_since",
                      "pause_ns", "pause_events", "headroom_drops")

    def __init__(self, engine: "Engine", network: "Network", node: str,
                 in_port: int, pclass: int, upstream_port: "Port",
                 upstream_label: str, upstream_is_switch: bool,
                 delay_ns: int, xoff: int, xon: int, headroom: int) -> None:
        self.engine = engine
        self.network = network
        self.node = node                  # downstream switch name
        self.in_port = in_port            # ingress port index at node
        self.pclass = pclass
        self.upstream_port = upstream_port
        self.upstream_label = upstream_label
        self.upstream_is_switch = upstream_is_switch
        self.delay_ns = delay_ns          # reverse-link PAUSE propagation
        self.xoff = xoff
        self.xon = xon
        self.capacity = xoff + headroom
        self.occupancy = 0
        self.paused = False
        self.paused_since = 0
        self.pause_ns = 0
        self.pause_events = 0
        self.headroom_drops = 0

    # -- dataplane ------------------------------------------------------------

    def admit(self, wire_bytes: int) -> bool:
        """Admission check: always below XOFF, headroom-bounded above."""
        if self.occupancy < self.xoff:
            return True
        if self.occupancy + wire_bytes <= self.capacity:
            return True
        self.headroom_drops += 1
        return False

    def charge(self, packet: "Packet") -> None:
        """Charge an admitted packet for its residency at the switch."""
        self.occupancy += packet.wire_bytes
        packet.pfc_gate = self
        packet.pfc_held = packet.wire_bytes
        if not self.paused and self.occupancy >= self.xoff:
            self._pause()

    def release(self, packet: "Packet") -> None:
        """Release a packet's charge (egress tx done, or dropped)."""
        self.occupancy -= packet.pfc_held
        packet.pfc_held = 0
        packet.pfc_gate = None
        if self.paused and self.occupancy <= self.xon:
            self._resume()

    # -- XOFF/XON state machine ----------------------------------------------

    def _pause(self) -> None:
        now = self.engine.now
        self.paused = True
        self.paused_since = now
        self.pause_events += 1
        if _TRACE is not None:
            _TRACE.pfc_pause(now, self.node, self.in_port, self.pclass,
                             self.occupancy)
        self.engine.schedule(self.delay_ns, self._hold_upstream, True,
                             priority=PAUSE_PRIORITY)

    def _resume(self) -> None:
        now = self.engine.now
        self.paused = False
        self.pause_ns += now - self.paused_since
        if _TRACE is not None:
            _TRACE.pfc_resume(now, self.node, self.in_port, self.pclass,
                              self.occupancy)
        self.engine.schedule(self.delay_ns, self._hold_upstream, False,
                             priority=PAUSE_PRIORITY)

    def _hold_upstream(self, hold: bool) -> None:
        """PAUSE/RESUME frame arrival at the upstream transmitter."""
        self.upstream_port.pfc_hold(self.pclass, hold)
        if hold:
            fidelity = self.network.fidelity
            if fidelity is not None:
                fidelity.on_pause(self.upstream_port.link)

    def pause_time_ns(self, now_ns: int) -> int:
        """Total paused time, closing any open pause interval."""
        span = self.pause_ns
        if self.paused:
            span += now_ns - self.paused_since
        return span


class PfcController(Snapshot):
    """Builds and owns every gate in the network; reporting surface."""

    SNAPSHOT_ATTRS = ("engine", "config", "network", "gates")

    def __init__(self, engine: "Engine", config: PfcConfig,
                 network: "Network") -> None:
        self.engine = engine
        self.config = config
        self.network = network
        self.gates: List[PfcGate] = []

    def install(self) -> None:
        """Create one gate per (switch ingress, class) and wire admission.

        Walks every directed link that terminates at a switch; the
        upstream transmitter is the registered tx port of that directed
        channel (a switch egress port or a host NIC — host NICs are
        paused too, so lossless-ness extends to the edge).
        """
        params = self.network.params
        rate = max(params.host_rate_bps, params.fabric_rate_bps)
        delay = max(params.host_link_delay_ns, params.fabric_link_delay_ns)
        xoff, xon, headroom = resolve_thresholds(
            self.config, params.buffer_bytes, rate, delay)
        switches = self.network.switches
        per_switch: Dict[str, Dict[int, Tuple[PfcGate, ...]]] = {}
        for (src_label, dst_label), link in self.network.links.items():
            if dst_label not in switches:
                continue  # host ingress: hosts sink packets, no gate
            node = dst_label
            in_port = link.dst_port
            upstream_port = self.network.tx_ports[(src_label, dst_label)]
            lane_gates = tuple(
                PfcGate(self.engine, self.network, node, in_port, pclass,
                        upstream_port, src_label,
                        src_label in switches, link.delay_ns,
                        xoff, xon, headroom)
                for pclass in range(self.config.num_classes))
            per_switch.setdefault(node, {})[in_port] = lane_gates
            self.gates.extend(lane_gates)
        for name, by_port in per_switch.items():
            switches[name].pfc_gates = by_port

    # -- reporting ------------------------------------------------------------

    def paused_edges(self) -> List[Tuple[str, str]]:
        """Waits-on edges (upstream, downstream) over paused fabric gates.

        Only switch-to-switch gates participate: hosts cannot complete a
        buffer-dependency cycle (they sink what they receive).
        """
        return [(gate.upstream_label, gate.node) for gate in self.gates
                if gate.paused and gate.upstream_is_switch]

    def total_pause_ns(self, now_ns: int) -> int:
        return sum(gate.pause_time_ns(now_ns) for gate in self.gates)

    def summary(self, now_ns: int) -> dict:
        """Deterministic, digest-safe (all-integer) PFC summary."""
        pauses = sorted(
            [gate.upstream_label, gate.node, gate.pclass,
             gate.pause_events, gate.pause_time_ns(now_ns)]
            for gate in self.gates if gate.pause_events > 0)
        return {
            "gates": len(self.gates),
            "pause_events": sum(g.pause_events for g in self.gates),
            "pause_ns": self.total_pause_ns(now_ns),
            "paused_at_end": sum(1 for g in self.gates if g.paused),
            "headroom_drops": sum(g.headroom_drops for g in self.gates),
            "pauses": pauses,
        }
