"""Output-queued switch.

A switch owns a set of ports (each with its own byte-bounded queue), a
pre-populated multipath FIB mapping destination hosts to candidate egress
ports (paper §3.2 assumes pre-populated forwarding tables), and a
forwarding policy (:mod:`repro.forwarding`) that decides, per packet,
which candidate to use and what to do on overflow — drop (ECMP/DRILL),
random deflection (DIBS), or selective deflection (Vertigo).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.metrics.collector import NetworkCounters
from repro.net.link import Port
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue, RankedQueue
from repro.sim.engine import Engine

PortQueue = Union[DropTailQueue, RankedQueue]

#: Hop budget; packets exceeding it are dropped (guards deflection loops,
#: mirroring the IP TTL that bounds DIBS-style deflection in practice).
DEFAULT_MAX_HOPS = 64


class Switch:
    """A store-and-forward switch with policy-driven output queueing."""

    def __init__(self, engine: Engine, name: str, counters: NetworkCounters,
                 max_hops: int = DEFAULT_MAX_HOPS) -> None:
        self.engine = engine
        self.name = name
        self.counters = counters
        self.max_hops = max_hops
        self.ports: List[Port] = []
        #: Per-port peer kind: True if the link on that port faces a switch.
        self.port_faces_switch: List[bool] = []
        #: dst host id -> tuple of candidate (shortest-path) egress ports.
        self.fib: Dict[int, Tuple[int, ...]] = {}
        self.policy = None  # set by the network builder

    # -- construction --------------------------------------------------------

    def add_port(self, queue: PortQueue, *, faces_switch: bool) -> int:
        index = len(self.ports)
        self.ports.append(Port(self.engine, self, index, queue))
        self.port_faces_switch.append(faces_switch)
        return index

    @property
    def switch_ports(self) -> List[int]:
        return [index for index, faces in enumerate(self.port_faces_switch)
                if faces]

    # -- dataplane ------------------------------------------------------------

    def receive(self, packet: Packet, in_port: int) -> None:
        packet.hops += 1
        if packet.hops > self.max_hops:
            self.drop(packet, "hop_limit")
            return
        self.policy.route(packet, in_port)

    def candidates(self, dst: int) -> Tuple[int, ...]:
        try:
            return self.fib[dst]
        except KeyError:
            raise KeyError(f"{self.name}: no route to host {dst}") from None

    def enqueue(self, port_index: int, packet: Packet) -> None:
        """Enqueue a packet that the policy verified to fit."""
        self.counters.forwarded += 1
        self.ports[port_index].enqueue(packet)

    def drop(self, packet: Packet, reason: str) -> None:
        self.counters.drops[reason] += 1

    def queue_bytes(self, port_index: int) -> int:
        return self.ports[port_index].occupancy_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Switch {self.name} ports={len(self.ports)}>"
