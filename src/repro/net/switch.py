"""Output-queued switch.

A switch owns a set of ports (each with its own byte-bounded queue), a
pre-populated multipath FIB mapping destination hosts to candidate egress
ports (paper §3.2 assumes pre-populated forwarding tables), and a
forwarding policy (:mod:`repro.forwarding`) that decides, per packet,
which candidate to use and what to do on overflow — drop (ECMP/DRILL),
random deflection (DIBS), or selective deflection (Vertigo).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.analysis import sanitize as _sanitize
from repro.checkpoint.protocol import Snapshot
from repro.metrics.collector import NetworkCounters
from repro.trace import hooks as _trace_hooks

_SANITIZE = _sanitize.register(__name__)
_TRACE = _trace_hooks.register(__name__)
from repro.net.link import Port
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue, RankedQueue
from repro.sim.engine import Engine

PortQueue = Union[DropTailQueue, RankedQueue]

#: Hop budget; packets exceeding it are dropped (guards deflection loops,
#: mirroring the IP TTL that bounds DIBS-style deflection in practice).
DEFAULT_MAX_HOPS = 64


class Switch(Snapshot):
    """A store-and-forward switch with policy-driven output queueing."""

    SNAPSHOT_ATTRS = ("engine", "name", "counters", "max_hops", "ports",
                      "port_faces_switch", "fib", "policy", "fidelity",
                      "pfc_gates", "_switch_ports")

    def __init__(self, engine: Engine, name: str, counters: NetworkCounters,
                 max_hops: int = DEFAULT_MAX_HOPS) -> None:
        self.engine = engine
        self.name = name
        self.counters = counters
        self.max_hops = max_hops
        self.ports: List[Port] = []
        #: Per-port peer kind: True if the link on that port faces a switch.
        self.port_faces_switch: List[bool] = []
        #: dst host id -> tuple of candidate (shortest-path) egress ports.
        self.fib: Dict[int, Tuple[int, ...]] = {}
        self.policy = None  # set by the network builder
        #: Fidelity controller observing congestion signals, or None
        #: (pure packet mode; see repro.net.fidelity).
        self.fidelity = None
        #: PFC ingress gates, ``{in_port: (gate per class, ...)}``, or
        #: None (PFC off; see repro.net.pfc).  Installed by the
        #: PfcController after the network is built.
        self.pfc_gates: Optional[Dict[int, Tuple]] = None
        self._switch_ports: Optional[Tuple[int, ...]] = None

    # -- construction --------------------------------------------------------

    def add_port(self, queue: PortQueue, *, faces_switch: bool) -> int:
        index = len(self.ports)
        self.ports.append(Port(self.engine, self, index, queue))
        self.port_faces_switch.append(faces_switch)
        self._switch_ports = None
        return index

    @property
    def switch_ports(self) -> Tuple[int, ...]:
        ports = self._switch_ports
        if ports is None:
            ports = self._switch_ports = tuple(
                index for index, faces in enumerate(self.port_faces_switch)
                if faces)
        return ports

    def topology_changed(self) -> None:
        """Invalidate routing caches after a FIB, port, or link change.

        Anything that rewires the switch at runtime (failure injection,
        route updates) must call this so the per-flow port caches kept by
        forwarding policies — and the cached switch-facing port set — are
        recomputed against the new state.
        """
        self._switch_ports = None
        if self.policy is not None:
            self.policy.invalidate_cache()

    # -- dataplane ------------------------------------------------------------

    def receive(self, packet: Packet, in_port: int) -> None:
        if _SANITIZE:
            self._receive_sanitized(packet, in_port)
            return
        packet.hops += 1
        if packet.hops > self.max_hops:
            self.drop(packet, "hop_limit")
            return
        gates = self.pfc_gates
        if gates is not None:
            gate = gates[in_port][packet.pclass]
            if not gate.admit(packet.wire_bytes):
                self.drop(packet, "pfc_headroom")
                return
            gate.charge(packet)
        self.policy.route(packet, in_port)

    def _receive_sanitized(self, packet: Packet, in_port: int) -> None:
        """Receive with the conservation invariant checked around routing.

        Every arriving packet must end up enqueued (possibly displacing
        others, which are themselves re-enqueued or dropped) or dropped
        with a reason: resident + drops is conserved, nothing vanishes and
        nothing is duplicated.  Routing is synchronous and confined to
        this switch, so snapshotting around it is exact.
        """
        resident_before = self._resident_packets()
        drops_before = self.counters.total_drops
        packet.hops += 1
        if packet.hops > self.max_hops:
            self.drop(packet, "hop_limit")
        else:
            gates = self.pfc_gates
            admitted = True
            if gates is not None:
                gate = gates[in_port][packet.pclass]
                if gate.admit(packet.wire_bytes):
                    gate.charge(packet)
                else:
                    self.drop(packet, "pfc_headroom")
                    admitted = False
            if admitted:
                self.policy.route(packet, in_port)
        dropped = self.counters.total_drops - drops_before
        _sanitize.check(
            self._resident_packets() + dropped == resident_before + 1,
            "switch %s lost or duplicated a packet: resident %d -> %d "
            "with %d drops while receiving %r", self.name, resident_before,
            self._resident_packets(), dropped, packet)

    def _resident_packets(self) -> int:
        """Packets held by this switch: queued plus one per busy port."""
        queued = sum(len(port.queue) for port in self.ports)
        transmitting = sum(1 for port in self.ports if port.busy)
        return queued + transmitting

    def candidates(self, dst: int) -> Tuple[int, ...]:
        try:
            return self.fib[dst]
        except KeyError:
            raise KeyError(f"{self.name}: no route to host {dst}") from None

    def enqueue(self, port_index: int, packet: Packet) -> None:
        """Enqueue a packet that the policy verified to fit."""
        self.counters.forwarded += 1
        if _TRACE is not None and _TRACE.packets:
            _TRACE.pkt_enqueue(self.engine.now, self.name, port_index, packet)
        port = self.ports[port_index]
        port.enqueue(packet)
        if self.fidelity is not None:
            self.fidelity.on_enqueue(port)

    def deflected(self, packet: Packet, from_port: int, to_port: int) -> None:
        """Account (and trace) one deflection decided by the policy.

        Called before the packet is enqueued at ``to_port`` (or
        force-inserted there), so the deflection is counted even if the
        packet is subsequently displaced or dropped at the target.
        """
        packet.deflections += 1
        self.counters.deflections += 1
        if _TRACE is not None and _TRACE.packets:
            _TRACE.pkt_deflect(self.engine.now, self.name, from_port,
                               to_port, packet)
        if self.fidelity is not None:
            self.fidelity.on_deflection(self.ports[from_port].link,
                                        self.ports[to_port].link)

    def drop(self, packet: Packet, reason: str) -> None:
        if packet.pfc_held:
            # A charged packet that dies at this switch (tail drop,
            # no_route, displaced victim, ...) releases its PFC
            # ingress-buffer charge here; wire drops are downstream of
            # the egress release and arrive with pfc_held == 0.
            packet.pfc_gate.release(packet)
        self.counters.drops[reason] += 1
        self.counters.class_drops[(packet.pclass, reason)] += 1
        if _TRACE is not None and _TRACE.packets:
            _TRACE.pkt_drop(self.engine.now, self.name, reason, packet)

    def queue_bytes(self, port_index: int) -> int:
        return self.ports[port_index].queue.bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Switch {self.name} ports={len(self.ports)}>"
