"""Datacenter topologies: two-tier leaf-spine and fat-tree.

A :class:`Topology` is a pure structural description — switch names, the
host-to-ToR mapping, and switch-switch adjacency — plus shortest-path
multipath route computation.  The network *builder*
(:mod:`repro.net.builder`) instantiates switches, hosts, queues and links
from it.

Route tables are computed by BFS over the switch graph from each ToR: the
candidates at switch ``s`` for a host behind ToR ``t`` are all neighbours
one hop closer to ``t``.  This yields exactly the classic ECMP up-down
path sets in both topologies, and it also gives *deflected* packets (which
may find themselves anywhere in the fabric) a valid route onward from any
switch.

Route computation runs over a *live* link set: every method takes an
optional ``exclude`` collection of dead cables (canonical sorted endpoint
pairs, see :func:`repro.faults.spec.cable_key`), so the fault-injection
subsystem recomputes routes by BFS over the surviving edges without
mutating the topology object itself.  With ``strict=False``,
:meth:`Topology.next_hop_table` maps unreachable ToRs to empty candidate
tuples instead of raising — forwarding policies translate those into
``no_route`` drops at runtime.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Collection, Dict, List, Optional, Sequence, Tuple


class Topology(abc.ABC):
    """Structural description of a datacenter fabric."""

    @property
    @abc.abstractmethod
    def n_hosts(self) -> int: ...

    @property
    @abc.abstractmethod
    def switch_names(self) -> Sequence[str]: ...

    @abc.abstractmethod
    def host_tor(self, host: int) -> str:
        """Name of the ToR switch the host attaches to."""

    @property
    @abc.abstractmethod
    def switch_adjacency(self) -> Sequence[Tuple[str, str]]:
        """Each inter-switch full-duplex cable, listed once."""

    # -- shared route computation ---------------------------------------------

    def neighbours(self, exclude: Optional[Collection[Tuple[str, str]]]
                   = None) -> Dict[str, List[str]]:
        """Adjacency lists over the live cables (``exclude`` = dead set)."""
        adjacency: Dict[str, List[str]] = {name: []
                                           for name in self.switch_names}
        for a, b in self.switch_adjacency:
            if exclude and ((a, b) if a <= b else (b, a)) in exclude:
                continue
            adjacency[a].append(b)
            adjacency[b].append(a)
        return adjacency

    def bfs_distances(self, source: str,
                      exclude: Optional[Collection[Tuple[str, str]]] = None,
                      ) -> Dict[str, int]:
        adjacency = self.neighbours(exclude)
        distances = {source: 0}
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            for neighbour in adjacency[node]:
                if neighbour not in distances:
                    distances[neighbour] = distances[node] + 1
                    frontier.append(neighbour)
        return distances

    def next_hop_table(self,
                       exclude: Optional[Collection[Tuple[str, str]]] = None,
                       strict: bool = True,
                       ) -> Dict[str, Dict[str, Tuple[str, ...]]]:
        """``table[switch][tor]`` = names of neighbours one hop closer.

        Keys are ToR names; the builder expands them to per-host FIB
        entries (all hosts behind a ToR share its entry).  ``exclude``
        removes dead cables from the BFS; with ``strict=False`` a switch
        that cannot reach a ToR over the surviving edges gets an empty
        candidate tuple instead of a :class:`ValueError` (build-time
        wiring stays strict, runtime rewiring tolerates partitions).
        """
        adjacency = self.neighbours(exclude)
        tors = sorted({self.host_tor(host) for host in range(self.n_hosts)})
        table: Dict[str, Dict[str, Tuple[str, ...]]] = {
            name: {} for name in self.switch_names}
        for tor in tors:
            distances = self.bfs_distances(tor, exclude)
            for switch in self.switch_names:
                if switch == tor:
                    continue
                if switch not in distances:
                    if strict:
                        raise ValueError(
                            f"switch {switch} cannot reach ToR {tor}")
                    table[switch][tor] = ()
                    continue
                closer = tuple(sorted(
                    neighbour for neighbour in adjacency[switch]
                    if distances.get(neighbour, -1)
                    == distances[switch] - 1))
                table[switch][tor] = closer
        return table


class LeafSpine(Topology):
    """Two-tier leaf-spine: every leaf (ToR) connects to every spine.

    The paper's large-scale setup (§4.1) is 4 spines ("cores"), 8 leaves
    ("aggregates"), and 320 servers — :func:`paper_leaf_spine`.
    """

    def __init__(self, n_spines: int, n_leaves: int,
                 hosts_per_leaf: int) -> None:
        if min(n_spines, n_leaves, hosts_per_leaf) < 1:
            raise ValueError("leaf-spine dimensions must be positive")
        self.n_spines = n_spines
        self.n_leaves = n_leaves
        self.hosts_per_leaf = hosts_per_leaf
        self._switches = ([f"leaf{i}" for i in range(n_leaves)]
                          + [f"spine{i}" for i in range(n_spines)])
        self._adjacency = [(f"leaf{leaf}", f"spine{spine}")
                           for leaf in range(n_leaves)
                           for spine in range(n_spines)]

    @property
    def n_hosts(self) -> int:
        return self.n_leaves * self.hosts_per_leaf

    @property
    def switch_names(self) -> Sequence[str]:
        return self._switches

    def host_tor(self, host: int) -> str:
        if not 0 <= host < self.n_hosts:
            raise ValueError(f"host {host} out of range")
        return f"leaf{host // self.hosts_per_leaf}"

    @property
    def switch_adjacency(self) -> Sequence[Tuple[str, str]]:
        return self._adjacency

    def __repr__(self) -> str:
        return (f"LeafSpine(spines={self.n_spines}, leaves={self.n_leaves}, "
                f"hosts_per_leaf={self.hosts_per_leaf})")


class FatTree(Topology):
    """Three-tier fat-tree of degree ``k`` (Al-Fares et al., SIGCOMM 2008).

    ``k`` pods, each with ``k/2`` edge (ToR) and ``k/2`` aggregation
    switches; ``(k/2)^2`` core switches; ``k^3/4`` hosts.  The paper's
    validation topology is ``k = 8``: 128 servers, 80 switches —
    :func:`paper_fat_tree`.
    """

    def __init__(self, k: int) -> None:
        if k < 2 or k % 2:
            raise ValueError(f"fat-tree degree must be even and >= 2, got {k}")
        self.k = k
        half = k // 2
        self.hosts_per_edge = half
        self._edges = [f"edge{pod}_{i}"
                       for pod in range(k) for i in range(half)]
        self._aggs = [f"agg{pod}_{i}"
                      for pod in range(k) for i in range(half)]
        self._cores = [f"core{i}" for i in range(half * half)]
        self._switches = self._edges + self._aggs + self._cores
        adjacency: List[Tuple[str, str]] = []
        for pod in range(k):
            for edge in range(half):
                for agg in range(half):
                    adjacency.append((f"edge{pod}_{edge}", f"agg{pod}_{agg}"))
        # Aggregation switch j of every pod connects to cores
        # [j*half, (j+1)*half).
        for pod in range(k):
            for agg in range(half):
                for core in range(agg * half, (agg + 1) * half):
                    adjacency.append((f"agg{pod}_{agg}", f"core{core}"))
        self._adjacency = adjacency

    @property
    def n_hosts(self) -> int:
        return self.k ** 3 // 4

    @property
    def switch_names(self) -> Sequence[str]:
        return self._switches

    def host_tor(self, host: int) -> str:
        if not 0 <= host < self.n_hosts:
            raise ValueError(f"host {host} out of range")
        edge_index = host // self.hosts_per_edge
        pod, edge = divmod(edge_index, self.k // 2)
        return f"edge{pod}_{edge}"

    @property
    def switch_adjacency(self) -> Sequence[Tuple[str, str]]:
        return self._adjacency

    def __repr__(self) -> str:
        return f"FatTree(k={self.k})"


def paper_leaf_spine() -> LeafSpine:
    """The paper's simulated leaf-spine: 4 spines, 8 leaves, 320 servers."""
    return LeafSpine(n_spines=4, n_leaves=8, hosts_per_leaf=40)


def paper_fat_tree() -> FatTree:
    """The paper's validation fat-tree: k=8, 128 servers, 80 switches."""
    return FatTree(k=8)
