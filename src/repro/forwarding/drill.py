"""DRILL (Ghorbani et al., SIGCOMM 2017): micro load balancing.

DRILL(d, m) makes an independent decision for *every packet*: it samples
``d`` random candidate output queues plus the ``m`` queues remembered as
least-loaded from the previous decision, and forwards to the least loaded
of the sampled set.  The default deployed configuration is DRILL(2, 1).
Overflow still tail-drops — DRILL balances load but does not deflect,
which is why it cannot absorb last-hop incast (paper §4.2).
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.forwarding.base import ForwardingPolicy
from repro.net.packet import Packet
from repro.net.switch import Switch


class DrillPolicy(ForwardingPolicy):
    """DRILL(d, m) per-packet load-aware forwarding."""

    def __init__(self, switch: Switch, rng: random.Random, *,
                 d: int = 2, m: int = 1) -> None:
        super().__init__(switch, rng)
        if d < 1 or m < 0:
            raise ValueError("DRILL requires d >= 1 and m >= 0")
        self.d = d
        self.m = m
        # Memory of previously-best ports, per candidate group (one group
        # per destination prefix; here, per FIB candidate tuple).
        self._memory: Dict[Tuple[int, ...], Tuple[int, ...]] = {}

    def route(self, packet: Packet, in_port: int) -> None:
        candidates = self.switch.candidates(packet.dst)
        if len(candidates) == 1:
            port = candidates[0]
        else:
            sampled = set(self._memory.get(candidates, ()))
            pool = list(candidates)
            picks = min(self.d, len(pool))
            sampled.update(self.rng.sample(pool, picks))
            port = self.least_loaded(sorted(sampled))
            if self.m:
                ordered = sorted(
                    sampled,
                    key=lambda p: (self.switch.queue_bytes(p), p))
                self._memory[candidates] = tuple(ordered[:self.m])
        if self.switch.ports[port].fits(packet):
            self.switch.enqueue(port, packet)
        else:
            self.switch.drop(packet, "overflow")
