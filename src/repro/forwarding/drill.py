"""DRILL (Ghorbani et al., SIGCOMM 2017): micro load balancing.

DRILL(d, m) makes an independent decision for *every packet*: it samples
``d`` random candidate output queues plus the ``m`` queues remembered as
least-loaded from the previous decision, and forwards to the least loaded
of the sampled set.  The default deployed configuration is DRILL(2, 1).
Overflow still tail-drops — DRILL balances load but does not deflect,
which is why it cannot absorb last-hop incast (paper §4.2).
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.forwarding.base import ForwardingPolicy
from repro.net.packet import Packet
from repro.net.switch import Switch


class DrillPolicy(ForwardingPolicy):
    """DRILL(d, m) per-packet load-aware forwarding."""

    def __init__(self, switch: Switch, rng: random.Random, *,
                 d: int = 2, m: int = 1) -> None:
        super().__init__(switch, rng)
        if d < 1 or m < 0:
            raise ValueError("DRILL requires d >= 1 and m >= 0")
        self.d = d
        self.m = m
        # Memory of previously-best ports, per candidate group (one group
        # per destination prefix; here, per FIB candidate tuple).
        self._memory: Dict[Tuple[int, ...], Tuple[int, ...]] = {}

    def invalidate_cache(self) -> None:
        """Also forget least-loaded memory keyed by stale FIB tuples."""
        super().invalidate_cache()
        self._memory.clear()

    def route(self, packet: Packet, in_port: int) -> None:
        switch = self.switch
        candidates = switch.candidates(packet.dst)
        if not candidates:
            switch.drop(packet, "no_route")
            return
        if len(candidates) == 1:
            port = candidates[0]
        else:
            sampled = set(self._memory.get(candidates, ()))
            picks = min(self.d, len(candidates))
            sampled.update(self.rng.sample(list(candidates), picks))
            # One (occupancy, port) sort yields both the forwarding choice
            # (least loaded, ties by port order) and the m-port memory.
            ports = switch.ports
            scored = sorted((ports[p].queue.bytes, p) for p in sampled)
            port = scored[0][1]
            if self.m:
                self._memory[candidates] = tuple(
                    p for _, p in scored[:self.m])
        if switch.ports[port].fits(packet):
            switch.enqueue(port, packet)
        else:
            switch.drop(packet, "overflow")
