"""PABO (Shi et al., ICC 2017): congestion mitigation via packet bounce.

The second deflection scheme the paper cites ([65]): instead of detouring
an overflowing packet sideways to a random port (DIBS), PABO *bounces* it
back out the port it arrived on, toward the upstream switch, which
re-forwards it once the congested hop drains.  Bounced packets carry a
bounce count; past a threshold they are dropped (mirroring PABO's
bounded-bounce design).

This gives the evaluation a second point in the deflection design space:
backpressure-like (PABO) versus spatial spreading (DIBS) versus selective
spreading (Vertigo).
"""

from __future__ import annotations

import random

from repro.forwarding.base import ForwardingPolicy
from repro.net.packet import Packet
from repro.net.switch import Switch

DEFAULT_MAX_BOUNCES = 16


class PaboPolicy(ForwardingPolicy):
    """ECMP forwarding + bounce-to-upstream on overflow."""

    def __init__(self, switch: Switch, rng: random.Random, *,
                 max_bounces: int = DEFAULT_MAX_BOUNCES) -> None:
        super().__init__(switch, rng)
        self.max_bounces = max_bounces
        self._salt = rng.getrandbits(32)

    def _ecmp_port(self, packet: Packet) -> int:
        return self.flow_hash_port(packet, self._salt)

    def route(self, packet: Packet, in_port: int) -> None:
        switch = self.switch
        port = self._ecmp_port(packet)
        if port is None:
            switch.drop(packet, "no_route")
            return
        if switch.ports[port].fits(packet):
            switch.enqueue(port, packet)
            return
        # Bounce the packet back where it came from.  Host-facing input
        # ports cannot bounce (the host would just resend it into the
        # same queue), nor can a packet that exhausted its bounce budget.
        if (packet.deflections >= self.max_bounces
                or in_port >= len(switch.ports)
                or not switch.port_faces_switch[in_port]
                or not switch.ports[in_port].fits(packet)):
            switch.drop(packet, "bounce_failed")
            return
        switch.deflected(packet, port, in_port)
        switch.enqueue(in_port, packet)
