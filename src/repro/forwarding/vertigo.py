"""Vertigo's in-network component (paper §3.2): selective deflection.

Forwarding uses the power-of-two-choices paradigm over the FIB candidates.
Output queues are sorted in ascending RFS order (SRPT).  On arrival at a
full output queue, the packet with the *largest* RFS among the arriving
packet and the queue tail is displaced (possibly several tail packets, for
differently-sized packets — paper footnote 4) and becomes the deflection
candidate.  Deflection samples two random switch-facing ports and
enqueues into the least loaded; if both are full — a strong signal of
network-wide congestion — the packet is force-inserted into one of them
at random, tail-dropping the largest-RFS packets, so the flows with the
*least* remaining bytes always survive.

The knobs on :class:`VertigoSwitchParams` expose the paper's ablations:

- ``fw_choices`` / ``def_choices`` — 1 = uniformly random, 2 = power of two
  (Figure 12's 1FW/2FW × 1DEF/2DEF grid).
- ``scheduling`` — False replaces SRPT queues with FIFO and displacement
  with arriving-packet deflection ("No Scheduling", Figure 11a).
- ``deflection`` — False turns the deflection step into a selective drop
  ("No Deflection", Figure 11a).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.forwarding.base import ForwardingPolicy
from repro.net.packet import Packet
from repro.net.queues import ClassLaneQueue, RankedQueue
from repro.net.switch import Switch

#: Per-packet deflection budget; the hop limit is the real loop guard, this
#: mirrors the retcnt-style bound so a packet cannot bounce indefinitely.
DEFAULT_MAX_DEFLECTIONS = 32


@dataclass(frozen=True)
class VertigoSwitchParams:
    """Configuration of the in-network component."""

    fw_choices: int = 2
    def_choices: int = 2
    scheduling: bool = True    # SRPT-ranked queues + displacement
    deflection: bool = True    # deflect displaced packets (vs. drop them)
    max_deflections: int = DEFAULT_MAX_DEFLECTIONS

    def __post_init__(self) -> None:
        if self.fw_choices < 1 or self.def_choices < 1:
            raise ValueError("choice counts must be >= 1")


class VertigoPolicy(ForwardingPolicy):
    """Power-of-two forwarding with selective deflection and dropping."""

    def __init__(self, switch: Switch, rng: random.Random,
                 params: Optional[VertigoSwitchParams] = None) -> None:
        super().__init__(switch, rng)
        self.params = params or VertigoSwitchParams()

    @property
    def uses_ranked_queues(self) -> bool:  # type: ignore[override]
        return self.params.scheduling

    # -- forwarding ------------------------------------------------------------

    def route(self, packet: Packet, in_port: int) -> None:
        candidates = self.switch.candidates(packet.dst)
        if not candidates:
            self.switch.drop(packet, "no_route")
            return
        port = self.power_of_n_choice(candidates, self.params.fw_choices)
        if self.switch.ports[port].fits(packet):
            self.switch.enqueue(port, packet)
            return
        if self.params.scheduling:
            self._displace_and_enqueue(port, packet)
        else:
            # FIFO queues cannot displace; the arriving packet detours.
            self._deflect(packet, exclude=port)

    def _displace_and_enqueue(self, port: int, packet: Packet) -> None:
        """Insert into a full SRPT queue by displacing larger-RFS packets.

        The displaced packets (or the arriving packet itself, when its RFS
        is the largest) become deflection candidates.  Under priority
        lanes, displacement competes only within the packet's own class
        lane — deflection never evicts traffic from another class.
        """
        queue = self._ranked_lane(port, packet)
        assert isinstance(queue, RankedQueue)
        victims: List[Packet] = []
        while not queue.fits(packet):
            tail = queue.peek_tail()
            if tail is None or tail.rank() <= packet.rank():
                # Arriving packet has the largest remaining flow size:
                # it detours, together with any already-displaced
                # victims (restoring them is not always possible under
                # shared-buffer thresholds, and they are exactly the
                # packets Vertigo would deflect next anyway).
                self._deflect(packet, exclude=port)
                for victim in victims:
                    self._deflect(victim, exclude=port)
                return
            victims.append(queue.pop_tail(self.switch.engine.now))
        self.switch.enqueue(port, packet)
        for victim in victims:
            self._deflect(victim, exclude=port)

    # -- deflection -------------------------------------------------------------

    def _deflection_targets(self, exclude: int) -> Sequence[int]:
        return self.deflection_targets(exclude)

    def _deflect(self, packet: Packet, exclude: int) -> None:
        switch = self.switch
        if not self.params.deflection:
            switch.drop(packet, "selective_drop")
            return
        if packet.deflections >= self.params.max_deflections:
            switch.drop(packet, "deflection_limit")
            return
        targets = self._deflection_targets(exclude)
        if not targets:
            switch.drop(packet, "no_deflection_target")
            return
        chosen = self.power_of_n_choice(targets, self.params.def_choices)
        switch.deflected(packet, exclude, chosen)
        if switch.ports[chosen].fits(packet):
            switch.enqueue(chosen, packet)
            return
        # Both randomly sampled queues full: extreme congestion.  Insert
        # into the chosen queue anyway, dropping the largest-RFS packets so
        # the smallest remaining flows keep their buffer space (§3.2).
        self._force_insert(chosen, packet)

    def _ranked_lane(self, port: int, packet: Packet):
        """The queue displacement operates on: the packet's class lane."""
        queue = self.switch.ports[port].queue
        if isinstance(queue, ClassLaneQueue):
            return queue.lane_for(packet)
        return queue

    def _force_insert(self, port: int, packet: Packet) -> None:
        switch = self.switch
        queue = self._ranked_lane(port, packet)
        if not self.params.scheduling or not isinstance(queue, RankedQueue):
            switch.drop(packet, "congestion_drop")
            return
        while not queue.fits(packet):
            tail = queue.peek_tail()
            if tail is None or tail.rank() <= packet.rank():
                switch.drop(packet, "congestion_drop")
                return
            victim = queue.pop_tail(switch.engine.now)
            switch.drop(victim, "congestion_displaced")
        switch.enqueue(port, packet)
