"""Forwarding policy interface and shared selection helpers."""

from __future__ import annotations

import abc
import random
from typing import List, Sequence

from repro.net.packet import Packet
from repro.net.switch import Switch


class ForwardingPolicy(abc.ABC):
    """Per-switch packet routing and overflow handling.

    Subclasses set :attr:`uses_ranked_queues` when they require RFS-sorted
    output queues (the network builder picks the queue flavour from it).
    """

    uses_ranked_queues = False

    def __init__(self, switch: Switch, rng: random.Random) -> None:
        self.switch = switch
        self.rng = rng

    @abc.abstractmethod
    def route(self, packet: Packet, in_port: int) -> None:
        """Decide the fate of ``packet`` arriving on ``in_port``."""

    # -- shared helpers --------------------------------------------------------

    def least_loaded(self, candidates: Sequence[int]) -> int:
        """Port with the lowest queue occupancy; ties by port order."""
        switch = self.switch
        return min(candidates, key=lambda port: (switch.queue_bytes(port),
                                                 port))

    def sample_two(self, candidates: Sequence[int]) -> List[int]:
        """Sample up to two distinct candidates uniformly at random."""
        if len(candidates) <= 2:
            return list(candidates)
        return self.rng.sample(candidates, 2)

    def power_of_n_choice(self, candidates: Sequence[int], n: int) -> int:
        """Power-of-``n``-choices: sample ``n`` ports, take the least loaded.

        ``n = 1`` degenerates to uniformly random selection.
        """
        if not candidates:
            raise ValueError("no candidate ports")
        if len(candidates) == 1:
            return candidates[0]
        if n <= 1:
            return self.rng.choice(list(candidates))
        sampled = candidates if len(candidates) <= n \
            else self.rng.sample(list(candidates), n)
        return self.least_loaded(sampled)
