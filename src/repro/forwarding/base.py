"""Forwarding policy interface and shared selection helpers.

Per-packet routing is the simulator's hottest path after the event
kernel, so the base class carries two memoization layers shared by the
concrete policies:

- a per-(flow, src, dst) cache of *static* hash-based port choices
  (:meth:`flow_hash_port`) — the hash is a pure function of the flow key
  and the per-switch salt, so the cached decision is byte-identical to
  recomputing it on every packet;
- a per-excluded-port cache of deflection target tuples
  (:meth:`deflection_targets`) — the switch-facing port set only changes
  when the topology does.

Both caches are dropped by :meth:`invalidate_cache`, which
:meth:`repro.net.switch.Switch.topology_changed` invokes on any runtime
FIB/port/link change.  Load-*dependent* decisions (DRILL sampling,
power-of-two choices) are never cached.
"""

from __future__ import annotations

import abc
import random
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.packet import Packet
from repro.net.switch import Switch


class ForwardingPolicy(abc.ABC):
    """Per-switch packet routing and overflow handling.

    Subclasses set :attr:`uses_ranked_queues` when they require RFS-sorted
    output queues (the network builder picks the queue flavour from it).
    """

    uses_ranked_queues = False

    def __init__(self, switch: Switch, rng: random.Random) -> None:
        self.switch = switch
        self.rng = rng
        self._flow_port_cache: Dict[Tuple[int, int, int], int] = {}
        self._deflection_cache: Dict[int, Tuple[int, ...]] = {}

    @abc.abstractmethod
    def route(self, packet: Packet, in_port: int) -> None:
        """Decide the fate of ``packet`` arriving on ``in_port``."""

    def invalidate_cache(self) -> None:
        """Drop memoized routing state after a topology/link change."""
        self._flow_port_cache.clear()
        self._deflection_cache.clear()

    # -- shared helpers --------------------------------------------------------

    def flow_hash_port(self, packet: Packet, salt: int) -> Optional[int]:
        """ECMP-style static per-flow hash over the FIB candidates.

        The choice depends only on (flow id, src, dst, salt) and the FIB
        entry, so it is memoized per flow key; the cache is invalidated by
        :meth:`invalidate_cache` when the topology changes.  Returns
        ``None`` when the live FIB holds no candidates (the switch lost
        every path to the destination) — callers drop with ``no_route``.
        """
        key = (packet.flow_id, packet.src, packet.dst)
        port = self._flow_port_cache.get(key)
        if port is None:
            candidates = self.switch.candidates(packet.dst)
            if not candidates:
                return None
            digest = zlib.crc32(
                f"{key[0]}:{key[1]}:{key[2]}:{salt}".encode())
            port = candidates[digest % len(candidates)]
            self._flow_port_cache[key] = port
        return port

    def deflection_targets(self, exclude: int) -> Tuple[int, ...]:
        """Switch-facing ports other than ``exclude``, memoized."""
        targets = self._deflection_cache.get(exclude)
        if targets is None:
            targets = tuple(port for port in self.switch.switch_ports
                            if port != exclude)
            self._deflection_cache[exclude] = targets
        return targets

    def least_loaded(self, candidates: Sequence[int]) -> int:
        """Port with the lowest queue occupancy; ties by port order."""
        ports = self.switch.ports
        return min((ports[port].queue.bytes, port)
                   for port in candidates)[1]

    def sample_two(self, candidates: Sequence[int]) -> List[int]:
        """Sample up to two distinct candidates uniformly at random."""
        if len(candidates) <= 2:
            return list(candidates)
        return self.rng.sample(candidates, 2)

    def power_of_n_choice(self, candidates: Sequence[int], n: int) -> int:
        """Power-of-``n``-choices: sample ``n`` ports, take the least loaded.

        ``n = 1`` degenerates to uniformly random selection.
        """
        if not candidates:
            raise ValueError("no candidate ports")
        if len(candidates) == 1:
            return candidates[0]
        if n <= 1:
            return self.rng.choice(list(candidates))
        sampled = candidates if len(candidates) <= n \
            else self.rng.sample(list(candidates), n)
        return self.least_loaded(sampled)
