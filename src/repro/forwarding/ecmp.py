"""ECMP: flow-hash multipath with tail drop.

The most widely deployed datacenter forwarding scheme and the paper's
plainest baseline.  All packets of a flow hash to the same shortest-path
candidate (no reordering), and a full output queue simply drops the
arriving packet.
"""

from __future__ import annotations

import random

from repro.forwarding.base import ForwardingPolicy
from repro.net.packet import Packet
from repro.net.switch import Switch


class EcmpPolicy(ForwardingPolicy):
    """Per-flow static hashing over equal-cost next hops.

    The hash decision is a pure function of the flow key and this
    switch's salt, so it is memoized per flow (``flow_hash_port``);
    :meth:`~repro.forwarding.base.ForwardingPolicy.invalidate_cache`
    drops the memo on topology changes.
    """

    def __init__(self, switch: Switch, rng: random.Random) -> None:
        super().__init__(switch, rng)
        # Per-switch salt decorrelates hash decisions across hops and
        # avoids ECMP polarization, as deployed switches do.
        self._salt = rng.getrandbits(32)

    def route(self, packet: Packet, in_port: int) -> None:
        port = self.flow_hash_port(packet, self._salt)
        if port is None:
            self.switch.drop(packet, "no_route")
            return
        if self.switch.ports[port].fits(packet):
            self.switch.enqueue(port, packet)
        else:
            self.switch.drop(packet, "overflow")
