"""ECMP: flow-hash multipath with tail drop.

The most widely deployed datacenter forwarding scheme and the paper's
plainest baseline.  All packets of a flow hash to the same shortest-path
candidate (no reordering), and a full output queue simply drops the
arriving packet.
"""

from __future__ import annotations

import random
import zlib

from repro.forwarding.base import ForwardingPolicy
from repro.net.packet import Packet
from repro.net.switch import Switch


class EcmpPolicy(ForwardingPolicy):
    """Per-flow static hashing over equal-cost next hops."""

    def __init__(self, switch: Switch, rng: random.Random) -> None:
        super().__init__(switch, rng)
        # Per-switch salt decorrelates hash decisions across hops and
        # avoids ECMP polarization, as deployed switches do.
        self._salt = rng.getrandbits(32)

    def _hash_choice(self, packet: Packet, n: int) -> int:
        key = f"{packet.flow_id}:{packet.src}:{packet.dst}:{self._salt}"
        return zlib.crc32(key.encode()) % n

    def route(self, packet: Packet, in_port: int) -> None:
        candidates = self.switch.candidates(packet.dst)
        port = candidates[self._hash_choice(packet, len(candidates))]
        if self.switch.ports[port].fits(packet):
            self.switch.enqueue(port, packet)
        else:
            self.switch.drop(packet, "overflow")
