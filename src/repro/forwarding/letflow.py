"""LetFlow (Vanini et al., NSDI 2017): flowlet switching.

An additional datacenter load-balancing baseline from the paper's related
work (§5).  Flows are split at natural burst gaps: when a packet of a
flow arrives more than the *flowlet gap* after its predecessor, the flow
is rehashed onto a new random equal-cost path.  Packets inside a flowlet
stick to one path, so no reordering is introduced, while elephants still
spread over time.  Overflow tail-drops like ECMP/DRILL — LetFlow balances
load but cannot absorb last-hop incast.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.forwarding.base import ForwardingPolicy
from repro.net.packet import Packet
from repro.net.switch import Switch
from repro.sim.units import usecs

#: Default flowlet inactivity gap.  LetFlow suggests on the order of the
#: network RTT; the runner can override per profile.
DEFAULT_FLOWLET_GAP_NS = usecs(500)


class LetFlowPolicy(ForwardingPolicy):
    """Flowlet-gap path switching over equal-cost next hops."""

    def __init__(self, switch: Switch, rng: random.Random, *,
                 flowlet_gap_ns: int = DEFAULT_FLOWLET_GAP_NS) -> None:
        super().__init__(switch, rng)
        if flowlet_gap_ns <= 0:
            raise ValueError("flowlet gap must be positive")
        self.flowlet_gap_ns = flowlet_gap_ns
        # flow id -> (chosen port, last packet time).
        self._flowlets: Dict[int, Tuple[int, int]] = {}
        self.flowlet_switches = 0

    def route(self, packet: Packet, in_port: int) -> None:
        candidates = self.switch.candidates(packet.dst)
        if not candidates:
            self.switch.drop(packet, "no_route")
            return
        now = self.engine_now()
        entry = self._flowlets.get(packet.flow_id)
        if (entry is None or now - entry[1] > self.flowlet_gap_ns
                or entry[0] >= len(self.switch.ports)
                or entry[0] not in candidates):
            port = self.rng.choice(list(candidates))
            if entry is not None and entry[0] != port:
                self.flowlet_switches += 1
        else:
            port = entry[0]
        self._flowlets[packet.flow_id] = (port, now)
        if self.switch.ports[port].fits(packet):
            self.switch.enqueue(port, packet)
        else:
            self.switch.drop(packet, "overflow")

    def engine_now(self) -> int:
        return self.switch.engine.now
