"""Per-packet forwarding and overflow policies.

Each policy implements the full per-packet decision a switch takes:
choosing an egress port among the FIB candidates, and reacting when the
chosen output queue is full.

- :class:`~repro.forwarding.ecmp.EcmpPolicy` — flow-hash path selection,
  tail-drop on overflow (the deployed datacenter default).
- :class:`~repro.forwarding.drill.DrillPolicy` — DRILL (SIGCOMM'17):
  per-packet power-of-``d``-choices-plus-memory micro load balancing,
  tail-drop on overflow.
- :class:`~repro.forwarding.dibs.DibsPolicy` — DIBS (EuroSys'14): ECMP
  path selection, random deflection of the *arriving* packet on overflow.
- :class:`~repro.forwarding.vertigo.VertigoPolicy` — the paper's selective
  deflection: SRPT-ranked queues, power-of-two forwarding and deflection,
  largest-RFS displacement, selective drop under global congestion.
"""

from repro.forwarding.base import ForwardingPolicy
from repro.forwarding.ecmp import EcmpPolicy
from repro.forwarding.drill import DrillPolicy
from repro.forwarding.dibs import DibsPolicy
from repro.forwarding.letflow import LetFlowPolicy
from repro.forwarding.pabo import PaboPolicy
from repro.forwarding.vertigo import VertigoPolicy, VertigoSwitchParams

__all__ = [
    "ForwardingPolicy",
    "EcmpPolicy",
    "DrillPolicy",
    "DibsPolicy",
    "LetFlowPolicy",
    "PaboPolicy",
    "VertigoPolicy",
    "VertigoSwitchParams",
]
