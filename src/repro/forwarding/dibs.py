"""DIBS (Zarifis et al., EuroSys 2014): random packet deflection.

The paper's representative of deflection routing (§2).  Path selection is
ordinary ECMP; when the chosen output queue is full, the *arriving* packet
is detoured to a randomly selected port with free buffer space instead of
being dropped.  Deflections are bounded per packet (DIBS relies on the IP
TTL for this); when the bound is hit or no port has space, the packet is
dropped.  Host-facing ports other than the destination's are never
deflection targets.
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.forwarding.base import ForwardingPolicy
from repro.net.packet import Packet
from repro.net.switch import Switch

#: Default per-packet deflection budget (DIBS evaluates TTL-bounded
#: deflection; the paper's setup lets packets bounce many times).
DEFAULT_MAX_DEFLECTIONS = 32


class DibsPolicy(ForwardingPolicy):
    """ECMP forwarding + random deflection on overflow."""

    def __init__(self, switch: Switch, rng: random.Random, *,
                 max_deflections: int = DEFAULT_MAX_DEFLECTIONS) -> None:
        super().__init__(switch, rng)
        self.max_deflections = max_deflections
        self._salt = rng.getrandbits(32)

    def _ecmp_port(self, packet: Packet) -> int:
        return self.flow_hash_port(packet, self._salt)

    def _deflection_targets(self, exclude: int) -> Tuple[int, ...]:
        return self.deflection_targets(exclude)

    def route(self, packet: Packet, in_port: int) -> None:
        port = self._ecmp_port(packet)
        switch = self.switch
        if port is None:
            switch.drop(packet, "no_route")
            return
        if switch.ports[port].fits(packet):
            switch.enqueue(port, packet)
            return
        # Deflect the arriving packet to a random port with space.
        if packet.deflections >= self.max_deflections:
            switch.drop(packet, "deflection_limit")
            return
        targets = [target for target in self._deflection_targets(port)
                   if switch.ports[target].fits(packet)]
        if not targets:
            switch.drop(packet, "deflect_failed")
            return
        choice = self.rng.choice(targets)
        switch.deflected(packet, port, choice)
        switch.enqueue(choice, packet)
