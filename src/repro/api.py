"""repro.api — the fluent public experiment surface.

One import gives the whole workflow::

    from repro.api import Experiment

    report = (Experiment.bench()
              .system("vertigo")
              .transport("dctcp")
              .workload(bg_load=0.5, incast_load=0.25)
              .trace(level="flow", sample_us=100)
              .run()
              .report())
    print(report.row())

The builder is a thin, deferred veneer over
:class:`~repro.experiments.config.ExperimentConfig`: nothing is
constructed until :meth:`Experiment.build`, which delegates to the same
``bench_profile`` / ``paper_profile`` constructors the config class
exposes.  A façade-built run is therefore digest-identical to one from
the equivalent hand-built config — the builder can never drift from the
profiles it wraps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from dataclasses import replace as _replace

from repro.experiments.config import ExperimentConfig, WorkloadConfig
from repro.experiments.parallel import run_many
from repro.experiments.runner import RunResult, run_experiment
from repro.faults.spec import FaultSpec, parse_faults, parse_time_ns
from repro.net.topology import Topology
from repro.sim.units import MILLISECOND
from repro.trace.tracer import TraceConfig
from repro.workload.spec import WorkloadSpec, parse_workload

__all__ = ["Experiment"]

_PROFILES = ("bench", "paper", "bench_fat_tree")


class Experiment:
    """Fluent builder for one experiment (or a seed sweep of it).

    Construct via :meth:`bench` / :meth:`paper` / :meth:`bench_fat_tree`,
    chain setters (each returns ``self``), then :meth:`run` — or
    :meth:`build` to get the underlying
    :class:`~repro.experiments.config.ExperimentConfig`.
    """

    def __init__(self, profile: str = "bench", **profile_kwargs) -> None:
        if profile not in _PROFILES:
            raise ValueError(f"unknown profile {profile!r}; "
                             f"choose from {_PROFILES}")
        self._profile = profile
        self._profile_kwargs: Dict[str, object] = dict(profile_kwargs)
        self._system = "vertigo"
        self._system_kwargs: Dict[str, object] = {}
        self._transport = "dctcp"
        self._transport_overrides: Dict[str, object] = {}
        self._topology: Optional[Topology] = None
        self._seed: Optional[int] = None
        self._sim_time_ns: Optional[int] = None
        self._faults: tuple = ()
        self._workload_specs: Optional[tuple] = None
        self._warmup_ns: Optional[int] = None
        self._cooldown_ns: Optional[int] = None
        self._trace: Optional[TraceConfig] = None
        self._telemetry_interval_ns: Optional[int] = None
        self._sanitize = False

    # -- constructors ----------------------------------------------------------

    @classmethod
    def bench(cls, **profile_kwargs) -> "Experiment":
        """The scaled-down bench profile (laptop-speed sweeps)."""
        return cls("bench", **profile_kwargs)

    @classmethod
    def paper(cls, **profile_kwargs) -> "Experiment":
        """The paper's full-scale §4.1 setup (slow in pure Python)."""
        return cls("paper", **profile_kwargs)

    @classmethod
    def bench_fat_tree(cls, k: int = 4, **profile_kwargs) -> "Experiment":
        """Bench profile on a k-ary fat tree."""
        return cls("bench_fat_tree", k=k, **profile_kwargs)

    # -- fluent setters --------------------------------------------------------

    def system(self, name: str, **system_kwargs) -> "Experiment":
        """Select the evaluated system (``vertigo``, ``ecmp``, ...)."""
        self._system = name
        self._system_kwargs = dict(system_kwargs)
        return self

    def transport(self, name: str, **overrides) -> "Experiment":
        """Select the transport (``dctcp``, ``reno``/``tcp``, ``swift``).

        Keyword overrides patch the resulting
        :class:`~repro.transport.base.TransportConfig` via
        ``with_overrides`` after the profile's defaults are applied.
        """
        self._transport = name
        self._transport_overrides = dict(overrides)
        return self

    def workload(self, *specs: Union[str, WorkloadSpec],
                 warmup: Optional[Union[int, str]] = None,
                 cooldown: Optional[Union[int, str]] = None,
                 **workload_kwargs) -> "Experiment":
        """Set the traffic mix.

        Positional arguments compose a spec-based workload:
        :class:`~repro.workload.spec.WorkloadSpec` objects and/or
        ``--workload`` directive strings (``"coflow:width=8,stages=2"``,
        see :func:`repro.workload.spec.parse_workload`), replacing the
        profile's default mix.  ``warmup``/``cooldown`` trim the
        measurement window (int ns or a time string like ``"10ms"``).
        Keyword arguments are the legacy flat knobs (``bg_load``,
        ``incast_load``, ...) routed through the profile; the two styles
        are mutually exclusive.
        """
        if specs and workload_kwargs:
            raise ValueError("give either workload specs or the legacy "
                             "flat kwargs, not both")
        if specs:
            self._workload_specs = tuple(
                spec if isinstance(spec, WorkloadSpec)
                else parse_workload(spec) for spec in specs)
        if warmup is not None:
            self._warmup_ns = parse_time_ns(warmup) \
                if isinstance(warmup, str) else warmup
        if cooldown is not None:
            self._cooldown_ns = parse_time_ns(cooldown) \
                if isinstance(cooldown, str) else cooldown
        self._profile_kwargs.update(workload_kwargs)
        return self

    def topology(self, topology: Topology) -> "Experiment":
        self._topology = topology
        return self

    def seed(self, seed: int) -> "Experiment":
        self._seed = seed
        return self

    def sim_time_ns(self, sim_time_ns: int) -> "Experiment":
        self._sim_time_ns = sim_time_ns
        return self

    def sim_ms(self, milliseconds: int) -> "Experiment":
        return self.sim_time_ns(milliseconds * MILLISECOND)

    def faults(self, *directives: Union[str, FaultSpec]) -> "Experiment":
        """Fault scenario: ``FaultSpec`` objects and/or directive strings
        (the ``--fault`` CLI syntax, see :func:`repro.faults.parse_faults`).
        """
        specs: List[FaultSpec] = []
        strings: List[str] = []
        for directive in directives:
            if isinstance(directive, FaultSpec):
                specs.append(directive)
            else:
                strings.append(directive)
        if strings:
            specs.extend(parse_faults(strings))
        self._faults = tuple(specs)
        return self

    def trace(self, level: str = "flow", *,
              sample_us: Optional[int] = None,
              config: Optional[TraceConfig] = None,
              **trace_kwargs) -> "Experiment":
        """Enable observability (:mod:`repro.trace`) for the run.

        Either pass a prebuilt ``config`` or the common knobs: ``level``
        (``"flow"`` or ``"packet"``) and ``sample_us`` (sampler period in
        microseconds; None disables the samplers).
        """
        if config is not None:
            self._trace = config
        else:
            period = sample_us * 1000 if sample_us is not None else None
            self._trace = TraceConfig(level=level, sample_period_ns=period,
                                      **trace_kwargs)
        return self

    def telemetry(self, interval_us: int) -> "Experiment":
        """Attach the congestion-telemetry monitor at this period."""
        self._telemetry_interval_ns = interval_us * 1000
        return self

    def sanitize(self, enabled: bool = True) -> "Experiment":
        """Run under the runtime invariant sanitizer."""
        self._sanitize = enabled
        return self

    # -- terminal operations ----------------------------------------------------

    def build(self) -> ExperimentConfig:
        """Materialize the :class:`ExperimentConfig` this builder describes."""
        kwargs = dict(self._profile_kwargs)
        if self._profile == "paper":
            config = ExperimentConfig.paper_profile(
                system=self._system, transport=self._transport, **kwargs)
            # paper_profile fixes topology/duration/seed; apply overrides.
            if self._topology is not None:
                config.topology = self._topology
            if self._sim_time_ns is not None:
                config.sim_time_ns = self._sim_time_ns
            if self._seed is not None:
                config.seed = self._seed
            if self._system_kwargs:
                config = config.with_system(self._system,
                                            **self._system_kwargs)
            if self._faults:
                config.faults = self._faults
        else:
            if self._topology is not None:
                kwargs["topology"] = self._topology
            if self._sim_time_ns is not None:
                kwargs["sim_time_ns"] = self._sim_time_ns
            if self._seed is not None:
                kwargs["seed"] = self._seed
            if self._faults:
                kwargs["faults"] = self._faults
            kwargs.update(self._system_kwargs)
            if self._profile == "bench_fat_tree":
                config = ExperimentConfig.bench_fat_tree(
                    system=self._system, transport=self._transport, **kwargs)
            else:
                config = ExperimentConfig.bench_profile(
                    system=self._system, transport=self._transport, **kwargs)
        if self._workload_specs is not None:
            config.workload = WorkloadConfig(self._workload_specs)
        if self._warmup_ns is not None or self._cooldown_ns is not None:
            config.workload = _replace(
                config.workload,
                warmup_ns=self._warmup_ns or 0,
                cooldown_ns=self._cooldown_ns or 0)
        if self._transport_overrides:
            config.transport = config.transport.with_overrides(
                **self._transport_overrides)
        if self._trace is not None:
            config.trace = self._trace
        if self._telemetry_interval_ns is not None:
            config.telemetry_interval_ns = self._telemetry_interval_ns
        if self._sanitize:
            config.sanitize = True
        return config

    def run(self) -> RunResult:
        """Build and execute the experiment."""
        return run_experiment(self.build())

    def run_seeds(self, seeds: Sequence[int], *,
                  jobs: Optional[int] = None) -> List[RunResult]:
        """Run the same experiment across seeds (optionally in parallel).

        Results come back in seed order and are digest-identical whether
        they executed serially or across worker processes.
        """
        configs = []
        for seed in seeds:
            configs.append(self.seed(seed).build())
        return run_many(configs, jobs=jobs)

    def run_supervised(self, seeds: Sequence[int], *,
                       jobs: Optional[int] = None,
                       policy=None, journal: Optional[str] = None,
                       resume: Optional[str] = None):
        """Run the seed sweep under the crash-tolerant supervisor.

        Same ordering and digests as :meth:`run_seeds`, plus worker-crash
        recovery, per-run wall-clock deadlines, bounded deterministic
        retry, and an optional checkpoint journal (``journal=`` starts
        one, ``resume=`` continues one after an interruption).  Returns a
        :class:`repro.runtime.SweepReport` whose ``results`` are in seed
        order (``None`` for points that could not be recovered).
        """
        from repro.runtime import run_supervised as _run_supervised

        configs = [self.seed(seed).build() for seed in seeds]
        return _run_supervised(configs, jobs=jobs, policy=policy,
                               journal=journal, resume=resume)
