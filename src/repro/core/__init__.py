"""Vertigo: the paper's primary contribution.

This package implements the three components of Vertigo (CoNEXT 2021):

- :mod:`repro.core.flowinfo` — the ``flowinfo`` auxiliary header carried by
  every packet (RFS, retcnt, flow-id, first-packet flag) and the reversible
  rotation-based re-transmission *boosting* arithmetic.
- :mod:`repro.core.marking` — the TX-path marking component (SRPT and LAS
  disciplines, cuckoo-filter duplicate detection, boosting).
- :mod:`repro.core.ordering` — the transport-independent RX-path ordering
  component (Init / In-order / Out-of-order state machine with the
  reordering timeout).
- :mod:`repro.core.scheduler` — the PIEO-style rank queue abstraction used
  by Vertigo switches (min-dequeue + tail extract).
- :mod:`repro.core.cuckoo` — a cuckoo filter, used by the marking and
  ordering components for fast duplicate detection.

The in-network selective-deflection logic lives in
:mod:`repro.forwarding.vertigo` so it sits beside the ECMP / DRILL / DIBS
baselines it is evaluated against.
"""

from repro.core.cuckoo import CuckooFilter
from repro.core.flowinfo import (
    FlowInfo,
    MarkingDiscipline,
    boost_rfs,
    rotl32,
    rotr32,
    unboost_rfs,
)
from repro.core.marking import MarkingComponent
from repro.core.ordering import OrderingComponent, OrderingState
from repro.core.scheduler import RankQueue
from repro.core.wire import (
    decode_ipv4_option,
    decode_l3,
    encode_ipv4_option,
    encode_l3,
)

__all__ = [
    "CuckooFilter",
    "FlowInfo",
    "MarkingDiscipline",
    "MarkingComponent",
    "OrderingComponent",
    "OrderingState",
    "RankQueue",
    "boost_rfs",
    "rotl32",
    "rotr32",
    "unboost_rfs",
    "encode_l3",
    "decode_l3",
    "encode_ipv4_option",
    "decode_ipv4_option",
]
