"""Wire encodings of the flowinfo header (paper Figure 3).

The paper proposes two encodings:

- **Layer-3 header** — flowinfo encapsulates the IP header behind its own
  ethertype: ``RFS (32) | retcnt (4) | flow-id (3) | FLAGS (1) |
  ethertype (16)`` = 7 bytes of extra wire overhead.
- **IPv4 option** — a standard option TLV inside the IPv4 header:
  ``type (8) | length (8) | RFS (32) | retcnt (4) | flow-id (3) |
  FLAGS (1) | END (8)`` = 8 bytes of overhead.

The simulator carries :class:`~repro.core.flowinfo.FlowInfo` as a parsed
object, but these functions are the byte-exact encode/decode pair a host
prototype needs, and the round-trip is property-tested.
"""

from __future__ import annotations

import struct

from repro.core.flowinfo import FlowInfo

#: Ethertype claimed by the L3 flowinfo encapsulation (experimental range).
FLOWINFO_ETHERTYPE = 0x88B5
#: IPv4 option type for the flowinfo option (copied=1, class=2, number=20).
FLOWINFO_OPTION_TYPE = 0xD4
#: IPv4 end-of-options marker.
IPV4_OPTION_END = 0x00

L3_HEADER_LEN = 7
IPV4_OPTION_LEN = 8


def _pack_fields(info: FlowInfo) -> int:
    """retcnt(4) | flow_id3(3) | first(1) packed into one byte."""
    return (info.retcnt << 4) | (info.flow_id3 << 1) | int(info.first)


def _unpack_fields(byte: int) -> tuple:
    return (byte >> 4) & 0xF, (byte >> 1) & 0x7, bool(byte & 0x1)


def encode_l3(info: FlowInfo, inner_ethertype: int = 0x0800) -> bytes:
    """Encode as the 7-byte layer-3 encapsulation header."""
    return struct.pack("!IBH", info.rfs, _pack_fields(info),
                       inner_ethertype)


def decode_l3(data: bytes) -> tuple:
    """Decode a layer-3 flowinfo header; returns (FlowInfo, ethertype)."""
    if len(data) < L3_HEADER_LEN:
        raise ValueError(f"flowinfo L3 header needs {L3_HEADER_LEN} bytes, "
                         f"got {len(data)}")
    rfs, fields, ethertype = struct.unpack("!IBH", data[:L3_HEADER_LEN])
    retcnt, flow_id3, first = _unpack_fields(fields)
    return FlowInfo(rfs=rfs, retcnt=retcnt, flow_id3=flow_id3,
                    first=first), ethertype


def encode_ipv4_option(info: FlowInfo) -> bytes:
    """Encode as an 8-byte IPv4 option (type, length, payload, END)."""
    return struct.pack("!BBIBB", FLOWINFO_OPTION_TYPE, IPV4_OPTION_LEN,
                       info.rfs, _pack_fields(info), IPV4_OPTION_END)


def decode_ipv4_option(data: bytes) -> FlowInfo:
    """Decode the flowinfo IPv4 option."""
    if len(data) < IPV4_OPTION_LEN:
        raise ValueError(
            f"flowinfo option needs {IPV4_OPTION_LEN} bytes, "
            f"got {len(data)}")
    opt_type, length, rfs, fields, end = struct.unpack(
        "!BBIBB", data[:IPV4_OPTION_LEN])
    if opt_type != FLOWINFO_OPTION_TYPE:
        raise ValueError(f"not a flowinfo option: type 0x{opt_type:02x}")
    if length != IPV4_OPTION_LEN:
        raise ValueError(f"bad flowinfo option length {length}")
    if end != IPV4_OPTION_END:
        raise ValueError("flowinfo option not END-terminated")
    retcnt, flow_id3, first = _unpack_fields(fields)
    return FlowInfo(rfs=rfs, retcnt=retcnt, flow_id3=flow_id3, first=first)
