"""Vertigo TX-path marking component (paper §3.1).

Deployed as a transport-independent extension to the sender's network
stack.  For every outgoing data packet it:

1. detects re-transmissions with a cuckoo filter over a hash of the packet
   header (fast path), backed by an exact per-flow table (the "flow info
   hash table" of Figure 2);
2. computes the packet's rank — under **SRPT**, the flow's remaining bytes
   including this packet (which requires the application-provided flow
   size); under **LAS** (flow aging, §4.3), the bytes the flow has already
   sent — and writes it into the 32-bit RFS field;
3. applies *boosting* to re-transmissions: ``retcnt`` is incremented and
   the RFS field right-rotated so the packet's priority rises, reversibly
   (§3.1.2).

ACKs and other non-data packets are tagged with their wire size, i.e.
treated like the final packet of a minimal flow, so the reverse path is
never starved by deflection.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.cuckoo import CuckooFilter
from repro.core.flowinfo import (
    FLOW_ID3_MASK,
    FLOWINFO_WIRE_BYTES,
    RETCNT_MAX,
    RFS_MASK,
    FlowInfo,
    MarkingDiscipline,
    boost_rfs,
)
from repro.net.packet import Packet, PacketKind


@dataclass
class _FlowMarkState:
    size: Optional[int]          # advance flow size (None under LAS)
    remaining: Optional[int]     # SRPT bookkeeping
    attained: int = 0            # LAS bookkeeping
    retcnt: Dict[int, int] = field(default_factory=dict)  # seq -> retcnt


class MarkingComponent:
    """Per-host sender-side packet marker."""

    def __init__(self, discipline: MarkingDiscipline = MarkingDiscipline.SRPT,
                 boost_factor: int = 2, boosting: bool = True,
                 filter_capacity: int = 1 << 15, seed: int = 0) -> None:
        self.discipline = discipline
        self.boost_factor = boost_factor
        self.boosting = boosting
        self._filter = CuckooFilter(capacity=filter_capacity, seed=seed)
        self._flows: Dict[int, _FlowMarkState] = {}
        self.packets_marked = 0
        self.retransmissions_detected = 0

    # -- flow lifecycle ---------------------------------------------------------

    def register_flow(self, flow_id: int, size: Optional[int]) -> None:
        """Register a new outgoing flow.

        ``size`` is the application-provided flow size; it may be ``None``
        under LAS, which needs no advance knowledge.
        """
        if self.discipline is MarkingDiscipline.SRPT and size is None:
            raise ValueError("SRPT marking requires the flow size upfront")
        self._flows[flow_id] = _FlowMarkState(size=size, remaining=size)

    def flow_done(self, flow_id: int) -> None:
        """Drop per-flow state and evict its entries from the filter."""
        state = self._flows.pop(flow_id, None)
        if state is None:
            return
        for seq in state.retcnt:
            self._filter.delete(self._header_hash(flow_id, seq))

    # -- marking -------------------------------------------------------------------

    @staticmethod
    def _header_hash(flow_id: int, seq: int) -> int:
        """CRC over the invariant header fields (paper: CRC + cuckoo)."""
        return zlib.crc32(f"{flow_id}:{seq}".encode())

    def mark(self, packet: Packet) -> None:
        """Attach the flowinfo header (and its 7 wire bytes, Figure 3)."""
        if packet.kind is not PacketKind.DATA:
            packet.flowinfo = FlowInfo(rfs=min(packet.wire_bytes, RFS_MASK))
            packet.wire_bytes += FLOWINFO_WIRE_BYTES
            return
        state = self._flows.get(packet.flow_id)
        if state is None:
            # Unregistered flow (defensive): rank by wire size.
            packet.flowinfo = FlowInfo(rfs=min(packet.wire_bytes, RFS_MASK))
            packet.wire_bytes += FLOWINFO_WIRE_BYTES
            return
        self.packets_marked += 1
        packet.wire_bytes += FLOWINFO_WIRE_BYTES
        key = self._header_hash(packet.flow_id, packet.seq)
        # Fast-path membership via the cuckoo filter; false positives are
        # resolved against the exact table.
        if self._filter.contains(key) and packet.seq in state.retcnt:
            self._mark_retransmission(packet, state)
        else:
            self._mark_first_transmission(packet, state, key)

    def _original_rank(self, packet: Packet, state: _FlowMarkState) -> int:
        if self.discipline is MarkingDiscipline.SRPT:
            return min(state.size - packet.seq, RFS_MASK)
        return min(packet.seq, RFS_MASK)  # LAS: attained service

    def _is_first_packet(self, packet: Packet) -> bool:
        return packet.seq == 0

    def _mark_first_transmission(self, packet: Packet,
                                 state: _FlowMarkState, key: int) -> None:
        state.retcnt[packet.seq] = 0
        self._filter.insert(key)
        if state.remaining is not None:
            state.remaining = max(0, state.remaining - packet.payload)
        state.attained = max(state.attained, packet.end_seq)
        packet.flowinfo = FlowInfo(
            rfs=self._original_rank(packet, state),
            retcnt=0,
            flow_id3=packet.flow_id & FLOW_ID3_MASK,
            first=self._is_first_packet(packet))

    def _mark_retransmission(self, packet: Packet,
                             state: _FlowMarkState) -> None:
        self.retransmissions_detected += 1
        retcnt = min(state.retcnt[packet.seq] + 1, RETCNT_MAX)
        state.retcnt[packet.seq] = retcnt
        original = self._original_rank(packet, state)
        wire_rfs = boost_rfs(original, retcnt, self.boost_factor) \
            if self.boosting else original
        packet.flowinfo = FlowInfo(
            rfs=wire_rfs,
            retcnt=retcnt if self.boosting else 0,
            flow_id3=packet.flow_id & FLOW_ID3_MASK,
            first=self._is_first_packet(packet))
