"""Vertigo RX-path ordering component (paper §3.3, Figure 4).

The first software entity to see packets off the NIC.  Per active flow it
keeps the expected RFS and a buffer of early (out-of-order) packets, and
runs the paper's three-state machine:

- **Init** — waiting for the flow's first packet (FLAGS bit set).
- **In-order receive** — arriving packet matches the expected RFS: deliver
  immediately and advance the expectation.
- **Out-of-order receive** — an early packet arrived; buffer it and arm
  the reordering timeout τ.  Four events are handled exactly as §3.3.2
  enumerates: more early packets (buffer, keep waiting), a gap-filling
  packet (deliver the now-contiguous run, subtract the elapsed wait from
  the next timer), a *late* packet whose RFS precedes the expectation
  (a delayed re-transmission or duplicate — passed straight up), and the
  timeout itself (release up to the next gap so the transport's own
  recovery — fast retransmit included — takes over).

Boosted re-transmissions are first un-rotated (``retcnt`` left rotations)
to recover the original RFS.  Under SRPT the expected RFS *decreases* by
each delivered payload; under LAS the attained-service tag *increases* —
the ``direction`` of the state machine is the only difference.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.analysis import sanitize as _sanitize
from repro.checkpoint.protocol import Snapshot
from repro.core.flowinfo import MarkingDiscipline
from repro.trace import hooks as _trace_hooks

_SANITIZE = _sanitize.register(__name__)
_TRACE = _trace_hooks.register(__name__)
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Engine
from repro.sim.timers import Timer
from repro.sim.units import usecs

#: Paper default reordering timeout (τ) for the evaluated topologies.
DEFAULT_TIMEOUT_NS = usecs(360)


class OrderingState(enum.Enum):
    INIT = "init"
    IN_ORDER = "in_order"
    OUT_OF_ORDER = "out_of_order"


@dataclass
class _FlowOrderState:
    expected: Optional[int] = None          # original-RFS of the next packet
    buffer: Dict[int, Tuple[Packet, int]] = field(default_factory=dict)
    state: OrderingState = OrderingState.INIT
    timer: Optional[Timer] = None

    def stop_timer(self) -> None:
        if self.timer is not None:
            self.timer.stop()


class OrderingComponent(Snapshot):
    """Per-host receive-side re-sequencing shim."""

    SNAPSHOT_ATTRS = ("engine", "deliver", "_raw_deliver", "_released_uids",
                      "timeout_ns", "boost_factor", "discipline", "_flows",
                      "packets_buffered", "timeouts_fired", "label")

    def __init__(self, engine: Engine, deliver: Callable[[Packet], None],
                 timeout_ns: int = DEFAULT_TIMEOUT_NS,
                 boost_factor: int = 2,
                 discipline: MarkingDiscipline = MarkingDiscipline.SRPT
                 ) -> None:
        self.engine = engine
        self.deliver = deliver
        self._raw_deliver = deliver
        #: Release-exactly-once bookkeeping (sanitize mode only; empty
        #: otherwise).
        self._released_uids: Set[int] = set()
        if _SANITIZE:
            # Release-exactly-once: the shim must never hand the same
            # packet object up twice (late *re-transmissions* are distinct
            # packets and are legitimately passed through).  Bound at
            # construction so the off path pays nothing per packet.
            self.deliver = self._checked_deliver
        self.timeout_ns = timeout_ns
        self.boost_factor = boost_factor
        self.discipline = discipline
        self._flows: Dict[int, _FlowOrderState] = {}
        self.packets_buffered = 0
        self.timeouts_fired = 0
        #: Owning host name (stamped by the host); trace identity.
        self.label = ""

    def _checked_deliver(self, packet: Packet) -> None:
        _sanitize.check(packet.uid not in self._released_uids,
                        "ordering released packet uid=%d (flow %d) "
                        "twice", packet.uid, packet.flow_id)
        self._released_uids.add(packet.uid)
        self._raw_deliver(packet)

    # -- tag arithmetic -----------------------------------------------------------

    def _next_expected(self, tag: int, payload: int) -> int:
        if self.discipline is MarkingDiscipline.SRPT:
            return tag - payload
        return tag + payload

    def _is_early(self, tag: int, expected: int) -> bool:
        """Early = belongs later in the flow than the expected packet."""
        if self.discipline is MarkingDiscipline.SRPT:
            return tag < expected
        return tag > expected

    # -- flow lifecycle -------------------------------------------------------------

    def flow_done(self, flow_id: int) -> None:
        """Tear down per-flow state (transport signalled completion)."""
        state = self._flows.pop(flow_id, None)
        if state is not None:
            state.stop_timer()
            # Anything still buffered is stale duplicates; hand it up so
            # the transport can re-ACK, never silently swallow bytes.
            for tag in sorted(state.buffer, reverse=True):
                if _TRACE is not None and _TRACE.packets:
                    _TRACE.ord_release(self.engine.now, self.label,
                                       flow_id, tag, "stale")
                self.deliver(state.buffer[tag][0])

    def active_flows(self) -> int:
        return len(self._flows)

    # -- main entry -----------------------------------------------------------------

    def on_packet(self, packet: Packet) -> None:
        if packet.kind is not PacketKind.DATA or packet.flowinfo is None:
            self.deliver(packet)
            return
        tag = packet.flowinfo.original_rfs(self.boost_factor)
        state = self._flows.get(packet.flow_id)
        if state is None:
            state = _FlowOrderState()
            self._flows[packet.flow_id] = state

        if state.expected is None:
            # Still in Init: the flow's first packet has not been seen.
            self._on_packet_init(packet, tag, state)
        elif tag == state.expected:
            self._deliver_in_order(packet, tag, state)
            self._drain_buffer(state, packet.flow_id)
        elif self._is_early(tag, state.expected):
            self._buffer_early(packet, tag, state, packet.flow_id)
        else:
            # Late packet: delayed re-transmission or duplicate of bytes
            # already released — pass it up immediately (§3.3.2, event 3).
            self.deliver(packet)

    # -- state transitions -------------------------------------------------------------

    def _on_packet_init(self, packet: Packet, tag: int,
                        state: _FlowOrderState) -> None:
        if packet.flowinfo.first:
            state.expected = tag
            self._deliver_in_order(packet, tag, state)
            self._drain_buffer(state, packet.flow_id)
        else:
            # The flow's first packet is missing: out-of-order from birth.
            self._buffer_early(packet, tag, state, packet.flow_id)

    def _deliver_in_order(self, packet: Packet, tag: int,
                          state: _FlowOrderState) -> None:
        state.expected = self._next_expected(tag, packet.payload)
        state.state = OrderingState.IN_ORDER
        self.deliver(packet)
        self._check_flow_complete(packet.flow_id, state)

    def _check_flow_complete(self, flow_id: int,
                             state: _FlowOrderState) -> None:
        # Under SRPT the expectation hits exactly zero after the last
        # packet; transition back to "waiting for a new flow".
        if (self.discipline is MarkingDiscipline.SRPT
                and state.expected == 0 and not state.buffer):
            state.stop_timer()
            self._flows.pop(flow_id, None)

    def _buffer_early(self, packet: Packet, tag: int,
                      state: _FlowOrderState, flow_id: int) -> None:
        if tag in state.buffer:
            return  # duplicate of an already-buffered early packet
        state.buffer[tag] = (packet, self.engine.now)
        self.packets_buffered += 1
        if _TRACE is not None and _TRACE.packets:
            _TRACE.ord_hold(self.engine.now, self.label, flow_id, tag)
        state.state = OrderingState.OUT_OF_ORDER
        if state.timer is None:
            state.timer = Timer(self.engine, self._on_timeout, flow_id)
        if not state.timer.armed:
            state.timer.start(self.timeout_ns)

    def _drain_buffer(self, state: _FlowOrderState, flow_id: int) -> None:
        """Deliver buffered packets that are now contiguous (event 2)."""
        while state.expected is not None and state.expected in state.buffer:
            tag = state.expected
            packet, _ = state.buffer.pop(tag)
            if _TRACE is not None and _TRACE.packets:
                _TRACE.ord_release(self.engine.now, self.label, flow_id,
                                   tag, "drain")
            self._deliver_in_order(packet, tag, state)
        live = self._flows.get(flow_id)
        if live is not state:
            return  # flow completed and was torn down during the drain
        if state.buffer:
            self._rearm(state)
        else:
            state.stop_timer()
            state.state = OrderingState.IN_ORDER

    def _rearm(self, state: _FlowOrderState) -> None:
        """Re-arm the timeout, crediting the wait already served (§3.3.2)."""
        head_tag = self._head_tag(state)
        _, arrived = state.buffer[head_tag]
        remaining = self.timeout_ns - (self.engine.now - arrived)
        state.timer.start(max(1, remaining))

    def _head_tag(self, state: _FlowOrderState) -> int:
        """Buffered tag closest to the expectation (next release head)."""
        if self.discipline is MarkingDiscipline.SRPT:
            return max(state.buffer)
        return min(state.buffer)

    def _on_timeout(self, flow_id: int) -> None:
        state = self._flows.get(flow_id)
        if state is None or not state.buffer:
            return
        self.timeouts_fired += 1
        # Release the contiguous run at the head of the out-of-order
        # buffer up to the next gap, and move the expectation past it so
        # the transport sees the loss and can fast-retransmit (event 4).
        tag = self._head_tag(state)
        while True:
            packet, _ = state.buffer.pop(tag)
            if _TRACE is not None and _TRACE.packets:
                _TRACE.ord_release(self.engine.now, self.label, flow_id,
                                   tag, "timeout")
            state.expected = self._next_expected(tag, packet.payload)
            self.deliver(packet)
            next_tag = state.expected
            if next_tag not in state.buffer:
                break
            tag = next_tag
        state.state = OrderingState.IN_ORDER
        self._check_flow_complete(flow_id, state)
        live = self._flows.get(flow_id)
        if live is state and state.buffer:
            state.state = OrderingState.OUT_OF_ORDER
            self._rearm(state)
