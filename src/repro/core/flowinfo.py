"""The ``flowinfo`` auxiliary header (paper §3.1, Figure 3).

Every Vertigo-marked packet carries:

- ``rfs`` (32 bits) — Remaining Flow Size in bytes at the moment the packet
  was first transmitted (for the last packet of a flow, the payload length).
  Under the LAS discipline the same field carries the flow's attained
  service instead.
- ``retcnt`` (4 bits) — how many times the packet was re-transmitted; also
  the number of boosting rotations applied to ``rfs``.
- ``flow_id3`` (3 bits) — disambiguates back-to-back flows between the same
  host pair at the ordering component.
- ``first`` (1 bit) — FLAGS; for SRPT it marks the flow's initial packet.

Boosting (§3.1.2) must be reversible at the receiver without any state, so
it is restricted to bitwise rotations of the 32-bit RFS: a boosting factor
of ``2**k`` applies ``k`` right rotations per re-transmission and the
receiver undoes them with ``retcnt * k`` left rotations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

RFS_BITS = 32
RFS_MASK = (1 << RFS_BITS) - 1
RETCNT_MAX = 15  # 4-bit counter
FLOW_ID3_MASK = 0b111

#: Extra wire bytes of the flowinfo header (layer-3 encapsulation, Fig. 3).
FLOWINFO_WIRE_BYTES = 7


class MarkingDiscipline(enum.Enum):
    """Which quantity the marking component writes into the RFS field."""

    SRPT = "srpt"  # remaining flow size (needs a-priori flow size)
    LAS = "las"    # attained service / flow aging (no a-priori knowledge)


def rotr32(value: int, count: int) -> int:
    """Rotate a 32-bit value right by ``count`` bits."""
    count %= RFS_BITS
    value &= RFS_MASK
    return ((value >> count) | (value << (RFS_BITS - count))) & RFS_MASK


def rotl32(value: int, count: int) -> int:
    """Rotate a 32-bit value left by ``count`` bits."""
    return rotr32(value, RFS_BITS - (count % RFS_BITS))


def rotations_for_factor(boost_factor: int) -> int:
    """Number of rotations per re-transmission for a power-of-two factor."""
    if boost_factor < 1 or boost_factor & (boost_factor - 1):
        raise ValueError(
            f"boosting factor must be a power of two, got {boost_factor}")
    return boost_factor.bit_length() - 1


def boost_rfs(original_rfs: int, retcnt: int, boost_factor: int = 2) -> int:
    """RFS field value after ``retcnt`` re-transmissions.

    The boost is always applied to the *original* RFS stored in the sender's
    flow table (§3.1.2), not iteratively to the wire value.
    """
    return rotr32(original_rfs, retcnt * rotations_for_factor(boost_factor))


def unboost_rfs(wire_rfs: int, retcnt: int, boost_factor: int = 2) -> int:
    """Invert :func:`boost_rfs` at the receiver (left rotations)."""
    return rotl32(wire_rfs, retcnt * rotations_for_factor(boost_factor))


@dataclass(slots=True)
class FlowInfo:
    """Decoded flowinfo header attached to a packet."""

    rfs: int                 # the on-wire (possibly boosted) RFS field
    retcnt: int = 0
    flow_id3: int = 0
    first: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.rfs <= RFS_MASK:
            raise ValueError(f"RFS out of 32-bit range: {self.rfs}")
        if not 0 <= self.retcnt <= RETCNT_MAX:
            raise ValueError(f"retcnt out of 4-bit range: {self.retcnt}")
        if not 0 <= self.flow_id3 <= FLOW_ID3_MASK:
            raise ValueError(f"flow_id3 out of 3-bit range: {self.flow_id3}")

    def original_rfs(self, boost_factor: int = 2) -> int:
        """The RFS as first marked, undoing any boosting rotations."""
        return unboost_rfs(self.rfs, self.retcnt, boost_factor)

    def copy(self) -> "FlowInfo":
        return FlowInfo(rfs=self.rfs, retcnt=self.retcnt,
                        flow_id3=self.flow_id3, first=self.first)
