"""Cuckoo filter (Fan et al., CoNEXT 2014).

Vertigo's marking component uses a cuckoo filter over a CRC of the packet
header to detect re-transmissions in the dataplane (§3.1.2), and the
paper's host prototype uses DPDK cuckoo filters for flow identification
(§4.4).  This is a faithful software implementation: 4-slot buckets,
partial-key cuckoo hashing with fingerprint-derived alternate buckets,
bounded eviction chains, and deletion support.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

_MAX_KICKS = 500


def _hash64(data: bytes) -> int:
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


class CuckooFilter:
    """Approximate set membership with deletion.

    ``contains`` may return false positives (rate controlled by the
    fingerprint width) but never false negatives for items that were
    inserted and not deleted.
    """

    def __init__(self, capacity: int = 4096, bucket_size: int = 4,
                 fingerprint_bits: int = 16, seed: int = 0) -> None:
        if capacity < bucket_size:
            raise ValueError("capacity must be at least one bucket")
        n_buckets = 1
        while n_buckets * bucket_size < capacity:
            n_buckets <<= 1
        self._n_buckets = n_buckets
        self._bucket_size = bucket_size
        self._fp_mask = (1 << fingerprint_bits) - 1
        self._seed = seed
        # Buckets materialize on first touch: a filter sized for the
        # worst case (tens of thousands of slots per host) would
        # otherwise dominate network build time with empty lists.
        self._buckets: Dict[int, List[int]] = {}
        # Victim stash: (index, fingerprint) pairs displaced by a failed
        # eviction chain, so a failed insert never loses *another* item
        # (no false negatives for previously inserted members).
        self._stash: List[tuple] = []
        self._evict_rng_state = seed or 0x9E3779B9
        self.size = 0

    # -- hashing -----------------------------------------------------------

    def _fingerprint(self, item: int) -> int:
        fp = _hash64(f"fp:{self._seed}:{item}".encode()) & self._fp_mask
        return fp or 1  # fingerprint 0 is reserved

    def _index(self, item: int) -> int:
        return _hash64(f"ix:{self._seed}:{item}".encode()) % self._n_buckets

    def _alt_index(self, index: int, fingerprint: int) -> int:
        # Partial-key cuckoo hashing: the alternate bucket depends only on
        # the current bucket and the fingerprint, so it is computable
        # during eviction without the original item.
        return (index ^ _hash64(f"alt:{self._seed}:{fingerprint}".encode())) \
            % self._n_buckets

    def _next_rand(self, bound: int) -> int:
        # xorshift64*: deterministic eviction choices without an RNG object.
        x = self._evict_rng_state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self._evict_rng_state = x
        return x % bound

    # -- operations --------------------------------------------------------

    def insert(self, item: int) -> bool:
        """Insert ``item``; returns False if the filter is too full."""
        fp = self._fingerprint(item)
        i1 = self._index(item)
        i2 = self._alt_index(i1, fp)
        for index in (i1, i2):
            bucket = self._buckets.get(index)
            if bucket is None:
                self._buckets[index] = [fp]
                self.size += 1
                return True
            if len(bucket) < self._bucket_size:
                bucket.append(fp)
                self.size += 1
                return True
        index = (i1, i2)[self._next_rand(2)]
        for _ in range(_MAX_KICKS):
            bucket = self._buckets[index]
            victim_slot = self._next_rand(len(bucket))
            fp, bucket[victim_slot] = bucket[victim_slot], fp
            index = self._alt_index(index, fp)
            bucket = self._buckets.get(index)
            if bucket is None:
                self._buckets[index] = [fp]
                self.size += 1
                return True
            if len(bucket) < self._bucket_size:
                bucket.append(fp)
                self.size += 1
                return True
        # Chain exhausted: park the displaced fingerprint in the stash so
        # the earlier insert it belonged to stays findable, and report
        # failure for the *new* item.
        self._stash.append((index, fp))
        return False

    def contains(self, item: int) -> bool:
        fp = self._fingerprint(item)
        i1 = self._index(item)
        if fp in self._buckets.get(i1, ()):
            return True
        i2 = self._alt_index(i1, fp)
        if fp in self._buckets.get(i2, ()):
            return True
        return any(f == fp and idx in (i1, i2) for idx, f in self._stash)

    def delete(self, item: int) -> bool:
        """Remove one copy of ``item``; returns False if absent."""
        fp = self._fingerprint(item)
        i1 = self._index(item)
        i2 = self._alt_index(i1, fp)
        for index in (i1, i2):
            bucket = self._buckets.get(index)
            if bucket and fp in bucket:
                bucket.remove(fp)
                self.size -= 1
                return True
        for pos, (idx, f) in enumerate(self._stash):
            if f == fp and idx in (i1, i2):
                del self._stash[pos]
                self.size -= 1
                return True
        return False

    def load_factor(self) -> float:
        return self.size / (self._n_buckets * self._bucket_size)

    def __contains__(self, item: int) -> bool:
        return self.contains(item)

    def __len__(self) -> int:
        return self.size
