"""PIEO-style rank queue (paper §4.4, appendix A.3).

Vertigo assumes switch output queues that dequeue in ascending rank order
(SRPT over the RFS field) *and* support two operations the paper adds to
PIEO [Shrivastav, SIGCOMM'19]:

1. extracting the current maximum-rank element ("extraction from the tail
   of the priority list") — used when an arriving packet with a smaller
   RFS displaces a buffered one, and
2. enqueueing a displaced packet to a different queue (deflection), which
   is an ordinary enqueue here plus the extra dequeue above.

``RankQueue`` implements this with a pair of lazy-deletion heaps, giving
O(log n) push, pop-min and pop-max, with exact byte accounting.
"""

from __future__ import annotations

import heapq
from typing import Any, Generic, List, Optional, Tuple, TypeVar

from repro.analysis import sanitize as _sanitize

_SANITIZE = _sanitize.register(__name__)

T = TypeVar("T")


class RankQueue(Generic[T]):
    """Double-ended priority queue keyed by an integer rank.

    Ties are broken FIFO (earlier insertions dequeue first from the min
    end, and are *kept* longest at the max end), matching a hardware
    priority list that appends equal-rank packets behind their peers.
    """

    def __init__(self) -> None:
        self._min_heap: List[Tuple[int, int, T]] = []
        self._max_heap: List[Tuple[int, int, T]] = []
        self._dead: set[int] = set()
        self._len = 0
        # Per-instance FIFO tie-break sequence; a process-global counter
        # would couple independent queues' state across runs.
        self._seq = 0

    #: Lazy-deleted entries are compacted away once they outnumber live
    #: ones past this floor — unbounded, the max heap would pin every
    #: packet that ever transited the queue (a switch queue almost never
    #: pops max, so dead twins only die by reaching the top), growing
    #: resident memory and checkpoint payloads linearly with history.
    _COMPACT_FLOOR = 64

    def push(self, rank: int, item: T) -> None:
        seq = self._seq
        self._seq += 1
        heapq.heappush(self._min_heap, (rank, seq, item))
        # Negate seq as well so that among equal ranks the *latest* arrival
        # is at the top of the max heap (FIFO survivors at the min end).
        heapq.heappush(self._max_heap, (-rank, -seq, item))
        self._len += 1
        if _SANITIZE:
            self._sanitize_check()

    def _compact(self) -> None:
        """Drop dead entries once they dominate either heap.

        Pop order is a pure function of the ``(rank, seq)`` keys, so
        rebuilding the heaps from the live entries is invisible to
        callers (and to run digests) — it only sheds the references.
        Amortized O(1): each compaction is linear in entries that were
        pushed exactly once since the last one.
        """
        if self._len == 0:
            if self._min_heap or self._max_heap:
                self._min_heap.clear()
                self._max_heap.clear()
                self._dead.clear()
            return
        largest = max(len(self._min_heap), len(self._max_heap))
        if largest <= self._COMPACT_FLOOR or largest <= 2 * self._len:
            return
        live = [entry for entry in self._min_heap
                if entry[1] not in self._dead]
        self._min_heap = live[:]
        heapq.heapify(self._min_heap)
        self._max_heap = [(-rank, -seq, item) for rank, seq, item in live]
        heapq.heapify(self._max_heap)
        self._dead.clear()

    def _prune_min(self) -> None:
        heap = self._min_heap
        while heap and heap[0][1] in self._dead:
            self._dead.remove(heap[0][1])
            heapq.heappop(heap)

    def _prune_max(self) -> None:
        heap = self._max_heap
        while heap and -heap[0][1] in self._dead:
            self._dead.remove(-heap[0][1])
            heapq.heappop(heap)

    def peek_min(self) -> Optional[Tuple[int, T]]:
        self._prune_min()
        if not self._min_heap:
            return None
        rank, _, item = self._min_heap[0]
        return rank, item

    def peek_max(self) -> Optional[Tuple[int, T]]:
        self._prune_max()
        if not self._max_heap:
            return None
        neg_rank, _, item = self._max_heap[0]
        return -neg_rank, item

    def pop_min(self) -> Tuple[int, T]:
        self._prune_min()
        if not self._min_heap:
            raise IndexError("pop_min from empty RankQueue")
        rank, seq, item = heapq.heappop(self._min_heap)
        self._dead.add(seq)
        self._len -= 1
        self._compact()
        if _SANITIZE:
            self._sanitize_check()
        return rank, item

    def pop_max(self) -> Tuple[int, T]:
        self._prune_max()
        if not self._max_heap:
            raise IndexError("pop_max from empty RankQueue")
        neg_rank, neg_seq, item = heapq.heappop(self._max_heap)
        self._dead.add(-neg_seq)
        self._len -= 1
        self._compact()
        if _SANITIZE:
            self._sanitize_check()
        return -neg_rank, item

    def _sanitize_check(self) -> None:
        """Lazy-deletion twin heaps must agree with the live count."""
        _sanitize.check(self._len >= 0,
                        "RankQueue length went negative: %d", self._len)
        live_min = sum(1 for entry in self._min_heap
                       if entry[1] not in self._dead)
        live_max = sum(1 for entry in self._max_heap
                       if -entry[1] not in self._dead)
        _sanitize.check(live_min == self._len and live_max == self._len,
                        "RankQueue heap invariant broken: %d live in min "
                        "heap, %d in max heap, tracked len %d",
                        live_min, live_max, self._len)
        if self._len:
            low = self.peek_min()
            high = self.peek_max()
            _sanitize.check(low is not None and high is not None
                            and low[0] <= high[0],
                            "RankQueue min rank exceeds max rank: %r > %r",
                            low, high)

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def items(self) -> List[Tuple[int, T]]:
        """Snapshot of live (rank, item) pairs in ascending rank order."""
        self._prune_min()
        live = [(rank, seq, item) for rank, seq, item in self._min_heap
                if seq not in self._dead]
        live.sort(key=lambda entry: (entry[0], entry[1]))
        return [(rank, item) for rank, _, item in live]
