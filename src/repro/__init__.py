"""repro — reproduction of "Burst-tolerant Datacenter Networks with
Vertigo" (Abdous, Sharafzadeh, Ghorbani — CoNEXT 2021).

A from-scratch, pure-Python packet-level datacenter network simulator
implementing the Vertigo selective-deflection design, its baselines
(ECMP, DRILL, DIBS), three transports (TCP Reno, DCTCP, Swift), leaf-spine
and fat-tree topologies, and the paper's workloads and experiments.

Quickstart — the fluent façade (:mod:`repro.api`)::

    from repro import Experiment

    report = (Experiment.bench()
              .system("vertigo")
              .transport("dctcp")
              .workload(bg_load=0.5, incast_load=0.25)
              .run()
              .report())
    print(report.row())

or the explicit config layer it wraps::

    from repro import ExperimentConfig, run_experiment

    config = ExperimentConfig.bench_profile(system="vertigo",
                                            transport="dctcp",
                                            bg_load=0.5, incast_load=0.25)
    result = run_experiment(config)
    print(result.report().row())

This module re-exports the blessed public surface (everything in
``__all__``); anything else is an internal layer whose import path may
change between releases.  A handful of previously-exported internals
remain importable through deprecation shims (see ``_DEPRECATED``) and
warn on access.
"""

from repro.api import Experiment
from repro.experiments import (
    ExperimentConfig,
    RunReport,
    RunResult,
    run_digest,
    run_experiment,
    sweep,
)
from repro.faults import FaultSpec, parse_faults
from repro.net import FatTree, LeafSpine
from repro.runtime import SupervisorPolicy, SweepReport, run_supervised
from repro.trace import TraceConfig
from repro.workload import (
    BackgroundSpec,
    CoflowSpec,
    DutyCycleSpec,
    IncastSpec,
    SkewSpec,
    WorkloadSpec,
    parse_workloads,
)

__version__ = "1.3.0"

__all__ = [
    "Experiment",
    "ExperimentConfig",
    "RunResult",
    "RunReport",
    "run_experiment",
    "run_digest",
    "sweep",
    "run_supervised",
    "SweepReport",
    "SupervisorPolicy",
    "TraceConfig",
    "FaultSpec",
    "parse_faults",
    "WorkloadSpec",
    "BackgroundSpec",
    "IncastSpec",
    "CoflowSpec",
    "DutyCycleSpec",
    "SkewSpec",
    "parse_workloads",
    "LeafSpine",
    "FatTree",
    "__version__",
]

#: Former top-level exports, kept importable for one release.
#: Maps name -> (canonical module, note for the warning text).
_DEPRECATED = {
    "SystemConfig": ("repro.experiments", ""),
    "WorkloadConfig": ("repro.experiments", ""),
    "FlowInfo": ("repro.core", ""),
    "MarkingComponent": ("repro.core", ""),
    "MarkingDiscipline": ("repro.core", ""),
    "OrderingComponent": ("repro.core", ""),
    "VertigoSwitchParams": ("repro.forwarding", ""),
}


def __getattr__(name: str):
    """Deprecation shims for names dropped from the blessed surface."""
    if name in _DEPRECATED:
        import importlib
        import warnings
        module_path, note = _DEPRECATED[name]
        warnings.warn(
            f"importing {name!r} from 'repro' is deprecated; "
            f"import it from {module_path!r} instead.{note}",
            DeprecationWarning, stacklevel=2)
        return getattr(importlib.import_module(module_path), name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted([*__all__, *_DEPRECATED])
