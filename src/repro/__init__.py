"""repro — reproduction of "Burst-tolerant Datacenter Networks with
Vertigo" (Abdous, Sharafzadeh, Ghorbani — CoNEXT 2021).

A from-scratch, pure-Python packet-level datacenter network simulator
implementing the Vertigo selective-deflection design, its baselines
(ECMP, DRILL, DIBS), three transports (TCP Reno, DCTCP, Swift), leaf-spine
and fat-tree topologies, and the paper's workloads and experiments.

Quickstart::

    from repro import ExperimentConfig, run_experiment

    config = ExperimentConfig.bench_profile(system="vertigo",
                                            transport="dctcp",
                                            bg_load=0.5, incast_load=0.25)
    result = run_experiment(config)
    print(result.row())
"""

from repro.experiments import (
    ExperimentConfig,
    RunResult,
    SystemConfig,
    WorkloadConfig,
    run_experiment,
)
from repro.core import (
    FlowInfo,
    MarkingComponent,
    MarkingDiscipline,
    OrderingComponent,
)
from repro.forwarding import VertigoSwitchParams
from repro.net import FatTree, LeafSpine

__version__ = "1.0.0"

__all__ = [
    "ExperimentConfig",
    "SystemConfig",
    "WorkloadConfig",
    "RunResult",
    "run_experiment",
    "FlowInfo",
    "MarkingComponent",
    "MarkingDiscipline",
    "OrderingComponent",
    "VertigoSwitchParams",
    "LeafSpine",
    "FatTree",
    "__version__",
]
