"""SARIF 2.1.0 export for ``repro lint --format sarif``.

SARIF (Static Analysis Results Interchange Format, OASIS 2.1.0) is what
GitHub code scanning ingests: uploading the artifact from CI turns every
finding into an inline PR annotation.  One ``run`` is emitted, with the
full rule catalog (id, short description, help text) under
``tool.driver`` and one ``result`` per finding carrying its physical
location.

:func:`validate` is a dependency-free structural checker for the subset
of the spec this exporter uses (the container can't install
``jsonschema``); the test suite runs every export through it, and it is
strict about the fields GitHub actually requires — versions, URIs,
1-based regions, and rule-index consistency.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.lint import Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

TOOL_NAME = "repro-lint"
TOOL_URI = "https://example.invalid/repro"  # repository-relative tool


def _level_for(code: str) -> str:
    """SARIF severity: analyzer meta-findings are warnings, rules errors."""
    if code in ("VR000", "VR090"):
        return "warning"
    return "error"


def to_sarif(violations: Sequence[Violation],
             rules: Dict[str, str],
             hints: Optional[Dict[str, str]] = None,
             base_dir: Optional[Path] = None) -> Dict[str, object]:
    """Build the SARIF 2.1.0 document for ``violations``.

    ``rules`` maps rule id -> short description; ``hints`` (optional)
    maps rule id -> help text.  ``base_dir`` relativizes artifact URIs.
    """
    hints = hints or {}
    used_codes = sorted({v.code for v in violations} | set(rules))
    rule_index = {code: index for index, code in enumerate(used_codes)}
    rule_objects = []
    for code in used_codes:
        rule: Dict[str, object] = {
            "id": code,
            "shortDescription": {
                "text": rules.get(code, "analyzer meta-finding")},
            "defaultConfiguration": {"level": _level_for(code)},
        }
        if code in hints:
            rule["help"] = {"text": hints[code]}
        rule_objects.append(rule)

    results = []
    for violation in violations:
        uri = Path(violation.path).as_posix()
        if base_dir is not None:
            try:
                uri = Path(violation.path).resolve() \
                    .relative_to(base_dir.resolve()).as_posix()
            except ValueError:
                pass
        results.append({
            "ruleId": violation.code,
            "ruleIndex": rule_index[violation.code],
            "level": _level_for(violation.code),
            "message": {"text": violation.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": uri,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(1, violation.line),
                        "startColumn": max(1, violation.col),
                    },
                },
            }],
        })

    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri": TOOL_URI,
                    "version": "1.0.0",
                    "rules": rule_objects,
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file:///"},
            },
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }


def write_sarif(violations: Sequence[Violation], rules: Dict[str, str],
                path: str, hints: Optional[Dict[str, str]] = None,
                base_dir: Optional[Path] = None) -> int:
    document = to_sarif(violations, rules, hints, base_dir)
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return len(document["runs"][0]["results"])


# -- structural validation -----------------------------------------------------


def validate(document: object) -> List[str]:
    """Check ``document`` against the SARIF 2.1.0 subset we emit.

    Returns a list of problems (empty = valid).  Covers the constraints
    GitHub code scanning enforces: exact version, ``runs`` array, a
    ``tool.driver`` with a name and well-formed rule objects, and for
    every result a message, a known ``ruleId``/``ruleIndex`` pair, and
    1-based physical locations.
    """
    problems: List[str] = []

    def check(condition: bool, message: str) -> bool:
        if not condition:
            problems.append(message)
        return condition

    if not check(isinstance(document, dict), "document is not an object"):
        return problems
    check(document.get("version") == SARIF_VERSION,
          f"version must be {SARIF_VERSION!r}")
    check(isinstance(document.get("$schema"), str) or
          "$schema" not in document, "$schema must be a string")
    runs = document.get("runs")
    if not check(isinstance(runs, list) and runs, "runs must be a "
                                                  "non-empty array"):
        return problems
    for run_index, run in enumerate(runs):
        where = f"runs[{run_index}]"
        if not check(isinstance(run, dict), f"{where} is not an object"):
            continue
        driver = (run.get("tool") or {}).get("driver") \
            if isinstance(run.get("tool"), dict) else None
        if not check(isinstance(driver, dict),
                     f"{where}.tool.driver missing"):
            continue
        check(isinstance(driver.get("name"), str) and driver.get("name"),
              f"{where}.tool.driver.name missing")
        rules = driver.get("rules", [])
        check(isinstance(rules, list), f"{where}.tool.driver.rules must "
                                       f"be an array")
        rule_ids: List[str] = []
        for rule_no, rule in enumerate(rules if isinstance(rules, list)
                                       else []):
            rwhere = f"{where}.tool.driver.rules[{rule_no}]"
            if not check(isinstance(rule, dict),
                         f"{rwhere} is not an object"):
                continue
            if check(isinstance(rule.get("id"), str) and rule.get("id"),
                     f"{rwhere}.id missing"):
                rule_ids.append(rule["id"])
            short = rule.get("shortDescription")
            check(isinstance(short, dict)
                  and isinstance(short.get("text"), str),
                  f"{rwhere}.shortDescription.text missing")
        results = run.get("results")
        if not check(isinstance(results, list),
                     f"{where}.results must be an array"):
            continue
        for result_no, result in enumerate(results):
            pwhere = f"{where}.results[{result_no}]"
            if not check(isinstance(result, dict),
                         f"{pwhere} is not an object"):
                continue
            message = result.get("message")
            check(isinstance(message, dict)
                  and isinstance(message.get("text"), str)
                  and message.get("text"),
                  f"{pwhere}.message.text missing")
            rule_id = result.get("ruleId")
            check(isinstance(rule_id, str) and rule_id,
                  f"{pwhere}.ruleId missing")
            if rule_ids and isinstance(rule_id, str):
                check(rule_id in rule_ids,
                      f"{pwhere}.ruleId {rule_id!r} not in the rule "
                      f"catalog")
            rule_index = result.get("ruleIndex")
            if rule_index is not None and rule_ids:
                check(isinstance(rule_index, int)
                      and 0 <= rule_index < len(rule_ids)
                      and rule_ids[rule_index] == rule_id,
                      f"{pwhere}.ruleIndex does not match ruleId")
            level = result.get("level")
            check(level in (None, "none", "note", "warning", "error"),
                  f"{pwhere}.level invalid: {level!r}")
            locations = result.get("locations", [])
            check(isinstance(locations, list) and locations,
                  f"{pwhere}.locations must be a non-empty array")
            for loc_no, location in enumerate(
                    locations if isinstance(locations, list) else []):
                lwhere = f"{pwhere}.locations[{loc_no}]"
                physical = location.get("physicalLocation") \
                    if isinstance(location, dict) else None
                if not check(isinstance(physical, dict),
                             f"{lwhere}.physicalLocation missing"):
                    continue
                artifact = physical.get("artifactLocation")
                check(isinstance(artifact, dict)
                      and isinstance(artifact.get("uri"), str),
                      f"{lwhere}...artifactLocation.uri missing")
                region = physical.get("region")
                if region is not None:
                    check(isinstance(region, dict)
                          and isinstance(region.get("startLine"), int)
                          and region["startLine"] >= 1,
                          f"{lwhere}...region.startLine must be >= 1")
                    column = (region or {}).get("startColumn")
                    check(column is None
                          or (isinstance(column, int) and column >= 1),
                          f"{lwhere}...region.startColumn must be >= 1")
    return problems


def validate_file(path: str) -> List[str]:
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable or not JSON: {exc}"]
    return validate(document)
