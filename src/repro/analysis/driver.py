"""Multi-pass lint driver: the engine behind ``repro lint``.

Orchestrates the whole pipeline the way a production analyzer does:

1. **collect** — resolve the input paths to ``.py`` files (nonexistent
   or python-free inputs are one-line usage errors, exit 2);
2. **per-file pass** — VR001–VR006 (:mod:`repro.analysis.lint`) and
   VR140 (:mod:`repro.analysis.rules`), cached per file content hash;
3. **project pass** — symbol table + call graph
   (:mod:`repro.analysis.callgraph`), unit dataflow to fixpoint
   (:mod:`repro.analysis.dataflow`, VR100/VR150/VR160), and the
   reachability
   rules VR110–VR130, cached on the hash of all file hashes;
4. **suppression** — path exemptions, legacy ``# noqa``, tracked
   ``# repro: lint-disable`` pragmas (unused ones surface as VR090),
   then the checked-in baseline (:mod:`repro.analysis.suppress`);
5. **output** — ``--format text|json|sarif`` (SARIF 2.1.0 feeds GitHub
   code scanning) and ``--fix`` (:mod:`repro.analysis.autofix`).

Exit status: 0 clean, 1 findings (or unused suppressions), 2 usage.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import lint as lint_mod
from repro.analysis import rules as rules_mod
from repro.analysis.cache import LintCache, file_hash, project_hash
from repro.analysis.callgraph import CallGraph, Project
from repro.analysis.dataflow import (
    build_summaries,
    check_vr100,
    check_vr150,
    check_vr160,
)
from repro.analysis.lint import LintConfig, Violation, load_config
from repro.analysis.sarif import to_sarif, write_sarif
from repro.analysis.suppress import (
    RULE_UNUSED,
    Baseline,
    apply_suppressions_for_path,
)

#: The complete rule catalog the driver can run.
ALL_RULES: Dict[str, str] = {
    **lint_mod.RULES,
    **rules_mod.RULES_VR1XX,
    RULE_UNUSED: "unused lint-disable suppression",
}

ALL_HINTS: Dict[str, str] = {
    **lint_mod.HINTS,
    **rules_mod.HINTS_VR1XX,
    RULE_UNUSED: "delete the stale pragma (repro lint --fix removes it)",
}

#: Project-pass rules (need the whole tree).
PROJECT_RULES = ("VR100", "VR110", "VR120", "VR130", "VR150", "VR160")

DEFAULT_BASELINE = "lint-baseline.json"


class UsageError(Exception):
    """A bad invocation, reported as one line on stderr with exit 2."""


@dataclass
class LintReport:
    """Everything one driver run produced."""

    findings: List[Violation] = field(default_factory=list)
    unused_suppressions: List[Violation] = field(default_factory=list)
    baselined: int = 0
    stale_baseline: List[Dict[str, object]] = field(default_factory=list)
    files_checked: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_s: float = 0.0
    fixes: List = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return bool(self.findings or self.unused_suppressions)

    def all_reported(self) -> List[Violation]:
        merged = [*self.findings, *self.unused_suppressions]
        merged.sort(key=lambda v: (v.path, v.line, v.col, v.code))
        return merged


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Resolve inputs to ``.py`` files; usage errors for bad inputs."""
    missing = [entry for entry in paths if not Path(entry).exists()]
    if missing:
        raise UsageError(
            f"no such file or directory: {', '.join(missing)}")
    files: List[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise UsageError(f"not a python file or directory: {entry}")
    if not files:
        raise UsageError(
            f"no python files found under: {', '.join(map(str, paths))}")
    return files


def read_sources(files: Sequence[Path]) -> Tuple[Dict[str, str],
                                                 List[Violation]]:
    sources: Dict[str, str] = {}
    problems: List[Violation] = []
    for path in files:
        try:
            sources[str(path)] = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            problems.append(Violation(str(path), 0, 0, "VR000",
                                      f"unreadable: {exc}"))
    return sources, problems


def _parse_all(sources: Dict[str, str]
               ) -> Tuple[Dict[str, object], List[Violation]]:
    import ast
    trees: Dict[str, object] = {}
    problems: List[Violation] = []
    for path, source in sources.items():
        try:
            trees[path] = ast.parse(source, filename=path)
        except SyntaxError as exc:
            problems.append(Violation(path, exc.lineno or 0, 0, "VR000",
                                      f"syntax error: {exc.msg}"))
    return trees, problems


def _check_one_file(path: str, source: str, tree,
                    select: frozenset) -> List[Violation]:
    """Raw per-file findings (exemptions and suppressions come later)."""
    checker = lint_mod._Checker(path, select)
    checker.visit(tree)
    findings = list(checker.violations)
    if "VR140" in select:
        findings.extend(rules_mod.check_vr140(tree, path))
    return findings


def _project_findings(sources: Dict[str, str], trees: Dict[str, object],
                      select: frozenset) -> List[Violation]:
    wanted = [rule for rule in PROJECT_RULES if rule in select]
    if not wanted:
        return []
    project = Project.from_sources(sources, trees)
    graph = CallGraph(project)
    findings: List[Violation] = []
    if "VR100" in select or "VR150" in select or "VR160" in select:
        summaries = build_summaries(project, graph)
        if "VR100" in select:
            findings.extend(check_vr100(project, graph, summaries))
        if "VR150" in select:
            findings.extend(check_vr150(project, graph, summaries))
        if "VR160" in select:
            findings.extend(check_vr160(project, graph, summaries))
    if "VR110" in select:
        findings.extend(rules_mod.check_vr110(project, graph))
    if "VR120" in select:
        findings.extend(rules_mod.check_vr120(project, graph))
    if "VR130" in select:
        findings.extend(rules_mod.check_vr130(project, graph))
    return findings


def run_analysis(files: Sequence[Path], config: LintConfig,
                 cache_path: Optional[Path] = None,
                 baseline_path: Optional[Path] = None,
                 fix: bool = False) -> LintReport:
    """Run every selected pass over ``files``; no output, no exit."""
    started = time.perf_counter()  # repro: lint-disable VR002
    report = LintReport()
    select = frozenset(config.select) | {"VR000"}

    sources, unreadable = read_sources(files)
    report.files_checked = len(sources)
    trees, syntax_errors = _parse_all(sources)
    raw: List[Violation] = [*unreadable, *syntax_errors]

    cache: Optional[LintCache] = None
    if cache_path is not None:
        select_key = ",".join(sorted(select)) + "|" + json.dumps(
            {code: sorted(patterns)
             for code, patterns in sorted(config.exempt.items())},
            sort_keys=True)
        cache = LintCache(cache_path, select_key)

    hashes = {path: file_hash(source)
              for path, source in sources.items()}

    # Per-file tier.
    for path, source in sources.items():
        tree = trees.get(path)
        if tree is None:
            continue  # syntax error already reported
        cached = cache.get_file(path, hashes[path]) if cache else None
        if cached is not None:
            raw.extend(cached)
            continue
        findings = _check_one_file(path, source, tree, select)
        if cache:
            cache.put_file(path, hashes[path], findings)
        raw.extend(findings)

    # Project tier.
    tree_digest = project_hash(hashes)
    project_cached = cache.get_project(tree_digest) if cache else None
    if project_cached is not None:
        raw.extend(project_cached)
    else:
        findings = _project_findings(sources, trees, select)
        if cache:
            cache.put_project(tree_digest, findings)
        raw.extend(findings)

    if cache:
        report.cache_hits = cache.hits
        report.cache_misses = cache.misses
        cache.prune(list(sources))
        cache.save()

    # Path exemptions (built-ins merged with pyproject patterns).
    raw = [violation for violation in raw
           if not lint_mod._exempt(violation.path, violation.code, config)]

    # Pragmas / noqa, tracked per file.
    by_path: Dict[str, List[Violation]] = {}
    for violation in raw:
        by_path.setdefault(violation.path, []).append(violation)
    survivors: List[Violation] = []
    unused: List[Violation] = []
    for path, source in sources.items():
        file_violations = by_path.get(path, [])
        kept, stale = apply_suppressions_for_path(
            file_violations, path, source, set(select))
        survivors.extend(kept)
        unused.extend(stale)
    # Violations for paths outside sources (shouldn't happen) pass through.
    for path, file_violations in by_path.items():
        if path not in sources:
            survivors.extend(file_violations)

    # Baseline.
    baseline = Baseline.load(baseline_path) if baseline_path else None
    if baseline is not None and baseline.entries:
        survivors, matched = baseline.filter(survivors, sources)
        report.baselined = len(matched)
        report.stale_baseline = baseline.stale(matched)

    survivors.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    unused.sort(key=lambda v: (v.path, v.line, v.col))
    report.findings = survivors
    report.unused_suppressions = unused

    if fix and (survivors or unused):
        from repro.analysis.autofix import apply_fixes
        updated, fixes = apply_fixes(sources,
                                     [*survivors, *unused])
        for path, new_source in updated.items():
            if new_source != sources[path]:
                Path(path).write_text(new_source, encoding="utf-8")
        report.fixes = fixes
        if fixes:
            # Re-lint so the report reflects the post-fix tree (cache
            # keys are content hashes, so edited files re-run).
            fresh = run_analysis(files, config, cache_path,
                                 baseline_path, fix=False)
            fresh.fixes = fixes
            fresh.wall_s = time.perf_counter() - started  # repro: lint-disable VR002
            return fresh

    report.wall_s = time.perf_counter() - started  # repro: lint-disable VR002
    return report


# -- output --------------------------------------------------------------------


def _emit_text(report: LintReport, stream) -> None:
    for violation in report.all_reported():
        hint = ALL_HINTS.get(violation.code)
        suffix = f" [hint: {hint}]" if hint else ""
        print(f"{violation.path}:{violation.line}:{violation.col}: "
              f"{violation.code} {violation.message}{suffix}", file=stream)


def _emit_json(report: LintReport, stream) -> None:
    payload = {
        "schema": 1,
        "findings": [
            {"path": v.path, "line": v.line, "col": v.col,
             "code": v.code, "message": v.message}
            for v in report.all_reported()],
        "files_checked": report.files_checked,
        "baselined": report.baselined,
        "wall_s": round(report.wall_s, 4),
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")


def _summary_line(report: LintReport) -> str:
    if report.failed:
        status = (f"{len(report.findings)} finding(s), "
                  f"{len(report.unused_suppressions)} unused "
                  f"suppression(s)")
    else:
        status = "clean"
    extras = []
    if report.baselined:
        extras.append(f"{report.baselined} baselined")
    if report.cache_hits or report.cache_misses:
        extras.append(f"cache {report.cache_hits} hit(s) / "
                      f"{report.cache_misses} miss(es)")
    if report.fixes:
        extras.append(f"{len(report.fixes)} fix(es) applied")
    tail = f" ({', '.join(extras)})" if extras else ""
    return (f"repro lint: {report.files_checked} file(s) checked in "
            f"{report.wall_s:.2f}s, {status}{tail}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Multi-pass determinism & unit-discipline analyzer: "
                    "per-function rules VR001-VR006, whole-program "
                    "call-graph/dataflow rules VR100-VR160.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: "
                             "[tool.repro.lint] paths, else src)")
    parser.add_argument("--config", type=Path, default=None,
                        help="pyproject.toml to read [tool.repro.lint] "
                             "from")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule subset, e.g. "
                             "VR001,VR110")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", dest="fmt",
                        help="findings output format (default text)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write --format json|sarif output to PATH "
                             "instead of stdout")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanical fixes: int(...) coercion "
                             "at flagged *_ns assignments, tracked "
                             "lint-disable pragmas elsewhere, stale "
                             "pragma removal")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help=f"grandfathered-findings file (default "
                             f"{DEFAULT_BASELINE} beside pyproject.toml "
                             f"when present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline file from the "
                             "current findings and exit 0")
    parser.add_argument("--cache", default=None, metavar="PATH",
                        help="incremental findings cache keyed on file "
                             "content hashes (REPRO_LINT_CACHE env var "
                             "also enables it)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(ALL_RULES):
            print(f"{code}: {ALL_RULES[code]}")
        return 0

    config = load_config(args.config)
    if args.select:
        config.select = tuple(code.strip().upper()
                              for code in args.select.split(","))
    unknown = [code for code in config.select if code not in ALL_RULES]
    if unknown:
        parser.error(f"unknown rule(s): {', '.join(unknown)} "
                     f"(see --list-rules)")

    import os
    cache_arg = args.cache or os.environ.get("REPRO_LINT_CACHE")
    cache_path = Path(cache_arg) if cache_arg else None

    baseline_path: Optional[Path] = None
    if args.baseline:
        baseline_path = Path(args.baseline)
    else:
        candidate = _default_baseline(args.config)
        if candidate is not None and candidate.is_file():
            baseline_path = candidate

    paths = list(args.paths) or list(config.paths)
    try:
        files = collect_files(paths)
        report = run_analysis(files, config, cache_path,
                              None if args.write_baseline
                              else baseline_path,
                              fix=args.fix)
    except UsageError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        sources, _ = read_sources(files)
        target = baseline_path or Path(DEFAULT_BASELINE)
        snapshot = Baseline.from_findings(report.findings, sources,
                                          path=target)
        snapshot.save()
        print(f"repro lint: wrote {len(snapshot.entries)} baseline "
              f"entr(ies) to {target}", file=sys.stderr)
        return 0

    if args.fmt == "text":
        _emit_text(report, sys.stdout)
    elif args.fmt == "json":
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                _emit_json(report, handle)
        else:
            _emit_json(report, sys.stdout)
    elif args.fmt == "sarif":
        if args.output:
            count = write_sarif(report.all_reported(), ALL_RULES,
                                args.output, ALL_HINTS)
            print(f"repro lint: wrote {count} SARIF result(s) to "
                  f"{args.output}", file=sys.stderr)
        else:
            document = to_sarif(report.all_reported(), ALL_RULES,
                                ALL_HINTS)
            json.dump(document, sys.stdout, indent=2, sort_keys=True)
            sys.stdout.write("\n")

    for fix in report.fixes:
        print(fix.render(), file=sys.stderr)
    for entry in report.stale_baseline:
        print(f"repro lint: stale baseline entry "
              f"{entry['fingerprint']} ({entry['path']} {entry['code']}); "
              f"regenerate with --write-baseline", file=sys.stderr)
    print(_summary_line(report), file=sys.stderr)
    return 1 if report.failed else 0


def _default_baseline(config_arg: Optional[Path]) -> Optional[Path]:
    if config_arg is not None:
        return config_arg.parent / DEFAULT_BASELINE
    pyproject = lint_mod._find_pyproject(Path.cwd())
    if pyproject is not None:
        return pyproject.parent / DEFAULT_BASELINE
    return Path(DEFAULT_BASELINE)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
