"""The VR110–VR140 whole-program rules.

Built on :mod:`repro.analysis.callgraph` (symbol table, call edges,
event-handler entry points) and run by :mod:`repro.analysis.driver`:

========  =====================================================================
Rule      Checks
========  =====================================================================
VR110     RNG stream ownership.  (a) Any call path from an event handler
          or forwarding policy to a global ``random.*`` draw or an
          *unseeded* ``random.Random()`` — reported at the sink with the
          witness call chain.  (b) Every literal stream name passed to
          ``.stream(...)`` must be declared in the module's
          ``RNG_STREAMS`` tuple (entries ending in ``:`` declare a
          prefix family, e.g. ``"linkloss:"``).
VR120     Digest-escaping mutable state: module globals (``global X``
          writes, mutations of module-level containers) and class
          attributes (``Cls.attr = ...``, ``type(self).attr``) written
          from event-handler-reachable code.  Such state survives the
          run, leaks across runs in one process, and is invisible to
          ``run_digest`` — attribute names that *are* digest inputs
          (parsed from ``experiments/digest.py``) are exempt.
VR130     Spawn/pickle safety: callables handed to the worker pool
          (``.submit(...)``, a ``runner=`` keyword, ``SweepSupervisor``)
          must survive pickling under the spawn start method — lambdas,
          closures (nested ``def``\\ s), and bound methods of classes
          holding unpicklable resources (locks, file handles, pools)
          are flagged.
VR140     Trace-hook zero-cost discipline: every ``_TRACE.<...>`` use
          must sit behind an ``if _TRACE is not None`` guard (directly
          or via ``and`` short-circuit), and a module that reads
          ``_TRACE`` must register it via
          ``_TRACE = <hooks>.register(__name__)``.
========  =====================================================================
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    Project,
    display_chain,
    walk_shallow,
)
from repro.analysis.lint import Violation

RULES_VR1XX: Dict[str, str] = {
    "VR100": "float/seconds value crosses into integer-nanosecond time",
    "VR110": "event-handler-reachable RNG draw outside named streams",
    "VR120": "digest-escaping mutable state written from handler code",
    "VR130": "unpicklable callable submitted to the worker pool",
    "VR140": "trace hook not guarded by the zero-cost _TRACE pattern",
    "VR150": "float arithmetic inside analytic completion-time code",
    "VR160": "float arithmetic inside PFC pause/threshold code",
}

HINTS_VR1XX: Dict[str, str] = {
    "VR100": "convert at the boundary: wrap in int()/round() where "
             "seconds/floats become *_ns, or keep the math integral",
    "VR110": "draw from a declared RngRegistry stream (add the name to "
             "the module's RNG_STREAMS tuple) wired in at build time",
    "VR120": "keep run state on instances created per run, or add the "
             "field to the digest inputs in experiments/digest.py",
    "VR130": "submit a module-level function; workers under spawn "
             "re-import it by qualified name",
    "VR140": "guard with `if _TRACE is not None:` (module-global load + "
             "identity test) so traced-off runs pay nothing",
    "VR150": "the analytic fast path feeds event timestamps: keep every "
             "intermediate integral (scale first, then floor-divide)",
    "VR160": "PAUSE/resume scheduling and XOFF/XON thresholds feed the "
             "integer-ns calendar: keep the arithmetic integral",
}

_RANDOM_DRAWS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "sample", "shuffle", "gauss", "expovariate", "betavariate",
    "normalvariate", "lognormvariate", "paretovariate", "weibullvariate",
    "triangular", "vonmisesvariate", "gammavariate", "getrandbits",
    "seed",
})

_SUBMIT_METHODS = frozenset({"submit"})
_RUNNER_KEYWORDS = frozenset({"runner"})
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popleft", "appendleft", "clear", "remove", "discard",
})


# -- VR110: RNG stream ownership -----------------------------------------------


def check_vr110(project: Project, graph: CallGraph) -> List[Violation]:
    violations: List[Violation] = []
    parents = graph.reachable()
    # (a) handler-reachable global draws / unseeded Random().
    for qualname in parents:
        func = project.functions.get(qualname)
        if func is None:
            continue
        for node in walk_shallow(func.node):
            if not isinstance(node, ast.Call):
                continue
            sink = _random_sink(node)
            if sink is None:
                continue
            chain = graph.witness_path(parents, qualname)
            violations.append(Violation(
                func.path, node.lineno, node.col_offset + 1, "VR110",
                f"{sink} is reachable from an event handler "
                f"(path: {display_chain(project, chain)})"))
    # (b) undeclared literal stream names.
    for module in project.modules.values():
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr == "stream" and node.args):
                continue
            name = _static_stream_name(node.args[0])
            if name is None:
                continue
            if not _stream_declared(module, name):
                declared = ", ".join(module.rng_streams or ()) or "(none)"
                violations.append(Violation(
                    module.path, node.lineno, node.col_offset + 1,
                    "VR110",
                    f"stream '{name}' is not declared in this module's "
                    f"RNG_STREAMS tuple (declared: {declared})"))
    return violations


def _random_sink(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name) \
            and func.value.id == "random":
        if func.attr == "Random":
            return None if node.args or node.keywords \
                else "unseeded random.Random()"
        if func.attr in _RANDOM_DRAWS:
            return f"global random.{func.attr}()"
        return None
    if isinstance(func, ast.Name) and func.id == "Random" \
            and not node.args and not node.keywords:
        return "unseeded Random()"
    return None


def _static_stream_name(node: ast.expr) -> Optional[str]:
    """Literal stream name, or the static prefix of an f-string."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        head = node.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value
    return None


def _stream_declared(module: ModuleInfo, name: str) -> bool:
    declared = module.rng_streams
    if declared is None:
        return False
    for entry in declared:
        if entry == name:
            return True
        if entry.endswith(":") and name.startswith(entry):
            return True
    return False


# -- VR120: digest-escaping mutable state --------------------------------------


def digest_input_names(project: Project) -> Set[str]:
    """Attribute/key names the run digest covers (experiments/digest.py)."""
    names: Set[str] = set()
    for path, module in project.modules.items():
        if not path.replace("\\", "/").endswith("experiments/digest.py"):
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                names.add(node.attr)
            elif isinstance(node, ast.Constant) \
                    and isinstance(node.value, str):
                names.add(node.value)
    return names


def check_vr120(project: Project, graph: CallGraph) -> List[Violation]:
    violations: List[Violation] = []
    parents = graph.reachable()
    digest_names = digest_input_names(project)
    for qualname in parents:
        func = project.functions.get(qualname)
        if func is None:
            continue
        module = project.modules.get(func.path)
        globals_declared = _global_names(func.node)
        for node in walk_shallow(func.node):
            hit = _escaping_write(node, func, module, globals_declared)
            if hit is None:
                continue
            name, kind = hit
            if name in digest_names:
                continue
            chain = graph.witness_path(parents, qualname)
            violations.append(Violation(
                func.path, node.lineno, node.col_offset + 1, "VR120",
                f"{kind} '{name}' written from event-handler-reachable "
                f"code escapes the run digest "
                f"(path: {display_chain(project, chain)})"))
    violations.extend(_check_snapshot_coverage(project))
    return violations


# -- VR120 checkpoint-coverage pass --------------------------------------------
#
# A class implementing the Snapshot protocol serializes *exactly* its
# SNAPSHOT_ATTRS (own + inherited): any other instance attribute is
# silently absent after a checkpoint restore.  Flag every ``self.X``
# assignment in a Snapshot class's methods whose name no literal
# SNAPSHOT_ATTRS declaration in the class or its ancestors covers.
# Deliberate exclusions carry an inline ``repro: lint-disable VR120``.


def _snapshot_attr_decls(project: Project) -> Dict[str, Set[str]]:
    """Class name -> literal strings in its SNAPSHOT_ATTRS declaration."""
    decls: Dict[str, Set[str]] = {}
    for module in project.modules.values():
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                targets = ()
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                elif isinstance(stmt, ast.AnnAssign) and stmt.value:
                    targets = (stmt.target,)
                if not any(isinstance(t, ast.Name)
                           and t.id == "SNAPSHOT_ATTRS" for t in targets):
                    continue
                strings = decls.setdefault(node.name, set())
                for leaf in ast.walk(stmt.value):
                    if isinstance(leaf, ast.Constant) \
                            and isinstance(leaf.value, str):
                        strings.add(leaf.value)
    return decls


def _ancestor_names(project: Project, name: str) -> Set[str]:
    """``name`` plus every (transitive) base-class name in the project."""
    seen: Set[str] = {name}
    frontier = [name]
    while frontier:
        for cls_info in project.classes.get(frontier.pop(), ()):
            for base in cls_info.bases:
                if base not in seen:
                    seen.add(base)
                    frontier.append(base)
    return seen


def _check_snapshot_coverage(project: Project) -> List[Violation]:
    violations: List[Violation] = []
    decls = _snapshot_attr_decls(project)
    for cls_name, infos in sorted(project.classes.items()):
        if cls_name == "Snapshot":
            continue
        ancestors = _ancestor_names(project, cls_name)
        if "Snapshot" not in ancestors:
            continue
        covered: Set[str] = set()
        for ancestor in ancestors:
            covered |= decls.get(ancestor, set())
        for cls_info in infos:
            seen: Set[str] = set()
            for method, qualname in sorted(cls_info.methods.items()):
                func = project.functions.get(qualname)
                if func is None:
                    continue
                for node in walk_shallow(func.node):
                    hit = _self_attr_write(node)
                    if hit is None or hit in covered or hit in seen:
                        continue
                    seen.add(hit)
                    violations.append(Violation(
                        func.path, node.lineno, node.col_offset + 1,
                        "VR120",
                        f"attribute 'self.{hit}' on Snapshot class "
                        f"'{cls_name}' is missing from SNAPSHOT_ATTRS — "
                        f"it will be absent after a checkpoint restore"))
    return violations


def _self_attr_write(node: ast.AST) -> Optional[str]:
    """Attribute name when ``node`` assigns ``self.<attr>``."""
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) \
            else [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                return target.attr
    return None


def _global_names(node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for child in walk_shallow(node):
        if isinstance(child, ast.Global):
            names.update(child.names)
    return names


def _escaping_write(node: ast.AST, func: FunctionInfo,
                    module: Optional[ModuleInfo],
                    globals_declared: Set[str]
                    ) -> Optional[Tuple[str, str]]:
    """(name, kind) when ``node`` writes module/class-lifetime state."""
    module_names = module.module_bindings if module else set()
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) \
            else [node.target]
        for target in targets:
            # global X; X = ...
            if isinstance(target, ast.Name) \
                    and target.id in globals_declared:
                return target.id, "module global"
            # ClassName.attr = ... / type(self).attr = ...
            if isinstance(target, ast.Attribute):
                owner = _class_owner(target.value, func)
                if owner is not None:
                    return f"{owner}.{target.attr}", "class attribute"
            # MODULE_LEVEL[k] = ...
            if isinstance(target, ast.Subscript) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id in module_names:
                return target.value.id, "module-level container"
    if isinstance(node, ast.Call):
        func_expr = node.func
        if isinstance(func_expr, ast.Attribute) \
                and func_expr.attr in _MUTATING_METHODS \
                and isinstance(func_expr.value, ast.Name) \
                and func_expr.value.id in module_names:
            return func_expr.value.id, "module-level container"
    return None


def _class_owner(value: ast.expr, func: FunctionInfo) -> Optional[str]:
    """Class name when ``value`` denotes a class object, else None."""
    if isinstance(value, ast.Name) and func.cls is not None \
            and value.id == func.cls:
        return value.id
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) \
            and value.func.id == "type" and len(value.args) == 1 \
            and isinstance(value.args[0], ast.Name) \
            and value.args[0].id == "self":
        return func.cls or "type(self)"
    if isinstance(value, ast.Attribute) and value.attr == "__class__" \
            and isinstance(value.value, ast.Name) \
            and value.value.id == "self":
        return func.cls or "self.__class__"
    return None


# -- VR130: spawn/pickle safety ------------------------------------------------


def check_vr130(project: Project, graph: CallGraph) -> List[Violation]:
    violations: List[Violation] = []
    for qualname, func in project.functions.items():
        for node in walk_shallow(func.node):
            if not isinstance(node, ast.Call):
                continue
            for callable_expr, context in _pool_callables(node):
                problem = _pickle_problem(callable_expr, func, project)
                if problem is not None:
                    violations.append(Violation(
                        func.path, callable_expr.lineno,
                        callable_expr.col_offset + 1, "VR130",
                        f"{problem} {context}; the spawn start method "
                        f"re-imports worker callables by qualified name"))
    # Module-level submit sites (rare, but cheap to cover).
    for module in project.modules.values():
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                for callable_expr, context in _pool_callables(node):
                    if isinstance(callable_expr, ast.Lambda):
                        violations.append(Violation(
                            module.path, callable_expr.lineno,
                            callable_expr.col_offset + 1, "VR130",
                            f"lambda {context}; the spawn start method "
                            f"re-imports worker callables by qualified "
                            f"name"))
    return violations


def _pool_callables(node: ast.Call) -> List[Tuple[ast.expr, str]]:
    """(callable expression, description) pairs submitted to a pool."""
    found: List[Tuple[ast.expr, str]] = []
    func = node.func
    callee_name = func.attr if isinstance(func, ast.Attribute) \
        else func.id if isinstance(func, ast.Name) else None
    if isinstance(func, ast.Attribute) and func.attr in _SUBMIT_METHODS \
            and node.args:
        found.append((node.args[0], "passed to .submit()"))
    for keyword in node.keywords:
        if keyword.arg in _RUNNER_KEYWORDS:
            target = callee_name or "the pool"
            found.append((keyword.value, f"passed as runner= to {target}"))
    return found


def _pickle_problem(expr: ast.expr, func: FunctionInfo,
                    project: Project) -> Optional[str]:
    if isinstance(expr, ast.Lambda):
        return "lambda"
    if isinstance(expr, ast.Name):
        nested = f"{func.qualname}.{expr.id}"
        if nested in project.functions:
            return f"nested function '{expr.id}' (closure over live state)"
        return None
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        receiver = expr.value.id
        cls_name: Optional[str] = None
        if receiver == "self" and func.cls is not None:
            cls_name = func.cls
        else:
            cls_name = _local_class_of(receiver, func)
        if cls_name is not None \
                and project.resolve_method(cls_name, expr.attr):
            # Only actual methods are bound-method pickles; an instance
            # attribute holding a module-level function pickles fine.
            for cls_info in project.classes.get(cls_name, ()):
                if cls_info.unpicklable:
                    return (f"bound method of '{cls_name}', which holds "
                            f"unpicklable state (lock/file/pool in "
                            f"__init__)")
    return None


def _local_class_of(name: str, func: FunctionInfo) -> Optional[str]:
    """Class name when a local ``name = ClassName(...)`` binding exists."""
    for node in walk_shallow(func.node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            ctor = node.value.func
            if isinstance(ctor, ast.Name):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        return ctor.id
    return None


# -- VR140: trace-hook discipline ----------------------------------------------


def check_vr140(tree: ast.Module, path: str) -> List[Violation]:
    """Per-module check: every ``_TRACE`` use behind the identity guard."""
    violations: List[Violation] = []
    registered = _trace_registered(tree)
    checker = _TraceGuardChecker(path, registered)
    checker.visit(tree)
    return checker.violations


def _trace_registered(tree: ast.Module) -> bool:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "_TRACE" \
                        and isinstance(stmt.value, ast.Call):
                    func = stmt.value.func
                    attr = func.attr if isinstance(func, ast.Attribute) \
                        else func.id if isinstance(func, ast.Name) else None
                    if attr == "register":
                        return True
    return False


def _is_trace_none_check(node: ast.expr) -> bool:
    """``_TRACE is not None`` (or ``_TRACE`` truthiness) comparison."""
    if isinstance(node, ast.Compare) and len(node.ops) == 1 \
            and isinstance(node.ops[0], ast.IsNot) \
            and isinstance(node.left, ast.Name) \
            and node.left.id == "_TRACE" \
            and isinstance(node.comparators[0], ast.Constant) \
            and node.comparators[0].value is None:
        return True
    return False


class _TraceGuardChecker(ast.NodeVisitor):
    def __init__(self, path: str, registered: bool) -> None:
        self.path = path
        self.registered = registered
        self.violations: List[Violation] = []
        self._guarded = 0
        self._flagged_registration = False

    def _use(self, node: ast.AST, what: str) -> None:
        if not self.registered and not self._flagged_registration:
            self._flagged_registration = True
            self.violations.append(Violation(
                self.path, node.lineno, node.col_offset + 1, "VR140",
                "module uses _TRACE but never registers it "
                "(_TRACE = <hooks>.register(__name__))"))
        if self._guarded == 0:
            self.violations.append(Violation(
                self.path, node.lineno, node.col_offset + 1, "VR140",
                f"{what} outside an `if _TRACE is not None` guard; "
                f"traced-off runs must pay only the identity test"))

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "_TRACE":
            self._use(node, f"_TRACE.{node.attr} used")
            return  # don't descend; one report per use site
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # The registration assignment itself is the sanctioned bare use.
        if any(isinstance(target, ast.Name) and target.id == "_TRACE"
               for target in node.targets):
            return
        self.generic_visit(node)

    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        if isinstance(node.op, ast.And):
            guarded_from: Optional[int] = None
            for index, value in enumerate(node.values):
                if guarded_from is None:
                    self.visit(value)
                    if _is_trace_none_check(value):
                        guarded_from = index
                else:
                    self._guarded += 1
                    self.visit(value)
                    self._guarded -= 1
            return
        self.generic_visit(node)

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        guards = _guard_in_test(node.test)
        if guards:
            self._guarded += 1
        for stmt in node.body:
            self.visit(stmt)
        if guards:
            self._guarded -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        self.visit(node.test)
        if _guard_in_test(node.test):
            self._guarded += 1
            self.visit(node.body)
            self._guarded -= 1
        else:
            self.visit(node.body)
        self.visit(node.orelse)


def _guard_in_test(test: ast.expr) -> bool:
    if _is_trace_none_check(test):
        return True
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_is_trace_none_check(value) for value in test.values)
    return False
