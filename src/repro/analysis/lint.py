"""Determinism & unit-discipline static checker (``python -m repro.analysis.lint``).

The simulator's two load-bearing invariants — every stochastic draw flows
through :class:`~repro.sim.rng.RngRegistry` named streams, and all
quantities live in canonical integer units (time in nanoseconds, sizes in
bytes, rates in bits/s) — are conventions Python cannot enforce.  This
module enforces them with an AST pass:

========  =======================================================================
Rule      Checks
========  =======================================================================
VR001     No ``random.Random(...)`` construction and no module-level
          ``random.*`` calls (or ``from random import ...`` of callables)
          outside ``sim/rng.py``.  Type annotations such as
          ``rng: random.Random`` are fine — only *calls* draw entropy.
VR002     No wall-clock reads (``time.time``, ``time.perf_counter``,
          ``time.monotonic``, ``datetime.now``, ...) inside simulation
          code; benchmarks are exempt.
VR003     Unit discipline: no float-typed values flowing into names,
          attributes, keyword arguments or parameters suffixed ``_ns`` /
          ``_bytes`` / ``_bps``, and no true division (``/``) touching such
          a quantity unless wrapped in ``round()`` / ``int()`` /
          ``floor()`` / ``ceil()`` / ``trunc()``.
VR004     No module-lifetime mutable state in ``repro.*``: module- or
          class-level assignments of mutable containers (or factories such
          as ``itertools.count()``) to non-CONSTANT-case names.
VR005     ``.schedule(...)`` is never called with a literal negative delay,
          and no ``*_ns`` keyword (fault timestamps such as
          ``FaultSpec(at_ns=...)`` included) receives a literal negative.
VR006     No silently-swallowed broad exceptions: a handler catching
          everything (bare ``except:``, ``except Exception:``,
          ``except BaseException:`` — alone or inside a tuple) must do
          something with the error; a ``pass``-only body hides crashes
          the supervised runtime needs to see and classify.
========  =======================================================================

Suppression: append ``# noqa: VRxxx`` (or a bare ``# noqa``) to the
offending line, or the tracked form ``# repro: lint-disable VRxxx``
(stale ones are reported as VR090 — see :mod:`repro.analysis.suppress`).
Per-rule path exemptions merge built-in defaults with the
``[tool.repro.lint.exempt]`` table in ``pyproject.toml``.

This module owns the *per-function* rules VR001–VR006 and the shared
plumbing (:class:`Violation`, :class:`LintConfig`).  The whole-program
rules VR100–VR140 (call-graph + dataflow) live in
:mod:`repro.analysis.rules`; running ``python -m repro.analysis.lint``
(or ``repro lint``) dispatches to the multi-pass driver in
:mod:`repro.analysis.driver`, which runs both families.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

UNIT_SUFFIXES = ("_ns", "_bytes", "_bps")

RULES: Dict[str, str] = {
    "VR001": "stochastic draw bypasses RngRegistry named streams",
    "VR002": "wall-clock read inside simulation code",
    "VR003": "float value or unrounded true division on a unit quantity",
    "VR004": "module-lifetime mutable state",
    "VR005": "literal negative delay or *_ns timestamp",
    "VR006": "broad exception handler silently swallows the error",
}

HINTS: Dict[str, str] = {
    "VR001": "draw from RngRegistry.stream(<name>) (repro.sim.rng) so runs "
             "stay bit-reproducible and component-independent",
    "VR002": "use Engine.now (integer simulated ns); wall clocks break "
             "reproducibility",
    "VR003": "keep *_ns/*_bytes/*_bps integral: wrap in round()/int() or "
             "use // floor division",
    "VR004": "move the state into an instance (or rename to CONSTANT_CASE "
             "if it is genuinely immutable after import)",
    "VR005": "delays are relative to Engine.now and must be >= 0",
    "VR006": "narrow the exception type, or at least record/re-raise it; "
             "swallowed errors surface later as silent data loss",
}

#: Built-in per-rule path exemptions (fnmatch patterns over posix paths).
DEFAULT_EXEMPT: Dict[str, Tuple[str, ...]] = {
    "VR001": ("*/sim/rng.py",),
    "VR002": ("benchmarks/*", "*/benchmarks/*"),
    "VR003": ("*/sim/units.py",),
}

_WALL_CLOCK_TIME_ATTRS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "thread_time",
    "thread_time_ns",
})
_WALL_CLOCK_DT_ATTRS = frozenset({"now", "utcnow", "today"})
_ROUNDING_FUNCS = frozenset({"round", "int", "floor", "ceil", "trunc"})
_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter",
    "OrderedDict", "ChainMap", "count", "cycle",
})
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.I)


@dataclass(frozen=True)
class Violation:
    """One rule hit at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        hint = HINTS.get(self.code)
        suffix = f" [hint: {hint}]" if hint else ""
        return (f"{self.path}:{self.line}:{self.col}: {self.code} "
                f"{self.message}{suffix}")


@dataclass
class LintConfig:
    """Effective linter configuration (defaults merged with pyproject)."""

    select: Tuple[str, ...] = tuple(sorted(RULES))
    exempt: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_EXEMPT))
    paths: Tuple[str, ...] = ("src",)


def load_config(pyproject: Optional[Path] = None) -> LintConfig:
    """Build a :class:`LintConfig` from ``[tool.repro.lint]`` if present."""
    config = LintConfig()
    if pyproject is None:
        pyproject = _find_pyproject(Path.cwd())
    if pyproject is None or not pyproject.is_file():
        return config
    try:
        import tomllib
    except ModuleNotFoundError:  # pragma: no cover - py<3.11 fallback
        return config
    with pyproject.open("rb") as handle:
        table = tomllib.load(handle)
    section = table.get("tool", {}).get("repro", {}).get("lint", {})
    if "select" in section:
        config.select = tuple(section["select"])
    if "paths" in section:
        config.paths = tuple(section["paths"])
    for code, patterns in section.get("exempt", {}).items():
        merged = config.exempt.get(code, ()) + tuple(patterns)
        config.exempt[code] = merged
    return config


def _find_pyproject(start: Path) -> Optional[Path]:
    for parent in (start, *start.parents):
        candidate = parent / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


# -- expression helpers --------------------------------------------------------


def _call_name(node: ast.Call) -> Optional[str]:
    """Terminal name of the called object (``itertools.count`` -> ``count``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _terminal_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _has_unit_suffix(name: Optional[str]) -> bool:
    return name is not None and name.endswith(UNIT_SUFFIXES)


def _mentions_unit_name(node: ast.expr) -> bool:
    """Does any name/attribute inside ``node`` carry a unit suffix?"""
    for child in ast.walk(node):
        if _has_unit_suffix(_terminal_name(child)) \
                and isinstance(child, (ast.Name, ast.Attribute)):
            return True
    return False


def _float_taint(node: ast.expr) -> Optional[ast.expr]:
    """Return the sub-expression proving ``node`` is float-valued, if any.

    Conservative: opaque calls and names are assumed integral;
    ``round``/``int``/``floor``/``ceil``/``trunc`` clear taint, true
    division and float literals introduce it.
    """
    if isinstance(node, ast.Constant):
        return node if isinstance(node.value, float) else None
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return node
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mult, ast.Mod,
                                ast.Pow)):
            return _float_taint(node.left) or _float_taint(node.right)
        return None
    if isinstance(node, ast.UnaryOp):
        return _float_taint(node.operand)
    if isinstance(node, ast.Call):
        return node if _call_name(node) == "float" else None
    if isinstance(node, ast.IfExp):
        return _float_taint(node.body) or _float_taint(node.orelse)
    return None


def _is_float_annotation(node: Optional[ast.expr]) -> bool:
    return node is not None and isinstance(node, ast.Name) \
        and node.id == "float"


def _literal_negative(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return isinstance(node.operand, ast.Constant) \
            and isinstance(node.operand.value, (int, float))
    return isinstance(node, ast.Constant) \
        and isinstance(node.value, (int, float)) and node.value < 0


# -- the checker ---------------------------------------------------------------


class _Checker(ast.NodeVisitor):
    """Single-file AST walk producing raw (unsuppressed) violations."""

    def __init__(self, path: str, select: Iterable[str]) -> None:
        self.path = path
        self.select = frozenset(select)
        self.violations: List[Violation] = []
        self._round_depth = 0
        self._scope_depth = 0  # >0 inside a function body

    # -- plumbing --------------------------------------------------------------

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        if code in self.select:
            self.violations.append(Violation(
                self.path, getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0) + 1, code, message))

    # -- imports (VR001 / VR002) ----------------------------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            names = ", ".join(alias.name for alias in node.names)
            self._flag(node, "VR001",
                       f"'from random import {names}' pulls module-level "
                       f"entropy into scope")
        elif node.module == "time":
            clocks = [alias.name for alias in node.names
                      if alias.name in _WALL_CLOCK_TIME_ATTRS]
            if clocks:
                self._flag(node, "VR002",
                           f"imports wall clock(s) {', '.join(clocks)} "
                           f"from time")
        self.generic_visit(node)

    # -- calls (VR001 / VR002 / VR005 + rounding context) ----------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = _terminal_name(func.value)
            if base == "random":
                self._flag(node, "VR001",
                           f"call random.{func.attr}(...) uses the global "
                           f"random module")
            elif base == "time" and func.attr in _WALL_CLOCK_TIME_ATTRS:
                self._flag(node, "VR002", f"call time.{func.attr}() reads "
                                          f"the wall clock")
            elif func.attr in _WALL_CLOCK_DT_ATTRS \
                    and base in ("datetime", "date"):
                self._flag(node, "VR002", f"call {base}.{func.attr}() reads "
                                          f"the wall clock")
            if func.attr == "schedule" and node.args \
                    and _literal_negative(node.args[0]):
                self._flag(node, "VR005",
                           "schedule() called with a literal negative delay")
        # Keyword arguments carrying unit suffixes must stay integral,
        # and scheduled timestamps (fault specs' at_ns in particular)
        # must not be literal negatives — they address the engine
        # calendar, which only runs forward.
        for keyword in node.keywords:
            if keyword.arg and _has_unit_suffix(keyword.arg):
                taint = _float_taint(keyword.value)
                if taint is not None:
                    self._flag(keyword.value, "VR003",
                               f"float value flows into keyword "
                               f"'{keyword.arg}'")
                if keyword.arg.endswith("_ns") \
                        and _literal_negative(keyword.value):
                    self._flag(keyword.value, "VR005",
                               f"literal negative timestamp passed to "
                               f"keyword '{keyword.arg}'")
        if _call_name(node) in _ROUNDING_FUNCS:
            self.visit(func)
            self._round_depth += 1
            for arg in node.args:
                self.visit(arg)
            for keyword in node.keywords:
                self.visit(keyword)
            self._round_depth -= 1
        else:
            self.generic_visit(node)

    # -- unit discipline (VR003) ----------------------------------------------

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Div) and self._round_depth == 0 \
                and (_mentions_unit_name(node.left)
                     or _mentions_unit_name(node.right)):
            self._flag(node, "VR003",
                       "true division on a *_ns/*_bytes/*_bps quantity "
                       "produces a float")
        self.generic_visit(node)

    def _check_unit_binding(self, target: ast.expr,
                            value: Optional[ast.expr]) -> None:
        name = _terminal_name(target)
        if not _has_unit_suffix(name) or value is None:
            return
        taint = _float_taint(value)
        if taint is not None:
            self._flag(value, "VR003",
                       f"float value assigned to '{name}'")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Name, ast.Attribute)):
                self._check_unit_binding(target, node.value)
        self._check_module_state(node, node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        name = _terminal_name(node.target)
        if _has_unit_suffix(name):
            if _is_float_annotation(node.annotation):
                self._flag(node.annotation, "VR003",
                           f"'{name}' annotated as float; unit-suffixed "
                           f"quantities are integers")
            self._check_unit_binding(node.target, node.value)
        if node.value is not None:
            self._check_module_state(node, [node.target], node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        name = _terminal_name(node.target)
        if _has_unit_suffix(name):
            if isinstance(node.op, ast.Div):
                self._flag(node, "VR003",
                           f"'{name} /= ...' turns the quantity into a "
                           f"float")
            else:
                self._check_unit_binding(node.target, node.value)
        self.generic_visit(node)

    def _visit_functiondef(self, node) -> None:
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if _has_unit_suffix(arg.arg) \
                    and _is_float_annotation(arg.annotation):
                self._flag(arg, "VR003",
                           f"parameter '{arg.arg}' annotated as float")
        defaults = list(args.defaults) + list(args.kw_defaults)
        params = list(args.posonlyargs) + list(args.args)
        # Positional defaults align with the tail of the parameter list.
        for arg, default in zip(params[len(params) - len(args.defaults):],
                                args.defaults):
            if _has_unit_suffix(arg.arg) and default is not None:
                self._check_unit_binding(
                    ast.Name(id=arg.arg, lineno=default.lineno,
                             col_offset=default.col_offset), default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if _has_unit_suffix(arg.arg) and default is not None:
                self._check_unit_binding(
                    ast.Name(id=arg.arg, lineno=default.lineno,
                             col_offset=default.col_offset), default)
        self._scope_depth += 1
        self.generic_visit(node)
        self._scope_depth -= 1

    visit_FunctionDef = _visit_functiondef
    visit_AsyncFunctionDef = _visit_functiondef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._scope_depth += 1
        self.generic_visit(node)
        self._scope_depth -= 1

    # -- swallowed broad exceptions (VR006) ------------------------------------

    @staticmethod
    def _is_broad_exception(node: Optional[ast.expr]) -> bool:
        if node is None:  # bare `except:`
            return True
        if isinstance(node, ast.Tuple):
            return any(_Checker._is_broad_exception(element)
                       for element in node.elts)
        return _terminal_name(node) in _BROAD_EXCEPTIONS

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        swallows = all(isinstance(stmt, ast.Pass) for stmt in node.body)
        if swallows and self._is_broad_exception(node.type):
            caught = "bare except" if node.type is None \
                else f"except {_terminal_name(node.type) or '...'}"
            self._flag(node, "VR006",
                       f"{caught} with a pass-only body silently swallows "
                       f"the error")
        self.generic_visit(node)

    # -- module-lifetime mutable state (VR004) ---------------------------------

    def _check_module_state(self, node: ast.AST,
                            targets: Sequence[ast.expr],
                            value: ast.expr) -> None:
        if self._scope_depth > 0:  # locals are fine
            return
        if not self._is_mutable_value(value):
            return
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name.startswith("__") and name.endswith("__"):
                continue  # dunders (__all__, ...) are interface, not state
            if name.upper() == name:
                continue  # CONSTANT_CASE: registry/constant by convention
            self._flag(node, "VR004",
                       f"'{name}' holds mutable state for the lifetime of "
                       f"the module/class")

    @staticmethod
    def _is_mutable_value(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return _call_name(node) in _MUTABLE_FACTORIES
        return False


# -- driver --------------------------------------------------------------------


def _noqa_lines(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line numbers to suppressed codes (``None`` = suppress all)."""
    suppressed: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressed[lineno] = None
        else:
            suppressed[lineno] = {code.strip().upper()
                                  for code in codes.split(",") if code.strip()}
    return suppressed


def _exempt(path: str, code: str, config: LintConfig) -> bool:
    posix = Path(path).as_posix()
    return any(fnmatch(posix, pattern)
               for pattern in config.exempt.get(code, ()))


def lint_source(source: str, path: str = "<string>",
                config: Optional[LintConfig] = None) -> List[Violation]:
    """Lint one module's source text; returns surviving violations."""
    from repro.analysis.suppress import parse_pragmas
    config = config or LintConfig()
    tree = ast.parse(source, filename=path)
    checker = _Checker(path, config.select)
    checker.visit(tree)
    suppressed = _noqa_lines(source)
    pragmas = parse_pragmas(source)
    survivors = []
    for violation in checker.violations:
        if _exempt(path, violation.code, config):
            continue
        pragma = pragmas.get(violation.line)
        if pragma is not None and violation.code in pragma.codes:
            continue
        codes = suppressed.get(violation.line, "missing")
        if codes is None or (codes != "missing" and violation.code in codes):
            continue
        survivors.append(violation)
    return survivors


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_paths(paths: Iterable[str],
               config: Optional[LintConfig] = None) -> List[Violation]:
    """Lint every ``.py`` file under ``paths``."""
    config = config or LintConfig()
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            violations.append(Violation(str(path), 0, 0, "VR000",
                                        f"unreadable: {exc}"))
            continue
        try:
            violations.extend(lint_source(source, str(path), config))
        except SyntaxError as exc:
            violations.append(Violation(str(path), exc.lineno or 0, 0,
                                        "VR000", f"syntax error: {exc.msg}"))
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: dispatch to the multi-pass driver.

    Kept here so ``python -m repro.analysis.lint`` and existing callers
    keep working; the argument surface (``--format``, ``--fix``,
    ``--baseline``, ...) is defined by :func:`repro.analysis.driver.main`.
    """
    from repro.analysis.driver import main as _driver_main
    return _driver_main(argv)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
