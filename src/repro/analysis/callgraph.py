"""Project-wide symbol table and call graph for the VR1xx passes.

The per-function rules (VR001–VR006, :mod:`repro.analysis.lint`) see one
function at a time; the determinism properties the VR1xx family guards
— float time leaking *across* calls, RNG draws reached transitively from
event handlers, state escaping the run digest — are whole-program
properties.  This module builds the shared substrate those passes run
on:

- :class:`Project` — every module parsed once, with a symbol table of
  functions (by qualified name), classes (with base-class names and
  methods), imports, and module-level constant bindings;
- :class:`CallGraph` — over-approximate call edges resolved by name:
  direct calls bind to module or imported symbols, ``self.m()`` binds
  through the class hierarchy (ancestors *and* descendants, so calls to
  abstract methods reach every override), and unqualified attribute
  calls fall back to every project method of that name (CHA-lite),
  filtered through a builtin-method stoplist;
- **entry points** — the functions simulated time starts from: every
  method of a forwarding-policy class and every callback handed to
  ``schedule`` / ``schedule_at`` / ``schedule_fast``.

Qualified names have the form ``"<posix path>::Class.method"`` or
``"<posix path>::function"``; nested functions append ``.<name>`` to
their parent and carry an implicit edge from it (defining a closure is
treated as potentially calling it).
"""

from __future__ import annotations

import ast
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Attribute-call names never resolved CHA-style: builtin container /
#: string methods whose names would otherwise alias project methods.
BUILTIN_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "copy", "add", "discard", "update", "get", "items",
    "keys", "values", "setdefault", "popitem", "popleft", "appendleft",
    "join", "split", "rsplit", "strip", "lstrip", "rstrip", "format",
    "encode", "decode", "startswith", "endswith", "replace", "lower",
    "upper", "count", "index", "find", "rfind", "read", "write",
    "readline", "readlines", "close", "flush", "open", "items",
    "most_common", "total", "hexdigest", "digest", "dumps", "loads",
    "dump", "load", "group", "groups", "match", "search", "sub",
    "fullmatch", "finditer", "put", "qsize", "task_done", "acquire",
    "release", "wait", "notify", "set", "is_set", "submit", "shutdown",
    "result", "done", "cancel", "exists", "is_file", "is_dir",
    "as_posix", "resolve", "rglob", "glob", "mkdir", "unlink",
    "read_text", "write_text",
})

#: Scheduling entry points: a function object passed as the callback
#: argument of these methods becomes an event handler.
SCHEDULE_METHODS = frozenset({"schedule", "schedule_at", "schedule_fast"})

#: Class-name markers for forwarding policies (methods are entry points).
POLICY_BASES = frozenset({"ForwardingPolicy"})


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    path: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef | Lambda
    lineno: int
    cls: Optional[str] = None       # enclosing class name, if a method
    parent: Optional[str] = None    # enclosing function qualname, if nested
    params: Tuple[str, ...] = ()

    @property
    def is_nested(self) -> bool:
        return self.parent is not None

    def display(self) -> str:
        tail = f"{self.cls}.{self.name}" if self.cls else self.name
        return f"{self.path}:{self.lineno}:{tail}"


@dataclass
class ClassInfo:
    """One class definition: base names and its methods."""

    name: str
    path: str
    lineno: int
    bases: Tuple[str, ...] = ()
    methods: Dict[str, str] = field(default_factory=dict)  # name -> qualname
    #: Class-level attribute names assigned in the class body.
    class_attrs: Set[str] = field(default_factory=set)
    #: True when __init__ binds an unpicklable resource (lock, file, ...).
    unpicklable: bool = False


@dataclass
class ModuleInfo:
    """One parsed module and its top-level symbol table."""

    path: str
    tree: ast.Module
    source: str
    functions: Dict[str, str] = field(default_factory=dict)  # name -> qualname
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: import alias -> dotted target ("from x import f" => {"f": "x.f"})
    imports: Dict[str, str] = field(default_factory=dict)
    #: Module-level names bound to container/constant literals.
    module_bindings: Set[str] = field(default_factory=set)
    #: Declared RNG stream names (the RNG_STREAMS module constant).
    rng_streams: Optional[Tuple[str, ...]] = None


_UNPICKLABLE_FACTORIES = frozenset({
    "Lock", "RLock", "Condition", "Event", "Semaphore",
    "BoundedSemaphore", "Barrier", "Thread", "open", "socket",
    "ProcessPoolExecutor", "ThreadPoolExecutor",
})


def walk_shallow(root: ast.AST):
    """Yield ``root``'s descendants without entering nested definitions.

    Like :func:`ast.walk`, but subtrees of nested ``def`` / ``class`` /
    ``lambda`` nodes are not descended into — their bodies belong to the
    separately-indexed nested symbol, not to ``root``.
    """
    stack = [root]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            yield child
            if not isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef,
                                      ast.Lambda, ast.ClassDef)):
                stack.append(child)


def _module_dotted(path: str) -> str:
    """Best-effort dotted module name from a file path."""
    parts = list(path.replace("\\", "/").split("/"))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    return ".".join(part for part in parts if part)


class _ModuleIndexer(ast.NodeVisitor):
    """Populate a :class:`ModuleInfo` and collect its functions."""

    def __init__(self, info: ModuleInfo,
                 functions: Dict[str, FunctionInfo]) -> None:
        self.info = info
        self.functions = functions
        self._class_stack: List[ClassInfo] = []
        self._func_stack: List[FunctionInfo] = []

    # -- imports ---------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.asname or alias.name.split(".")[0]
            self.info.imports[name] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None:
            return
        for alias in node.names:
            name = alias.asname or alias.name
            self.info.imports[name] = f"{node.module}.{alias.name}"

    # -- definitions -----------------------------------------------------------

    def _qualify(self, name: str) -> str:
        if self._func_stack:
            return f"{self._func_stack[-1].qualname}.{name}"
        if self._class_stack:
            return f"{self.info.path}::{self._class_stack[-1].name}.{name}"
        return f"{self.info.path}::{name}"

    def _visit_func(self, node) -> None:
        qualname = self._qualify(node.name)
        args = node.args
        params = tuple(arg.arg for arg in
                       (*args.posonlyargs, *args.args, *args.kwonlyargs))
        info = FunctionInfo(
            qualname=qualname, path=self.info.path, name=node.name,
            node=node, lineno=node.lineno,
            cls=self._class_stack[-1].name
            if self._class_stack and not self._func_stack else None,
            parent=self._func_stack[-1].qualname
            if self._func_stack else None,
            params=params)
        self.functions[qualname] = info
        if info.cls:
            self._class_stack[-1].methods[node.name] = qualname
        elif not info.is_nested:
            self.info.functions[node.name] = qualname
        self._func_stack.append(info)
        for stmt in node.body:
            self.visit(stmt)
        self._func_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._func_stack or self._class_stack:
            # Nested classes: index methods flat under the inner name.
            cls = ClassInfo(node.name, self.info.path, node.lineno)
        else:
            cls = ClassInfo(
                node.name, self.info.path, node.lineno,
                bases=tuple(base.id if isinstance(base, ast.Name)
                            else base.attr if isinstance(base, ast.Attribute)
                            else "?" for base in node.bases))
            self.info.classes[node.name] = cls
        self._class_stack.append(cls)
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        cls.class_attrs.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                cls.class_attrs.add(stmt.target.id)
            self.visit(stmt)
        self._class_stack.pop()
        if not self._func_stack and len(self._class_stack) == 0:
            init = cls.methods.get("__init__")
            if init and self._binds_unpicklable(self.functions[init].node):
                cls.unpicklable = True

    @staticmethod
    def _binds_unpicklable(node: ast.AST) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                func = child.func
                name = func.id if isinstance(func, ast.Name) \
                    else func.attr if isinstance(func, ast.Attribute) else None
                if name in _UNPICKLABLE_FACTORIES:
                    return True
        return False

    # -- module-level bindings -------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._func_stack and not self._class_stack:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.info.module_bindings.add(target.id)
                    if target.id == "RNG_STREAMS":
                        self._record_streams(node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if not self._func_stack and not self._class_stack \
                and isinstance(node.target, ast.Name):
            self.info.module_bindings.add(node.target.id)
            if node.target.id == "RNG_STREAMS" and node.value is not None:
                self._record_streams(node.value)
        self.generic_visit(node)

    def _record_streams(self, value: ast.expr) -> None:
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            names = tuple(elt.value for elt in value.elts
                          if isinstance(elt, ast.Constant)
                          and isinstance(elt.value, str))
            self.info.rng_streams = names


class Project:
    """Every module parsed once, indexed for the whole-program passes."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: bare function/method name -> [qualnames] (CHA-lite resolution)
        self.methods_by_name: Dict[str, List[str]] = defaultdict(list)
        self.classes: Dict[str, List[ClassInfo]] = defaultdict(list)

    @classmethod
    def from_sources(cls, sources: Dict[str, str],
                     trees: Optional[Dict[str, ast.Module]] = None
                     ) -> "Project":
        """Build a project from ``{path: source}`` (paths are posix-ish).

        Files that fail to parse are skipped — the per-file pass already
        reports the syntax error (VR000).
        """
        project = cls()
        for path, source in sorted(sources.items()):
            tree = (trees or {}).get(path)
            if tree is None:
                try:
                    tree = ast.parse(source, filename=path)
                except SyntaxError:
                    continue
            info = ModuleInfo(path=path, tree=tree, source=source)
            _ModuleIndexer(info, project.functions).visit(tree)
            project.modules[path] = info
        for qualname, func in project.functions.items():
            project.methods_by_name[func.name].append(qualname)
        for module in project.modules.values():
            for cls_info in module.classes.values():
                project.classes[cls_info.name].append(cls_info)
        return project

    # -- hierarchy helpers -----------------------------------------------------

    def class_hierarchy(self, name: str) -> Set[str]:
        """Class names related to ``name``: ancestors and descendants."""
        related: Set[str] = {name}
        # Ancestors.
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for cls_info in self.classes.get(current, ()):
                for base in cls_info.bases:
                    if base not in related:
                        related.add(base)
                        frontier.append(base)
        # Descendants (of anything already related).
        changed = True
        while changed:
            changed = False
            for cls_name, infos in self.classes.items():
                if cls_name in related:
                    continue
                for cls_info in infos:
                    if any(base in related for base in cls_info.bases):
                        related.add(cls_name)
                        changed = True
                        break
        return related

    def resolve_method(self, cls_name: str, method: str) -> List[str]:
        """Implementations of ``method`` visible from class ``cls_name``."""
        result: List[str] = []
        for related in self.class_hierarchy(cls_name):
            for cls_info in self.classes.get(related, ()):
                qualname = cls_info.methods.get(method)
                if qualname is not None:
                    result.append(qualname)
        return result

    def module_function(self, path: str, name: str) -> Optional[str]:
        module = self.modules.get(path)
        if module is None:
            return None
        return module.functions.get(name)

    def resolve_import(self, path: str, name: str) -> List[str]:
        """Resolve ``name`` imported into ``path`` to project functions."""
        module = self.modules.get(path)
        if module is None or name not in module.imports:
            return []
        dotted = module.imports[name]
        target_name = dotted.rsplit(".", 1)[-1]
        module_dotted = dotted.rsplit(".", 1)[0] if "." in dotted else ""
        matches: List[str] = []
        for candidate_path, candidate in self.modules.items():
            if not _module_dotted(candidate_path).endswith(module_dotted) \
                    and module_dotted:
                continue
            qualname = candidate.functions.get(target_name)
            if qualname is not None:
                matches.append(qualname)
            cls_info = candidate.classes.get(target_name)
            if cls_info is not None:
                init = cls_info.methods.get("__init__")
                if init is not None:
                    matches.append(init)
        return matches


@dataclass
class CallSite:
    """One resolved call edge with its source location."""

    caller: str
    callee: str
    lineno: int


class CallGraph:
    """Name-resolved, over-approximate call edges plus entry points."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.edges: Dict[str, List[CallSite]] = defaultdict(list)
        self.entry_points: Set[str] = set()
        self._build()

    # -- construction ----------------------------------------------------------

    def _build(self) -> None:
        for qualname, func in self.project.functions.items():
            if func.parent is not None:
                # Defining a closure counts as (potentially) calling it.
                self.edges[func.parent].append(
                    CallSite(func.parent, qualname, func.lineno))
            self._index_calls(func)
        self._find_entry_points()

    def _index_calls(self, func: FunctionInfo) -> None:
        for node in walk_shallow(func.node):
            if isinstance(node, ast.Call):
                for callee in self._resolve_call(func, node):
                    self.edges[func.qualname].append(
                        CallSite(func.qualname, callee, node.lineno))

    def _resolve_call(self, caller: FunctionInfo,
                      node: ast.Call) -> List[str]:
        func = node.func
        project = self.project
        if isinstance(func, ast.Name):
            name = func.id
            # Nested function defined in this (or an enclosing) scope.
            scope = caller.qualname
            while scope:
                nested = f"{scope}.{name}"
                if nested in project.functions:
                    return [nested]
                scope = project.functions[scope].parent \
                    if scope in project.functions else None
                if scope is None:
                    break
            local = project.module_function(caller.path, name)
            if local is not None:
                return [local]
            imported = project.resolve_import(caller.path, name)
            if imported:
                return imported
            # Same-module class construction.
            module = project.modules.get(caller.path)
            if module and name in module.classes:
                init = module.classes[name].methods.get("__init__")
                return [init] if init else []
            return []
        if isinstance(func, ast.Attribute):
            attr = func.attr
            value = func.value
            if isinstance(value, ast.Name) and value.id in ("self", "cls") \
                    and caller.cls is not None:
                resolved = project.resolve_method(caller.cls, attr)
                if resolved:
                    return resolved
            if isinstance(value, ast.Name):
                # Module-alias attribute call: hooks.register(...)
                module = project.modules.get(caller.path)
                if module and value.id in module.imports:
                    dotted = module.imports[value.id]
                    for path, info in project.modules.items():
                        if _module_dotted(path).endswith(dotted) \
                                or _module_dotted(path) == dotted:
                            qualname = info.functions.get(attr)
                            if qualname is not None:
                                return [qualname]
            if attr in BUILTIN_METHODS:
                return []
            # CHA-lite: every project method of this name.
            return [qualname
                    for qualname in project.methods_by_name.get(attr, ())
                    if project.functions[qualname].cls is not None]
        return []

    def _find_entry_points(self) -> None:
        project = self.project
        # 1. Forwarding-policy methods (any class whose hierarchy touches
        #    a POLICY_BASES marker, or defined under a forwarding/ dir).
        policy_classes: Set[str] = set()
        for name in list(project.classes):
            hierarchy = project.class_hierarchy(name)
            if hierarchy & POLICY_BASES:
                policy_classes.add(name)
        for qualname, func in project.functions.items():
            in_policy_module = "/forwarding/" in func.path
            if func.cls and (func.cls in policy_classes or in_policy_module):
                self.entry_points.add(qualname)
        # 2. Scheduled callbacks: fn argument of schedule*(delay, fn, ...).
        for qualname, func in project.functions.items():
            for node in walk_shallow(func.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = node.func
                if not (isinstance(callee, ast.Attribute)
                        and callee.attr in SCHEDULE_METHODS):
                    continue
                if len(node.args) < 2:
                    continue
                callback = node.args[1]
                for target in self._resolve_callback(func, callback):
                    self.entry_points.add(target)

    def _resolve_callback(self, caller: FunctionInfo,
                          node: ast.expr) -> List[str]:
        if isinstance(node, ast.Name):
            local = self.project.module_function(caller.path, node.id)
            if local is not None:
                return [local]
            nested = f"{caller.qualname}.{node.id}"
            if nested in self.project.functions:
                return [nested]
            return self.project.resolve_import(caller.path, node.id)
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id in ("self", "cls") and caller.cls:
            return self.project.resolve_method(caller.cls, node.attr)
        return []

    # -- queries ---------------------------------------------------------------

    def reachable(self, roots: Optional[Iterable[str]] = None
                  ) -> Dict[str, Optional[str]]:
        """BFS from ``roots`` (default: entry points).

        Returns ``{qualname: predecessor}`` for every reachable function
        (roots map to ``None``), so callers can reconstruct a witness
        call path for diagnostics.
        """
        if roots is None:
            roots = self.entry_points
        parents: Dict[str, Optional[str]] = {}
        queue: deque = deque()
        for root in roots:
            if root not in parents:
                parents[root] = None
                queue.append(root)
        while queue:
            current = queue.popleft()
            for site in self.edges.get(current, ()):
                if site.callee not in parents:
                    parents[site.callee] = current
                    queue.append(site.callee)
        return parents

    def witness_path(self, parents: Dict[str, Optional[str]],
                     target: str, limit: int = 6) -> List[str]:
        """Entry → ... → target chain reconstructed from BFS parents."""
        chain: List[str] = []
        current: Optional[str] = target
        while current is not None and len(chain) < limit:
            chain.append(current)
            current = parents.get(current)
        chain.reverse()
        return chain


def display_chain(project: Project, chain: Sequence[str]) -> str:
    """Render a call chain compactly for diagnostics."""
    names = []
    for qualname in chain:
        func = project.functions.get(qualname)
        if func is None:
            names.append(qualname)
        elif func.cls:
            names.append(f"{func.cls}.{func.name}")
        else:
            names.append(func.name)
    return " -> ".join(names)
