"""Correctness tooling for the simulator.

Two halves, both machine-checking invariants the rest of the codebase is
written against but that Python itself does not enforce:

- **Static analysis** (``repro lint`` / ``python -m repro.analysis.lint``)
  — a multi-pass analyzer:

  - :mod:`repro.analysis.lint` — per-function AST rules VR001–VR006:
    all randomness through named :class:`~repro.sim.rng.RngRegistry`
    streams, no wall-clock reads in simulation code, integer
    nanosecond/byte/bit-rate unit discipline, no module-lifetime mutable
    state, no literal negative delays, no swallowed broad exceptions.
  - :mod:`repro.analysis.callgraph` — project-wide symbol table and
    call graph (entry points = forwarding-policy methods and scheduled
    callbacks).
  - :mod:`repro.analysis.dataflow` — interprocedural unit-of-measure
    dataflow (VR100: seconds-valued floats flowing into ``*_ns`` slots
    across call boundaries).
  - :mod:`repro.analysis.rules` — whole-program rules VR110 (RNG stream
    ownership), VR120 (digest-escaping mutable state), VR130
    (spawn/pickle safety for pool submissions), VR140 (unguarded
    ``_TRACE`` hook use).
  - :mod:`repro.analysis.suppress` — ``# repro: lint-disable`` pragmas
    (stale ones flagged as VR090) and the checked-in findings baseline.
  - :mod:`repro.analysis.cache` — content-hash-keyed incremental cache.
  - :mod:`repro.analysis.sarif` — SARIF 2.1.0 export and validator.
  - :mod:`repro.analysis.autofix` — ``--fix``: ``int(...)`` coercion
    and pragma insertion/removal.
  - :mod:`repro.analysis.driver` — the orchestrator behind the CLI.

- :mod:`repro.analysis.sanitize` — an opt-in runtime sanitizer
  (``REPRO_SANITIZE=1`` or ``ExperimentConfig.sanitize``) wiring
  event-time monotonicity, queue byte-accounting, switch conservation,
  rank-queue heap and release-exactly-once checks into the hot paths,
  at zero cost when disabled.
"""

__all__ = [
    "autofix",
    "cache",
    "callgraph",
    "dataflow",
    "driver",
    "lint",
    "rules",
    "sanitize",
    "sarif",
    "suppress",
]
