"""Correctness tooling for the simulator.

Two halves, both machine-checking invariants the rest of the codebase is
written against but that Python itself does not enforce:

- :mod:`repro.analysis.lint` — an AST-based static checker
  (``python -m repro.analysis.lint src/``) with simulator-specific rules
  VR001–VR005: all randomness through named
  :class:`~repro.sim.rng.RngRegistry` streams, no wall-clock reads in
  simulation code, integer nanosecond/byte/bit-rate unit discipline, no
  module-lifetime mutable state, no literal negative delays.
- :mod:`repro.analysis.sanitize` — an opt-in runtime sanitizer
  (``REPRO_SANITIZE=1`` or ``ExperimentConfig.sanitize``) wiring
  event-time monotonicity, queue byte-accounting, switch conservation,
  rank-queue heap and release-exactly-once checks into the hot paths,
  at zero cost when disabled.
"""

__all__ = ["lint", "sanitize"]
