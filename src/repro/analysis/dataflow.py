"""Interprocedural unit/float dataflow and the VR100 pass.

The per-function VR003 check sees direct taint only — a float literal or
a true division *in the flagged expression itself*.  What it cannot see
is provenance: a local bound to a division three lines earlier, or a
helper in another module that returns wall seconds, assigned at the call
site to a ``*_ns`` name.  This pass tracks both.

**Lattice.**  Every expression gets a :class:`UnitInfo`: a coarse unit
tag (``ns`` / ``bytes`` / ``bps`` / ``seconds`` / plain ``int`` /
``float`` / ``unknown``) plus a one-line provenance string used in
diagnostics.  Floatness is what VR100 polices; the unit tags sharpen
messages and seed inference from parameter names (``*_ns`` → ns-int,
``*_s`` → seconds-float, ``*_bps`` / ``*_bytes`` → integer rates/sizes).

**Summaries.**  Each project function gets a summary: parameter units
(from names and annotations) and an inferred return unit (join over its
``return`` expressions, evaluated under a per-function abstract
environment).  Summaries propagate around the call graph to a fixpoint
(bounded iterations; the lattice is tiny so convergence is fast).

**VR100** then flags, with stable summaries in hand:

- assignment of a float-valued expression to a ``*_ns`` target whose
  taint is *indirect* (through a local or a call) — direct taint stays
  VR003's report;
- passing a float-valued argument (positional or keyword) to a ``*_ns``
  parameter of a project function;
- a ``return`` of a float-valued expression from a function whose own
  name is ``*_ns``-suffixed (its callers will treat the result as
  integer nanoseconds).

**VR150** is VR100's stricter sibling for the analytic fast path: in
any function whose name contains ``analytic`` (the hybrid-fidelity
completion-time computations — ``analytic_round_ns``,
``_start_analytic_round``, ...), *every* float-valued assignment,
augmented true division, and float-valued ``return`` is flagged, not
just the ones feeding a ``*_ns`` name.  Every intermediate in those
functions feeds an event timestamp, and float rounding there breaks
bit-for-bit digest stability across platforms.

**VR160** applies the same all-float discipline to the PFC control
path: functions (or methods of classes) whose name mentions
``pause`` / ``pfc`` / ``xoff`` / ``xon`` / ``threshold``.  PAUSE and
resume land on the integer-ns calendar and thresholds gate integer
byte counters, so float arithmetic there is the same digest hazard.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from itertools import chain
from typing import Dict, List, Optional, Tuple

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    Project,
    walk_shallow,
)
from repro.analysis.lint import Violation, _float_taint

#: Coarse unit tags.
NS = "ns"
BYTES = "bytes"
BPS = "bps"
SECONDS = "seconds"
INT = "int"
FLOAT = "float"
UNKNOWN = "unknown"

_FLOATISH = frozenset({SECONDS, FLOAT})
_INTISH = frozenset({NS, BYTES, BPS, INT})

#: Name-suffix → unit. Longest suffix wins (``_bps`` before ``_s``).
_SUFFIX_UNITS: Tuple[Tuple[str, str], ...] = (
    ("_ns", NS),
    ("_bytes", BYTES),
    ("_bps", BPS),
    ("_seconds", SECONDS),
    ("_secs", SECONDS),
    ("_sec", SECONDS),
    ("_s", SECONDS),
)

_ROUNDING_FUNCS = frozenset({"round", "int", "floor", "ceil", "trunc"})


def suffix_unit(name: Optional[str]) -> str:
    if not name:
        return UNKNOWN
    for suffix, unit in _SUFFIX_UNITS:
        if name.endswith(suffix) and name != suffix:
            return unit
    return UNKNOWN


@dataclass(frozen=True)
class UnitInfo:
    """A lattice value: unit tag plus provenance for diagnostics."""

    unit: str
    why: str = ""

    @property
    def floatish(self) -> bool:
        return self.unit in _FLOATISH

    @property
    def intish(self) -> bool:
        return self.unit in _INTISH


_UNKNOWN = UnitInfo(UNKNOWN)


def _join(a: UnitInfo, b: UnitInfo) -> UnitInfo:
    """Lattice join: floatness dominates, agreeing tags survive."""
    if a.unit == b.unit:
        return a
    if a.floatish:
        return a
    if b.floatish:
        return b
    if a.unit == UNKNOWN:
        return b
    if b.unit == UNKNOWN:
        return a
    return UnitInfo(INT, a.why or b.why)


@dataclass
class FunctionSummary:
    """Parameter and return units for one project function."""

    qualname: str
    params: Dict[str, UnitInfo]
    returns: UnitInfo = _UNKNOWN


class _Inferencer:
    """Single-function abstract interpreter over the unit lattice."""

    def __init__(self, func: FunctionInfo, project: Project,
                 graph: CallGraph,
                 summaries: Dict[str, FunctionSummary]) -> None:
        self.func = func
        self.project = project
        self.graph = graph
        self.summaries = summaries
        self.env: Dict[str, UnitInfo] = {}
        node = func.node
        args = getattr(node, "args", None)
        if args is not None:
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                unit = suffix_unit(arg.arg)
                if isinstance(arg.annotation, ast.Name) \
                        and arg.annotation.id == "float" \
                        and unit not in (NS, BYTES, BPS):
                    unit = FLOAT if unit == UNKNOWN else unit
                if unit != UNKNOWN:
                    self.env[arg.arg] = UnitInfo(
                        unit, f"parameter '{arg.arg}'")

    # -- expression inference --------------------------------------------------

    def infer(self, node: ast.expr) -> UnitInfo:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return UnitInfo(INT, "bool literal")
            if isinstance(node.value, int):
                return UnitInfo(INT, "int literal")
            if isinstance(node.value, float):
                return UnitInfo(FLOAT, f"float literal {node.value!r}")
            return _UNKNOWN
        if isinstance(node, ast.Name):
            known = self.env.get(node.id)
            if known is not None:
                return known
            unit = suffix_unit(node.id)
            if unit != UNKNOWN:
                return UnitInfo(unit, f"name '{node.id}'")
            return _UNKNOWN
        if isinstance(node, ast.Attribute):
            unit = suffix_unit(node.attr)
            if unit != UNKNOWN:
                return UnitInfo(unit, f"attribute '.{node.attr}'")
            return _UNKNOWN
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return UnitInfo(FLOAT, "true division")
            if isinstance(node.op, ast.FloorDiv):
                return UnitInfo(INT, "floor division")
            left = self.infer(node.left)
            right = self.infer(node.right)
            if isinstance(node.op, (ast.Add, ast.Sub, ast.Mult, ast.Mod,
                                    ast.Pow)):
                return _join(left, right)
            return _UNKNOWN
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.IfExp):
            return _join(self.infer(node.body), self.infer(node.orelse))
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set, ast.Dict)):
            return _UNKNOWN
        if isinstance(node, ast.NamedExpr):
            value = self.infer(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = value
            return value
        return _UNKNOWN

    def _infer_call(self, node: ast.Call) -> UnitInfo:
        func = node.func
        name = func.id if isinstance(func, ast.Name) \
            else func.attr if isinstance(func, ast.Attribute) else None
        if name in _ROUNDING_FUNCS:
            if node.args:
                inner = self.infer(node.args[0])
                if inner.unit in (NS, BYTES, BPS):
                    return UnitInfo(inner.unit, f"{name}() of {inner.why}")
            return UnitInfo(INT, f"{name}() result")
        if name == "float":
            return UnitInfo(FLOAT, "float() conversion")
        # Project callee: use summary return units (join over candidates).
        callees = self._call_targets(node)
        result: Optional[UnitInfo] = None
        for callee in callees:
            summary = self.summaries.get(callee)
            if summary is None:
                continue
            returned = summary.returns
            if returned.unit == UNKNOWN:
                continue
            tagged = UnitInfo(
                returned.unit,
                f"returned by {self._describe(callee)}")
            result = tagged if result is None else _join(result, tagged)
        if result is not None:
            return result
        unit = suffix_unit(name)
        if unit != UNKNOWN:
            return UnitInfo(unit, f"call '{name}()'")
        return _UNKNOWN

    def _call_targets(self, node: ast.Call) -> List[str]:
        return self.graph._resolve_call(self.func, node)

    def _describe(self, qualname: str) -> str:
        func = self.project.functions.get(qualname)
        if func is None:
            return qualname
        name = f"{func.cls}.{func.name}" if func.cls else func.name
        return f"{name}() ({func.path}:{func.lineno})"

    # -- statement walk --------------------------------------------------------

    def run(self) -> UnitInfo:
        """Walk the body once; return the joined return unit."""
        returned = _UNKNOWN
        for stmt in getattr(self.func.node, "body", []):
            returned = _join(returned, self._exec(stmt))
        return returned

    def _exec(self, stmt: ast.stmt) -> UnitInfo:
        """Execute one statement abstractly; returns its return-unit."""
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                return _UNKNOWN
            return self.infer(stmt.value)
        if isinstance(stmt, ast.Assign):
            value = self.infer(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env[target.id] = value
            return _UNKNOWN
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None and isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = self.infer(stmt.value)
            return _UNKNOWN
        if isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                current = self.env.get(stmt.target.id, _UNKNOWN)
                if isinstance(stmt.op, ast.Div):
                    self.env[stmt.target.id] = UnitInfo(
                        FLOAT, "augmented true division")
                else:
                    self.env[stmt.target.id] = _join(
                        current, self.infer(stmt.value))
            return _UNKNOWN
        if isinstance(stmt, (ast.If, ast.For, ast.While, ast.With,
                             ast.Try)):
            returned = _UNKNOWN
            for body in self._stmt_bodies(stmt):
                for inner in body:
                    returned = _join(returned, self._exec(inner))
            return returned
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return _UNKNOWN  # nested defs are summarized separately
        return _UNKNOWN

    @staticmethod
    def _stmt_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
        bodies = [getattr(stmt, "body", [])]
        for attr in ("orelse", "finalbody"):
            extra = getattr(stmt, attr, None)
            if extra:
                bodies.append(extra)
        for handler in getattr(stmt, "handlers", []) or []:
            bodies.append(handler.body)
        return bodies


def build_summaries(project: Project, graph: CallGraph,
                    max_rounds: int = 6) -> Dict[str, FunctionSummary]:
    """Fixpoint the per-function summaries over the call graph."""
    summaries: Dict[str, FunctionSummary] = {}
    for qualname, func in project.functions.items():
        params: Dict[str, UnitInfo] = {}
        for param in func.params:
            unit = suffix_unit(param)
            if unit != UNKNOWN:
                params[param] = UnitInfo(unit, f"parameter '{param}'")
        summaries[qualname] = FunctionSummary(qualname, params)
    for _ in range(max_rounds):
        changed = False
        for qualname, func in project.functions.items():
            inferencer = _Inferencer(func, project, graph, summaries)
            returned = inferencer.run()
            if returned.unit != summaries[qualname].returns.unit:
                summaries[qualname].returns = returned
                changed = True
        if not changed:
            break
    return summaries


# -- VR100 ---------------------------------------------------------------------


def check_vr100(project: Project, graph: CallGraph,
                summaries: Dict[str, FunctionSummary]) -> List[Violation]:
    """Flag float/seconds values crossing into ``*_ns`` slots."""
    violations: List[Violation] = []
    for qualname, func in project.functions.items():
        inferencer = _Inferencer(func, project, graph, summaries)
        _walk_for_vr100(func, inferencer, violations)
    return violations


def _walk_for_vr100(func: FunctionInfo, inf: _Inferencer,
                    out: List[Violation]) -> None:
    own_ns = suffix_unit(func.name) == NS
    for stmt in getattr(func.node, "body", []):
        _exec_for_vr100(stmt, func, inf, out, own_ns)


_COMPOUND = (ast.If, ast.For, ast.While, ast.With, ast.Try)


def _exec_for_vr100(stmt: ast.stmt, func: FunctionInfo, inf: _Inferencer,
                    out: List[Violation], own_ns: bool) -> None:
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return
    if isinstance(stmt, _COMPOUND):
        # Header expressions (test / iter / context managers) carry
        # calls too; check them, then recurse into the bodies with the
        # shared environment (assignments in earlier branches update the
        # env before later uses — conservative, not path-sensitive).
        for header in _header_exprs(stmt):
            _check_call_args(header, func, inf, out)
        for body in _Inferencer._stmt_bodies(stmt):
            for inner in body:
                _exec_for_vr100(inner, func, inf, out, own_ns)
        return
    if isinstance(stmt, ast.Return) and stmt.value is not None and own_ns:
        info = inf.infer(stmt.value)
        if info.floatish:
            out.append(Violation(
                func.path, stmt.lineno, stmt.col_offset + 1, "VR100",
                f"'{func.name}' returns a float-valued expression "
                f"({info.why}); *_ns functions must return integer "
                f"nanoseconds"))
    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        value = stmt.value
        if value is not None:
            info = inf.infer(value)
            for target in targets:
                name = target.id if isinstance(target, ast.Name) \
                    else target.attr if isinstance(target, ast.Attribute) \
                    else None
                if name and suffix_unit(name) == NS and info.floatish \
                        and _float_taint(value) is None:
                    # Direct taint is VR003's report; indirect is ours.
                    out.append(Violation(
                        func.path, stmt.lineno, stmt.col_offset + 1,
                        "VR100",
                        f"float value flows into '{name}': {info.why}"))
    _check_call_args(stmt, func, inf, out)
    inf._exec(stmt)  # update the abstract environment


def _header_exprs(stmt: ast.stmt) -> List[ast.expr]:
    exprs: List[ast.expr] = []
    for attr in ("test", "iter"):
        value = getattr(stmt, attr, None)
        if value is not None:
            exprs.append(value)
    for item in getattr(stmt, "items", []) or []:
        exprs.append(item.context_expr)
    return exprs


def _check_call_args(root: ast.AST, func: FunctionInfo, inf: _Inferencer,
                     out: List[Violation]) -> None:
    """Flag float-valued arguments bound to ``*_ns`` parameters."""
    for node in chain([root], walk_shallow(root)):
        if not isinstance(node, ast.Call):
            continue
        for callee in inf._call_targets(node):
            summary = inf.summaries.get(callee)
            target_func = inf.project.functions.get(callee)
            if summary is None or target_func is None:
                continue
            params = list(target_func.params)
            offset = 1 if target_func.cls is not None \
                and params[:1] == ["self"] else 0
            bindings: List[Tuple[str, ast.expr]] = []
            for index, arg in enumerate(node.args):
                if isinstance(arg, ast.Starred):
                    break
                param_index = index + offset
                if param_index < len(params):
                    bindings.append((params[param_index], arg))
            for keyword in node.keywords:
                if keyword.arg is not None:
                    bindings.append((keyword.arg, keyword.value))
            for param, arg in bindings:
                if suffix_unit(param) != NS:
                    continue
                info = inf.infer(arg)
                if info.floatish and _float_taint(arg) is None:
                    out.append(Violation(
                        func.path, arg.lineno, arg.col_offset + 1,
                        "VR100",
                        f"float value passed to parameter '{param}' of "
                        f"{inf._describe(callee)}: {info.why}"))


# -- VR150 / VR160: strict all-float passes over marked functions --------------
#
# Both rules share one walker: inside a *marked* function, every
# float-valued assignment, augmented true division, and float-valued
# ``return`` is flagged — not just the ones feeding a ``*_ns`` name.
# The rules differ only in which functions are marked and in the
# diagnostic wording, supplied as an ``emit`` callback.

#: Functions whose name contains this marker form the analytic
#: completion-time path; see the module docstring.
_ANALYTIC_MARKER = "analytic"

#: Functions (or methods of classes) whose name contains one of these
#: markers form the PFC control path: pause/resume scheduling and
#: XOFF/XON threshold arithmetic.  Matched against both the function
#: name and the enclosing class name, so every ``PfcGate`` /
#: ``PfcController`` method is covered.
_PFC_MARKERS = ("pause", "pfc", "xoff", "xon", "threshold")


def _check_marked(project: Project, graph: CallGraph,
                  summaries: Dict[str, FunctionSummary],
                  match, emit) -> List[Violation]:
    """Run the all-float walker over functions selected by ``match``."""
    violations: List[Violation] = []
    for qualname, func in project.functions.items():
        if not match(func):
            continue
        inferencer = _Inferencer(func, project, graph, summaries)
        for stmt in getattr(func.node, "body", []):
            _exec_all_float(stmt, func, inferencer, violations, emit)
    return violations


def _exec_all_float(stmt: ast.stmt, func: FunctionInfo, inf: _Inferencer,
                    out: List[Violation], emit) -> None:
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return
    if isinstance(stmt, _COMPOUND):
        for body in _Inferencer._stmt_bodies(stmt):
            for inner in body:
                _exec_all_float(inner, func, inf, out, emit)
        return
    if isinstance(stmt, ast.Return) and stmt.value is not None:
        info = inf.infer(stmt.value)
        if info.floatish:
            out.append(emit("return", func, stmt, info, None))
    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        value = stmt.value
        if value is not None:
            info = inf.infer(value)
            if info.floatish:
                name = next(
                    (target.id if isinstance(target, ast.Name)
                     else target.attr
                     for target in targets
                     if isinstance(target, (ast.Name, ast.Attribute))),
                    "<target>")
                out.append(emit("assign", func, stmt, info, name))
    if isinstance(stmt, ast.AugAssign) and isinstance(stmt.op, ast.Div):
        out.append(emit("augdiv", func, stmt, None, None))
    inf._exec(stmt)  # update the abstract environment


def check_vr150(project: Project, graph: CallGraph,
                summaries: Dict[str, FunctionSummary]) -> List[Violation]:
    """Flag any float arithmetic inside analytic completion-time code."""
    return _check_marked(
        project, graph, summaries,
        lambda func: _ANALYTIC_MARKER in func.name.lower(),
        _vr150_violation)


def _vr150_violation(kind: str, func: FunctionInfo, stmt: ast.stmt,
                     info: Optional[UnitInfo],
                     name: Optional[str]) -> Violation:
    where = (func.path, stmt.lineno, stmt.col_offset + 1, "VR150")
    if kind == "return":
        return Violation(
            *where,
            f"analytic completion-time function '{func.name}' "
            f"returns a float-valued expression ({info.why}); the "
            f"analytic path must stay in integer nanoseconds")
    if kind == "assign":
        return Violation(
            *where,
            f"float arithmetic in analytic completion-time "
            f"code: '{name}' gets {info.why} in '{func.name}'; "
            f"keep every intermediate in integer nanoseconds "
            f"(scale first, then floor-divide)")
    return Violation(
        *where,
        f"augmented true division in analytic completion-time "
        f"code ('{func.name}'); use //= so the result stays an "
        f"integer nanosecond count")


# -- VR160 ---------------------------------------------------------------------


def check_vr160(project: Project, graph: CallGraph,
                summaries: Dict[str, FunctionSummary]) -> List[Violation]:
    """Flag any float arithmetic inside PFC pause/threshold code.

    PAUSE/resume events land on the same integer-ns calendar as every
    other event, and XOFF/XON/headroom thresholds are compared against
    integer byte counters; a float anywhere in that arithmetic makes
    pause timing platform-dependent and breaks digest stability — the
    same failure mode VR150 polices on the analytic path.
    """
    return _check_marked(project, graph, summaries, _is_pfc_function,
                         _vr160_violation)


def _is_pfc_function(func: FunctionInfo) -> bool:
    scope = func.name.lower() + " " + (func.cls or "").lower()
    return any(marker in scope for marker in _PFC_MARKERS)


def _vr160_violation(kind: str, func: FunctionInfo, stmt: ast.stmt,
                     info: Optional[UnitInfo],
                     name: Optional[str]) -> Violation:
    where = (func.path, stmt.lineno, stmt.col_offset + 1, "VR160")
    if kind == "return":
        return Violation(
            *where,
            f"PFC control function '{func.name}' returns a "
            f"float-valued expression ({info.why}); pause/resume "
            f"scheduling and threshold arithmetic must stay in "
            f"integers")
    if kind == "assign":
        return Violation(
            *where,
            f"float arithmetic in PFC control code: '{name}' gets "
            f"{info.why} in '{func.name}'; keep pause timing and "
            f"XOFF/XON thresholds in integers (scale first, then "
            f"floor-divide)")
    return Violation(
        *where,
        f"augmented true division in PFC control code "
        f"('{func.name}'); use //= so the result stays an integer")
