"""Opt-in runtime invariant sanitizer (``REPRO_SANITIZE=1``).

The simulator's hot paths carry sanitizer hooks that are compiled down to
a single module-global boolean test when the sanitizer is off, so the
default configuration pays (measurably) nothing.  When enabled — via the
``REPRO_SANITIZE`` environment variable, ``ExperimentConfig.sanitize``,
or :func:`scoped` — the following invariants are checked continuously:

- **event-time monotonicity** (:mod:`repro.sim.engine`): the calendar
  never runs backwards and every event time / delay is an ``int``
  (a float sneaking in would silently break nanosecond discipline);
- **queue byte-accounting** (:mod:`repro.net.queues`): a queue's tracked
  ``bytes`` always equals the sum of its enqueued packets' wire sizes and
  respects its capacity;
- **rank-queue heap invariants** (:mod:`repro.core.scheduler`): the lazy
  twin heaps agree with the live element count and min <= max;
- **switch conservation** (:mod:`repro.net.switch`): every packet a
  switch receives is either enqueued somewhere, dropped with a reason, or
  still resident — nothing vanishes, nothing is duplicated;
- **release-exactly-once** (:mod:`repro.core.ordering`): the RX ordering
  shim never releases the same packet object twice.

Instrumented modules call :func:`register` at import time and cache the
returned state in a module global ``_SANITIZE``; toggling re-writes that
global in every registered module, so per-event code never pays an
attribute lookup into this module while disabled.

CLI: ``python -m repro.analysis sanitize`` measures the sanitizer's
overhead on the simulation kernel and on one benchmark-profile
experiment, and doubles as a smoke test that the checks execute.
(``python -m repro.analysis.sanitize`` also works, but runpy warns
about the module having already been imported via the package.)
"""

from __future__ import annotations

import contextlib
import os
import sys
from typing import Iterator, List, Optional, Sequence


class SanitizerError(AssertionError):
    """An invariant the simulator is built on was observed broken."""


_enabled = os.environ.get("REPRO_SANITIZE", "") not in ("", "0", "false",
                                                        "False")


#: Instrumented modules (append-only process-wide hook registry).
_REGISTRY: List[str] = []

#: Number of invariant checks executed while enabled (diagnostics only).
checks_run = 0


def register(module_name: str) -> bool:
    """Record ``module_name`` as instrumented; returns the current state.

    Instrumented modules use it as::

        from repro.analysis import sanitize as _sanitize
        _SANITIZE = _sanitize.register(__name__)

    and guard every check with ``if _SANITIZE:`` — a module-global load,
    the cheapest toggle Python offers short of recompiling.
    """
    if module_name not in _REGISTRY:
        _REGISTRY.append(module_name)
    return _enabled


def enabled() -> bool:
    """Is the sanitizer currently on?"""
    return _enabled


def set_enabled(on: bool) -> None:
    """Flip the sanitizer and rewrite every registered module's flag."""
    global _enabled
    _enabled = bool(on)
    for name in _REGISTRY:
        module = sys.modules.get(name)
        if module is not None:
            module._SANITIZE = _enabled


@contextlib.contextmanager
def scoped(on: bool = True) -> Iterator[None]:
    """Temporarily enable (or disable) the sanitizer.

    Components that bind their instrumentation at construction time (the
    ordering shim) must be *built* inside the scope to be checked — the
    experiment runner does exactly that for ``ExperimentConfig.sanitize``.
    """
    previous = _enabled
    set_enabled(on)
    try:
        yield
    finally:
        set_enabled(previous)


def check(condition: bool, message: str, *args: object) -> None:
    """Raise :class:`SanitizerError` unless ``condition`` holds."""
    global checks_run
    # Diagnostics-only counter, deliberately outside the run digest.
    checks_run += 1  # repro: lint-disable VR120
    if not condition:
        raise SanitizerError(message % args if args else message)


# -- CLI: overhead measurement -------------------------------------------------


def _time_kernel(n_events: int) -> float:
    """Seconds of wall time to run ``n_events`` empty events."""
    import time  # noqa: VR002 - measurement harness, not simulation logic

    from repro.sim.engine import Engine

    engine = Engine()

    def tick() -> None:
        if engine.events_executed + executed[0] < n_events:
            executed[0] += 1
            engine.schedule(1, tick)

    executed = [0]
    engine.schedule(1, tick)
    start = time.perf_counter()  # noqa: VR002 - measurement harness
    engine.run(max_events=n_events)
    return time.perf_counter() - start  # noqa: VR002 - measurement harness


def _time_experiment() -> float:
    """Seconds of wall time for one small bench-profile run."""
    import time  # noqa: VR002 - measurement harness, not simulation logic

    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_experiment
    from repro.sim.units import MILLISECOND

    config = ExperimentConfig.bench_profile(
        system="vertigo", transport="dctcp", bg_load=0.2, incast_qps=80,
        incast_scale=6, sim_time_ns=20 * MILLISECOND)
    start = time.perf_counter()  # noqa: VR002 - measurement harness
    run_experiment(config)
    return time.perf_counter() - start  # noqa: VR002 - measurement harness


def _best_of(fn, repeats: int) -> float:
    """Minimum of ``repeats`` timed runs, after one untimed warmup.

    The warmup keeps allocator / bytecode-cache cold-start costs out of
    whichever state happens to be measured first.
    """
    fn()
    return min(fn() for _ in range(repeats))


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.sanitize",
        description="Measure the runtime sanitizer's overhead (off vs on) "
                    "on the event kernel and one bench experiment.")
    parser.add_argument("--events", type=int, default=200_000,
                        help="kernel events per measurement (default 200k)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per state; the minimum is "
                             "reported (default 3)")
    parser.add_argument("--skip-experiment", action="store_true")
    args = parser.parse_args(argv)

    rows = []
    with scoped(False):
        off = _best_of(lambda: _time_kernel(args.events), args.repeats)
    with scoped(True):
        before = checks_run
        _time_kernel(args.events)
        kernel_checks = checks_run - before
        on = min(_time_kernel(args.events) for _ in range(args.repeats))
    rows.append(("kernel", args.events, off, on, kernel_checks))

    if not args.skip_experiment:
        with scoped(False):
            off = _best_of(_time_experiment, 1)
        with scoped(True):
            before = checks_run
            _time_experiment()
            run_checks = checks_run - before
            on = _time_experiment()
        rows.append(("bench-experiment", None, off, on, run_checks))

    print(f"{'workload':<18} {'off_s':>8} {'on_s':>8} {'overhead':>9} "
          f"{'checks':>10}")
    for name, _, off, on, n_checks in rows:
        overhead = (on - off) / off * 100 if off else float("nan")
        print(f"{name:<18} {off:>8.3f} {on:>8.3f} {overhead:>8.1f}% "
              f"{n_checks:>10}")
    if any(n_checks == 0 for *_, n_checks in rows):
        print("sanitizer executed no checks — instrumentation broken?",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    # Under ``python -m`` this file runs as ``__main__`` — a *second*
    # module object, distinct from the ``repro.analysis.sanitize`` that
    # the instrumented modules registered with at import time.  Delegate
    # to the canonical instance so scoped()/checks_run observe the real
    # registry instead of this copy's empty one.
    from repro.analysis import sanitize as _canonical

    raise SystemExit(_canonical.main())
