"""``repro lint --fix``: mechanical fixes for the mechanical findings.

Two fix strategies, applied per file, bottom-up so earlier edits never
shift later findings' coordinates:

- **int-coercion** — a VR003/VR100 finding on an assignment to a
  ``*_ns`` name whose right-hand side is a plain expression gets the
  canonical repair: the value is wrapped in ``int(...)``.  The wrap is
  exact (AST end offsets, multi-line safe) and idempotent — an already
  ``int(...)``-wrapped value is never double-wrapped.
- **pragma insertion** — every other fixable finding gets an inline
  ``# repro: lint-disable VRxxx`` appended to its line (merging into an
  existing pragma if present), turning the finding into a *tracked*
  suppression that VR090 will flag if it ever goes stale.

The driver re-lints after fixing, so ``--fix`` output always reflects
the post-fix tree.  VR000 (unreadable/syntax) and VR090 (unused
suppression) findings are never auto-fixed; unused pragmas are instead
*removed* when ``--fix`` runs.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.lint import Violation
from repro.analysis.suppress import PRAGMA_RE, RULE_UNUSED

#: Findings --fix knows how to coerce with int() rather than suppress.
COERCIBLE = frozenset({"VR003", "VR100"})

#: Findings --fix must never touch.
UNFIXABLE = frozenset({"VR000"})


@dataclass
class Fix:
    """One applied source edit, for reporting."""

    path: str
    line: int
    code: str
    kind: str  # "int-coercion" | "pragma" | "pragma-removed"

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} fixed ({self.kind})"


def _ns_assignment_span(tree: ast.Module, lineno: int
                        ) -> Optional[Tuple[ast.expr, str]]:
    """(value node, target name) of a ``*_ns`` assignment at ``lineno``."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)) \
                and node.lineno == lineno:
            value = node.value
            if value is None:
                continue
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                name = target.id if isinstance(target, ast.Name) \
                    else target.attr if isinstance(target, ast.Attribute) \
                    else None
                if name is not None and name.endswith("_ns"):
                    return value, name
    return None


def _already_coerced(value: ast.expr) -> bool:
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in ("int", "round")
    return False


def _wrap_int(lines: List[str], value: ast.expr) -> bool:
    """Wrap ``value``'s exact source span in ``int(...)``; True on edit."""
    start_line = value.lineno - 1
    end_line = (value.end_lineno or value.lineno) - 1
    start_col = value.col_offset
    end_col = value.end_col_offset
    if end_col is None:
        return False
    if start_line == end_line:
        text = lines[start_line]
        lines[start_line] = (text[:start_col] + "int("
                             + text[start_col:end_col] + ")"
                             + text[end_col:])
        return True
    # Multi-line value: open on the first line, close on the last.
    first = lines[start_line]
    lines[start_line] = first[:start_col] + "int(" + first[start_col:]
    last = lines[end_line]
    lines[end_line] = last[:end_col] + ")" + last[end_col:]
    return True


def _insert_pragma(lines: List[str], lineno: int, code: str) -> bool:
    index = lineno - 1
    if index >= len(lines):
        return False
    line = lines[index]
    match = PRAGMA_RE.search(line)
    if match:
        codes = [entry.strip() for entry in
                 match.group("codes").split(",") if entry.strip()]
        if code in codes:
            return False
        merged = ", ".join([*codes, code])
        lines[index] = (line[:match.start()]
                        + f"# repro: lint-disable {merged}"
                        + line[match.end():])
        return True
    lines[index] = line.rstrip("\n").rstrip() \
        + f"  # repro: lint-disable {code}"
    return True


def _remove_pragma_code(lines: List[str], lineno: int, code: str) -> bool:
    """Drop ``code`` from the pragma on ``lineno`` (whole pragma if last)."""
    index = lineno - 1
    if index >= len(lines):
        return False
    line = lines[index]
    match = PRAGMA_RE.search(line)
    if not match:
        return False
    codes = [entry.strip() for entry in
             match.group("codes").split(",") if entry.strip()]
    if code not in codes:
        return False
    remaining = [entry for entry in codes if entry != code]
    if remaining:
        replacement = f"# repro: lint-disable {', '.join(remaining)}"
        lines[index] = (line[:match.start()] + replacement
                        + line[match.end():])
    else:
        lines[index] = (line[:match.start()].rstrip()
                        + line[match.end():])
        if not lines[index].strip():
            lines[index] = ""
    return True


def apply_fixes(sources: Dict[str, str],
                violations: Sequence[Violation]) -> Tuple[Dict[str, str],
                                                          List[Fix]]:
    """Fix what's fixable; returns (updated sources, applied fixes).

    Only files present in ``sources`` are touched; callers write the
    returned contents back to disk.
    """
    fixes: List[Fix] = []
    updated = dict(sources)
    by_path: Dict[str, List[Violation]] = {}
    for violation in violations:
        if violation.code in UNFIXABLE:
            continue
        by_path.setdefault(violation.path, []).append(violation)
    for path, file_violations in by_path.items():
        source = updated.get(path)
        if source is None:
            continue
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue
        lines = source.splitlines()
        trailing_newline = source.endswith("\n")
        # Bottom-up: later lines first so edits never shift earlier ones.
        ordered = sorted(file_violations,
                         key=lambda v: (v.line, v.col), reverse=True)
        seen: set = set()
        for violation in ordered:
            key = (violation.line, violation.code, violation.message)
            if key in seen:
                continue
            seen.add(key)
            if violation.code == RULE_UNUSED:
                # The message names the stale code: remove exactly it.
                stale = re.search(r"no ([A-Z][A-Z0-9]+) finding",
                                  violation.message)
                codes = [stale.group(1)] if stale \
                    else _pragma_codes_at(lines, violation.line)
                for code in codes:
                    if _remove_pragma_code(lines, violation.line, code):
                        fixes.append(Fix(path, violation.line, code,
                                         "pragma-removed"))
                continue
            applied = False
            if violation.code in COERCIBLE:
                span = _ns_assignment_span(tree, violation.line)
                if span is not None and not _already_coerced(span[0]):
                    applied = _wrap_int(lines, span[0])
                    if applied:
                        fixes.append(Fix(path, violation.line,
                                         violation.code, "int-coercion"))
            if not applied:
                if _insert_pragma(lines, violation.line, violation.code):
                    fixes.append(Fix(path, violation.line, violation.code,
                                     "pragma"))
        new_source = "\n".join(lines)
        if trailing_newline and not new_source.endswith("\n"):
            new_source += "\n"
        updated[path] = new_source
    return updated, fixes


def _pragma_codes_at(lines: List[str], lineno: int) -> List[str]:
    index = lineno - 1
    if index >= len(lines):
        return []
    match = PRAGMA_RE.search(lines[index])
    if not match:
        return []
    return [entry.strip() for entry in match.group("codes").split(",")
            if entry.strip()]
