"""Suppression machinery: inline pragmas and the findings baseline.

Two suppression channels, layered after the raw passes:

**Pragmas** — ``# repro: lint-disable VR110`` (comma-separate several
codes) suppresses matching findings on its own line.  Unlike the legacy
``# noqa`` comments (still honoured for back-compat), pragmas are
*tracked*: a pragma that suppresses nothing is itself reported as
**VR090 unused suppression**, so stale disables cannot accumulate.

**Baseline** — a checked-in JSON file of grandfathered findings.  Each
entry is fingerprinted by ``(relative path, rule, normalized source
line)``, so findings stay matched when unrelated edits shift line
numbers but resurface the moment the flagged line itself changes.
``--write-baseline`` regenerates the file from the current findings;
the driver reports (without failing on) baseline entries that no longer
match anything, so the file only ever shrinks.
"""

from __future__ import annotations

import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint import Violation, _noqa_lines

RULE_UNUSED = "VR090"
UNUSED_MESSAGE = "unused suppression"

PRAGMA_RE = re.compile(
    r"#\s*repro:\s*lint-disable[:\s]\s*(?P<codes>VR\d+"
    r"(?:\s*,\s*VR\d+)*)")

BASELINE_SCHEMA = 1


@dataclass
class Pragma:
    """One inline ``# repro: lint-disable`` comment."""

    line: int
    codes: Tuple[str, ...]
    used: Set[str] = field(default_factory=set)


def _comment_lines(source: str) -> Dict[int, str]:
    """Map line numbers to their trailing ``#`` comment text.

    Tokenize-based so pragma mentions inside strings and docstrings are
    never parsed as live pragmas.  Falls back to a plain line scan if
    the source does not tokenize (the raw passes report VR000 anyway).
    """
    comments: Dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "#" in line:
                comments[lineno] = line[line.index("#"):]
    return comments


def parse_pragmas(source: str) -> Dict[int, Pragma]:
    """Map line numbers to their lint-disable pragmas (comments only)."""
    pragmas: Dict[int, Pragma] = {}
    for lineno, comment in _comment_lines(source).items():
        match = PRAGMA_RE.search(comment)
        if match is None:
            continue
        codes = tuple(code.strip().upper()
                      for code in match.group("codes").split(",")
                      if code.strip())
        pragmas[lineno] = Pragma(lineno, codes)
    return pragmas


def apply_suppressions(violations: Sequence[Violation], source: str,
                       select: Optional[Set[str]] = None,
                       ) -> Tuple[List[Violation], List[Violation]]:
    """Filter ``violations`` through pragmas and legacy noqa comments.

    Returns ``(surviving, unused)`` where ``unused`` holds one VR090
    finding per pragma code that suppressed nothing.  When ``select``
    is given, pragmas for codes *outside* it are not applicable to this
    run (their rule never ran) and are exempt from VR090 — a partial
    ``--select`` must not call full-run suppressions stale.
    """
    pragmas = parse_pragmas(source)
    noqa = _noqa_lines(source)
    surviving: List[Violation] = []
    for violation in violations:
        pragma = pragmas.get(violation.line)
        if pragma is not None and violation.code in pragma.codes:
            pragma.used.add(violation.code)
            continue
        codes = noqa.get(violation.line, "missing")
        if codes is None or (codes != "missing" and violation.code in codes):
            continue
        surviving.append(violation)
    unused: List[Violation] = []
    for pragma in pragmas.values():
        for code in pragma.codes:
            if code in pragma.used:
                continue
            if select is not None and code not in select:
                continue
            unused.append(Violation(
                violations[0].path if violations else "", pragma.line,
                1, RULE_UNUSED,
                f"{UNUSED_MESSAGE}: no {code} finding on this line"))
    return surviving, unused


def apply_suppressions_for_path(violations: Sequence[Violation],
                                path: str, source: str,
                                select: Optional[Set[str]] = None,
                                ) -> Tuple[List[Violation], List[Violation]]:
    """Like :func:`apply_suppressions` with an explicit path for VR090."""
    surviving, unused = apply_suppressions(violations, source, select)
    fixed_unused = [Violation(path, v.line, v.col, v.code, v.message)
                    for v in unused]
    return surviving, fixed_unused


# -- baseline ------------------------------------------------------------------


def _normalize_line(source_lines: Sequence[str], lineno: int) -> str:
    if 1 <= lineno <= len(source_lines):
        return source_lines[lineno - 1].strip()
    return ""


def fingerprint(path: str, code: str, normalized_line: str) -> str:
    payload = f"{Path(path).as_posix()}|{code}|{normalized_line}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


@dataclass
class Baseline:
    """Checked-in grandfathered findings, keyed by content fingerprint."""

    entries: Dict[str, Dict[str, object]] = field(default_factory=dict)
    path: Optional[Path] = None

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        baseline = cls(path=path)
        if not path.is_file():
            return baseline
        with path.open(encoding="utf-8") as handle:
            data = json.load(handle)
        for entry in data.get("findings", []):
            baseline.entries[entry["fingerprint"]] = entry
        return baseline

    def save(self, path: Optional[Path] = None) -> None:
        target = path or self.path
        if target is None:
            raise ValueError("baseline has no path")
        payload = {
            "schema": BASELINE_SCHEMA,
            "findings": sorted(self.entries.values(),
                               key=lambda e: (e["path"], e["code"],
                                              e["fingerprint"])),
        }
        target.write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")

    def filter(self, violations: Sequence[Violation],
               sources: Dict[str, str]
               ) -> Tuple[List[Violation], List[str]]:
        """Split into (new findings, matched baseline fingerprints)."""
        matched: List[str] = []
        fresh: List[Violation] = []
        line_cache: Dict[str, List[str]] = {}
        for violation in violations:
            lines = line_cache.get(violation.path)
            if lines is None:
                lines = sources.get(violation.path, "").splitlines()
                line_cache[violation.path] = lines
            print_key = fingerprint(
                violation.path, violation.code,
                _normalize_line(lines, violation.line))
            if print_key in self.entries:
                matched.append(print_key)
            else:
                fresh.append(violation)
        return fresh, matched

    def stale(self, matched: Sequence[str]) -> List[Dict[str, object]]:
        """Baseline entries no finding matched (candidates for removal)."""
        used = set(matched)
        return [entry for key, entry in sorted(self.entries.items())
                if key not in used]

    @classmethod
    def from_findings(cls, violations: Sequence[Violation],
                      sources: Dict[str, str],
                      path: Optional[Path] = None) -> "Baseline":
        baseline = cls(path=path)
        for violation in violations:
            lines = sources.get(violation.path, "").splitlines()
            normalized = _normalize_line(lines, violation.line)
            key = fingerprint(violation.path, violation.code, normalized)
            baseline.entries[key] = {
                "fingerprint": key,
                "path": Path(violation.path).as_posix(),
                "code": violation.code,
                "line": violation.line,
                "text": normalized,
            }
        return baseline
