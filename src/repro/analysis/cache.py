"""Content-hash-keyed incremental cache for ``repro lint``.

The analyzer's costs split cleanly in two, and the cache mirrors that:

- **per-file findings** (VR001–VR006 and VR140 are functions of one
  file's text) are keyed by that file's SHA-256 — touch one file and
  only it re-runs;
- **project findings** (VR100–VR130 read the whole call graph) are
  keyed by the hash of *all* file hashes — any edit anywhere re-runs
  the interprocedural passes, which is the only sound invalidation for
  whole-program properties.

Both tiers also key on the analyzer version stamp and the effective
rule selection, so upgrading the analyzer or changing ``--select``
never serves stale findings.  Cached entries hold *raw* (unsuppressed)
findings: pragmas, noqa comments, and the baseline are reapplied on
every run — they are cheap, and it keeps a cache hit byte-identical to
a cold run.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.lint import Violation

CACHE_SCHEMA = 1

#: Bump when any rule's behaviour changes; invalidates every entry.
ANALYZER_VERSION = "vr1xx-1"


def file_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def project_hash(file_hashes: Dict[str, str]) -> str:
    payload = "\n".join(f"{path}:{digest}"
                        for path, digest in sorted(file_hashes.items()))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _violation_to_dict(violation: Violation) -> Dict[str, object]:
    return {"path": violation.path, "line": violation.line,
            "col": violation.col, "code": violation.code,
            "message": violation.message}


def _violation_from_dict(data: Dict[str, object]) -> Violation:
    return Violation(str(data["path"]), int(data["line"]), int(data["col"]),
                     str(data["code"]), str(data["message"]))


class LintCache:
    """JSON-backed two-tier findings cache."""

    def __init__(self, path: Path, select_key: str) -> None:
        self.path = path
        self.select_key = select_key
        self._files: Dict[str, Dict[str, object]] = {}
        self._project: Optional[Dict[str, object]] = None
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        if not self.path.is_file():
            return
        try:
            with self.path.open(encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return
        if data.get("schema") != CACHE_SCHEMA \
                or data.get("analyzer") != ANALYZER_VERSION \
                or data.get("select") != self.select_key:
            return
        self._files = data.get("files", {})
        self._project = data.get("project")

    def save(self) -> None:
        payload = {
            "schema": CACHE_SCHEMA,
            "analyzer": ANALYZER_VERSION,
            "select": self.select_key,
            "files": self._files,
            "project": self._project,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8")

    # -- per-file tier ---------------------------------------------------------

    def get_file(self, path: str, digest: str
                 ) -> Optional[List[Violation]]:
        entry = self._files.get(path)
        if entry is None or entry.get("hash") != digest:
            self.misses += 1
            return None
        self.hits += 1
        return [_violation_from_dict(item)
                for item in entry.get("findings", [])]

    def put_file(self, path: str, digest: str,
                 findings: Sequence[Violation]) -> None:
        self._files[path] = {
            "hash": digest,
            "findings": [_violation_to_dict(v) for v in findings],
        }

    def prune(self, live_paths: Sequence[str]) -> None:
        """Drop entries for files no longer being linted."""
        keep = set(live_paths)
        self._files = {path: entry for path, entry in self._files.items()
                       if path in keep}

    # -- project tier ----------------------------------------------------------

    def get_project(self, digest: str) -> Optional[List[Violation]]:
        entry = self._project
        if entry is None or entry.get("hash") != digest:
            return None
        return [_violation_from_dict(item)
                for item in entry.get("findings", [])]

    def put_project(self, digest: str,
                    findings: Sequence[Violation]) -> None:
        self._project = {
            "hash": digest,
            "findings": [_violation_to_dict(v) for v in findings],
        }
