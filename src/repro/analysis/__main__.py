"""``python -m repro.analysis`` — front door for the analysis CLIs.

Dispatches to :mod:`repro.analysis.lint` (static determinism /
unit-discipline checks) or :mod:`repro.analysis.sanitize` (runtime
sanitizer overhead measurement).  For the sanitizer this entry point is
preferred over ``python -m repro.analysis.sanitize``: runpy would run
that file as a second module object, shadowing the canonical one the
instrumented modules registered with.
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

USAGE = "usage: python -m repro.analysis {lint,sanitize} [args...]"


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(USAGE, file=sys.stderr)
        return 2 if not argv else 0
    command, rest = argv[0], argv[1:]
    if command == "lint":
        from repro.analysis import lint

        return lint.main(rest)
    if command == "sanitize":
        from repro.analysis import sanitize

        return sanitize.main(rest)
    print(f"unknown command {command!r} (expected 'lint' or 'sanitize')",
          file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
