"""Experiment harness: configuration, runner, and sweep helpers.

This is the top-level entry point most users want::

    from repro.experiments import ExperimentConfig, run_experiment

    config = ExperimentConfig.bench_profile(system="vertigo",
                                            transport="dctcp",
                                            bg_load=0.5, incast_load=0.25)
    result = run_experiment(config)
    print(result.metrics.mean_qct_s())
"""

from repro.experiments.config import (
    BENCH_SYSTEMS,
    ExperimentConfig,
    SystemConfig,
    WorkloadConfig,
)
from repro.experiments.digest import config_digest, run_digest, sweep_digest
from repro.experiments.parallel import resolve_jobs, run_many
from repro.experiments.report import RunReport
from repro.experiments.runner import RunResult, run_experiment
from repro.experiments.sweeps import format_table, load_sweep, sweep

__all__ = [
    "ExperimentConfig",
    "SystemConfig",
    "WorkloadConfig",
    "BENCH_SYSTEMS",
    "RunResult",
    "RunReport",
    "run_experiment",
    "run_digest",
    "config_digest",
    "sweep_digest",
    "run_many",
    "resolve_jobs",
    "sweep",
    "load_sweep",
    "format_table",
]
