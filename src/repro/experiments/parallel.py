"""Process-parallel sweep execution (``repro.perf`` tentpole).

Every sweep point is an independent, fully seeded simulation, so a sweep
is embarrassingly parallel: this module fans :class:`ExperimentConfig`
instances out to a :class:`~concurrent.futures.ProcessPoolExecutor` and
collects :class:`~repro.experiments.runner.RunResult` objects back **in
submission order**, making parallel execution bit-identical to serial
execution (the serial-vs-parallel determinism-digest integration test
enforces this).

Concurrency is controlled by the ``jobs`` argument, the ``REPRO_JOBS``
environment variable, or ``--jobs`` on the CLIs that expose it:

- ``jobs == 1`` (the default) runs serially in-process — no pool, no
  pickling, live ``network``/``engine`` objects on the results;
- ``jobs > 1`` uses that many worker processes; results come back as
  portable copies (``RunResult.portable()``) without the live network;
- ``jobs <= 0`` means "one worker per CPU".

The runtime sanitizer state (``REPRO_SANITIZE`` / ``sanitize.scoped``)
is propagated into workers by a pool initializer, so invariant checking
covers parallel runs exactly as it covers serial ones.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional

from repro.analysis import sanitize as _sanitize
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import RunResult, run_experiment

#: Per-worker-process state installed by the pool initializer before any
#: task runs (the canonical stdlib pattern for shipping one-time settings
#: to workers).  Never mutated after initialization within a worker.
_worker_state: Dict[str, bool] = {}  # noqa: VR004 - worker-process init state


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: argument, else ``REPRO_JOBS``, else 1.

    Zero or negative values (from either source) select one worker per
    available CPU.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}") from None
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def _worker_init(sanitize_on: bool) -> None:
    """Install the parent's sanitizer state in a fresh worker process.

    Also exports ``REPRO_SANITIZE`` so any process this worker itself
    spawns (and any module imported later that consults the environment)
    observes the same setting regardless of the pool start method.
    """
    _worker_state["sanitize"] = sanitize_on
    os.environ["REPRO_SANITIZE"] = "1" if sanitize_on else "0"
    _sanitize.set_enabled(sanitize_on)


def _run_portable(config: ExperimentConfig) -> RunResult:
    """Worker task: run one experiment, return a picklable result."""
    if _worker_state.get("sanitize") and not _sanitize.enabled():
        # Defensive: a previous task left the sanitizer toggled off
        # (e.g. via an unbalanced scoped()); restore the pool setting.
        _sanitize.set_enabled(True)
    return run_experiment(config).portable()


def run_many(configs: Iterable[ExperimentConfig],
             jobs: Optional[int] = None) -> List[RunResult]:
    """Run every config, serially or across processes; ordered results.

    The returned list is ordered exactly as ``configs``; each result's
    determinism digest is byte-identical whichever path executed it.
    """
    configs = list(configs)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(configs) <= 1:
        return [run_experiment(config) for config in configs]
    workers = min(jobs, len(configs))
    pool = ProcessPoolExecutor(
        max_workers=workers, initializer=_worker_init,
        initargs=(_sanitize.enabled(),))
    try:
        results = list(pool.map(_run_portable, configs))
    except BaseException:
        # KeyboardInterrupt (or any abort) must not orphan the workers:
        # drop the queued tasks and return without blocking on them.  A
        # plain `with` block would call shutdown(wait=True) here and hang
        # until every in-flight run finished.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    return results
