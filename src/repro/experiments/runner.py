"""Experiment runner: config → wired network → workload → results.

``run_experiment`` is deterministic for a given :class:`ExperimentConfig`
(all randomness flows from the seed through named RNG streams).
"""

from __future__ import annotations

import itertools
from contextlib import ExitStack
from dataclasses import dataclass, field, replace
from functools import partial
from typing import Dict, Optional

from repro.analysis import sanitize as _sanitize
from repro.checkpoint import (
    CheckpointError,
    RunPreempted,
    load_latest,
    write_checkpoint,
    write_progress,
)
from repro.checkpoint import discard as _discard_checkpoint
from repro.checkpoint.protocol import Snapshot
from repro.checkpoint.runtime import active_run, preemption_requested
from repro.core.flowinfo import MarkingDiscipline
from repro.experiments.config import ExperimentConfig
from repro.net import packet as _packet_mod
from repro.forwarding.dibs import DibsPolicy
from repro.forwarding.drill import DrillPolicy
from repro.forwarding.ecmp import EcmpPolicy
from repro.forwarding.letflow import LetFlowPolicy
from repro.forwarding.pabo import PaboPolicy
from repro.forwarding.vertigo import VertigoPolicy
from repro.host.host import HostStackConfig
from repro.metrics.collector import MetricsCollector
from repro.net.builder import Network, NetworkParams, build_network
from repro.net.fidelity import FidelityController
from repro.net.pfc import PfcController
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.trace import PhaseProfiler, TraceData, Tracer, TraceSampler
from repro.trace import hooks as _trace_hooks
from repro.transport import TRANSPORTS
from repro.transport.base import TransportConfig
from repro.transport.dctcp import DEFAULT_MARKING_THRESHOLD_PKTS
from repro.workload.registry import WorkloadContext, build_workload


def derive_ecn_threshold(params: NetworkParams, mss: int) -> int:
    """DCTCP marking threshold K, scaled to the buffer when it is shallow.

    The paper uses K = 65 packets with 300 KB (≈205-packet) buffers, i.e.
    K ≈ 32 % of the buffer; scaled-down buffers keep the same fraction.
    """
    paper_k = DEFAULT_MARKING_THRESHOLD_PKTS * mss
    scaled_k = max(2 * mss, round(params.buffer_bytes * 0.317))
    return min(paper_k, scaled_k)


def derive_swift_target(params: NetworkParams, mss: int) -> int:
    """Swift's target delay: base RTT plus a queueing allowance.

    The allowance is sized relative to the network, not in absolute
    microseconds: roughly half a bottleneck-port buffer of queueing is
    tolerated before flows back off, mirroring Swift's fabric target of
    a few tens of packets at datacenter line rates.
    """
    base = params.base_rtt_ns(mss + 40)
    host_drain = params.buffer_bytes * 8 * 1_000_000_000 \
        // params.host_rate_bps
    return base + round(0.6 * host_drain)


def derive_ordering_timeout(params: NetworkParams) -> int:
    """Paper §3.3.2: time to traverse the network with almost-full buffers.

    One host-rate port drain plus two fabric-rate port drains.
    """
    host_drain = params.buffer_bytes * 8 * 1_000_000_000 \
        // params.host_rate_bps
    fabric_drain = params.buffer_bytes * 8 * 1_000_000_000 \
        // params.fabric_rate_bps
    return host_drain + 2 * fabric_drain


def _policy_factory(config: ExperimentConfig):
    system = config.system
    name = system.name
    if name == "ecmp":
        return lambda switch, rng: EcmpPolicy(switch, rng)
    if name == "drill":
        return lambda switch, rng: DrillPolicy(switch, rng, d=system.drill_d,
                                               m=system.drill_m)
    if name == "dibs":
        return lambda switch, rng: DibsPolicy(
            switch, rng, max_deflections=system.dibs_max_deflections)
    if name == "vertigo":
        return lambda switch, rng: VertigoPolicy(switch, rng,
                                                 system.vertigo_switch)
    if name == "letflow":
        gap = system.letflow_gap_ns \
            if system.letflow_gap_ns is not None \
            else 2 * config.network.base_rtt_ns()
        return lambda switch, rng: LetFlowPolicy(switch, rng,
                                                 flowlet_gap_ns=gap)
    if name == "pabo":
        return lambda switch, rng: PaboPolicy(
            switch, rng, max_bounces=system.pabo_max_bounces)
    raise ValueError(f"unknown system {name!r}")


def resolve_transport_config(config: ExperimentConfig) -> TransportConfig:
    """Fill the auto-derived transport knobs for this topology/system."""
    transport = config.transport
    if config.transport_name == "swift":
        if transport.swift_target_delay_ns <= 0:
            transport = transport.with_overrides(
                swift_target_delay_ns=derive_swift_target(config.network,
                                                          transport.mss))
        # Swift keeps fine-grained retransmission timers (a few target
        # delays), not TCP's 10 ms-class minRTO (paper [47]).
        fine_rto = max(1_000_000, 4 * transport.swift_target_delay_ns)
        if transport.min_rto_ns > fine_rto:
            transport = transport.with_overrides(
                min_rto_ns=fine_rto, init_rto_ns=min(transport.init_rto_ns,
                                                     8 * fine_rto))
    if config.transport_name == "dcqcn":
        # DCQCN rate knobs scale with the line rate the sender drives.
        line_rate = config.network.host_rate_bps
        overrides = {}
        if transport.dcqcn_rate_bps <= 0:
            overrides["dcqcn_rate_bps"] = line_rate
        if transport.dcqcn_timer_ns <= 0:
            # Increase period: a few base RTTs, so fast recovery spans
            # roughly the feedback loop it is probing.
            overrides["dcqcn_timer_ns"] = 2 * config.network.base_rtt_ns()
        if transport.dcqcn_rate_ai_bps <= 0:
            overrides["dcqcn_rate_ai_bps"] = max(1, line_rate // 200)
        if transport.dcqcn_rate_hai_bps <= 0:
            overrides["dcqcn_rate_hai_bps"] = max(1, line_rate // 20)
        if overrides:
            transport = transport.with_overrides(**overrides)
    if config.system.name == "dibs" and transport.fast_retransmit:
        # DIBS disables fast retransmit to tolerate deflection reordering
        # (paper §2), leaving RTOs as the only loss recovery.
        transport = transport.with_overrides(fast_retransmit=False)
    return transport


class FlowKernel(Snapshot):
    """Opens flows: the glue between workload generators and host stacks.

    A picklable replacement for the historical ``open_flow`` closure —
    generators hold a bound :meth:`open_flow`, and completion callbacks
    are partials of bound methods, so the whole callback web rides in a
    checkpoint.  Flow ids are per-kernel, keeping same-process runs
    bit-identical for a given seed.
    """

    SNAPSHOT_ATTRS = ("engine", "metrics", "network", "fidelity",
                      "_flow_ids")

    def __init__(self, engine: Engine, metrics: MetricsCollector,
                 network: Network, fidelity) -> None:
        self.engine = engine
        self.metrics = metrics
        self.network = network
        self.fidelity = fidelity
        self._flow_ids = itertools.count(1)

    def open_flow(self, src: int, dst: int, size: int,
                  is_incast: bool = False, query_id: Optional[int] = None,
                  coflow_id: Optional[int] = None, on_done=None) -> None:
        flow_id = next(self._flow_ids)
        self.metrics.flow_started(flow_id, src, dst, size, self.engine.now,
                                  is_incast=is_incast, query_id=query_id,
                                  coflow_id=coflow_id)
        src_host = self.network.hosts[src]
        dst_host = self.network.hosts[dst]
        dst_host.open_receiver(
            flow_id, src, size,
            on_complete=partial(self._rx_done, flow_id, dst, on_done))
        sender = src_host.open_sender(
            flow_id, dst, size,
            on_complete=partial(self._tx_done, flow_id, src))
        if self.fidelity is not None:
            self.fidelity.adopt(sender)
        sender.start()

    def _rx_done(self, flow_id: int, dst: int, on_done) -> None:
        dst_host = self.network.hosts[dst]
        if dst_host.ordering is not None:
            dst_host.ordering.flow_done(flow_id)
        # Generator barrier callback (coflow stages); fires after
        # metrics.flow_completed has recorded the flow.
        if on_done is not None:
            on_done(flow_id)

    def _tx_done(self, flow_id: int, src: int) -> None:
        self.network.hosts[src].sender_done(flow_id)


class LiveRun(Snapshot):
    """The complete live simulation: the object graph one checkpoint
    pickles.

    Everything reachable from here — engine calendar, network, host
    stacks, transports, generators, RNG streams, telemetry, tracer — is
    captured in a single ``pickle.dumps``, so shared references (e.g.
    one RNG stream held by the registry and a policy) stay aliased on
    restore.  Wall-clock profiling lives *outside*, per process.
    """

    SNAPSHOT_ATTRS = ("config", "engine", "rng", "metrics", "network",
                      "pfc", "fidelity", "kernel", "generators",
                      "telemetry", "injector", "sampler", "tracer",
                      "uid_watermark", "restored_from_ns",
                      "checkpoints_written")

    def __init__(self, config: ExperimentConfig, engine: Engine,
                 rng: RngRegistry, metrics: MetricsCollector,
                 network: Network, pfc, fidelity, kernel: FlowKernel,
                 generators, telemetry, injector, sampler,
                 tracer) -> None:
        self.config = config
        self.engine = engine
        self.rng = rng
        self.metrics = metrics
        self.network = network
        self.pfc = pfc
        self.fidelity = fidelity
        self.kernel = kernel
        self.generators = generators
        self.telemetry = telemetry
        self.injector = injector
        self.sampler = sampler
        self.tracer = tracer
        #: Module-global packet-uid watermark, captured at snapshot time
        #: so the restoring process can advance past every live uid.
        self.uid_watermark = 0
        #: Simulated time this world was last restored at, or None for
        #: a from-scratch build (checkpoint lineage, non-digest).
        self.restored_from_ns: Optional[int] = None
        #: Checkpoints written by this run so far (lineage, non-digest).
        self.checkpoints_written = 0


@dataclass
class EngineStats:
    """Picklable stand-in for a drained :class:`Engine` in results that
    cross process boundaries (the live engine's calendar holds closures)."""

    now: int = 0
    events_executed: int = 0


@dataclass
class RunResult:
    """Outcome of one simulation run.

    ``network`` and ``engine`` reference the live simulation objects when
    the run happened in this process; results transferred from a worker
    process (:mod:`repro.experiments.parallel`) carry ``network=None``
    and an :class:`EngineStats` snapshot instead — everything a figure,
    summary row, or determinism digest consumes survives the transfer.
    """

    config: ExperimentConfig
    metrics: MetricsCollector
    network: Optional[Network]
    engine: Engine
    bg_flows_generated: int
    queries_issued: int
    #: Coflows launched by coflow generators; 0 when none configured.
    coflows_launched: int = 0
    telemetry: Optional[object] = None
    #: Detached observability record (``config.trace`` enabled), or None.
    trace: Optional[TraceData] = None
    #: Wall seconds per run phase (build/run/finalize).  Nondeterministic
    #: by nature; excluded from digests and deterministic exports.
    profile: Dict[str, float] = field(default_factory=dict)
    #: Fidelity-controller summary (mode residency, transitions) when the
    #: analytic path was enabled; None in pure packet mode.  Deterministic
    #: integers — part of the run digest.
    fidelity: Optional[Dict[str, object]] = None
    #: PFC-controller summary (pause events/time, headroom drops) when
    #: PFC was enabled; None otherwise.  Deterministic integers — part
    #: of the run digest together with the class-keyed drop counters.
    pfc: Optional[Dict[str, object]] = None
    #: Checkpoint lineage (``restored_from_ns``, ``checkpoints_written``,
    #: ``path``) when checkpointing was active; None otherwise.
    #: Execution metadata — never part of the run digest.
    checkpoint: Optional[Dict[str, object]] = None
    #: One-time telemetry notices raised during the run (e.g. the
    #: fidelity demotion-cascade counter).  Non-digest diagnostics.
    notices: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.config.sim_time_ns

    def portable(self) -> "RunResult":
        """A picklable copy safe to ship between processes.

        Drops the live network (hosts and switches hold closures), keeps
        the full metrics, and snapshots the engine counters; an attached
        telemetry monitor is reduced to its
        :class:`~repro.telemetry.monitor.TelemetrySummary`.
        """
        telemetry = self.telemetry
        if telemetry is not None and hasattr(telemetry, "summary"):
            telemetry = telemetry.summary()
        return RunResult(
            config=self.config, metrics=self.metrics, network=None,
            engine=EngineStats(now=self.engine.now,
                               events_executed=self.engine.events_executed),
            bg_flows_generated=self.bg_flows_generated,
            queries_issued=self.queries_issued,
            coflows_launched=self.coflows_launched, telemetry=telemetry,
            trace=self.trace, profile=dict(self.profile),
            fidelity=self.fidelity, pfc=self.pfc,
            checkpoint=self.checkpoint, notices=dict(self.notices))

    def report(self):
        """The unified :class:`~repro.experiments.report.RunReport`."""
        from repro.experiments.report import RunReport

        return RunReport.from_result(self)

    def row(self) -> Dict[str, float]:
        """One summary row — the quantities the paper's figures report."""
        return self.report().row()


def run_experiment(config: ExperimentConfig,
                   restore: Optional[str] = None) -> RunResult:
    """Build, run, and measure one simulation.

    With ``config.sanitize`` the whole run — including network
    construction, so construction-bound checks attach — executes under
    the runtime invariant sanitizer.

    ``restore`` resumes from an explicit checkpoint file.  With
    ``config.checkpoint`` set, the run also *auto-resumes* from its
    managed checkpoint (keyed by config digest) if one exists — so a
    crashed or preempted run simply reruns — and deletes it on
    successful completion.  Checkpointing never changes results: a
    restored run's digest is byte-identical to the uninterrupted run.
    """
    if config.sanitize and not _sanitize.enabled():
        with _sanitize.scoped(True):
            return _run_experiment(config, restore)
    return _run_experiment(config, restore)


def _run_experiment(config: ExperimentConfig,
                    restore: Optional[str] = None) -> RunResult:
    from repro.experiments.digest import config_digest

    profiler = PhaseProfiler()
    digest = config_digest(config)
    managed_path = None
    if config.checkpoint is not None:
        managed_path = config.checkpoint.resolve_path(digest)

    # active_run() spans the WHOLE task, not just the epoch loop: a
    # SIGTERM landing during build or finalize must latch (and surface
    # as RunPreempted at the next boundary, or simply let the task
    # finish) rather than raise SystemExit inside a pool worker —
    # concurrent.futures ships BaseException back through the future,
    # which would read as a crash instead of a preemption.
    with active_run():
        world = None
        with profiler.phase("build"):
            if restore is not None:
                found = load_latest(restore, expect_config=digest)
                if found is None:
                    raise CheckpointError(f"no checkpoint at {restore!r}")
                _header, world, _used = found
            elif managed_path is not None:
                found = load_latest(managed_path, expect_config=digest)
                if found is not None:
                    _header, world, _used = found
            if world is not None:
                _packet_mod.advance_uid_watermark(world.uid_watermark)
                world.restored_from_ns = world.engine.now
            else:
                world = _build_world(config)

        _run_epochs(world, profiler, managed_path, digest)

        result = _finalize(world, profiler, managed_path)
    if managed_path is not None:
        # Managed checkpoints are consumed by successful completion;
        # explicit --restore files are the caller's to keep.
        _discard_checkpoint(managed_path)
    return result


def _build_world(config: ExperimentConfig) -> LiveRun:
    """Construct the full live simulation for ``config`` (build phase)."""
    tracer = Tracer(config.trace) if config.trace is not None else None
    engine = Engine()
    rng = RngRegistry(config.seed)
    metrics = MetricsCollector()
    system = config.system

    transport = resolve_transport_config(config)
    network_params = config.network
    if config.transport_name in ("dctcp", "dcqcn") \
            and network_params.ecn_threshold_bytes is None:
        network_params = replace(
            network_params,
            ecn_threshold_bytes=derive_ecn_threshold(network_params,
                                                     transport.mss))

    is_vertigo = system.name == "vertigo"
    ordering_timeout = system.ordering_timeout_ns \
        if system.ordering_timeout_ns is not None \
        else derive_ordering_timeout(network_params)
    stack = HostStackConfig(
        transport_cls=TRANSPORTS[config.transport_name],
        transport=transport,
        vertigo_marking=is_vertigo,
        vertigo_ordering=is_vertigo and system.ordering,
        marking_discipline=system.marking_discipline,
        boost_factor=system.boost_factor,
        boosting=system.boosting,
        ordering_timeout_ns=ordering_timeout,
    )

    use_ranked = is_vertigo and system.vertigo_switch.scheduling
    network = build_network(engine, config.topology, network_params,
                            metrics, stack, _policy_factory(config), rng,
                            use_ranked_queues=use_ranked, pfc=config.pfc)

    pfc = None
    if config.pfc.enabled:
        pfc = PfcController(engine, config.pfc, network)
        pfc.install()
        network.pfc = pfc
        for host in network.hosts:
            host.enable_nic_backpressure()

    fidelity = None
    if config.fidelity.active:
        fidelity = FidelityController(engine, network, config.fidelity)
        fidelity.install()

    kernel = FlowKernel(engine, metrics, network, fidelity)

    workload = config.workload
    if workload.warmup_ns or workload.cooldown_ns:
        window_end = config.sim_time_ns - workload.cooldown_ns
        if workload.warmup_ns >= window_end:
            raise ValueError(
                f"warmup ({workload.warmup_ns} ns) plus cooldown "
                f"({workload.cooldown_ns} ns) leave no measurement "
                f"window in a {config.sim_time_ns} ns run")
        metrics.set_window(workload.warmup_ns, window_end)
    generators = build_workload(workload, WorkloadContext(
        engine=engine, open_flow=kernel.open_flow, metrics=metrics,
        n_hosts=config.topology.n_hosts,
        host_rate_bps=network_params.host_rate_bps,
        rack_of=config.topology.host_tor, rng=rng,
        until_ns=config.sim_time_ns))

    telemetry = None
    if config.telemetry_interval_ns:
        from repro.telemetry import TelemetryMonitor

        telemetry = TelemetryMonitor(
            engine, network, interval_ns=config.telemetry_interval_ns,
            pfc=pfc)
        telemetry.start()

    injector = None
    if config.faults:
        from repro.faults import FaultInjector

        injector = FaultInjector(
            engine, network, rng, config.faults,
            on_event=telemetry.record_fault if telemetry else None)
        injector.schedule()

    sampler = None
    if tracer is not None and config.trace.sample_period_ns:
        sampler = TraceSampler(engine, network, tracer,
                               config.trace.sample_period_ns)
        sampler.start()

    return LiveRun(config=config, engine=engine, rng=rng, metrics=metrics,
                   network=network, pfc=pfc, fidelity=fidelity,
                   kernel=kernel, generators=generators,
                   telemetry=telemetry, injector=injector, sampler=sampler,
                   tracer=tracer)


def _write_world_checkpoint(world: LiveRun, path: str,
                            config_digest: str) -> None:
    """Snapshot ``world`` atomically and refresh the progress sidecar."""
    world.uid_watermark = _packet_mod.uid_watermark()
    write_checkpoint(path, world, config_digest=config_digest,
                     sim_now_ns=world.engine.now,
                     events_executed=world.engine.events_executed)
    world.checkpoints_written += 1
    write_progress(path, sim_now_ns=world.engine.now,
                   events_executed=world.engine.events_executed,
                   sim_time_ns=world.config.sim_time_ns)


def _run_epochs(world: LiveRun, profiler: PhaseProfiler,
                managed_path: Optional[str], config_digest: str) -> None:
    """Run the simulation to completion, checkpointing at epoch
    boundaries.

    Boundaries fall on multiples of ``every_ns`` of *simulated* time, so
    a restored run and the uninterrupted run execute identical event
    sequences.  Preemption (SIGTERM/SIGINT latched by
    :mod:`repro.checkpoint.runtime`) is honoured only at boundaries —
    never mid-event — by writing a final checkpoint and raising
    :class:`RunPreempted`.
    """
    engine = world.engine
    end = world.config.sim_time_ns
    checkpoint = world.config.checkpoint
    tracer = world.tracer

    if checkpoint is None or managed_path is None:
        # Legacy single-call path: byte-identical scheduling AND an
        # identical trace stream (one engine.span per run).
        if tracer is not None:
            with _trace_hooks.activated(tracer), profiler.phase("run"):
                engine.run(until=end)
        else:
            with profiler.phase("run"):
                engine.run(until=end)
        return

    every = checkpoint.every_ns
    write_progress(managed_path, sim_now_ns=engine.now,
                   events_executed=engine.events_executed, sim_time_ns=end)
    with ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(_trace_hooks.activated(tracer))
        stack.enter_context(profiler.phase("run"))
        while engine.now < end:
            boundary = min(end, (engine.now // every + 1) * every)
            engine.run(until=boundary)
            preempt = preemption_requested() and engine.now < end
            if engine.now < end or preempt:
                _write_world_checkpoint(world, managed_path, config_digest)
            else:
                write_progress(managed_path, sim_now_ns=engine.now,
                               events_executed=engine.events_executed,
                               sim_time_ns=end)
            if preempt:
                raise RunPreempted(managed_path, engine.now)


def _finalize(world: LiveRun, profiler: PhaseProfiler,
              managed_path: Optional[str]) -> RunResult:
    config = world.config
    engine = world.engine
    with profiler.phase("finalize"):
        if world.telemetry is not None:
            # Detach the monitor from the calendar so its self-rescheduling
            # tick cannot outlive the measured window.
            world.telemetry.stop()
        if world.sampler is not None:
            world.sampler.stop()

        trace_data = None
        if world.tracer is not None:
            topology = config.topology
            trace_data = world.tracer.detach(meta={
                "seed": config.seed,
                "system": config.system.name,
                "transport": config.transport_name,
                "sim_time_ns": config.sim_time_ns,
                "topology": f"{type(topology).__name__}"
                            f"({topology.n_hosts} hosts)",
            })

    fidelity = world.fidelity
    pfc = world.pfc
    generators = world.generators
    notices: Dict[str, object] = {}
    if fidelity is not None and fidelity.cascade_links:
        notices["fidelity_cascade_links"] = fidelity.cascade_links
    lineage = None
    if world.checkpoints_written or world.restored_from_ns is not None:
        lineage = {"restored_from_ns": world.restored_from_ns,
                   "checkpoints_written": world.checkpoints_written,
                   "path": managed_path}
    return RunResult(
        config=config, metrics=world.metrics, network=world.network,
        engine=engine,
        bg_flows_generated=sum(getattr(g, "flows_generated", 0)
                               for g in generators),
        queries_issued=sum(getattr(g, "queries_issued", 0)
                           for g in generators),
        coflows_launched=sum(getattr(g, "coflows_launched", 0)
                             for g in generators),
        telemetry=world.telemetry, trace=trace_data,
        profile=profiler.report(),
        fidelity=(fidelity.summary(engine.now)
                  if fidelity is not None else None),
        pfc=pfc.summary(engine.now) if pfc is not None else None,
        checkpoint=lineage, notices=notices)
