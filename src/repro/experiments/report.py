"""The unified result surface of a run: :class:`RunReport`.

Historically a run's outcome was read through three partial surfaces —
``RunResult.row()`` (the paper's summary metrics), ad-hoc reads of
``MetricsCollector``, and ``TelemetryMonitor.summary()`` — each with its
own shape.  ``RunReport`` replaces them with one documented object that
``format_table``, the benchmark harness, and the CLI all consume.

Schema (``to_dict()``), by section:

- ``row`` — the paper-figure summary row, unchanged from the historical
  ``RunResult.row()`` keys (``system``, ``transport``, ``load_pct``,
  ``mean_fct_s``, ``p99_fct_s``, ``mean_qct_s``, ``p99_qct_s``,
  ``flow_completion_pct``, ``query_completion_pct``, ``goodput_gbps``,
  ``drop_pct``, ``deflections``, ``mean_hops``, ``reordered``,
  ``retransmissions``).  The determinism digest hashes this row, so its
  keys and values are stable by contract.  Runs that recorded coflows
  append the :data:`COFLOW_ROW_KEYS` columns (``mean_cct_s``,
  ``p99_cct_s``, ``coflow_completion_pct``); coflow-free rows keep the
  historical shape exactly.
- ``run`` — run identity and volume: ``seed``, ``sim_time_ns``,
  ``events_executed``, ``bg_flows_generated``, ``queries_issued``,
  ``flows_recorded``, ``queries_recorded`` (plus ``coflows_launched``
  and ``coflows_recorded`` for coflow runs).
- ``drops`` — per-reason drop counters (sorted by reason).
- ``telemetry`` — congestion-monitor section (``mean_utilization``,
  ``microbursts``, ``persistent``, ``fault_events``, ``samples``) or
  None when no monitor was attached.
- ``trace`` — observability section (``level``, ``events``, ``samples``,
  ``dropped_events``, ``dropped_samples``, per-kind ``counts``) or None
  when tracing was off.
- ``profile`` — wall seconds per run phase (build/run/finalize).
  Nondeterministic; excluded from digests.
- ``fidelity`` — hybrid-fidelity section (mode, link counts, analytic
  residency, transition/round counters; see :mod:`repro.net.fidelity`)
  or None in pure packet mode.
- ``drops_by_class`` — the same drop counters keyed
  ``(priority class, reason)``; summing over classes reproduces
  ``drops`` exactly (see :mod:`repro.net.pfc`).
- ``pfc`` — lossless-fabric section (gate count, pause events/time,
  headroom drops, per-direction pause table; see :mod:`repro.net.pfc`)
  or None when PFC is off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import RunResult

#: The summary-row keys, in their canonical order (digest-stable).
ROW_KEYS = (
    "system", "transport", "load_pct", "mean_fct_s", "p99_fct_s",
    "mean_qct_s", "p99_qct_s", "flow_completion_pct",
    "query_completion_pct", "goodput_gbps", "drop_pct", "deflections",
    "mean_hops", "reordered", "retransmissions",
)

#: Coflow-completion-time columns, appended to the row only for runs
#: that recorded coflows — coflow-free rows keep the historical
#: :data:`ROW_KEYS` shape exactly (digest-stable).
COFLOW_ROW_KEYS = ("mean_cct_s", "p99_cct_s", "coflow_completion_pct")


@dataclass
class RunReport:
    """One run's complete, picklable reporting surface."""

    summary: Dict[str, object]
    run: Dict[str, object]
    drops: List[tuple]
    telemetry: Optional[Dict[str, object]] = None
    trace: Optional[Dict[str, object]] = None
    profile: Dict[str, float] = field(default_factory=dict)
    fidelity: Optional[Dict[str, object]] = None
    drops_by_class: List[tuple] = field(default_factory=list)
    pfc: Optional[Dict[str, object]] = None

    @classmethod
    def from_result(cls, result: "RunResult") -> "RunReport":
        metrics = result.metrics
        counters = metrics.counters
        config = result.config
        summary: Dict[str, object] = {
            "system": config.system.name,
            "transport": config.transport_name,
            "load_pct": round(100 * config.workload.total_load),
            "mean_fct_s": metrics.mean_fct_s(),
            "p99_fct_s": metrics.p99_fct_s(),
            "mean_qct_s": metrics.mean_qct_s(),
            "p99_qct_s": metrics.p99_qct_s(),
            "flow_completion_pct": metrics.flow_completion_pct(),
            "query_completion_pct": metrics.query_completion_pct(),
            # Reporting boundary: Gbit/s for the summary table.
            "goodput_gbps":
                metrics.goodput_bps(result.duration_ns) / 1e9,  # noqa: VR003
            "drop_pct": 100 * counters.drop_rate(),
            "deflections": counters.deflections,
            "mean_hops": counters.mean_hops(),
            "reordered": counters.reordered_arrivals,
            "retransmissions": counters.retransmissions,
        }
        if metrics.coflows:
            summary["mean_cct_s"] = metrics.mean_cct_s()
            summary["p99_cct_s"] = metrics.p99_cct_s()
            summary["coflow_completion_pct"] = \
                metrics.coflow_completion_pct()
        run = {
            "seed": config.seed,
            "sim_time_ns": config.sim_time_ns,
            "events_executed": result.engine.events_executed,
            "bg_flows_generated": result.bg_flows_generated,
            "queries_issued": result.queries_issued,
            "flows_recorded": len(metrics.flows),
            "queries_recorded": len(metrics.queries),
        }
        if metrics.coflows:
            run["coflows_launched"] = result.coflows_launched
            run["coflows_recorded"] = len(metrics.coflows)
        telemetry = None
        if result.telemetry is not None:
            telemetry = result.telemetry.section()
        trace = None
        if result.trace is not None:
            data = result.trace
            trace = {
                "level": data.config.level,
                "events": len(data.events),
                "samples": len(data.samples),
                "dropped_events": data.dropped_events,
                "dropped_samples": data.dropped_samples,
                "counts": data.counts(),
            }
        return cls(summary=summary, run=run,
                   drops=sorted(counters.drops.items()),
                   telemetry=telemetry, trace=trace,
                   profile=dict(result.profile),
                   fidelity=(dict(result.fidelity)
                             if result.fidelity is not None else None),
                   drops_by_class=sorted(counters.class_drops.items()),
                   pfc=(dict(result.pfc)
                        if result.pfc is not None else None))

    def row(self) -> Dict[str, object]:
        """The paper-figure summary row (historical ``RunResult.row()``),
        extended by the CCT columns when the run recorded coflows."""
        keys = ROW_KEYS + tuple(key for key in COFLOW_ROW_KEYS
                                if key in self.summary)
        return {key: self.summary[key] for key in keys}

    def to_dict(self) -> Dict[str, object]:
        """The full documented schema (see module docstring)."""
        return {
            "row": self.row(),
            "run": dict(self.run),
            "drops": [list(item) for item in self.drops],
            "telemetry": dict(self.telemetry) if self.telemetry else None,
            "trace": dict(self.trace) if self.trace else None,
            "profile": dict(self.profile),
            "fidelity": dict(self.fidelity) if self.fidelity else None,
            "drops_by_class": [[list(key), count]
                               for key, count in self.drops_by_class],
            "pfc": dict(self.pfc) if self.pfc else None,
        }


def placeholder_row(config, status: str) -> Dict[str, object]:
    """A summary row for a sweep point that produced no result.

    Carries the identity keys a table needs (``system``, ``transport``,
    ``load_pct``) plus a ``status`` column; every metric key from
    :data:`ROW_KEYS` is present but ``None``, which ``format_table``
    renders as ``-`` — degraded sweeps print aligned tables with their
    missing points visible instead of crashing.
    """
    row: Dict[str, object] = {key: None for key in ROW_KEYS}
    row["system"] = config.system.name
    row["transport"] = config.transport_name
    row["load_pct"] = round(100 * config.workload.total_load)
    row["status"] = status
    return row
