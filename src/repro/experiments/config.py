"""Experiment configuration.

An :class:`ExperimentConfig` fully determines a simulation run: topology,
physical parameters, the evaluated system (forwarding + host stack), the
transport, the workload mix, the simulated duration, and the seed.

Two constructors cover the common cases:

- :meth:`ExperimentConfig.paper_profile` — the paper's full-scale setup
  (320-server leaf-spine, 10/40 Gbps, 300 KB buffers, 5 s).  Constructible
  and correct, but far too slow to sweep in pure Python.
- :meth:`ExperimentConfig.bench_profile` — the scaled instance used by the
  benchmark harness (32 hosts, 200/160 Mbps, buffers, RTOs and ECN
  thresholds scaled together), preserving the dimensionless ratios that
  drive the paper's comparisons.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple, Union

from repro.checkpoint.config import CheckpointConfig
from repro.core.flowinfo import MarkingDiscipline
from repro.core.ordering import DEFAULT_TIMEOUT_NS
from repro.faults.spec import FaultSpec
from repro.forwarding.vertigo import VertigoSwitchParams
from repro.net.builder import NetworkParams
from repro.net.fidelity import FidelityConfig
from repro.net.pfc import PfcConfig
from repro.net.topology import (
    FatTree,
    LeafSpine,
    Topology,
    paper_leaf_spine,
)
from repro.sim.units import MILLISECOND, SECOND, gbps, kb, mbps, usecs
from repro.trace.tracer import TraceConfig
from repro.transport.base import TransportConfig
from repro.workload.spec import WorkloadSpec, specs_from_legacy

#: The four systems the paper compares (§4.1).
BENCH_SYSTEMS = ("ecmp", "drill", "dibs", "vertigo")
#: Additional baselines from the paper's related work (§5), implemented
#: as extensions: flowlet switching (LetFlow) and packet bounce (PABO).
EXTRA_SYSTEMS = ("letflow", "pabo")
ALL_SYSTEMS = BENCH_SYSTEMS + EXTRA_SYSTEMS


@dataclass(frozen=True)
class SystemConfig:
    """The L2/L3 system under evaluation."""

    name: str = "vertigo"
    vertigo_switch: VertigoSwitchParams = field(
        default_factory=VertigoSwitchParams)
    marking_discipline: MarkingDiscipline = MarkingDiscipline.SRPT
    boost_factor: int = 2
    boosting: bool = True
    ordering: bool = True
    #: None = auto-derive from the network (time to traverse it with
    #: almost-full buffers, §3.3.2 — 360 us at the paper's full scale).
    ordering_timeout_ns: Optional[int] = None
    drill_d: int = 2
    drill_m: int = 1
    dibs_max_deflections: int = 32
    #: None = auto-derive (a couple of base RTTs).
    letflow_gap_ns: Optional[int] = None
    pabo_max_bounces: int = 16

    def __post_init__(self) -> None:
        if self.name not in ALL_SYSTEMS:
            raise ValueError(f"unknown system {self.name!r}; "
                             f"choose from {ALL_SYSTEMS}")


#: The historical flat WorkloadConfig kwargs, accepted via the
#: deprecation shim and normalized to specs by ``specs_from_legacy``.
_LEGACY_WORKLOAD_KEYS = ("bg_load", "bg_distribution", "bg_size_cap",
                         "incast_load", "incast_qps", "incast_scale",
                         "incast_flow_bytes")


@dataclass(frozen=True, init=False)
class WorkloadConfig:
    """Traffic mix: an ordered list of composable workload specs.

    ``specs`` holds :class:`~repro.workload.spec.WorkloadSpec` entries
    (``background``, ``incast``, ``coflow``, ``duty_cycle``), resolved
    by the generator registry (:mod:`repro.workload.registry`) in
    order.  ``warmup_ns``/``cooldown_ns`` trim the measurement window:
    flows, queries, and coflows starting in the first ``warmup_ns`` or
    last ``cooldown_ns`` of the run are excluded from every summary
    statistic (see :meth:`MetricsCollector.set_window`).

    The historical flat kwargs (``bg_load=``, ``incast_scale=``, ...)
    still construct a config — they normalize to a background+incast
    spec pair with a DeprecationWarning, and the resulting runs are
    digest-identical to the pre-spec implementation.  Matching read
    accessors (``.bg_load``, ``.incast_qps``, ...) derive from the
    first spec of the relevant kind.  Profile constructors use
    :meth:`from_legacy`, the warning-free shim.
    """

    specs: Tuple[WorkloadSpec, ...] = ()
    warmup_ns: int = 0
    cooldown_ns: int = 0

    def __init__(self, specs: Optional[Sequence[WorkloadSpec]] = None, *,
                 warmup_ns: int = 0, cooldown_ns: int = 0,
                 **legacy) -> None:
        if legacy:
            unknown = [key for key in legacy
                       if key not in _LEGACY_WORKLOAD_KEYS]
            if unknown:
                raise TypeError(f"unknown WorkloadConfig arguments "
                                f"{unknown}; give a list of WorkloadSpec "
                                f"entries or the legacy "
                                f"{list(_LEGACY_WORKLOAD_KEYS)} kwargs")
            if specs is not None:
                raise TypeError("give either specs or the legacy flat "
                                "kwargs, not both")
            warnings.warn(
                "flat WorkloadConfig kwargs are deprecated; pass a list "
                "of workload specs (BackgroundSpec, IncastSpec, ...) "
                "instead", DeprecationWarning, stacklevel=2)
            specs = specs_from_legacy(**legacy)
        elif specs is None:
            # The historical default mix: 15 % cache-follower background,
            # incast inactive.
            specs = specs_from_legacy()
        specs = tuple(specs)
        for spec in specs:
            if not isinstance(spec, WorkloadSpec):
                raise TypeError(f"workload specs must be WorkloadSpec "
                                f"instances, got {spec!r}")
        if warmup_ns < 0 or cooldown_ns < 0:
            raise ValueError("warmup and cooldown must be non-negative")
        object.__setattr__(self, "specs", specs)
        object.__setattr__(self, "warmup_ns", warmup_ns)
        object.__setattr__(self, "cooldown_ns", cooldown_ns)

    @classmethod
    def from_legacy(cls, **legacy) -> "WorkloadConfig":
        """The flat-kwarg surface without the deprecation warning —
        what the profile constructors build on."""
        return cls(specs_from_legacy(**legacy))

    def _first(self, kind: str) -> Optional[WorkloadSpec]:
        for spec in self.specs:
            if spec.kind == kind:
                return spec
        return None

    # -- legacy read accessors (first spec of the kind, or the
    # -- historical defaults when the kind is absent) -----------------------

    @property
    def bg_load(self) -> float:
        spec = self._first("background")
        return spec.load if spec is not None else 0.0

    @property
    def bg_distribution(self) -> str:
        spec = self._first("background")
        return spec.distribution if spec is not None else "cache_follower"

    @property
    def bg_size_cap(self) -> Optional[int]:
        spec = self._first("background")
        return spec.size_cap if spec is not None else None

    @property
    def incast_load(self) -> Optional[float]:
        spec = self._first("incast")
        return spec.load if spec is not None else None

    @property
    def incast_qps(self) -> Optional[float]:
        spec = self._first("incast")
        return spec.qps if spec is not None else None

    @property
    def incast_scale(self) -> int:
        spec = self._first("incast")
        return spec.scale if spec is not None else 100

    @property
    def incast_flow_bytes(self) -> int:
        spec = self._first("incast")
        return spec.flow_bytes if spec is not None else 40_000

    @property
    def total_load(self) -> float:
        """Summed offered load of every load-driven spec."""
        return sum(spec.offered_load for spec in self.specs)


@dataclass
class ExperimentConfig:
    """Everything needed to reproduce one simulation run."""

    topology: Topology = field(default_factory=paper_leaf_spine)
    network: NetworkParams = field(default_factory=NetworkParams)
    system: SystemConfig = field(default_factory=SystemConfig)
    transport_name: str = "dctcp"
    transport: TransportConfig = field(default_factory=TransportConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    sim_time_ns: int = 5 * SECOND
    seed: int = 1
    #: Fault-injection scenario (:mod:`repro.faults`): timed link
    #: down/up, rate degradation and corruption loss, applied
    #: deterministically during the run.  Empty = healthy fabric.
    faults: Tuple[FaultSpec, ...] = ()
    #: Attach a deflection-aware telemetry monitor sampling at this
    #: interval (§5 extension); None disables monitoring.
    telemetry_interval_ns: Optional[int] = None
    #: Run with the runtime invariant sanitizer (repro.analysis.sanitize)
    #: enabled for the duration of this experiment; equivalent to setting
    #: REPRO_SANITIZE=1 scoped to the run.  Never changes results — only
    #: adds invariant checks along the hot paths.
    sanitize: bool = False
    #: Observability (:mod:`repro.trace`): record flow- or packet-level
    #: events and periodic samples during the run.  None (default) keeps
    #: every hook dormant — the traced-off hot path costs one module-
    #: global identity test per hook site.
    trace: Optional[TraceConfig] = None
    #: Simulation fidelity (:mod:`repro.net.fidelity`): ``packet`` keeps
    #: today's pure packet-level path (no controller is even built);
    #: ``flow``/``hybrid`` enable the analytic fast path for flows whose
    #: links are uncongested.  Every field is a digest input.
    fidelity: FidelityConfig = field(default_factory=FidelityConfig)
    #: Priority-class lanes and lossless PFC (:mod:`repro.net.pfc`).
    #: The default (1 class, PFC off) leaves the datapath byte-identical
    #: to the laneless one; any configured value joins the run digest.
    pfc: PfcConfig = field(default_factory=PfcConfig)
    #: In-run checkpointing (:mod:`repro.checkpoint`): snapshot the live
    #: simulation at epoch boundaries so crashed/preempted runs resume
    #: instead of restarting.  ``repr=False`` keeps it OUT of
    #: ``config_digest`` — checkpointing is an execution concern and
    #: never changes results, so a checkpointed run keys identically to
    #: the same run without.
    checkpoint: Optional["CheckpointConfig"] = field(default=None,
                                                    repr=False)

    # -- profiles --------------------------------------------------------------------

    @staticmethod
    def _resolve_workload(workload, legacy_kwargs) -> WorkloadConfig:
        """A profile's ``workload=`` parameter: a ready
        :class:`WorkloadConfig`, a sequence of specs, or None (fall back
        to the profile's legacy flat kwargs)."""
        if workload is not None:
            if legacy_kwargs:
                raise TypeError(
                    "give either workload= or the legacy bg_*/incast_* "
                    "kwargs, not both")
            if isinstance(workload, WorkloadConfig):
                return workload
            return WorkloadConfig(tuple(workload))
        return WorkloadConfig.from_legacy(**legacy_kwargs)

    @classmethod
    def paper_profile(cls, system: str = "vertigo",
                      transport: str = "dctcp",
                      workload: Optional[Union[WorkloadConfig,
                                               Sequence[WorkloadSpec]]] = None,
                      **workload_kwargs) -> "ExperimentConfig":
        """The paper's full-scale leaf-spine setup (§4.1)."""
        return cls(
            topology=paper_leaf_spine(),
            network=NetworkParams(host_rate_bps=gbps(10),
                                  fabric_rate_bps=gbps(40),
                                  buffer_bytes=kb(300)),
            system=SystemConfig(name=system),
            transport_name=transport,
            workload=cls._resolve_workload(workload, workload_kwargs),
            sim_time_ns=5 * SECOND,
        )

    @classmethod
    def bench_profile(cls, system: str = "vertigo", transport: str = "dctcp",
                      *, bg_load: float = 0.15,
                      incast_load: Optional[float] = None,
                      incast_qps: Optional[float] = None,
                      incast_scale: int = 12,
                      incast_flow_bytes: int = 10_000,
                      bg_distribution: str = "cache_follower",
                      workload: Optional[Union[WorkloadConfig,
                                               Sequence[WorkloadSpec]]] = None,
                      sim_time_ns: int = 200 * MILLISECOND,
                      topology: Optional[Topology] = None,
                      faults: Sequence[FaultSpec] = (),
                      seed: int = 1, **system_kwargs) -> "ExperimentConfig":
        """Scaled-down instance for laptop-speed sweeps (see DESIGN.md).

        32 hosts at 200 Mbps access / 160 Mbps fabric with 30 KB port
        buffers (leaf uplink capacity 0.8x leaf host capacity,
        approximating the paper's 2.5:1 oversubscription: the fabric, not the access
        links, runs out first under load — the regime where random
        deflection breaks).  The dimensionless ratios that drive the paper's
        comparisons are preserved: the incast first-window burst
        oversubscribes the victim port buffer ~4× (paper: 100 flows x 10
        IW-packets vs a 205-packet buffer ~= 4.9×), the per-query service
        floor is a small fraction of the simulated window, the
        buffer is a handful of BDPs, minRTO is tens of base RTTs, and the
        simulated interval is a few initial-RTO periods (paper: 5 s vs
        1 s init RTO), so RTO-stall dynamics show at the same relative
        magnitude.  RTO constants are scaled accordingly (init 40 ms,
        min 10 ms); the background size tail is capped at 200 KB (8 ms of
        service) so the simulated interval covers many multiples of the
        largest flow's service time, as the paper's 5 s window does.
        """
        if topology is None:
            topology = LeafSpine(n_spines=4, n_leaves=8, hosts_per_leaf=4)
        if workload is None:
            workload = WorkloadConfig.from_legacy(
                bg_load=bg_load,
                bg_distribution=bg_distribution,
                bg_size_cap=200_000,
                incast_load=incast_load,
                incast_qps=incast_qps,
                incast_scale=incast_scale,
                incast_flow_bytes=incast_flow_bytes)
        else:
            workload = cls._resolve_workload(workload, {})
        return cls(
            topology=topology,
            network=NetworkParams(host_rate_bps=mbps(200),
                                  fabric_rate_bps=mbps(160),
                                  host_link_delay_ns=usecs(1),
                                  fabric_link_delay_ns=usecs(1),
                                  buffer_bytes=kb(30)),
            system=SystemConfig(name=system, **system_kwargs),
            transport_name=transport,
            transport=TransportConfig(init_rto_ns=40 * MILLISECOND,
                                      min_rto_ns=10 * MILLISECOND),
            workload=workload,
            sim_time_ns=sim_time_ns,
            faults=tuple(faults),
            seed=seed,
        )

    @classmethod
    def bench_fat_tree(cls, system: str = "vertigo",
                       transport: str = "dctcp", k: int = 4,
                       **kwargs) -> "ExperimentConfig":
        """Scaled fat-tree variant of the bench profile."""
        return cls.bench_profile(system=system, transport=transport,
                                 topology=FatTree(k), **kwargs)

    def with_system(self, system: str, **system_kwargs) -> "ExperimentConfig":
        clone = replace(self)
        clone.system = SystemConfig(name=system, **system_kwargs)
        return clone

    def with_faults(self, faults: Sequence[FaultSpec]
                    ) -> "ExperimentConfig":
        clone = replace(self)
        clone.faults = tuple(faults)
        return clone
