"""Parameter sweep helpers used by the benchmark harness."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import RunResult, run_experiment

ConfigFactory = Callable[..., ExperimentConfig]


def sweep(configs: Iterable[ExperimentConfig]) -> List[RunResult]:
    """Run a sequence of configurations, in order."""
    return [run_experiment(config) for config in configs]


def load_sweep(make_config: Callable[[float], ExperimentConfig],
               loads: Sequence[float]) -> List[RunResult]:
    """Run ``make_config(load)`` for each offered load fraction."""
    return [run_experiment(make_config(load)) for load in loads]


def format_table(rows: List[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None) -> str:
    """Render result rows as an aligned text table for bench output."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    rendered = [[fmt(row.get(column, "")) for column in columns]
                for row in rows]
    widths = [max(len(column), *(len(line[i]) for line in rendered))
              for i, column in enumerate(columns)]
    header = "  ".join(column.ljust(widths[i])
                       for i, column in enumerate(columns))
    divider = "  ".join("-" * width for width in widths)
    body = "\n".join("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(line))
                     for line in rendered)
    return "\n".join([header, divider, body])
