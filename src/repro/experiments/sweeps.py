"""Parameter sweep helpers used by the benchmark harness.

Sweeps run through the (optionally process-parallel) executor in
:mod:`repro.experiments.parallel`: pass ``jobs=N``, or set the
``REPRO_JOBS`` environment variable, to fan the points out to worker
processes.  Results always come back in sweep order and are
digest-identical to a serial run.

For long or failure-prone sweeps, :func:`repro.runtime.run_supervised`
wraps the same execution with crash recovery, per-run deadlines, bounded
retry, and a checkpoint/resume journal; ``repro sweep`` on the CLI uses
it.  These helpers stay the minimal, raise-on-failure path.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import run_many
from repro.experiments.runner import RunResult

ConfigFactory = Callable[..., ExperimentConfig]


def sweep(configs: Iterable[ExperimentConfig], *,
          jobs: Optional[int] = None) -> List[RunResult]:
    """Run a sequence of configurations, in order."""
    return run_many(configs, jobs=jobs)


def load_sweep(make_config: Callable[[float], ExperimentConfig],
               loads: Sequence[float], *,
               jobs: Optional[int] = None) -> List[RunResult]:
    """Run ``make_config(load)`` for each offered load fraction."""
    return run_many([make_config(load) for load in loads], jobs=jobs)


def format_table(rows: List[object],
                 columns: Optional[Sequence[str]] = None) -> str:
    """Render result rows as an aligned text table for bench output.

    Accepts plain dict rows, :class:`~repro.experiments.report.RunReport`
    objects, or :class:`RunResult` objects (anything with a ``row()``).
    ``None`` cells render as ``-`` — a supervised sweep's failure
    placeholders (:func:`repro.experiments.report.placeholder_row`) show
    up as explicit gaps in the table instead of crashing it.
    """
    if not rows:
        return "(no rows)"
    rows = [row.row() if hasattr(row, "row") else row for row in rows]
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    rendered = [[fmt(row.get(column, "")) for column in columns]
                for row in rows]
    widths = [max(len(column), *(len(line[i]) for line in rendered))
              for i, column in enumerate(columns)]
    header = "  ".join(column.ljust(widths[i])
                       for i, column in enumerate(columns))
    divider = "  ".join("-" * width for width in widths)
    body = "\n".join("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(line))
                     for line in rendered)
    return "\n".join([header, divider, body])
