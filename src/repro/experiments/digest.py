"""Canonical determinism digest of a run (shared by tests and tooling).

The digest covers everything a figure could be built from — the summary
row, per-flow and per-query records, drop reasons, and the number of
events executed — serialized to canonical JSON and hashed.  Two runs
with the same config and seed must produce the same digest whether they
executed in this process or in a sweep worker
(:mod:`repro.experiments.parallel`), under the sanitizer or not.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import RunResult


def run_digest(result: RunResult) -> str:
    """SHA-256 over a canonical JSON view of everything reportable."""
    metrics = result.metrics
    # Flow tuples keep their historical 10-element shape; the coflow
    # membership column is appended only when the run recorded coflows,
    # so pre-coflow configurations hash identically.
    coflow_tail = bool(metrics.coflows)
    flows = [
        (f.flow_id, f.src, f.dst, f.size, f.start_ns, f.end_ns,
         f.bytes_delivered, f.is_incast, f.query_id, f.retransmissions)
        + ((f.coflow_id,) if coflow_tail else ())
        for f in sorted(metrics.flows.values(), key=lambda f: f.flow_id)
    ]
    queries = [
        (q.query_id, q.client, q.start_ns, q.n_flows, q.flows_done, q.end_ns)
        for q in sorted(metrics.queries.values(), key=lambda q: q.query_id)
    ]
    view = {
        "row": result.row(),
        # Traces are deterministic sim-time records; when enabled they are
        # covered by the digest (the trace digest is itself a SHA-256 of
        # the canonical JSONL export).  Untraced runs hash identically to
        # runs from before tracing existed.
        **({"trace": result.trace.digest()}
           if result.trace is not None else {}),
        # The fidelity policy and its deterministic runtime aggregates
        # (mode residency, transition counts) join the digest whenever
        # the analytic path is enabled; pure packet runs hash identically
        # to runs from before hybrid fidelity existed.
        **({"fidelity": [list(result.config.fidelity.digest_view()),
                         sorted(result.fidelity.items())]}
           if result.fidelity is not None else {}),
        # Priority lanes / PFC join the digest whenever the config is
        # non-default: the lane structure, thresholds, pause aggregates,
        # and class-keyed drops are all deterministic.  Default (1 lane,
        # PFC off) runs hash identically to runs from before PFC existed.
        **({"pfc": [list(result.config.pfc.digest_view()),
                    (sorted(result.pfc.items())
                     if result.pfc is not None else None),
                    sorted([key[0], key[1], count] for key, count in
                           metrics.counters.class_drops.items())]}
           if result.config.pfc.configured else {}),
        # Coflow lifecycles join the digest whenever the run recorded
        # any; coflow-free runs hash identically to runs from before
        # the coflow generator existed.
        **({"coflows": [
                (c.coflow_id, c.start_ns, c.n_flows, c.flows_done,
                 c.end_ns, c.stages)
                for c in sorted(metrics.coflows.values(),
                                key=lambda c: c.coflow_id)],
            "coflows_launched": result.coflows_launched}
           if metrics.coflows else {}),
        "faults": [(spec.kind, list(spec.link), spec.at_ns, spec.rate_bps,
                    spec.loss_rate) for spec in result.config.faults],
        "drops": sorted(metrics.counters.drops.items()),
        "events_executed": result.engine.events_executed,
        "bg_flows": result.bg_flows_generated,
        "queries_issued": result.queries_issued,
        "flows": flows,
        "queries": queries,
    }
    payload = json.dumps(view, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def config_digest(config: ExperimentConfig) -> str:
    """SHA-256 identity of one sweep point, before it runs.

    Hashes the config's canonical value ``repr`` — every component
    (topology, network parameters, system, transport, workload, faults,
    trace settings, seed) renders as a value, so two configs describing
    the same run digest identically across processes and interpreter
    sessions.  The sweep journal (:mod:`repro.runtime.journal`) keys
    completed points by this digest to match them up on ``--resume``.
    """
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()


def sweep_digest(entries: Iterable) -> str:
    """SHA-256 over a whole sweep, order-sensitive.

    ``entries`` may mix :class:`RunResult` objects (hashed via
    :func:`run_digest`) and pre-computed digest strings.  A resumed sweep
    is correct exactly when its sweep digest matches the uninterrupted
    run's — the chaos-smoke CI job compares the two byte for byte.
    """
    parts = []
    for entry in entries:
        parts.append(entry if isinstance(entry, str) else run_digest(entry))
    payload = "\n".join(parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
