"""Command-line interface: run one simulation and print its summary.

Usage::

    python -m repro --system vertigo --transport dctcp \
        --bg-load 0.5 --incast-load 0.25 --sim-ms 200

All knobs default to the scaled bench profile (DESIGN.md); pass
``--paper-scale`` for the full 320-server configuration (slow!).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.config import ALL_SYSTEMS, ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.sweeps import format_table, sweep
from repro.faults import parse_faults
from repro.net.topology import FatTree
from repro.sim.units import MILLISECOND


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Vertigo (CoNEXT 2021) reproduction: run one "
                    "simulated datacenter experiment.")
    parser.add_argument("--system", choices=ALL_SYSTEMS,
                        default="vertigo")
    parser.add_argument("--transport",
                        choices=["reno", "tcp", "dctcp", "swift"],
                        default="dctcp")
    parser.add_argument("--bg-load", type=float, default=0.5,
                        help="background load fraction (default 0.5)")
    parser.add_argument("--incast-load", type=float, default=0.25,
                        help="incast load fraction (default 0.25)")
    parser.add_argument("--incast-scale", type=int, default=12,
                        help="servers per incast query")
    parser.add_argument("--incast-flow-bytes", type=int, default=10_000)
    parser.add_argument("--sim-ms", type=int, default=200,
                        help="simulated milliseconds")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--fat-tree", type=int, metavar="K", default=None,
                        help="use a fat-tree of degree K instead of "
                             "leaf-spine")
    parser.add_argument("--paper-scale", action="store_true",
                        help="full 320-server paper topology (very slow)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run with the runtime invariant sanitizer "
                             "(repro.analysis.sanitize) enabled")
    parser.add_argument("--fault", action="append", default=[],
                        metavar="DIRECTIVE", dest="faults",
                        help="inject a fault scenario, e.g. "
                             "link:leaf0-spine1:down@50ms,up@120ms or "
                             "link:leaf0-h3:rate=40mbps@10ms or "
                             "link:leaf0-spine1:loss=0.01@0ms; "
                             "repeatable")
    parser.add_argument("--seeds", type=int, default=1, metavar="N",
                        help="run N seeds (seed..seed+N-1) and print one "
                             "row per seed")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for multi-seed runs "
                             "(default REPRO_JOBS, else serial; "
                             "0 = all CPUs)")
    return parser


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    if args.paper_scale:
        config = ExperimentConfig.paper_profile(
            system=args.system, transport=args.transport,
            bg_load=args.bg_load, incast_load=args.incast_load,
            incast_scale=args.incast_scale,
            incast_flow_bytes=args.incast_flow_bytes)
        config.seed = args.seed
    else:
        topology = FatTree(args.fat_tree) if args.fat_tree else None
        config = ExperimentConfig.bench_profile(
            system=args.system, transport=args.transport,
            bg_load=args.bg_load, incast_load=args.incast_load,
            incast_scale=args.incast_scale,
            incast_flow_bytes=args.incast_flow_bytes,
            sim_time_ns=args.sim_ms * MILLISECOND,
            topology=topology, seed=args.seed)
    config.sanitize = args.sanitize
    config.faults = parse_faults(args.faults)
    return config


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.seeds < 1:
        print("--seeds must be >= 1", file=sys.stderr)
        return 2
    configs = []
    for seed in range(args.seed, args.seed + args.seeds):
        args.seed = seed
        configs.append(config_from_args(args))
    print(f"running {args.system}+{args.transport} on "
          f"{configs[0].topology!r} for "
          f"{configs[0].sim_time_ns // MILLISECOND} ms simulated "
          f"({len(configs)} seed(s)) ...", file=sys.stderr)
    if configs[0].faults:
        print("fault scenario: "
              + "; ".join(spec.describe() for spec in configs[0].faults),
              file=sys.stderr)
    if len(configs) == 1:
        results = [run_experiment(configs[0])]
    else:
        results = sweep(configs, jobs=args.jobs)
    rows = []
    for config, result in zip(configs, results):
        row = result.row()
        row["seed"] = config.seed
        rows.append(row)
    print(format_table(rows))
    if len(results) == 1:
        drops = results[0].metrics.counters.drops
        if drops:
            print("\ndrops by reason: "
                  + ", ".join(f"{reason}={count}"
                              for reason, count in sorted(drops.items())))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
