"""Command-line interface (``python -m repro``).

Subcommands::

    python -m repro run   --system vertigo --transport dctcp \\
        --bg-load 0.5 --incast-load 0.25 --sim-ms 200 \\
        --trace out.jsonl --trace-level packet --sample-us 100
    python -m repro run   --system vertigo --sim-ms 100 \\
        --workload coflow:width=8,stages=2,load=0.2 \\
        --workload background:load=0.2 --warmup 10ms --cooldown 10ms
    python -m repro sweep --systems ecmp,drill,dibs,vertigo --seeds 3
    python -m repro lint  src
    python -m repro perf  --quick
    python -m repro trace-view out.jsonl --validate --chrome out.json

A bare legacy invocation (flags with no subcommand, e.g.
``python -m repro --system vertigo``) maps to ``run``.  All knobs
default to the scaled bench profile (DESIGN.md); pass ``--paper-scale``
for the full 320-server configuration (slow!).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from dataclasses import replace as _replace

from repro.experiments.config import (
    ALL_SYSTEMS,
    ExperimentConfig,
    WorkloadConfig,
)
from repro.experiments.parallel import resolve_jobs
from repro.experiments.runner import run_experiment
from repro.experiments.sweeps import format_table, sweep
from repro.faults import parse_faults
from repro.faults.spec import parse_time_ns
from repro.workload.spec import parse_workloads
from repro.net.fidelity import FIDELITY_MODES, FidelityConfig
from repro.net.pfc import PfcConfig
from repro.net.topology import FatTree
from repro.runtime import SupervisorPolicy, run_supervised
from repro.sim.units import MILLISECOND
from repro.trace.tracer import TRACE_LEVELS, TraceConfig

SUBCOMMANDS = ("run", "sweep", "lint", "perf", "trace-view")

_EPILOG = (
    "subcommands: run (default) | sweep | lint | perf | trace-view; "
    "run `python -m repro <subcommand> --help` for each."
)


def _add_experiment_arguments(parser: argparse.ArgumentParser) -> None:
    """The experiment knobs shared by ``run`` and ``sweep``."""
    parser.add_argument("--transport",
                        choices=["reno", "tcp", "dctcp", "swift", "dcqcn"],
                        default="dctcp",
                        help="transport; 'tcp' is an alias for 'reno' "
                             "(both select the Reno sender; rows and "
                             "digests keep the name you passed); 'dcqcn' "
                             "is the rate-based lossless-fabric control "
                             "(pair with --pfc)")
    parser.add_argument("--bg-load", type=float, default=0.5,
                        help="background load fraction (default 0.5)")
    parser.add_argument("--incast-load", type=float, default=0.25,
                        help="incast load fraction (default 0.25)")
    parser.add_argument("--incast-scale", type=int, default=12,
                        help="servers per incast query")
    parser.add_argument("--incast-flow-bytes", type=int, default=10_000)
    parser.add_argument("--sim-ms", type=int, default=200,
                        help="simulated milliseconds")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--fat-tree", type=int, metavar="K", default=None,
                        help="use a fat-tree of degree K instead of "
                             "leaf-spine")
    parser.add_argument("--paper-scale", action="store_true",
                        help="full 320-server paper topology (very slow)")
    parser.add_argument("--fidelity", choices=list(FIDELITY_MODES),
                        default="packet",
                        help="simulation fidelity: 'packet' (full "
                             "packet-level, default), 'hybrid' (analytic "
                             "fast path on uncongested links, demoting to "
                             "packets under congestion), or 'flow' "
                             "(always analytic; fast but coarse)")
    parser.add_argument("--pfc", action="store_true",
                        help="lossless fabric: per-class PFC PAUSE with "
                             "XOFF/XON thresholds (repro.net.pfc)")
    parser.add_argument("--pfc-classes", type=int, default=1, metavar="N",
                        help="priority-class lanes per port (default 1); "
                             "flows map to class flow_id %% N")
    parser.add_argument("--pfc-headroom", type=int, default=None,
                        metavar="BYTES",
                        help="PFC headroom above XOFF (default: auto, "
                             "2 x BDP + 2 MTU — lossless; 0 drops "
                             "post-XOFF arrivals)")
    parser.add_argument("--demote-shares", type=int, default=None,
                        metavar="N",
                        help="hybrid fidelity: demote a link to packet "
                             "mode above N active flow shares (default "
                             "64; bounds the incast fan-in the analytic "
                             "path absorbs, see EXPERIMENTS.md)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run with the runtime invariant sanitizer "
                             "(repro.analysis.sanitize) enabled")
    parser.add_argument("--fault", action="append", default=[],
                        metavar="DIRECTIVE", dest="faults",
                        help="inject a fault scenario, e.g. "
                             "link:leaf0-spine1:down@50ms,up@120ms or "
                             "link:leaf0-h3:rate=40mbps@10ms or "
                             "link:leaf0-spine1:loss=0.01@0ms; "
                             "repeatable")
    parser.add_argument("--workload", action="append", default=[],
                        metavar="SPEC", dest="workloads",
                        help="compose the traffic mix from workload specs "
                             "(replaces --bg-load/--incast-* when given), "
                             "e.g. background:load=0.3,dist=web_search or "
                             "incast:scale=24,load=0.1 or "
                             "coflow:width=8,stages=2,load=0.2 or "
                             "duty_cycle:load=0.3,duty=0.1,period=1ms; "
                             "add skew=zipf|hotrack|permutation for a "
                             "skewed matrix; repeatable")
    parser.add_argument("--warmup", default=None, metavar="TIME",
                        help="exclude flows starting in the first TIME "
                             "(e.g. 10ms) from all summary metrics")
    parser.add_argument("--cooldown", default=None, metavar="TIME",
                        help="exclude flows starting in the last TIME "
                             "from all summary metrics")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for multi-run invocations "
                             "(default REPRO_JOBS, else serial; "
                             "0 = all CPUs)")
    parser.add_argument("--checkpoint-every", type=float, default=None,
                        metavar="SIM_MS", dest="checkpoint_every",
                        help="snapshot the full simulation state every "
                             "SIM_MS simulated milliseconds (atomic, "
                             "digest-verified); a crashed or preempted "
                             "run auto-resumes from its last checkpoint "
                             "on re-invocation, and results are "
                             "byte-identical to an uninterrupted run")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        dest="checkpoint_dir",
                        help="directory for managed checkpoint files "
                             "(default .repro-checkpoints), keyed by "
                             "config digest")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record a trace (repro.trace) and write it "
                             "as deterministic JSONL to PATH")
    parser.add_argument("--trace-level", choices=list(TRACE_LEVELS),
                        default="flow",
                        help="trace granularity: 'flow' (flow/query "
                             "lifecycle + congestion-control events) or "
                             "'packet' (adds per-packet queue/deflect/"
                             "drop/ECN/ordering events)")
    parser.add_argument("--sample-us", type=int, default=None, metavar="N",
                        help="also sample port queues/utilization and "
                             "flow cwnd every N microseconds of sim time")
    parser.add_argument("--trace-chrome", default=None, metavar="PATH",
                        help="additionally export the trace as Chrome "
                             "trace_event JSON (Perfetto-openable)")


def build_parser() -> argparse.ArgumentParser:
    """The ``run`` parser (also the bare legacy invocation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Vertigo (CoNEXT 2021) reproduction: run one "
                    "simulated datacenter experiment.",
        epilog=_EPILOG)
    parser.add_argument("--system", choices=ALL_SYSTEMS,
                        default="vertigo")
    _add_experiment_arguments(parser)
    parser.add_argument("--seeds", type=int, default=1, metavar="N",
                        help="run N seeds (seed..seed+N-1) and print one "
                             "row per seed")
    parser.add_argument("--restore", default=None, metavar="PATH",
                        help="resume a single run from an explicit "
                             "checkpoint file written by "
                             "--checkpoint-every (the config must match "
                             "the checkpoint's recorded digest)")
    return parser


def _trace_config_from_args(args: argparse.Namespace
                            ) -> Optional[TraceConfig]:
    if not (args.trace or args.trace_chrome):
        return None
    period = args.sample_us * 1000 if args.sample_us else None
    return TraceConfig(level=args.trace_level, sample_period_ns=period)


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    if args.paper_scale:
        config = ExperimentConfig.paper_profile(
            system=args.system, transport=args.transport,
            bg_load=args.bg_load, incast_load=args.incast_load,
            incast_scale=args.incast_scale,
            incast_flow_bytes=args.incast_flow_bytes)
        config.seed = args.seed
    else:
        topology = FatTree(args.fat_tree) if args.fat_tree else None
        config = ExperimentConfig.bench_profile(
            system=args.system, transport=args.transport,
            bg_load=args.bg_load, incast_load=args.incast_load,
            incast_scale=args.incast_scale,
            incast_flow_bytes=args.incast_flow_bytes,
            sim_time_ns=args.sim_ms * MILLISECOND,
            topology=topology, seed=args.seed)
    if args.workloads:
        # A spec-composed mix replaces the profile's default generators
        # (the --bg-load/--incast-* knobs are ignored when --workload
        # is given).
        config.workload = WorkloadConfig(parse_workloads(args.workloads))
    if args.warmup or args.cooldown:
        config.workload = _replace(
            config.workload,
            warmup_ns=parse_time_ns(args.warmup) if args.warmup else 0,
            cooldown_ns=parse_time_ns(args.cooldown) if args.cooldown else 0)
    config.sanitize = args.sanitize
    config.faults = parse_faults(args.faults)
    config.trace = _trace_config_from_args(args)
    if args.checkpoint_every is not None:
        from repro.checkpoint import CheckpointConfig
        config.checkpoint = CheckpointConfig.every_ms(
            args.checkpoint_every, directory=args.checkpoint_dir)
    elif args.checkpoint_dir is not None:
        raise ValueError("--checkpoint-dir requires --checkpoint-every")
    if args.demote_shares is not None:
        config.fidelity = FidelityConfig(mode=args.fidelity,
                                         demote_shares=args.demote_shares)
    else:
        config.fidelity = FidelityConfig(mode=args.fidelity)
    if args.pfc or args.pfc_classes > 1:
        num_classes = args.pfc_classes
        config.pfc = PfcConfig(
            enabled=args.pfc, num_classes=num_classes,
            priority_map=tuple(range(num_classes)),
            headroom_bytes=args.pfc_headroom)
    return config


def _export_traces(results, args: argparse.Namespace) -> None:
    """Write the recorded traces (JSONL and/or Chrome) for a result list.

    Results arrive in config order from both the serial and the parallel
    executor, so multi-run trace files are deterministic: per-run JSONL
    blocks concatenate in run order regardless of ``--jobs``.
    """
    traces = [result.trace for result in results
              if result.trace is not None]
    if not traces:
        return
    from repro.trace.export import write_chrome_trace, write_jsonl
    if args.trace:
        lines = write_jsonl(traces, args.trace)
        print(f"trace: wrote {lines} JSONL lines ({len(traces)} run(s)) "
              f"to {args.trace}", file=sys.stderr)
    if args.trace_chrome:
        count = write_chrome_trace(traces, args.trace_chrome)
        print(f"trace: wrote {count} Chrome trace events to "
              f"{args.trace_chrome}", file=sys.stderr)


def _cmd_run(argv: List[str]) -> int:
    args = build_parser().parse_args(argv)
    if args.seeds < 1:
        print("--seeds must be >= 1", file=sys.stderr)
        return 2
    if args.restore and args.seeds != 1:
        print("--restore resumes exactly one run (--seeds 1)",
              file=sys.stderr)
        return 2
    configs = []
    try:
        for seed in range(args.seed, args.seed + args.seeds):
            args.seed = seed
            configs.append(config_from_args(args))
        jobs = resolve_jobs(args.jobs)
    except ValueError as exc:
        # Malformed --fault directive or REPRO_JOBS/--jobs value: a
        # usage error, reported in one line with the argparse exit code.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    print(f"running {args.system}+{args.transport} on "
          f"{configs[0].topology!r} for "
          f"{configs[0].sim_time_ns // MILLISECOND} ms simulated "
          f"({len(configs)} seed(s)) ...", file=sys.stderr)
    if configs[0].faults:
        print("fault scenario: "
              + "; ".join(spec.describe() for spec in configs[0].faults),
              file=sys.stderr)
    if len(configs) == 1:
        if configs[0].checkpoint is not None or args.restore:
            from repro.checkpoint import RunPreempted
            from repro.checkpoint.runtime import install_foreground_handlers
            if configs[0].checkpoint is not None:
                # SIGTERM/SIGINT become checkpoint-then-exit requests
                # honoured at the next epoch boundary.
                install_foreground_handlers()
            try:
                results = [run_experiment(configs[0],
                                          restore=args.restore)]
            except RunPreempted as preempted:
                print(f"run: preempted at "
                      f"{preempted.sim_now_ns // MILLISECOND} ms "
                      f"simulated; checkpoint written to "
                      f"{preempted.path} — re-run the same command to "
                      f"resume", file=sys.stderr)
                return 130
        else:
            results = [run_experiment(configs[0])]
    else:
        results = sweep(configs, jobs=jobs)
    rows = []
    for config, result in zip(configs, results):
        row = result.report().row()
        row["seed"] = config.seed
        rows.append(row)
    print(format_table(rows))
    if len(results) == 1:
        drops = results[0].metrics.counters.drops
        if drops:
            print("\ndrops by reason: "
                  + ", ".join(f"{reason}={count}"
                              for reason, count in sorted(drops.items())))
    _export_traces(results, args)
    return 0


def _cmd_sweep(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Run a systems x seeds grid under the crash-tolerant "
                    "supervisor and print one row per point (the sweep "
                    "fans out with --jobs; crashed or stuck points are "
                    "retried, and --journal/--resume checkpoint the "
                    "sweep across interruptions).")
    parser.add_argument("--systems", default="ecmp,drill,dibs,vertigo",
                        help="comma-separated systems (default: the four "
                             "compared in the paper)")
    parser.add_argument("--seeds", type=int, default=1, metavar="N",
                        help="seeds per system (seed..seed+N-1)")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="append every completed point to a JSONL "
                             "journal at PATH (start fresh)")
    parser.add_argument("--resume", default=None, metavar="PATH",
                        help="resume from a journal written by --journal: "
                             "completed points are reloaded (digests "
                             "verified), only missing ones run")
    parser.add_argument("--run-timeout", type=float, default=None,
                        metavar="SECONDS", dest="run_timeout",
                        help="per-run wall-clock deadline; overdue runs "
                             "are killed and classified 'timeout' "
                             "(default REPRO_RUN_TIMEOUT_S, else none)")
    parser.add_argument("--max-retries", type=int, default=None,
                        metavar="N", dest="max_retries",
                        help="retries per point for crashes/timeouts/"
                             "transient errors (default REPRO_MAX_RETRIES, "
                             "else 2)")
    parser.add_argument("--preempt-grace", type=float, default=None,
                        metavar="SECONDS", dest="preempt_grace",
                        help="grace window between the watchdog's SIGTERM "
                             "(checkpoint-then-exit) and the SIGKILL "
                             "fallback (default 5)")
    parser.add_argument("--stall-timeout", type=float, default=None,
                        metavar="SECONDS", dest="stall_timeout",
                        help="flag a run as stalled when its simulated "
                             "clock (read from checkpoint progress "
                             "sidecars) stops advancing for SECONDS of "
                             "wall time; requires --checkpoint-every")
    _add_experiment_arguments(parser)
    args = parser.parse_args(argv)
    systems = [name.strip() for name in args.systems.split(",")
               if name.strip()]
    unknown = [name for name in systems if name not in ALL_SYSTEMS]
    if unknown:
        print(f"unknown system(s) {unknown}; choose from "
              f"{list(ALL_SYSTEMS)}", file=sys.stderr)
        return 2
    if args.seeds < 1:
        print("--seeds must be >= 1", file=sys.stderr)
        return 2
    if args.journal and args.resume:
        print("repro: error: pass either --journal (start fresh) or "
              "--resume (continue), not both", file=sys.stderr)
        return 2
    base_seed = args.seed
    configs = []
    try:
        for system in systems:
            for seed in range(base_seed, base_seed + args.seeds):
                args.system = system
                args.seed = seed
                configs.append(config_from_args(args))
        jobs = resolve_jobs(args.jobs)
        overrides = {}
        if args.preempt_grace is not None:
            overrides["preempt_grace_s"] = args.preempt_grace
        if args.stall_timeout is not None:
            overrides["stall_timeout_s"] = args.stall_timeout
        policy = SupervisorPolicy.from_env(run_timeout_s=args.run_timeout,
                                           max_retries=args.max_retries,
                                           **overrides)
    except ValueError as exc:
        # Malformed --fault directive, REPRO_JOBS/--jobs, or a
        # supervision knob: a usage error, one line, exit status 2.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    print(f"sweeping {len(systems)} system(s) x {args.seeds} seed(s) = "
          f"{len(configs)} run(s) ...", file=sys.stderr)
    report = run_supervised(configs, jobs=jobs, policy=policy,
                            journal=args.journal, resume=args.resume)
    print(format_table(report.rows()))
    manifest = report.manifest()
    summary = (f"sweep: {manifest['ok']}/{manifest['points']} point(s) ok"
               + (f", {manifest['resumed']} resumed from journal"
                  if manifest["resumed"] else "")
               + f" in {report.wall_s:.1f}s")
    print(summary, file=sys.stderr)
    for failure in manifest["failures"]:
        reached = ""
        if failure.get("last_sim_ns") is not None:
            reached = (f" (reached {failure['last_sim_ns']} ns, "
                       f"{failure['last_events']} events)")
        print(f"sweep: {failure['status']}: {failure['system']} "
              f"seed={failure['seed']} after {failure['attempts']} "
              f"attempt(s): {failure['error']}{reached}", file=sys.stderr)
    if manifest["stalls"]:
        print(f"sweep: stalled point(s) {manifest['stalls']}: simulated "
              f"clock stopped advancing past --stall-timeout",
              file=sys.stderr)
    if report.interrupted and report.journal_path:
        print(f"sweep: interrupted; resume with "
              f"--resume {report.journal_path}", file=sys.stderr)
    _export_traces([result for result in report.results
                    if result is not None], args)
    if report.interrupted:
        return 130
    return 0 if report.ok else 1


def _cmd_trace_view(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro trace-view",
        description="Summarize, validate, or convert a JSONL trace file "
                    "recorded with --trace.")
    parser.add_argument("path", help="JSONL trace file")
    parser.add_argument("--validate", action="store_true",
                        help="check every line against the trace schema; "
                             "exit 1 and list problems if any")
    parser.add_argument("--chrome", default=None, metavar="OUT",
                        help="convert to Chrome trace_event JSON at OUT")
    args = parser.parse_args(argv)
    from repro.trace.export import (
        convert_jsonl_to_chrome,
        summarize_file,
        validate_file,
    )
    if args.validate:
        problems = validate_file(args.path)
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            print(f"{args.path}: {len(problems)} problem(s)",
                  file=sys.stderr)
            return 1
        print(f"{args.path}: valid", file=sys.stderr)
    print(summarize_file(args.path))
    if args.chrome:
        count = convert_jsonl_to_chrome(args.path, args.chrome)
        print(f"wrote {count} Chrome trace events to {args.chrome}",
              file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in SUBCOMMANDS:
        command, rest = argv[0], argv[1:]
        if command == "run":
            return _cmd_run(rest)
        if command == "sweep":
            return _cmd_sweep(rest)
        if command == "lint":
            from repro.analysis.lint import main as lint_main
            return lint_main(rest)
        if command == "perf":
            from repro.perf import main as perf_main
            return perf_main(rest)
        if command == "trace-view":
            return _cmd_trace_view(rest)
    # Bare legacy invocation: flags only, no subcommand -> `run`.
    return _cmd_run(argv)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
