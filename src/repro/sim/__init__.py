"""Discrete-event simulation kernel.

The kernel is deliberately small: a monotonically increasing integer clock
in nanoseconds, a binary-heap event calendar, cancellable timers, and
deterministic per-component random streams.  Everything else in the
simulator (links, switches, transports, applications) is built by
scheduling callbacks on an :class:`Engine`.
"""

from repro.sim.engine import Engine, Event
from repro.sim.rng import RngRegistry
from repro.sim.timers import Timer
from repro.sim.units import (
    GIGA,
    KILO,
    MEGA,
    MICROSECOND,
    MILLISECOND,
    NANOSECOND,
    SECOND,
    bits_to_bytes,
    bytes_to_bits,
    fmt_time,
    gbps,
    kb,
    mb,
    seconds,
    transmission_delay_ns,
    usecs,
)

__all__ = [
    "Engine",
    "Event",
    "RngRegistry",
    "Timer",
    "GIGA",
    "KILO",
    "MEGA",
    "MICROSECOND",
    "MILLISECOND",
    "NANOSECOND",
    "SECOND",
    "bits_to_bytes",
    "bytes_to_bits",
    "fmt_time",
    "gbps",
    "kb",
    "mb",
    "seconds",
    "transmission_delay_ns",
    "usecs",
]
