"""Event calendar and simulation loop.

The engine stores events in a binary heap of plain tuples keyed by
``(time, priority, sequence)``.  The sequence number makes ordering of
same-time, same-priority events FIFO and fully deterministic, which is
essential for reproducible experiments — and, being unique, it also
guarantees heap comparisons never fall through to the trailing payload
fields, so entries compare as native tuples entirely in C.

Two scheduling paths share the calendar:

- :meth:`Engine.schedule` returns a cancellable :class:`Event` handle
  (timers, anything that may be re-armed).  Cancellation is lazy: the
  heap entry stays in place as a tombstone and is skipped when popped.
- :meth:`Engine.schedule_fast` is the allocation-free fast path for the
  dominant case — callbacks that are never cancelled (packet arrivals,
  transmit completions).  No handle object is created; the tuple goes
  straight into the heap.

Lazy cancellation alone would let tombstones accumulate (a transport
resetting its retransmission timer on every ACK cancels an entry each
time).  The calendar therefore compacts itself whenever more than half
of a non-trivial heap is cancelled, keeping memory and heap-sift costs
proportional to the *live* event count.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.analysis import sanitize as _sanitize
from repro.checkpoint.protocol import Snapshot
from repro.trace import hooks as _trace_hooks

_SANITIZE = _sanitize.register(__name__)
_TRACE = _trace_hooks.register(__name__)

#: Compaction triggers only above this heap size, so tiny calendars never
#: churn; above it, compaction runs when >50% of entries are cancelled.
COMPACTION_MIN_ENTRIES = 64

#: Sentinels letting the run loop test its bounds with single int
#: comparisons instead of ``is not None`` checks per event.
_NO_HORIZON = 1 << 62
_NO_LIMIT = 1 << 62


class Event:
    """A cancellable scheduled callback.

    Events are returned by :meth:`Engine.schedule` and may be cancelled.
    Cancellation is lazy: the heap entry stays in place and is skipped
    when popped (the calendar compacts itself when tombstones dominate).
    """

    __slots__ = ("engine", "time", "priority", "seq", "fn", "args",
                 "cancelled")

    def __init__(self, engine: "Engine", time: int, priority: int, seq: int,
                 fn: Callable[..., Any], args: tuple):
        self.engine = engine
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        engine = self.engine
        engine._cancelled += 1
        heap = engine._heap
        if len(heap) >= COMPACTION_MIN_ENTRIES \
                and engine._cancelled * 2 > len(heap):
            engine._compact()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} prio={self.priority}{state} {self.fn}>"


class RecurringEvent:
    """A self-rescheduling periodic callback (see Engine.schedule_every)."""

    __slots__ = ("engine", "interval_ns", "fn", "args", "priority", "_event",
                 "stopped")

    def __init__(self, engine: "Engine", interval_ns: int,
                 fn: Callable[..., Any], args: tuple, priority: int) -> None:
        self.engine = engine
        self.interval_ns = interval_ns
        self.fn = fn
        self.args = args
        self.priority = priority
        self._event: Optional[Event] = None
        self.stopped = False

    def _arm(self) -> None:
        self._event = self.engine.schedule(self.interval_ns, self._fire,
                                           priority=self.priority)

    def _fire(self) -> None:
        if self.stopped:
            return
        self._arm()
        self.fn(*self.args)

    def stop(self) -> None:
        if self.stopped:
            return
        self.stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None


class Engine(Snapshot):
    """Discrete-event simulation engine with an integer nanosecond clock."""

    #: Full calendar state: the heap (with its Event handles), the
    #: sequence counter that makes ordering deterministic, the tombstone
    #: count, the clock, and the executed-event tally.  ``_running`` is
    #: always False at a checkpoint boundary but restores harmlessly.
    SNAPSHOT_ATTRS = ("_heap", "_seq", "_cancelled", "now", "_running",
                      "events_executed")

    def __init__(self) -> None:
        #: Heap entries are ``(time, priority, seq, fn, args, event)``
        #: where ``event`` is None for the fast path.  ``seq`` is unique,
        #: so comparisons never reach ``fn``.
        self._heap: list = []
        self._seq = 0
        self._cancelled = 0
        self.now: int = 0
        self._running = False
        self.events_executed = 0

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any,
                 priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now.

        ``priority`` breaks ties among same-time events (lower runs first);
        the default of 0 is fine for nearly all uses.  The returned
        :class:`Event` may be cancelled; callers that never cancel should
        prefer :meth:`schedule_fast`.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        if _SANITIZE:
            _sanitize.check(type(delay) is int,
                            "schedule() delay must be an integer nanosecond "
                            "count, got %r (%s)", delay, type(delay).__name__)
            _sanitize.check(callable(fn),
                            "schedule() callback %r is not callable", fn)
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(self, time, priority, seq, fn, args)
        heapq.heappush(self._heap, (time, priority, seq, fn, args, event))
        return event

    def schedule_fast(self, delay: int, fn: Callable[..., Any],
                      *args: Any) -> None:
        """Schedule a callback that will never be cancelled (priority 0).

        Identical ``(time, priority, seq)`` FIFO semantics to
        :meth:`schedule`, but no :class:`Event` handle is allocated —
        this is the per-packet hot path (link deliveries, transmit
        completions account for the overwhelming majority of events).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        if _SANITIZE:
            _sanitize.check(type(delay) is int,
                            "schedule_fast() delay must be an integer "
                            "nanosecond count, got %r (%s)", delay,
                            type(delay).__name__)
            _sanitize.check(callable(fn),
                            "schedule_fast() callback %r is not callable", fn)
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (self.now + delay, 0, seq, fn, args, None))

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any,
                    priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        return self.schedule(time - self.now, fn, *args, priority=priority)

    def schedule_every(self, interval_ns: int, fn: Callable[..., Any],
                       *args: Any, priority: int = 0) -> "RecurringEvent":
        """Run ``fn(*args)`` every ``interval_ns`` ns until stopped.

        The first firing is one interval from now.  Each tick re-arms
        itself *before* invoking the callback, so a callback may stop
        the returned handle to terminate the series.
        """
        if interval_ns <= 0:
            raise ValueError("recurring interval must be positive")
        handle = RecurringEvent(self, interval_ns, fn, args, priority)
        handle._arm()
        return handle

    def _compact(self) -> None:
        """Drop cancelled tombstones and re-heapify.

        In place (slice assignment) so that a :meth:`run` loop holding a
        reference to the heap list keeps seeing the compacted calendar.
        """
        self._heap[:] = [entry for entry in self._heap
                         if entry[5] is None or not entry[5].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next pending (non-cancelled) event, or None."""
        heap = self._heap
        while heap:
            event = heap[0][5]
            if event is None or not event.cancelled:
                return heap[0][0]
            heapq.heappop(heap)
            self._cancelled -= 1
        return None

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run events until the calendar empties or ``until`` is reached.

        Returns the number of events executed during this call.  When
        ``until`` is given the clock is advanced to exactly ``until`` on
        return, even if the calendar drained earlier.
        """
        executed = 0
        self._running = True
        span_start = self.now  # for the once-per-call trace span, not per event
        heap = self._heap
        pop = heapq.heappop
        horizon = _NO_HORIZON if until is None else until
        limit = _NO_LIMIT if max_events is None else max_events
        try:
            while heap:
                entry = heap[0]
                event = entry[5]
                if event is not None and event.cancelled:
                    pop(heap)
                    self._cancelled -= 1
                    continue
                time = entry[0]
                if time > horizon:
                    break
                pop(heap)
                if _SANITIZE:
                    _sanitize.check(type(time) is int,
                                    "event time must be an integer "
                                    "nanosecond count, got %r", time)
                    _sanitize.check(time >= self.now,
                                    "event calendar ran backwards: "
                                    "%r < now=%d", time, self.now)
                if time < self.now:  # pragma: no cover - invariant
                    raise RuntimeError("event scheduled in the past")
                self.now = time
                entry[3](*entry[4])
                executed += 1
                if executed >= limit:
                    break
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        self.events_executed += executed
        if _TRACE is not None:
            _TRACE.engine_span(self.now, span_start, executed)
        return executed

    def pending(self) -> int:
        """Number of live (non-cancelled) events still in the calendar."""
        return sum(1 for entry in self._heap
                   if entry[5] is None or not entry[5].cancelled)
