"""Event calendar and simulation loop.

The engine stores events in a binary heap keyed by
``(time, priority, sequence)``.  The sequence number makes ordering of
same-time, same-priority events FIFO and fully deterministic, which is
essential for reproducible experiments.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.analysis import sanitize as _sanitize

_SANITIZE = _sanitize.register(__name__)


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Engine.schedule` and may be cancelled.
    Cancellation is lazy: the heap entry stays in place and is skipped
    when popped.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, priority: int, seq: int,
                 fn: Callable[..., Any], args: tuple):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} prio={self.priority}{state} {self.fn}>"


class Engine:
    """Discrete-event simulation engine with an integer nanosecond clock."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self.now: int = 0
        self._running = False
        self.events_executed = 0

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any,
                 priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now.

        ``priority`` breaks ties among same-time events (lower runs first);
        the default of 0 is fine for nearly all uses.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        if _SANITIZE:
            _sanitize.check(type(delay) is int,
                            "schedule() delay must be an integer nanosecond "
                            "count, got %r (%s)", delay, type(delay).__name__)
            _sanitize.check(callable(fn),
                            "schedule() callback %r is not callable", fn)
        event = Event(self.now + delay, priority, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any,
                    priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        return self.schedule(time - self.now, fn, *args, priority=priority)

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next pending (non-cancelled) event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run events until the calendar empties or ``until`` is reached.

        Returns the number of events executed during this call.  When
        ``until`` is given the clock is advanced to exactly ``until`` on
        return, even if the calendar drained earlier.
        """
        executed = 0
        self._running = True
        heap = self._heap
        try:
            while heap:
                event = heap[0]
                if event.cancelled:
                    heapq.heappop(heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(heap)
                if _SANITIZE:
                    _sanitize.check(type(event.time) is int,
                                    "event time must be an integer "
                                    "nanosecond count, got %r", event.time)
                    _sanitize.check(event.time >= self.now,
                                    "event calendar ran backwards: "
                                    "%r < now=%d", event.time, self.now)
                if event.time < self.now:  # pragma: no cover - invariant
                    raise RuntimeError("event scheduled in the past")
                self.now = event.time
                event.fn(*event.args)
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        self.events_executed += executed
        return executed

    def pending(self) -> int:
        """Number of live (non-cancelled) events still in the calendar."""
        return sum(1 for event in self._heap if not event.cancelled)
