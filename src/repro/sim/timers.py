"""Restartable one-shot timers built on the event calendar.

Transports and the Vertigo ordering component need timers that are
frequently re-armed (RTO, pacing, reordering timeout).  ``Timer`` wraps
the cancel-and-reschedule pattern so the owning code never touches raw
:class:`~repro.sim.engine.Event` handles.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Engine, Event


class Timer:
    """A one-shot timer that can be (re)started, stopped, and queried."""

    def __init__(self, engine: Engine, callback: Callable[..., Any],
                 *args: Any) -> None:
        self._engine = engine
        self._callback = callback
        self._args = args
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    @property
    def expires_at(self) -> Optional[int]:
        """Absolute expiry time in ns, or None when the timer is idle."""
        return self._event.time if self.armed else None

    def remaining(self) -> Optional[int]:
        """Nanoseconds until expiry, or None when the timer is idle."""
        if not self.armed:
            return None
        return max(0, self._event.time - self._engine.now)

    def start(self, delay: int) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` ns from now."""
        self.stop()
        self._event = self._engine.schedule(delay, self._fire)

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback(*self._args)
