"""Unit helpers.

All simulation time is kept as integer **nanoseconds** to avoid floating
point drift over long runs; all data sizes are integer **bytes** and all
rates are integer **bits per second**.  The helpers here convert between
human-friendly quantities and those canonical units.

Rounding contract
-----------------
The ``seconds``/``usecs``/``msecs``/``gbps``/``mbps``/``kb``/``mb``
converters use Python's built-in :func:`round` — round-half-to-**even**
("banker's rounding"), so ``seconds(0.5e-9) == 0`` but
``seconds(1.5e-9) == 2``.  Sub-resolution values round to ``0``; callers
that need a strictly positive duration must clamp (``max(1, ...)``).
Because the input is a float, magnitudes whose product with the scale
exceeds 2**53 (≈104 days for ``seconds``) are not exactly representable;
for exact large quantities, do integer arithmetic with the ``SECOND`` /
``MILLISECOND`` / ... constants instead of going through a float.
:func:`transmission_delay_ns` is the exception: it is pure integer
arithmetic and rounds **up** (ceiling) so back-to-back packets never
overlap on the wire.

This module is the single place float↔int unit conversion is allowed;
everywhere else ``repro.analysis.lint`` rule VR003 enforces integer
arithmetic on ``*_ns`` / ``*_bytes`` / ``*_bps`` quantities.
"""

from __future__ import annotations

NANOSECOND = 1
MICROSECOND = 1_000
MILLISECOND = 1_000_000
SECOND = 1_000_000_000

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return round(value * SECOND)


def usecs(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(value * MICROSECOND)


def msecs(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(value * MILLISECOND)


def gbps(value: float) -> int:
    """Convert gigabits per second to bits per second."""
    return round(value * GIGA)


def mbps(value: float) -> int:
    """Convert megabits per second to bits per second."""
    return round(value * MEGA)


def kb(value: float) -> int:
    """Convert kilobytes (10^3 bytes) to bytes."""
    return round(value * KILO)


def mb(value: float) -> int:
    """Convert megabytes (10^6 bytes) to bytes."""
    return round(value * MEGA)


def bytes_to_bits(n_bytes: int) -> int:
    return n_bytes * 8


def bits_to_bytes(n_bits: int) -> int:
    return n_bits // 8


def transmission_delay_ns(size_bytes: int, rate_bps: int) -> int:
    """Time to serialize ``size_bytes`` onto a link of ``rate_bps``.

    Rounded up to a whole nanosecond so that back-to-back packets never
    overlap on the wire.
    """
    if rate_bps <= 0:
        raise ValueError(f"link rate must be positive, got {rate_bps}")
    bits = size_bytes * 8
    return -(-bits * SECOND // rate_bps)  # ceil division


def fmt_time(t_ns: int) -> str:
    """Render a nanosecond timestamp with an adaptive unit for logs."""
    if t_ns >= SECOND:
        return f"{t_ns / SECOND:.6f}s"
    if t_ns >= MILLISECOND:
        return f"{t_ns / MILLISECOND:.3f}ms"
    if t_ns >= MICROSECOND:
        return f"{t_ns / MICROSECOND:.3f}us"
    return f"{t_ns}ns"
