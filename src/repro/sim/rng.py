"""Deterministic per-component random streams.

Every stochastic component (each switch's power-of-two sampler, the
workload generators, ECMP hashing salt, ...) draws from its own named
``random.Random`` stream derived from a single experiment seed.  This
keeps runs reproducible and, crucially, keeps one component's draw count
from perturbing another's (adding a switch does not change the workload).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

from repro.checkpoint.protocol import Snapshot


class RngRegistry(Snapshot):
    """Factory of independent, deterministically seeded random streams."""

    #: Checkpointing a registry captures every named stream *object*
    #: (``random.Random`` pickles via its own ``getstate()``), so
    #: components holding direct stream references stay aliased to the
    #: registry's streams across a restore.
    SNAPSHOT_ATTRS = ("seed", "_streams")

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed mixes the experiment seed with a stable hash of
        the name, so streams are independent of creation order.
        """
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, salt: str) -> "RngRegistry":
        """Derive a new registry whose streams are independent of ours."""
        digest = hashlib.sha256(f"{self.seed}:{salt}".encode("utf-8")).digest()
        return RngRegistry(int.from_bytes(digest[8:16], "big"))
